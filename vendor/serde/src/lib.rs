//! Offline stand-in for the `serde` crate.
//!
//! The build container has no access to a crates.io registry, so the
//! workspace vendors the minimal serde surface it actually uses: the
//! [`Serialize`] / [`Deserialize`] traits, derive macros for the struct
//! and enum shapes in this repository (named structs, transparent
//! newtypes, and externally tagged enums), and a self-contained JSON
//! [`Value`] model with writer and parser that `serde_json` wraps.
//!
//! Fidelity notes relative to real serde:
//! * Data passes through [`Value`] rather than a streaming serializer.
//! * Supported attributes: `#[serde(transparent)]` on newtype structs
//!   and `#[serde(default)]` on named fields. `Option` fields tolerate
//!   being absent, as with real serde.
//! * Enums use the externally tagged representation (serde's default).

use std::fmt;

pub use serde_derive::{Deserialize, Serialize};

/// A parsed JSON document. Integers keep full precision (`u128`/`i64`)
/// so nanosecond timestamps and 128-bit CPU masks round-trip exactly.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    Int(i64),
    UInt(u128),
    Float(f64),
    Str(String),
    Array(Vec<Value>),
    /// Insertion-ordered; lookup is a linear scan (objects here are
    /// small configuration records, not large maps).
    Object(Vec<(String, Value)>),
}

impl Value {
    pub fn as_object(&self) -> Option<&Vec<(String, Value)>> {
        match self {
            Value::Object(m) => Some(m),
            _ => None,
        }
    }

    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_object().and_then(|m| __field(m, key))
    }
}

/// Field lookup helper used by generated code.
#[doc(hidden)]
pub fn __field<'a>(obj: &'a [(String, Value)], name: &str) -> Option<&'a Value> {
    obj.iter().find(|(k, _)| k == name).map(|(_, v)| v)
}

/// Deserialization error.
#[derive(Debug, Clone)]
pub struct DeError {
    msg: String,
    /// Byte offset into the input where the error struck, when the
    /// error came from the JSON lexer/parser (`None` for shape errors
    /// raised after parsing, which have no single input position).
    pos: Option<usize>,
}

impl DeError {
    pub fn new(msg: impl Into<String>) -> Self {
        DeError {
            msg: msg.into(),
            pos: None,
        }
    }

    /// A parse error anchored at a byte offset of the input.
    pub fn at(msg: impl Into<String>, pos: usize) -> Self {
        DeError {
            msg: msg.into(),
            pos: Some(pos),
        }
    }

    /// Byte offset into the input, when known.
    pub fn pos(&self) -> Option<usize> {
        self.pos
    }
}

impl fmt::Display for DeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.msg)
    }
}

impl std::error::Error for DeError {}

/// Serialize by conversion to the JSON [`Value`] model.
pub trait Serialize {
    fn to_value(&self) -> Value;
}

/// Deserialize by conversion from the JSON [`Value`] model.
pub trait Deserialize: Sized {
    fn from_value(v: &Value) -> Result<Self, DeError>;
}

/// `Value` round-trips through itself, so dynamically built JSON trees
/// can be fed to the same entry points as derived types.
impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        Ok(v.clone())
    }
}

// ---------------------------------------------------------------------
// Primitive impls
// ---------------------------------------------------------------------

macro_rules! ser_de_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::UInt(*self as u128)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                match v {
                    Value::UInt(u) => <$t>::try_from(*u)
                        .map_err(|_| DeError::new(format!("integer {u} out of range"))),
                    Value::Int(i) if *i >= 0 => <$t>::try_from(*i as u128)
                        .map_err(|_| DeError::new(format!("integer {i} out of range"))),
                    Value::Float(f) if f.fract() == 0.0 && *f >= 0.0 && *f <= u128::MAX as f64 => {
                        <$t>::try_from(*f as u128)
                            .map_err(|_| DeError::new(format!("number {f} out of range")))
                    }
                    _ => Err(DeError::new(concat!("expected ", stringify!($t)))),
                }
            }
        }
    )*};
}
ser_de_uint!(u8, u16, u32, u64, u128, usize);

macro_rules! ser_de_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Int(*self as i64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                match v {
                    Value::Int(i) => <$t>::try_from(*i)
                        .map_err(|_| DeError::new(format!("integer {i} out of range"))),
                    Value::UInt(u) => i64::try_from(*u)
                        .ok()
                        .and_then(|i| <$t>::try_from(i).ok())
                        .ok_or_else(|| DeError::new(format!("integer {u} out of range"))),
                    Value::Float(f) if f.fract() == 0.0 => Ok(*f as $t),
                    _ => Err(DeError::new(concat!("expected ", stringify!($t)))),
                }
            }
        }
    )*};
}
ser_de_int!(i8, i16, i32, i64, isize);

macro_rules! ser_de_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Float(*self as f64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                match v {
                    Value::Float(f) => Ok(*f as $t),
                    Value::Int(i) => Ok(*i as $t),
                    Value::UInt(u) => Ok(*u as $t),
                    _ => Err(DeError::new(concat!("expected ", stringify!($t)))),
                }
            }
        }
    )*};
}
ser_de_float!(f32, f64);

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}
impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Bool(b) => Ok(*b),
            _ => Err(DeError::new("expected bool")),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}
impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}
impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            _ => Err(DeError::new("expected string")),
        }
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}
impl Deserialize for Box<str> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        String::from_value(v).map(String::into_boxed_str)
    }
}
impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        T::from_value(v).map(Box::new)
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(x) => x.to_value(),
            None => Value::Null,
        }
    }
}
impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}
impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Array(a) => a.iter().map(T::from_value).collect(),
            _ => Err(DeError::new("expected array")),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}
impl<T: Deserialize, const N: usize> Deserialize for [T; N] {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let items: Vec<T> = Vec::from_value(v)?;
        <[T; N]>::try_from(items)
            .map_err(|items| DeError::new(format!("expected {N} elements, found {}", items.len())))
    }
}

macro_rules! ser_de_tuple {
    ($(($($n:tt $t:ident),+))*) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$n.to_value()),+])
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let a = v.as_array().ok_or_else(|| DeError::new("expected array for tuple"))?;
                const LEN: usize = 0 $(+ { let _ = $n; 1 })+;
                if a.len() != LEN {
                    return Err(DeError::new(format!(
                        "expected {LEN}-tuple, found array of {}",
                        a.len()
                    )));
                }
                Ok(($($t::from_value(&a[$n])?,)+))
            }
        }
    )*};
}
ser_de_tuple! {
    (0 A)
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
    (0 A, 1 B, 2 C, 3 D, 4 E)
    (0 A, 1 B, 2 C, 3 D, 4 E, 5 F)
}

// ---------------------------------------------------------------------
// JSON writer
// ---------------------------------------------------------------------

/// Render a [`Value`] as JSON text.
pub fn write_json(v: &Value, pretty: bool) -> String {
    let mut out = String::new();
    write_value(&mut out, v, pretty, 0);
    out
}

fn write_value(out: &mut String, v: &Value, pretty: bool, indent: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Int(i) => out.push_str(&i.to_string()),
        Value::UInt(u) => out.push_str(&u.to_string()),
        Value::Float(f) => {
            if f.is_finite() {
                // `{:?}` keeps a trailing `.0` on integral floats so the
                // value re-parses as a float, and round-trips exactly.
                out.push_str(&format!("{f:?}"));
            } else {
                // JSON has no Inf/NaN; real serde_json errors here. The
                // repo never serialises non-finite values, so `null` is
                // an acceptable safety net.
                out.push_str("null");
            }
        }
        Value::Str(s) => write_escaped(out, s),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, pretty, indent + 1);
                write_value(out, item, pretty, indent + 1);
            }
            newline_indent(out, pretty, indent);
            out.push(']');
        }
        Value::Object(fields) => {
            if fields.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, val)) in fields.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, pretty, indent + 1);
                write_escaped(out, k);
                out.push(':');
                if pretty {
                    out.push(' ');
                }
                write_value(out, val, pretty, indent + 1);
            }
            newline_indent(out, pretty, indent);
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, pretty: bool, indent: usize) {
    if pretty {
        out.push('\n');
        for _ in 0..indent {
            out.push_str("  ");
        }
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------
// JSON parser
// ---------------------------------------------------------------------

/// Parse JSON text into a [`Value`].
pub fn parse_json(s: &str) -> Result<Value, DeError> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(DeError::at(
            format!("trailing characters at byte {}", p.pos),
            p.pos,
        ));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), DeError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(DeError::at(
                format!("expected '{}' at byte {}", b as char, self.pos),
                self.pos,
            ))
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self) -> Result<Value, DeError> {
        match self.peek() {
            Some(b'n') if self.eat_keyword("null") => Ok(Value::Null),
            Some(b't') if self.eat_keyword("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_keyword("false") => Ok(Value::Bool(false)),
            Some(b'"') => self.string().map(Value::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.number(),
            _ => Err(DeError::at(
                format!("unexpected input at byte {}", self.pos),
                self.pos,
            )),
        }
    }

    fn array(&mut self) -> Result<Value, DeError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => {
                    return Err(DeError::at(
                        format!("expected ',' or ']' at byte {}", self.pos),
                        self.pos,
                    ))
                }
            }
        }
    }

    fn object(&mut self) -> Result<Value, DeError> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            fields.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(fields));
                }
                _ => {
                    return Err(DeError::at(
                        format!("expected ',' or '}}' at byte {}", self.pos),
                        self.pos,
                    ))
                }
            }
        }
    }

    fn string(&mut self) -> Result<String, DeError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let Some(b) = self.peek() else {
                return Err(DeError::at("unterminated string", self.pos));
            };
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let Some(esc) = self.peek() else {
                        return Err(DeError::at("unterminated escape", self.pos));
                    };
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hi = self.hex4()?;
                            let code = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair.
                                if !(self.eat_keyword("\\u")) {
                                    return Err(DeError::at("lone high surrogate", self.pos));
                                }
                                let lo = self.hex4()?;
                                0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00)
                            } else {
                                hi
                            };
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| DeError::at("invalid \\u escape", self.pos))?,
                            );
                        }
                        _ => return Err(DeError::at("unknown escape", self.pos)),
                    }
                }
                b if b < 0x80 => out.push(b as char),
                _ => {
                    // Re-decode one UTF-8 scalar starting at the byte we
                    // consumed — bounded at 4 bytes, so lexing stays
                    // linear in the input length.
                    let start = self.pos - 1;
                    let width = match b {
                        0xC0..=0xDF => 2,
                        0xE0..=0xEF => 3,
                        _ => 4,
                    };
                    let end = (start + width).min(self.bytes.len());
                    let s = std::str::from_utf8(&self.bytes[start..end])
                        .map_err(|_| DeError::at("invalid utf-8 in string", start))?;
                    let c = s.chars().next().unwrap();
                    out.push(c);
                    self.pos = start + c.len_utf8();
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, DeError> {
        if self.pos + 4 > self.bytes.len() {
            return Err(DeError::at("truncated \\u escape", self.pos));
        }
        let s = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
            .map_err(|_| DeError::at("invalid \\u escape", self.pos))?;
        let v =
            u32::from_str_radix(s, 16).map_err(|_| DeError::at("invalid \\u escape", self.pos))?;
        self.pos += 4;
        Ok(v)
    }

    fn number(&mut self) -> Result<Value, DeError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        if !is_float {
            if let Some(rest) = text.strip_prefix('-') {
                if let Ok(mag) = rest.parse::<i128>() {
                    if let Ok(i) = i64::try_from(-mag) {
                        return Ok(Value::Int(i));
                    }
                }
            } else if let Ok(u) = text.parse::<u128>() {
                return Ok(Value::UInt(u));
            }
        }
        text.parse::<f64>()
            .map(Value::Float)
            .map_err(|_| DeError::at(format!("invalid number '{text}'"), start))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        let v = (42u64, -3i64, 1.5f64, true, "hi\n\"quote\"".to_string());
        let json = write_json(&v.to_value(), false);
        let back: (u64, i64, f64, bool, String) =
            Deserialize::from_value(&parse_json(&json).unwrap()).unwrap();
        let _ = back;
    }

    #[test]
    fn u128_round_trips_exactly() {
        let x: u128 = (1u128 << 100) | 12345;
        let json = write_json(&x.to_value(), false);
        let v = parse_json(&json).unwrap();
        assert_eq!(u128::from_value(&v).unwrap(), x);
    }

    #[test]
    fn large_u64_round_trips_exactly() {
        let x = u64::MAX - 7;
        let json = write_json(&x.to_value(), false);
        assert_eq!(u64::from_value(&parse_json(&json).unwrap()).unwrap(), x);
    }

    #[test]
    fn float_round_trips() {
        for f in [0.0, 1.0, -2.25, 1e-12, 6.02e23, f64::MIN_POSITIVE] {
            let json = write_json(&f.to_value(), false);
            let back = f64::from_value(&parse_json(&json).unwrap()).unwrap();
            assert_eq!(f, back, "{json}");
        }
    }

    #[test]
    fn option_and_vec() {
        let v: Vec<Option<u32>> = vec![Some(1), None, Some(3)];
        let json = write_json(&v.to_value(), true);
        let back: Vec<Option<u32>> = Deserialize::from_value(&parse_json(&json).unwrap()).unwrap();
        assert_eq!(v, back);
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse_json("{").is_err());
        assert!(parse_json("[1,]").is_err());
        assert!(parse_json("nulll").is_err());
    }

    #[test]
    fn unicode_strings() {
        let s = "héllo ∀x π".to_string();
        let json = write_json(&s.to_value(), false);
        assert_eq!(String::from_value(&parse_json(&json).unwrap()).unwrap(), s);
        // Escaped form parses too.
        let v = parse_json("\"\\u00e9 \\ud83d\\ude00\"").unwrap();
        assert_eq!(v.as_str().unwrap(), "é 😀");
    }
}
