//! Offline stand-in for `proptest`.
//!
//! Implements the subset this workspace uses: range and `any::<T>()`
//! strategies, `Just`, tuples, `prop_map`, `prop_oneof!`,
//! `proptest::collection::vec`, and the `proptest!` /
//! `prop_assert!` / `prop_assert_eq!` macros with an optional
//! `#![proptest_config(ProptestConfig::with_cases(n))]` header.
//!
//! Differences from real proptest, by design:
//! * no shrinking — a failing case reports its inputs via the
//!   assertion message only, plus a `cc <hex>` replay seed that can be
//!   pinned in a `proptest-regressions/<test>.txt` file;
//! * deterministic: the RNG is seeded from the test's module path and
//!   name, so failures reproduce across runs;
//! * `any::<T>()` covers the primitive types used here, not arbitrary
//!   derives.
//!
//! Regression pinning mirrors real proptest's persistence: when a
//! property fails, the panic message carries the RNG state that
//! produced the failing case (`cc 0123…`). Committing that line to
//! `<crate>/proptest-regressions/<module>__<test>.txt` makes every
//! future run replay the pinned case *first*, before the random
//! sweep. The `PROPTEST_CASES` environment variable overrides the
//! per-property case count (used by the nightly CI job to widen the
//! sweep without slowing the PR gate).

use std::ops::Range;

// ---------------------------------------------------------------------
// Deterministic RNG (splitmix64; independent of noiselab-sim)
// ---------------------------------------------------------------------

/// Test-case RNG. Splitmix64: tiny, fast, and good enough for input
/// generation (the simulator under test has its own RNG).
pub struct TestRng {
    state: u64,
}

impl TestRng {
    pub fn new(seed: u64) -> Self {
        TestRng {
            state: seed ^ 0x9E37_79B9_7F4A_7C15,
        }
    }

    /// Seed deterministically from a test's fully qualified name.
    pub fn from_name(name: &str) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        Self::new(h)
    }

    /// Resume from a raw state captured by [`TestRng::state`]. Unlike
    /// [`TestRng::new`] this applies no seed whitening, so the replayed
    /// draws are bit-identical to the original sequence.
    pub fn from_state(state: u64) -> Self {
        TestRng { state }
    }

    /// The raw RNG state. Captured immediately before a property case
    /// generates its inputs, it is an exact replay seed for that case.
    pub fn state(&self) -> u64 {
        self.state
    }

    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, n)`; `n` must be nonzero.
    pub fn below(&mut self, n: u64) -> u64 {
        // Modulo bias is irrelevant for test-input generation.
        self.next_u64() % n
    }

    /// Uniform in `[0, 1)`.
    pub fn f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

// ---------------------------------------------------------------------
// Strategy
// ---------------------------------------------------------------------

/// A generator of test inputs. Object safe; combinators require
/// `Self: Sized`.
pub trait Strategy {
    type Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

pub type BoxedStrategy<V> = Box<dyn Strategy<Value = V>>;

impl<V> Strategy for Box<dyn Strategy<Value = V>> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        (**self).generate(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        (**self).generate(rng)
    }
}

/// `prop_map` adapter.
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// Always yields a clone of the given value.
#[derive(Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Uniform choice between boxed strategies (`prop_oneof!`).
pub struct Union<V> {
    options: Vec<BoxedStrategy<V>>,
}

impl<V> Strategy for Union<V> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        let i = rng.below(self.options.len() as u64) as usize;
        self.options[i].generate(rng)
    }
}

#[doc(hidden)]
pub fn __union_of<V>(options: Vec<BoxedStrategy<V>>) -> Union<V> {
    assert!(!options.is_empty(), "prop_oneof! needs at least one option");
    Union { options }
}

#[doc(hidden)]
pub fn __boxed<S: Strategy + 'static>(s: S) -> BoxedStrategy<S::Value> {
    Box::new(s)
}

// Integer / float ranges.
macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                let off = if span > u64::MAX as u128 {
                    // Only reachable for 128-bit-wide u64/i64 spans; two
                    // draws cover it.
                    (((rng.next_u64() as u128) << 64) | rng.next_u64() as u128) % span
                } else {
                    rng.below(span as u64) as u128
                };
                (self.start as i128 + off as i128) as $t
            }
        }
    )*};
}
int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        self.start + rng.f64() * (self.end - self.start)
    }
}

impl Strategy for Range<f32> {
    type Value = f32;
    fn generate(&self, rng: &mut TestRng) -> f32 {
        self.start + (rng.f64() as f32) * (self.end - self.start)
    }
}

// Tuples of strategies.
macro_rules! tuple_strategy {
    ($(($($n:tt $t:ident),+))*) => {$(
        impl<$($t: Strategy),+> Strategy for ($($t,)+) {
            type Value = ($($t::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$n.generate(rng),)+)
            }
        }
    )*};
}
tuple_strategy! {
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
    (0 A, 1 B, 2 C, 3 D, 4 E)
    (0 A, 1 B, 2 C, 3 D, 4 E, 5 F)
}

/// `any::<T>()` for primitives.
pub struct Any<T>(std::marker::PhantomData<T>);

pub fn any<T: ArbitraryValue>() -> Any<T> {
    Any(std::marker::PhantomData)
}

pub trait ArbitraryValue {
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl<T: ArbitraryValue> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

impl ArbitraryValue for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! arbitrary_int {
    ($($t:ty),*) => {$(
        impl ArbitraryValue for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl ArbitraryValue for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        rng.f64()
    }
}

pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// Vector of values from `element`, with length uniform in `len`.
    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        assert!(len.start < len.end, "empty length range");
        VecStrategy { element, len }
    }

    pub struct VecStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.len.end - self.len.start) as u64;
            let n = self.len.start + rng.below(span) as usize;
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Runner configuration: number of cases per property.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // Real proptest defaults to 256; 64 keeps kernel-backed
        // properties fast while still exploring the input space.
        ProptestConfig { cases: 64 }
    }
}

/// `PROPTEST_CASES` override for the per-property case count. The
/// nightly CI job sets this to widen the sweep; unset or unparsable
/// values fall back to the in-source config.
pub fn cases_override() -> Option<u32> {
    std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|v| v.trim().parse().ok())
}

/// Load pinned replay seeds for a property from
/// `<manifest_dir>/proptest-regressions/<sanitized test name>.txt`.
/// Lines of the form `cc <hex>` are RNG states captured from past
/// failures; everything else (comments, blanks) is ignored. A missing
/// file means no pinned cases.
pub fn load_regressions(manifest_dir: &str, test_name: &str) -> Vec<u64> {
    let path = std::path::Path::new(manifest_dir)
        .join("proptest-regressions")
        .join(format!("{}.txt", sanitize_test_name(test_name)));
    let Ok(text) = std::fs::read_to_string(path) else {
        return Vec::new();
    };
    text.lines()
        .filter_map(|line| {
            let rest = line.trim().strip_prefix("cc ")?;
            u64::from_str_radix(rest.trim(), 16).ok()
        })
        .collect()
}

/// `module::path::test` → `module__path__test` (a portable filename).
pub fn sanitize_test_name(name: &str) -> String {
    name.replace("::", "__")
}

pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_oneof, proptest, Just, ProptestConfig, Strategy,
    };
}

// ---------------------------------------------------------------------
// Macros
// ---------------------------------------------------------------------

#[macro_export]
macro_rules! prop_oneof {
    ($($s:expr),+ $(,)?) => {
        $crate::__union_of(vec![$($crate::__boxed($s)),+])
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err(format!(
                "assertion failed at {}:{}: {}",
                file!(), line!(), stringify!($cond)
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err(format!(
                "assertion failed at {}:{}: {}: {}",
                file!(), line!(), stringify!($cond), format!($($fmt)+)
            ));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {{
        let __a = $a;
        let __b = $b;
        if !(__a == __b) {
            return ::std::result::Result::Err(format!(
                "assertion failed at {}:{}: {} == {} ({:?} vs {:?})",
                file!(),
                line!(),
                stringify!($a),
                stringify!($b),
                __a,
                __b
            ));
        }
    }};
}

/// Defines `#[test]` functions whose arguments are drawn from
/// strategies. Each property runs `ProptestConfig::cases` times with a
/// deterministic per-test RNG.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_tests!{ @cfg ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_tests!{ @cfg ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_tests {
    (@cfg ($cfg:expr)) => {};
    (@cfg ($cfg:expr)
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __cfg: $crate::ProptestConfig = $cfg;
            let __cases = $crate::cases_override().unwrap_or(__cfg.cases);
            let __test_name = concat!(module_path!(), "::", stringify!($name));
            // Pinned regressions replay first, before the random sweep.
            for __pinned in $crate::load_regressions(env!("CARGO_MANIFEST_DIR"), __test_name) {
                let mut __rng = $crate::TestRng::from_state(__pinned);
                $(let $arg = $crate::Strategy::generate(&($strat), &mut __rng);)+
                let __outcome: ::std::result::Result<(), ::std::string::String> = (|| {
                    $body
                    ::std::result::Result::Ok(())
                })();
                if let ::std::result::Result::Err(__msg) = __outcome {
                    panic!(
                        "property {} failed on pinned regression cc {:016x}: {}",
                        stringify!($name), __pinned, __msg
                    );
                }
            }
            let mut __rng = $crate::TestRng::from_name(__test_name);
            for __case in 0..__cases {
                let __replay = __rng.state();
                $(let $arg = $crate::Strategy::generate(&($strat), &mut __rng);)+
                let __outcome: ::std::result::Result<(), ::std::string::String> = (|| {
                    $body
                    ::std::result::Result::Ok(())
                })();
                if let ::std::result::Result::Err(__msg) = __outcome {
                    panic!(
                        "property {} failed on case {} (pin with `cc {:016x}` in \
                         proptest-regressions/{}.txt): {}",
                        stringify!($name), __case, __replay,
                        $crate::sanitize_test_name(__test_name), __msg
                    );
                }
            }
        }
        $crate::__proptest_tests!{ @cfg ($cfg) $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = crate::TestRng::new(7);
        for _ in 0..1000 {
            let x = (10u64..20).generate(&mut rng);
            assert!((10..20).contains(&x));
            let f = (0.5f64..2.5).generate(&mut rng);
            assert!((0.5..2.5).contains(&f));
            let i = (-5i32..5).generate(&mut rng);
            assert!((-5..5).contains(&i));
        }
    }

    #[test]
    fn deterministic_per_name() {
        let mut a = crate::TestRng::from_name("x::y");
        let mut b = crate::TestRng::from_name("x::y");
        assert_eq!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn state_capture_replays_exactly() {
        let mut rng = crate::TestRng::from_name("x::y");
        rng.next_u64();
        let snap = rng.state();
        let ahead = (0..4).map(|_| rng.next_u64()).collect::<Vec<_>>();
        let mut replay = crate::TestRng::from_state(snap);
        let again = (0..4).map(|_| replay.next_u64()).collect::<Vec<_>>();
        assert_eq!(ahead, again);
    }

    #[test]
    fn regression_files_parse_cc_lines_only() {
        let dir = std::env::temp_dir().join("noiselab-proptest-stub-test");
        std::fs::create_dir_all(dir.join("proptest-regressions")).unwrap();
        std::fs::write(
            dir.join("proptest-regressions/m__t.txt"),
            "# comment\ncc 00000000000000ff\nnot a seed\ncc 10\n",
        )
        .unwrap();
        let seeds = crate::load_regressions(dir.to_str().unwrap(), "m::t");
        assert_eq!(seeds, vec![0xff, 0x10]);
        assert!(crate::load_regressions(dir.to_str().unwrap(), "m::absent").is_empty());
        assert_eq!(crate::sanitize_test_name("a::b::c"), "a__b__c");
    }

    #[test]
    fn vec_lengths_respect_range() {
        let mut rng = crate::TestRng::new(3);
        let s = crate::collection::vec(0u32..5, 2..6);
        for _ in 0..100 {
            let v = s.generate(&mut rng);
            assert!((2..6).contains(&v.len()));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn macro_end_to_end(x in 0u64..100, flag in any::<bool>(), v in crate::collection::vec(0u8..10, 0..4)) {
            prop_assert!(x < 100);
            let negated = !flag;
            prop_assert_eq!(flag, !negated);
            prop_assert!(v.len() < 4, "len={}", v.len());
        }

        #[test]
        fn oneof_and_map(s in prop_oneof![Just("a"), Just("b")].prop_map(|s| s.to_string())) {
            prop_assert!(s == "a" || s == "b");
        }
    }
}
