//! Offline stand-in for `serde_json`, layered on the vendored `serde`
//! crate's [`serde::Value`] model and its JSON writer/parser.

use std::fmt;

pub use serde::Value;

/// JSON (de)serialization error.
#[derive(Debug, Clone)]
pub struct Error {
    msg: String,
    offset: Option<usize>,
}

impl Error {
    /// Byte offset into the input where parsing failed, when the error
    /// came from the JSON parser (`None` for shape errors raised after
    /// parsing).
    pub fn offset(&self) -> Option<usize> {
        self.offset
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.msg)
    }
}

impl std::error::Error for Error {}

impl From<serde::DeError> for Error {
    fn from(e: serde::DeError) -> Self {
        Error {
            msg: e.to_string(),
            offset: e.pos(),
        }
    }
}

/// Serialize to compact JSON.
pub fn to_string<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    Ok(serde::write_json(&value.to_value(), false))
}

/// Serialize to pretty-printed JSON (two-space indent).
pub fn to_string_pretty<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    Ok(serde::write_json(&value.to_value(), true))
}

/// Deserialize from JSON text.
pub fn from_str<T: serde::Deserialize>(s: &str) -> Result<T, Error> {
    let v = serde::parse_json(s)?;
    Ok(T::from_value(&v)?)
}

#[cfg(test)]
mod tests {
    #[test]
    fn round_trip_via_json() {
        let v: Vec<(String, u64)> = vec![("a".into(), 1), ("b".into(), u64::MAX)];
        let s = super::to_string(&v).unwrap();
        let back: Vec<(String, u64)> = super::from_str(&s).unwrap();
        assert_eq!(v, back);
        let pretty = super::to_string_pretty(&v).unwrap();
        let back2: Vec<(String, u64)> = super::from_str(&pretty).unwrap();
        assert_eq!(v, back2);
    }

    #[test]
    fn error_is_displayable() {
        let err = super::from_str::<u64>("not json").unwrap_err();
        assert!(!err.to_string().is_empty());
    }
}
