//! Derive macros for the offline vendored serde stand-in.
//!
//! Implemented without `syn`/`quote` (no registry access): the item is
//! parsed directly from the `proc_macro::TokenStream` and the impls are
//! emitted as strings. Supports the shapes this workspace actually
//! derives on:
//!
//! * named-field structs, with `#[serde(default)]` on fields;
//! * tuple newtype structs (serialized transparently, matching serde's
//!   default newtype behaviour and `#[serde(transparent)]`);
//! * multi-field tuple structs (as arrays);
//! * enums with unit / newtype / tuple / struct variants, externally
//!   tagged (serde's default representation).
//!
//! Generics and other serde attributes are intentionally unsupported
//! and panic at expansion time rather than silently misbehaving.

use proc_macro::{Delimiter, TokenStream, TokenTree};
use std::iter::Peekable;

type TokenIter = Peekable<proc_macro::token_stream::IntoIter>;

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_serialize(&item)
        .parse()
        .expect("generated Serialize impl failed to parse")
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_deserialize(&item)
        .parse()
        .expect("generated Deserialize impl failed to parse")
}

// ---------------------------------------------------------------------
// Item model + parser
// ---------------------------------------------------------------------

struct Field {
    name: Option<String>,
    ty: String,
    default: bool,
}

enum Body {
    NamedStruct(Vec<Field>),
    TupleStruct(Vec<Field>),
    Enum(Vec<Variant>),
}

struct Variant {
    name: String,
    kind: VariantKind,
}

enum VariantKind {
    Unit,
    Tuple(Vec<Field>),
    Struct(Vec<Field>),
}

struct Item {
    name: String,
    body: Body,
}

fn parse_item(input: TokenStream) -> Item {
    let mut it: TokenIter = input.into_iter().peekable();
    loop {
        match it.peek() {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                // Outer attribute (doc comment, #[serde(...)], #[repr], ...).
                // Nothing at item level changes our output: transparent on a
                // newtype matches the default newtype behaviour anyway.
                skip_attribute(&mut it);
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                it.next();
                skip_vis_restriction(&mut it);
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "struct" => {
                it.next();
                return parse_struct(&mut it);
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "enum" => {
                it.next();
                return parse_enum(&mut it);
            }
            other => panic!("serde derive: unexpected token {other:?}"),
        }
    }
}

fn parse_struct(it: &mut TokenIter) -> Item {
    let name = expect_ident(it);
    reject_generics(it, &name);
    match it.next() {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
            let fields = parse_named_fields(g.stream());
            Item {
                name,
                body: Body::NamedStruct(fields),
            }
        }
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
            let fields = parse_tuple_fields(g.stream());
            Item {
                name,
                body: Body::TupleStruct(fields),
            }
        }
        other => panic!("serde derive: expected struct body for `{name}`, found {other:?}"),
    }
}

fn parse_enum(it: &mut TokenIter) -> Item {
    let name = expect_ident(it);
    reject_generics(it, &name);
    let body = match it.next() {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g.stream(),
        other => panic!("serde derive: expected enum body for `{name}`, found {other:?}"),
    };
    let mut vit: TokenIter = body.into_iter().peekable();
    let mut variants = Vec::new();
    while vit.peek().is_some() {
        while matches!(vit.peek(), Some(TokenTree::Punct(p)) if p.as_char() == '#') {
            skip_attribute(&mut vit);
        }
        if vit.peek().is_none() {
            break;
        }
        let vname = expect_ident(&mut vit);
        let kind = match vit.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let fields = parse_tuple_fields(g.stream());
                vit.next();
                VariantKind::Tuple(fields)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let fields = parse_named_fields(g.stream());
                vit.next();
                VariantKind::Struct(fields)
            }
            _ => VariantKind::Unit,
        };
        variants.push(Variant { name: vname, kind });
        // Skip an optional discriminant and the trailing comma.
        for tt in vit.by_ref() {
            if matches!(&tt, TokenTree::Punct(p) if p.as_char() == ',') {
                break;
            }
        }
    }
    Item {
        name,
        body: Body::Enum(variants),
    }
}

fn parse_named_fields(ts: TokenStream) -> Vec<Field> {
    let mut it: TokenIter = ts.into_iter().peekable();
    let mut fields = Vec::new();
    while it.peek().is_some() {
        let mut default = false;
        while matches!(it.peek(), Some(TokenTree::Punct(p)) if p.as_char() == '#') {
            if attribute_has_serde_word(&mut it, "default") {
                default = true;
            }
        }
        if it.peek().is_none() {
            break;
        }
        if matches!(it.peek(), Some(TokenTree::Ident(id)) if id.to_string() == "pub") {
            it.next();
            skip_vis_restriction(&mut it);
        }
        let name = expect_ident(&mut it);
        match it.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => panic!("serde derive: expected ':' after field `{name}`, found {other:?}"),
        }
        let ty = collect_type(&mut it);
        fields.push(Field {
            name: Some(name),
            ty,
            default,
        });
        if matches!(it.peek(), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
            it.next();
        }
    }
    fields
}

fn parse_tuple_fields(ts: TokenStream) -> Vec<Field> {
    let mut it: TokenIter = ts.into_iter().peekable();
    let mut fields = Vec::new();
    while it.peek().is_some() {
        let mut default = false;
        while matches!(it.peek(), Some(TokenTree::Punct(p)) if p.as_char() == '#') {
            if attribute_has_serde_word(&mut it, "default") {
                default = true;
            }
        }
        if it.peek().is_none() {
            break;
        }
        if matches!(it.peek(), Some(TokenTree::Ident(id)) if id.to_string() == "pub") {
            it.next();
            skip_vis_restriction(&mut it);
        }
        let ty = collect_type(&mut it);
        fields.push(Field {
            name: None,
            ty,
            default,
        });
        if matches!(it.peek(), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
            it.next();
        }
    }
    fields
}

/// Collect a type's tokens up to a top-level comma, tracking `<`/`>`
/// depth so commas inside generic arguments are not split points
/// (delimiters like `(...)` are already nested as `Group`s).
fn collect_type(it: &mut TokenIter) -> String {
    let mut out = String::new();
    let mut angle: i64 = 0;
    while let Some(tt) = it.peek() {
        if angle == 0 {
            if let TokenTree::Punct(p) = tt {
                if p.as_char() == ',' {
                    break;
                }
            }
        }
        let tt = it.next().unwrap();
        if let TokenTree::Punct(p) = &tt {
            match p.as_char() {
                '<' => angle += 1,
                '>' => angle -= 1,
                _ => {}
            }
        }
        if !out.is_empty() {
            out.push(' ');
        }
        out.push_str(&tt.to_string());
    }
    out
}

fn expect_ident(it: &mut TokenIter) -> String {
    match it.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde derive: expected identifier, found {other:?}"),
    }
}

fn reject_generics(it: &mut TokenIter, name: &str) {
    if matches!(it.peek(), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!("serde derive: generic type `{name}` is not supported by the vendored stub");
    }
}

/// Consume one `#[...]` attribute (the leading `#` must be next).
fn skip_attribute(it: &mut TokenIter) {
    it.next(); // '#'
    match it.next() {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Bracket => drop(g),
        other => panic!("serde derive: malformed attribute, found {other:?}"),
    }
}

/// Consume one attribute; return true when it is `#[serde(...)]`
/// containing `word` as an identifier.
fn attribute_has_serde_word(it: &mut TokenIter, word: &str) -> bool {
    it.next(); // '#'
    let group = match it.next() {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Bracket => g,
        other => panic!("serde derive: malformed attribute, found {other:?}"),
    };
    let mut inner = group.stream().into_iter();
    match inner.next() {
        Some(TokenTree::Ident(id)) if id.to_string() == "serde" => {}
        _ => return false,
    }
    match inner.next() {
        Some(TokenTree::Group(args)) => args
            .stream()
            .into_iter()
            .any(|tt| matches!(&tt, TokenTree::Ident(id) if id.to_string() == word)),
        _ => false,
    }
}

/// After `pub`, consume a `(crate)` / `(super)` / `(self)` / `(in ...)`
/// restriction if present — but not a parenthesised tuple type.
fn skip_vis_restriction(it: &mut TokenIter) {
    if let Some(TokenTree::Group(g)) = it.peek() {
        if g.delimiter() == Delimiter::Parenthesis {
            let first = g.stream().into_iter().next();
            if matches!(&first, Some(TokenTree::Ident(id))
                if matches!(id.to_string().as_str(), "crate" | "super" | "self" | "in"))
            {
                it.next();
            }
        }
    }
}

// ---------------------------------------------------------------------
// Codegen
// ---------------------------------------------------------------------

const IMPL_ATTRS: &str =
    "#[automatically_derived]\n#[allow(warnings, clippy::all, clippy::pedantic)]\n";

fn gen_serialize(item: &Item) -> String {
    let name = &item.name;
    let mut body = String::new();
    match &item.body {
        Body::NamedStruct(fields) => {
            body.push_str("::serde::Value::Object(vec![\n");
            for f in fields {
                let fname = f.name.as_ref().unwrap();
                body.push_str(&format!(
                    "(\"{fname}\".to_string(), ::serde::Serialize::to_value(&self.{fname})),\n"
                ));
            }
            body.push_str("])");
        }
        Body::TupleStruct(fields) if fields.len() == 1 => {
            body.push_str("::serde::Serialize::to_value(&self.0)");
        }
        Body::TupleStruct(fields) => {
            body.push_str("::serde::Value::Array(vec![\n");
            for i in 0..fields.len() {
                body.push_str(&format!("::serde::Serialize::to_value(&self.{i}),\n"));
            }
            body.push_str("])");
        }
        Body::Enum(variants) => {
            body.push_str("match self {\n");
            for v in variants {
                let vname = &v.name;
                match &v.kind {
                    VariantKind::Unit => body.push_str(&format!(
                        "{name}::{vname} => ::serde::Value::Str(\"{vname}\".to_string()),\n"
                    )),
                    VariantKind::Tuple(fields) => {
                        let binds: Vec<String> =
                            (0..fields.len()).map(|i| format!("__f{i}")).collect();
                        let inner = if fields.len() == 1 {
                            "::serde::Serialize::to_value(__f0)".to_string()
                        } else {
                            let items: Vec<String> = binds
                                .iter()
                                .map(|b| format!("::serde::Serialize::to_value({b})"))
                                .collect();
                            format!("::serde::Value::Array(vec![{}])", items.join(", "))
                        };
                        body.push_str(&format!(
                            "{name}::{vname}({}) => ::serde::Value::Object(vec![(\"{vname}\".to_string(), {inner})]),\n",
                            binds.join(", ")
                        ));
                    }
                    VariantKind::Struct(fields) => {
                        let fnames: Vec<&str> =
                            fields.iter().map(|f| f.name.as_deref().unwrap()).collect();
                        let items: Vec<String> = fnames
                            .iter()
                            .map(|f| {
                                format!("(\"{f}\".to_string(), ::serde::Serialize::to_value({f}))")
                            })
                            .collect();
                        body.push_str(&format!(
                            "{name}::{vname} {{ {} }} => ::serde::Value::Object(vec![(\"{vname}\".to_string(), ::serde::Value::Object(vec![{}]))]),\n",
                            fnames.join(", "),
                            items.join(", ")
                        ));
                    }
                }
            }
            body.push('}');
        }
    }
    format!(
        "{IMPL_ATTRS}impl ::serde::Serialize for {name} {{\n\
         fn to_value(&self) -> ::serde::Value {{\n{body}\n}}\n}}\n"
    )
}

fn missing_field_expr(item: &str, f: &Field) -> String {
    let fname = f.name.as_deref().unwrap_or("?");
    if f.default {
        "::std::default::Default::default()".to_string()
    } else if f.ty.starts_with("Option") || f.ty.starts_with(":: std :: option :: Option") {
        "::std::option::Option::None".to_string()
    } else {
        format!(
            "return ::std::result::Result::Err(::serde::DeError::new(\"missing field `{fname}` in {item}\"))"
        )
    }
}

/// `name: match __field(obj, "name") {{ Some(x) => from_value(x)?, None => ... }},`
fn named_field_init(item: &str, f: &Field) -> String {
    let fname = f.name.as_deref().unwrap();
    format!(
        "{fname}: match ::serde::__field(__obj, \"{fname}\") {{\n\
         ::std::option::Option::Some(__x) => ::serde::Deserialize::from_value(__x)?,\n\
         ::std::option::Option::None => {},\n}},\n",
        missing_field_expr(item, f)
    )
}

fn gen_deserialize(item: &Item) -> String {
    let name = &item.name;
    let mut body = String::new();
    match &item.body {
        Body::NamedStruct(fields) => {
            body.push_str(&format!(
                "let __obj = __v.as_object().ok_or_else(|| ::serde::DeError::new(\"expected object for {name}\"))?;\n"
            ));
            body.push_str(&format!("::std::result::Result::Ok({name} {{\n"));
            for f in fields {
                body.push_str(&named_field_init(name, f));
            }
            body.push_str("})");
        }
        Body::TupleStruct(fields) if fields.len() == 1 => {
            body.push_str(&format!(
                "::std::result::Result::Ok({name}(::serde::Deserialize::from_value(__v)?))"
            ));
        }
        Body::TupleStruct(fields) => {
            let n = fields.len();
            body.push_str(&format!(
                "let __arr = __v.as_array().ok_or_else(|| ::serde::DeError::new(\"expected array for {name}\"))?;\n\
                 if __arr.len() != {n} {{ return ::std::result::Result::Err(::serde::DeError::new(\"wrong arity for {name}\")); }}\n"
            ));
            let items: Vec<String> = (0..n)
                .map(|i| format!("::serde::Deserialize::from_value(&__arr[{i}])?"))
                .collect();
            body.push_str(&format!(
                "::std::result::Result::Ok({name}({}))",
                items.join(", ")
            ));
        }
        Body::Enum(variants) => {
            body.push_str("match __v {\n");
            // Unit variants: externally tagged as a bare string.
            body.push_str("::serde::Value::Str(__s) => match __s.as_str() {\n");
            for v in variants {
                if matches!(v.kind, VariantKind::Unit) {
                    let vname = &v.name;
                    body.push_str(&format!(
                        "\"{vname}\" => ::std::result::Result::Ok({name}::{vname}),\n"
                    ));
                }
            }
            body.push_str(&format!(
                "__other => ::std::result::Result::Err(::serde::DeError::new(format!(\"unknown variant `{{__other}}` for {name}\"))),\n}},\n"
            ));
            // Data variants: single-entry object {"Variant": payload}.
            body.push_str(
                "::serde::Value::Object(__fields) if __fields.len() == 1 => {\n\
                 let (__tag, __inner) = &__fields[0];\n\
                 match __tag.as_str() {\n",
            );
            for v in variants {
                let vname = &v.name;
                match &v.kind {
                    VariantKind::Unit => {}
                    VariantKind::Tuple(fields) if fields.len() == 1 => {
                        body.push_str(&format!(
                            "\"{vname}\" => ::std::result::Result::Ok({name}::{vname}(::serde::Deserialize::from_value(__inner)?)),\n"
                        ));
                    }
                    VariantKind::Tuple(fields) => {
                        let n = fields.len();
                        let items: Vec<String> = (0..n)
                            .map(|i| format!("::serde::Deserialize::from_value(&__arr[{i}])?"))
                            .collect();
                        body.push_str(&format!(
                            "\"{vname}\" => {{\n\
                             let __arr = __inner.as_array().ok_or_else(|| ::serde::DeError::new(\"expected array for {name}::{vname}\"))?;\n\
                             if __arr.len() != {n} {{ return ::std::result::Result::Err(::serde::DeError::new(\"wrong arity for {name}::{vname}\")); }}\n\
                             ::std::result::Result::Ok({name}::{vname}({}))\n}},\n",
                            items.join(", ")
                        ));
                    }
                    VariantKind::Struct(fields) => {
                        let mut inits = String::new();
                        for f in fields {
                            inits.push_str(&named_field_init(&format!("{name}::{vname}"), f));
                        }
                        body.push_str(&format!(
                            "\"{vname}\" => {{\n\
                             let __obj = __inner.as_object().ok_or_else(|| ::serde::DeError::new(\"expected object for {name}::{vname}\"))?;\n\
                             ::std::result::Result::Ok({name}::{vname} {{\n{inits}}})\n}},\n"
                        ));
                    }
                }
            }
            body.push_str(&format!(
                "__other => ::std::result::Result::Err(::serde::DeError::new(format!(\"unknown variant `{{__other}}` for {name}\"))),\n}}\n}},\n"
            ));
            body.push_str(&format!(
                "_ => ::std::result::Result::Err(::serde::DeError::new(\"expected string or single-key object for {name}\")),\n}}"
            ));
        }
    }
    format!(
        "{IMPL_ATTRS}impl ::serde::Deserialize for {name} {{\n\
         fn from_value(__v: &::serde::Value) -> ::std::result::Result<Self, ::serde::DeError> {{\n{body}\n}}\n}}\n"
    )
}
