//! Offline stand-in for `criterion`.
//!
//! Provides the `Criterion` / `Bencher` API surface, the
//! `criterion_group!` / `criterion_main!` macros, and `black_box`.
//! Benchmarks run a warm-up, then time `sample_size` samples whose
//! per-iteration count targets roughly 100 ms of work each, and print
//! min / median / mean per-iteration times. No statistical comparison
//! against saved baselines — numbers are for recording by hand.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Benchmark driver; `sample_size` mirrors criterion's knob.
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 20,
            measurement_time: Duration::from_secs(2),
            warm_up_time: Duration::from_millis(300),
        }
    }
}

impl Criterion {
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n >= 2, "sample_size must be at least 2");
        self.sample_size = n;
        self
    }

    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up_time = d;
        self
    }

    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            iters: 1,
            elapsed: Duration::ZERO,
        };

        // Warm-up: also calibrates how many iterations fit one sample.
        let warm_start = Instant::now();
        let mut per_iter = Duration::ZERO;
        while warm_start.elapsed() < self.warm_up_time {
            b.iters = 1;
            f(&mut b);
            per_iter = b.elapsed.max(Duration::from_nanos(1));
        }
        let sample_budget = self.measurement_time / self.sample_size as u32;
        let iters_per_sample =
            (sample_budget.as_nanos() / per_iter.as_nanos().max(1)).clamp(1, 1 << 30) as u64;

        let mut samples: Vec<f64> = Vec::with_capacity(self.sample_size);
        for _ in 0..self.sample_size {
            b.iters = iters_per_sample;
            f(&mut b);
            samples.push(b.elapsed.as_secs_f64() / iters_per_sample as f64);
        }
        samples.sort_by(|a, b| a.total_cmp(b));
        let min = samples[0];
        let median = samples[samples.len() / 2];
        let mean = samples.iter().sum::<f64>() / samples.len() as f64;
        println!(
            "bench {id:<40} min {:>12}  median {:>12}  mean {:>12}  ({} samples x {} iters)",
            fmt_time(min),
            fmt_time(median),
            fmt_time(mean),
            self.sample_size,
            iters_per_sample,
        );
        self
    }
}

fn fmt_time(secs: f64) -> String {
    if secs < 1e-6 {
        format!("{:.2} ns", secs * 1e9)
    } else if secs < 1e-3 {
        format!("{:.2} us", secs * 1e6)
    } else if secs < 1.0 {
        format!("{:.2} ms", secs * 1e3)
    } else {
        format!("{secs:.3} s")
    }
}

/// Times the closure passed to [`Bencher::iter`] over `iters`
/// iterations.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(f());
        }
        self.elapsed = start.elapsed();
    }
}

#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        fn $name() {
            $(
                {
                    let mut c = $config;
                    $target(&mut c);
                }
            )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_and_reports() {
        let mut c = Criterion::default()
            .sample_size(2)
            .warm_up_time(Duration::from_millis(1))
            .measurement_time(Duration::from_millis(4));
        let mut calls = 0u64;
        c.bench_function("smoke", |b| b.iter(|| calls += 1));
        assert!(calls > 0);
    }
}
