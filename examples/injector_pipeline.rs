//! A transparent walk through the injector internals (paper §4),
//! showing the intermediate artifacts of every stage: per-source
//! inherent-noise statistics, the worst-case trace, the delta-subtracted
//! residual, both merge strategies, and the JSON configuration file
//! written to disk (paper Fig. 5).
//!
//! ```sh
//! cargo run --release --example injector_pipeline
//! ```

use noiselab::core::{run_baseline, run_injected, ExecConfig, Mitigation, Model, Platform};
use noiselab::injector::{
    build_config, source_statistics, subtract_average, GeneratorOptions, InjectionConfig,
    MergeStrategy,
};
use noiselab::workloads::MiniFE;

fn main() {
    let mut platform = Platform::intel();
    platform.noise.anomaly_prob = 0.25;
    let workload = MiniFE {
        nx: 48,
        cg_iterations: 100,
        ..Default::default()
    };
    let cfg = ExecConfig::new(Model::Omp, Mitigation::Rm);

    // ---- Stage 1: trace collection -------------------------------------
    println!("== stage 1: system trace collection ==");
    let traced = run_baseline(&platform, &workload, &cfg, 30, 7, true);
    let worst = traced.traces.worst().unwrap();
    println!(
        "{} runs traced; mean {:.3}s; worst run #{} at {:.3}s with {} events",
        traced.traces.runs.len(),
        traced.summary.mean,
        worst.run_index,
        worst.exec_time.as_secs_f64(),
        worst.events.len()
    );
    let [irq, softirq, thread] = worst.noise_by_class();
    println!(
        "worst-run noise by class: irq {:.2}ms, softirq {:.2}ms, thread {:.2}ms",
        irq.as_millis_f64(),
        softirq.as_millis_f64(),
        thread.as_millis_f64()
    );

    // ---- Stage 2: configuration generation ------------------------------
    println!("\n== stage 2: configuration generation ==");
    let stats = source_statistics(&traced.traces);
    println!("top recurring sources (avg occurrences/run, avg duration):");
    let mut by_count: Vec<_> = stats.iter().collect();
    by_count.sort_by(|a, b| b.1.avg_count.partial_cmp(&a.1.avg_count).unwrap());
    for (src, s) in by_count.iter().take(6) {
        println!(
            "  {:<22} {:>8.1}/run  {:>9.2}us",
            src,
            s.avg_count,
            s.avg_duration.as_micros_f64()
        );
    }

    let opts = GeneratorOptions::default();
    let residual = subtract_average(worst, &stats, opts.min_residual);
    let worst_total: u64 = worst.events.iter().map(|e| e.duration.nanos()).sum();
    let res_total: u64 = residual.iter().map(|e| e.duration.nanos()).sum();
    println!(
        "delta subtraction: {} events ({:.2}ms) -> {} residual events ({:.2}ms)",
        worst.events.len(),
        worst_total as f64 / 1e6,
        residual.len(),
        res_total as f64 / 1e6
    );

    let improved = build_config("pipeline", worst.exec_time, residual.clone(), &opts);
    let naive = build_config(
        "pipeline-naive",
        worst.exec_time,
        residual,
        &GeneratorOptions {
            merge: MergeStrategy::NaivePessimistic,
            ..opts
        },
    );
    println!(
        "improved merge: {} events, {:.0}% FIFO | naive merge: {} events, {:.0}% FIFO",
        improved.event_count(),
        improved.fifo_fraction() * 100.0,
        naive.event_count(),
        naive.fifo_fraction() * 100.0
    );

    // The configuration file of paper Fig. 5.
    let path = std::env::temp_dir().join("noiselab_injection_config.json");
    std::fs::write(&path, improved.to_json().expect("serialise config")).expect("write config");
    println!("configuration written to {}", path.display());
    let reloaded = InjectionConfig::from_json(&std::fs::read_to_string(&path).unwrap()).unwrap();
    assert_eq!(reloaded, improved);

    // ---- Stage 3: injection ---------------------------------------------
    println!("\n== stage 3: injection ==");
    let quiet = Platform::intel();
    let base = run_baseline(&quiet, &workload, &cfg, 10, 600, false);
    for (name, config) in [("improved", &reloaded), ("naive", &naive)] {
        let inj = run_injected(&quiet, &workload, &cfg, config, 10, 800);
        println!(
            "{name:<9} injected mean {:.3}s ({:+.1}% vs baseline, accuracy {:+.1}% vs anomaly)",
            inj.summary.mean,
            (inj.summary.mean / base.summary.mean - 1.0) * 100.0,
            (inj.summary.mean / config.anomaly_exec.as_secs_f64() - 1.0) * 100.0
        );
    }
}
