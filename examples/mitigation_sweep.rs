//! Sweep every mitigation strategy × programming model for one workload
//! under worst-case noise injection — the core decision the paper
//! supports: which configuration should you deploy when noise matters?
//!
//! ```sh
//! cargo run --release --example mitigation_sweep [nbody|babelstream|minife] [intel|amd]
//! ```

use noiselab::core::experiments::suite;
use noiselab::core::{run_baseline, run_injected, ExecConfig, Mitigation, Model, Platform};
use noiselab::injector::{generate, GeneratorOptions};
use noiselab::stats::{fmt_pct, fmt_secs, TextTable};
use noiselab::workloads::Workload;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let which = args.get(1).map(String::as_str).unwrap_or("nbody");
    let plat = args.get(2).map(String::as_str).unwrap_or("intel");

    let platform = match plat {
        "amd" => Platform::amd(),
        _ => Platform::intel(),
    };
    let workload: Box<dyn Workload + Sync> = match which {
        "babelstream" => Box::new(suite::babelstream_for(&platform)),
        "minife" => Box::new(suite::minife_for(&platform)),
        _ => Box::new(suite::nbody_for(&platform)),
    };
    println!("workload: {} on {}", workload.name(), platform.label());

    // Collect a worst-case trace from Rm-OMP (boosted anomaly rate for
    // demo brevity) and build the injection config.
    let mut collection = platform.clone();
    collection.noise.anomaly_prob = 0.2;
    let source = ExecConfig::new(Model::Omp, Mitigation::Rm);
    let traced = run_baseline(&collection, workload.as_ref(), &source, 30, 1, true);
    let config = generate("sweep", &traced.traces, &GeneratorOptions::default()).unwrap();
    println!(
        "worst-case trace: {:.3}s ({:+.1}% over mean); injecting {} events\n",
        config.anomaly_exec.as_secs_f64(),
        (config.anomaly_exec.as_secs_f64() / traced.summary.mean - 1.0) * 100.0,
        config.event_count()
    );

    let mut table = TextTable::new("mitigation sweep under worst-case injection").header(&[
        "config",
        "baseline",
        "injected",
        "degradation",
        "base sd(ms)",
    ]);
    for model in [Model::Omp, Model::Sycl] {
        for mit in Mitigation::ALL {
            let cfg = ExecConfig::new(model, mit);
            let base = run_baseline(&platform, workload.as_ref(), &cfg, 12, 500, false);
            let inj = run_injected(&platform, workload.as_ref(), &cfg, &config, 10, 900);
            table.row(&[
                cfg.label(),
                fmt_secs(base.summary.mean),
                fmt_secs(inj.summary.mean),
                fmt_pct(inj.summary.mean / base.summary.mean - 1.0),
                format!("{:.2}", base.summary.sd * 1e3),
            ]);
        }
    }
    println!("{}", table.render());
    println!("reading guide: housekeeping (HK/HK2) should show the smallest");
    println!("degradations; SYCL rows should degrade less than OMP rows but");
    println!("start from slower baselines (paper §5.2).");
}
