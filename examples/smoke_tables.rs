//! Fast end-to-end smoke of the experiment pipeline at reduced scale:
//! runs a reduced version of every table/figure and prints them.
//! Used during development; the full-scale versions live in
//! `crates/bench`.

use noiselab::core::experiments::{ablation, fig1, fig2, inject, table1, table6, table7, Scale};

fn main() {
    let scale = Scale::smoke();
    let t0 = std::time::Instant::now();

    let t1 = table1::run(scale);
    println!("{}\n[{:.1}s]", t1.render(), t0.elapsed().as_secs_f64());

    let t3 = inject::run_table(&inject::table3_spec(), scale, true);
    println!("{}\n[{:.1}s]", t3.render(), t0.elapsed().as_secs_f64());

    let t4 = inject::run_table(&inject::table4_spec(), scale, true);
    println!("{}\n[{:.1}s]", t4.render(), t0.elapsed().as_secs_f64());

    let t5 = inject::run_table(&inject::table5_spec(), scale, true);
    println!("{}\n[{:.1}s]", t5.render(), t0.elapsed().as_secs_f64());

    let tables = vec![t3, t4, t5];
    let t6 = table6::Table6::aggregate(&tables);
    println!("{}\n[{:.1}s]", t6.render(), t0.elapsed().as_secs_f64());

    let t7 = table7::Table7::from_tables(&tables);
    println!("{}\n[{:.1}s]", t7.render(), t0.elapsed().as_secs_f64());

    let f1 = fig1::run(scale, true);
    println!("{}\n[{:.1}s]", f1.render(), t0.elapsed().as_secs_f64());

    let f2 = fig2::run(scale, true);
    println!("{}\n[{:.1}s]", f2.render(), t0.elapsed().as_secs_f64());

    let a1 = ablation::merge_ablation(scale, true);
    println!("{}\n[{:.1}s]", a1.render(), t0.elapsed().as_secs_f64());

    let a2 = ablation::memory_noise_ablation(scale, true);
    println!("{}\n[{:.1}s]", a2.render(), t0.elapsed().as_secs_f64());

    println!("total wall: {:.1}s", t0.elapsed().as_secs_f64());
}
