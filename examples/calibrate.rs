//! Calibration probe: run each workload once per platform/model and
//! compare the virtual execution time against the paper's baselines.
//! Also reports host wall-clock per simulated run, which sizes the
//! bench scales.

use noiselab::core::{run_once, ExecConfig, Mitigation, Model, Platform};
use noiselab::workloads::{Babelstream, MiniFE, NBody, Workload};

fn probe(platform: &Platform, w: &dyn Workload, model: Model, paper: f64) {
    let cfg = ExecConfig::new(model, Mitigation::Rm);
    let t0 = std::time::Instant::now();
    let out = run_once(platform, w, &cfg, 1, false, None).expect("calibration run failed");
    let wall = t0.elapsed().as_secs_f64();
    println!(
        "{:<22} {:<11} {:>6} sim={:.3}s paper={:.3}s ratio={:.2} wall={:.2}s",
        platform.label(),
        w.name(),
        cfg.label(),
        out.exec.as_secs_f64(),
        paper,
        out.exec.as_secs_f64() / paper,
        wall
    );
}

fn main() {
    let intel = Platform::intel();
    let amd = Platform::amd();

    // Paper baselines (derived from Tables 1, 3-5: baseline = avg / (1 + pct)).
    probe(&intel, &NBody::default(), Model::Omp, 0.451);
    probe(&intel, &NBody::default(), Model::Sycl, 0.602);
    probe(&intel, &Babelstream::default(), Model::Omp, 1.902);
    probe(&intel, &Babelstream::default(), Model::Sycl, 2.141);
    probe(&intel, &MiniFE::default(), Model::Omp, 1.059);
    probe(&intel, &MiniFE::default(), Model::Sycl, 2.007);

    probe(&amd, &NBody::default(), Model::Omp, 0.674);
    probe(&amd, &NBody::default(), Model::Sycl, 0.777);
    probe(&amd, &Babelstream::default(), Model::Omp, 0.793);
    probe(&amd, &Babelstream::default(), Model::Sycl, 0.994);
    probe(&amd, &MiniFE::default(), Model::Omp, 0.723);
    probe(&amd, &MiniFE::default(), Model::Sycl, 1.350);
}
