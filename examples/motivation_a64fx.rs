//! The paper's motivation (§3, Figs. 1-2): two otherwise identical
//! A64FX systems — one with firmware-reserved OS cores (BSC), one
//! without (MACC) — show very different run-to-run variability.
//!
//! ```sh
//! cargo run --release --example motivation_a64fx
//! ```

use noiselab::core::experiments::{fig1, fig2, Scale};

fn main() {
    // Reduced scale so the demo finishes in ~a minute; the bench
    // targets run the full version.
    let scale = Scale {
        baseline_runs: 12,
        ..Scale::bench()
    };

    println!("Figure 1: schedbench across schedules and chunk sizes\n");
    let f1 = fig1::run(scale, true);
    print!("{}", f1.render());

    println!("\nFigure 2: Babelstream dot kernel vs thread count\n");
    let f2 = fig2::run(scale, true);
    print!("{}", f2.render());

    println!("\nreading guide: the unreserved system (A64FX:w/o) should show");
    println!("larger s.d. and fatter p90 tails, worst at full occupancy —");
    println!("with no spare core, OS interference lands on workload cores.");
}
