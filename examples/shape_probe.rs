//! Bench-scale probe of the load-bearing shapes: Table 3 (N-body
//! injection), Table 2 subset (baseline s.d.), Figure 1 and the merge
//! ablation, with full-size workloads. Development tool.

use noiselab::core::experiments::{ablation, fig1, inject, Scale};

fn main() {
    let scale = Scale::bench();
    let t0 = std::time::Instant::now();
    let which = std::env::args().nth(1).unwrap_or_else(|| "all".into());

    if which == "t3" || which == "all" {
        let t3 = inject::run_table(&inject::table3_spec(), scale, false);
        println!("{}\n[{:.1}s]", t3.render(), t0.elapsed().as_secs_f64());
        for a in &t3.accuracy {
            println!(
                "accuracy {} {}: {:+.2}%",
                a.workload,
                a.config_label,
                a.error * 100.0
            );
        }
    }
    if which == "fig1" || which == "all" {
        let f1 = fig1::run(scale, false);
        println!("{}\n[{:.1}s]", f1.render(), t0.elapsed().as_secs_f64());
    }
    if which == "merge" || which == "all" {
        let a1 = ablation::merge_ablation(scale, false);
        println!("{}\n[{:.1}s]", a1.render(), t0.elapsed().as_secs_f64());
    }
    println!("total {:.1}s", t0.elapsed().as_secs_f64());
}
