//! Quickstart: the paper's three-stage pipeline on one workload.
//!
//! 1. run the workload repeatedly with the osnoise-style tracer on;
//! 2. generate a noise-injection configuration from the worst run;
//! 3. re-run the workload while the injector replays that noise.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use noiselab::core::{run_baseline, run_injected, ExecConfig, Mitigation, Model, Platform};
use noiselab::injector::{generate, GeneratorOptions};
use noiselab::workloads::NBody;

fn main() {
    // The Intel desktop platform from the paper, with its background
    // noise (kworkers, daemons, GUI, rare anomalies). Boost the anomaly
    // probability so this small demo reliably catches a worst case.
    let mut platform = Platform::intel();
    platform.noise.anomaly_prob = 0.2;

    let workload = NBody::default();
    let cfg = ExecConfig::new(Model::Omp, Mitigation::Rm);

    // Stage 1: system trace collection (paper §4.1). The paper uses
    // 1000 runs; 40 keeps the demo quick.
    println!("collecting traces (40 runs)...");
    let traced = run_baseline(&platform, &workload, &cfg, 40, 1, true);
    println!(
        "baseline: mean {:.3}s, sd {:.1}ms, worst {:.3}s",
        traced.summary.mean,
        traced.summary.sd * 1e3,
        traced.summary.max
    );

    // Stage 2: noise configuration generation (paper §4.2) — average
    // inherent noise subtracted from the worst-case trace, policies
    // assigned, per-CPU overlaps merged.
    let config = generate("quickstart", &traced.traces, &GeneratorOptions::default())
        .expect("traces collected");
    println!(
        "config: {} events on {} cpus, {:.1}ms total noise, {:.0}% under SCHED_FIFO",
        config.event_count(),
        config.lists.len(),
        config.total_noise().as_millis_f64(),
        config.fifo_fraction() * 100.0
    );

    // Stage 3: noise injection during workload execution (paper §4.3).
    let quiet = Platform::intel();
    let base = run_baseline(&quiet, &workload, &cfg, 20, 1_000, false);
    let injected = run_injected(&quiet, &workload, &cfg, &config, 20, 2_000);
    println!(
        "un-injected mean {:.3}s -> injected mean {:.3}s ({:+.1}%)",
        base.summary.mean,
        injected.summary.mean,
        (injected.summary.mean / base.summary.mean - 1.0) * 100.0
    );
    println!(
        "replication accuracy vs recorded anomaly ({:.3}s): {:+.1}%",
        config.anomaly_exec.as_secs_f64(),
        (injected.summary.mean / config.anomaly_exec.as_secs_f64() - 1.0) * 100.0
    );
}
