//! Owned scheduling records, the recording observer, and the
//! mutation-test stream transforms.
//!
//! The kernel's [`SchedRecord`] borrows string fields to stay
//! allocation-free on the hot path; the conformance suite needs an
//! owned, indexable copy of the whole stream to replay it through the
//! oracle and invariants (with lookahead). [`Rec`] is that copy, with
//! the only string field (`source`) collapsed to the one bit the
//! checkers need: whether the span was the local timer interrupt.
//!
//! [`Mutation`] simulates an intentionally buggy scheduler by
//! perturbing a recorded stream before it reaches the checkers — the
//! suite's mutation tests prove each seeded bug is caught by at least
//! one oracle or invariant check.

use noiselab_kernel::{DecisionPoint, KernelObserver, SchedRecord, ThreadKind, ThreadState};
use std::cell::RefCell;
use std::rc::Rc;

/// Source label of the periodic timer interrupt in kernel IRQ spans.
pub const TIMER_SOURCE: &str = "local_timer:236";

/// An owned mirror of [`SchedRecord`].
#[derive(Debug, Clone, PartialEq)]
pub enum Rec {
    SwitchIn {
        cpu: u32,
        thread: u32,
        kind: ThreadKind,
        time: u64,
        runq_depth: u32,
    },
    SwitchOut {
        cpu: u32,
        thread: u32,
        time: u64,
        state: ThreadState,
    },
    Preempt {
        cpu: u32,
        thread: u32,
        time: u64,
    },
    Enqueue {
        cpu: u32,
        thread: u32,
        time: u64,
        depth: u32,
    },
    Dequeue {
        cpu: u32,
        thread: u32,
        time: u64,
    },
    Migrate {
        thread: u32,
        to_cpu: u32,
        time: u64,
        cross_numa: bool,
    },
    IrqSpan {
        cpu: u32,
        time: u64,
        duration_ns: u64,
        timer: bool,
        softirq: bool,
    },
    PolicySwitch {
        thread: u32,
        time: u64,
        rt: bool,
    },
    Decision {
        cpu: u32,
        time: u64,
        point: DecisionPoint,
    },
    FreqTransition {
        cpu: u32,
        time: u64,
        from_khz: u32,
        to_khz: u32,
    },
    Throttle {
        cpu: u32,
        time: u64,
        heat_milli: u64,
        entered: bool,
    },
}

impl Rec {
    pub fn time(&self) -> u64 {
        match *self {
            Rec::SwitchIn { time, .. }
            | Rec::SwitchOut { time, .. }
            | Rec::Preempt { time, .. }
            | Rec::Enqueue { time, .. }
            | Rec::Dequeue { time, .. }
            | Rec::Migrate { time, .. }
            | Rec::IrqSpan { time, .. }
            | Rec::PolicySwitch { time, .. }
            | Rec::Decision { time, .. }
            | Rec::FreqTransition { time, .. }
            | Rec::Throttle { time, .. } => time,
        }
    }

    fn from_sched(rec: &SchedRecord<'_>) -> Rec {
        match *rec {
            SchedRecord::SwitchIn {
                cpu,
                thread,
                kind,
                time,
                runq_depth,
                ..
            } => Rec::SwitchIn {
                cpu,
                thread,
                kind,
                time: time.0,
                runq_depth,
            },
            SchedRecord::SwitchOut {
                cpu,
                thread,
                time,
                state,
            } => Rec::SwitchOut {
                cpu,
                thread,
                time: time.0,
                state,
            },
            SchedRecord::Preempt { cpu, thread, time } => Rec::Preempt {
                cpu,
                thread,
                time: time.0,
            },
            SchedRecord::Enqueue {
                cpu,
                thread,
                time,
                depth,
            } => Rec::Enqueue {
                cpu,
                thread,
                time: time.0,
                depth,
            },
            SchedRecord::Dequeue { cpu, thread, time } => Rec::Dequeue {
                cpu,
                thread,
                time: time.0,
            },
            SchedRecord::Migrate {
                thread,
                to_cpu,
                time,
                cross_numa,
            } => Rec::Migrate {
                thread,
                to_cpu,
                time: time.0,
                cross_numa,
            },
            SchedRecord::IrqSpan {
                cpu,
                time,
                duration_ns,
                source,
                softirq,
            } => Rec::IrqSpan {
                cpu,
                time: time.0,
                duration_ns,
                timer: source == TIMER_SOURCE,
                softirq,
            },
            SchedRecord::PolicySwitch { thread, time, rt } => Rec::PolicySwitch {
                thread,
                time: time.0,
                rt,
            },
            SchedRecord::Decision { cpu, time, point } => Rec::Decision {
                cpu,
                time: time.0,
                point,
            },
            SchedRecord::FreqTransition {
                cpu,
                time,
                from_khz,
                to_khz,
            } => Rec::FreqTransition {
                cpu,
                time: time.0,
                from_khz,
                to_khz,
            },
            SchedRecord::Throttle {
                cpu,
                time,
                heat_milli,
                entered,
            } => Rec::Throttle {
                cpu,
                time: time.0,
                heat_milli,
                entered,
            },
        }
    }
}

/// A [`KernelObserver`] that copies every scheduling record into a
/// shared vector.
pub struct Recording {
    out: Rc<RefCell<Vec<Rec>>>,
}

impl Recording {
    /// A fresh recorder plus the store it writes into.
    pub fn new() -> (Recording, Rc<RefCell<Vec<Rec>>>) {
        let store = Rc::new(RefCell::new(Vec::new()));
        (Recording { out: store.clone() }, store)
    }
}

impl KernelObserver for Recording {
    fn sched(&mut self, rec: &SchedRecord<'_>) {
        self.out.borrow_mut().push(Rec::from_sched(rec));
    }
}

/// An intentionally seeded scheduler bug, expressed as a perturbation
/// of the recorded stream (as if a buggy scheduler had produced it).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mutation {
    /// Swap the threads of the first two fair picks on one CPU: the
    /// scheduler "picked the wrong task". Caught by the oracle's
    /// argmin-vruntime pick check.
    SwapPick,
    /// Drop one timer IRQ span: interrupt time goes unaccounted.
    /// Caught by the osnoise conservation invariant (record sum vs
    /// kernel `irq_ns`).
    DropIrqSpan,
    /// Re-route the first pinned thread's first enqueue to a CPU
    /// outside its affinity mask. Caught by the affinity invariant.
    AffinityBreak,
    /// Duplicate a switch-in without an intervening switch-out: two
    /// threads "running" on one CPU. Caught by the stint-overlap check
    /// of the conservation invariant.
    GhostRun,
    /// Drop the first transition that leaves the turbo frequency: the
    /// governor "forgot" to release the boost (a budget leak on
    /// downclock). Caught by the frequency-chain invariant when the
    /// same CPU later transitions again, and by cycle conservation.
    TurboLeak,
    /// Zero the recorded heat on the first throttle-enter: the thermal
    /// model "tripped" below the configured threshold. Caught by the
    /// hysteresis invariant (enter heat must be at least
    /// `throttle_at`).
    ThrottleEarly,
    /// Duplicate the first boost-to-turbo transition one nanosecond
    /// later: a CPU claims turbo entry from a frequency it no longer
    /// holds. Caught by the frequency-chain invariant.
    GhostTurbo,
    /// Drop the first throttle-exit record: the CPU raises its
    /// frequency while the stream still shows it throttled. Caught by
    /// the no-raise-while-throttled check and throttle alternation.
    ThrottleStuck,
}

impl Mutation {
    pub const ALL: [Mutation; 8] = [
        Mutation::SwapPick,
        Mutation::DropIrqSpan,
        Mutation::AffinityBreak,
        Mutation::GhostRun,
        Mutation::TurboLeak,
        Mutation::ThrottleEarly,
        Mutation::GhostTurbo,
        Mutation::ThrottleStuck,
    ];

    pub fn name(self) -> &'static str {
        match self {
            Mutation::SwapPick => "swap-pick",
            Mutation::DropIrqSpan => "drop-irq-span",
            Mutation::AffinityBreak => "affinity-break",
            Mutation::GhostRun => "ghost-run",
            Mutation::TurboLeak => "turbo-leak",
            Mutation::ThrottleEarly => "throttle-early",
            Mutation::GhostTurbo => "ghost-turbo",
            Mutation::ThrottleStuck => "throttle-stuck",
        }
    }

    pub fn from_name(name: &str) -> Option<Mutation> {
        Mutation::ALL.iter().copied().find(|m| m.name() == name)
    }

    /// Apply the perturbation. `affinity` holds one mask per thread and
    /// `n_cpus` bounds the re-route targets. Returns `true` if the
    /// stream offered an application site (a stream without one yields
    /// no mutant and the caller should try another scenario).
    pub fn apply(self, recs: &mut Vec<Rec>, affinity: &[u64], n_cpus: u32) -> bool {
        match self {
            Mutation::SwapPick => {
                // Two switch-ins of different threads on the same CPU.
                let mut first: Option<(usize, u32, u32)> = None;
                for (i, r) in recs.iter().enumerate() {
                    if let Rec::SwitchIn { cpu, thread, .. } = *r {
                        match first {
                            None => first = Some((i, cpu, thread)),
                            Some((j, c0, t0)) if c0 == cpu && t0 != thread => {
                                let (a, b) = (j, i);
                                let (ta, tb) = (t0, thread);
                                set_switch_in_thread(&mut recs[a], tb);
                                set_switch_in_thread(&mut recs[b], ta);
                                return true;
                            }
                            Some(_) => {}
                        }
                    }
                }
                false
            }
            Mutation::DropIrqSpan => {
                let pos = recs
                    .iter()
                    .position(|r| matches!(r, Rec::IrqSpan { timer: true, .. }));
                match pos {
                    Some(i) => {
                        recs.remove(i);
                        true
                    }
                    None => false,
                }
            }
            Mutation::AffinityBreak => {
                for r in recs.iter_mut() {
                    if let Rec::Enqueue { cpu, thread, .. } = r {
                        let mask = affinity.get(*thread as usize).copied().unwrap_or(u64::MAX);
                        if let Some(bad) = (0..n_cpus).find(|c| mask & (1 << c) == 0) {
                            *cpu = bad;
                            return true;
                        }
                    }
                }
                false
            }
            Mutation::GhostRun => {
                let pos = recs.iter().position(|r| matches!(r, Rec::SwitchIn { .. }));
                match pos {
                    Some(i) => {
                        let mut ghost = recs[i].clone();
                        if let Rec::SwitchIn { time, .. } = &mut ghost {
                            *time += 1;
                        }
                        recs.insert(i + 1, ghost);
                        true
                    }
                    None => false,
                }
            }
            Mutation::TurboLeak => {
                let top = max_khz(recs);
                // A transition leaving turbo, with a later transition on
                // the same CPU so the break in the chain is observable.
                for i in 0..recs.len() {
                    if let Rec::FreqTransition { cpu, from_khz, .. } = recs[i] {
                        if from_khz == top
                            && recs[i + 1..].iter().any(
                                |r| matches!(r, Rec::FreqTransition { cpu: c, .. } if *c == cpu),
                            )
                        {
                            recs.remove(i);
                            return true;
                        }
                    }
                }
                false
            }
            Mutation::ThrottleEarly => {
                for r in recs.iter_mut() {
                    if let Rec::Throttle {
                        heat_milli,
                        entered: true,
                        ..
                    } = r
                    {
                        *heat_milli = 0;
                        return true;
                    }
                }
                false
            }
            Mutation::GhostTurbo => {
                let top = max_khz(recs);
                let pos = recs.iter().position(|r| {
                    matches!(
                        r,
                        Rec::FreqTransition { from_khz, to_khz, .. }
                            if *to_khz == top && *from_khz != *to_khz
                    )
                });
                match pos {
                    Some(i) => {
                        let mut ghost = recs[i].clone();
                        if let Rec::FreqTransition { time, .. } = &mut ghost {
                            *time += 1;
                        }
                        recs.insert(i + 1, ghost);
                        true
                    }
                    None => false,
                }
            }
            Mutation::ThrottleStuck => {
                let pos = recs
                    .iter()
                    .position(|r| matches!(r, Rec::Throttle { entered: false, .. }));
                match pos {
                    Some(i) => {
                        recs.remove(i);
                        true
                    }
                    None => false,
                }
            }
        }
    }
}

/// The highest frequency appearing in any transition record — the
/// stream's own notion of "turbo" (mutations cannot see the config).
fn max_khz(recs: &[Rec]) -> u32 {
    recs.iter()
        .filter_map(|r| match *r {
            Rec::FreqTransition {
                from_khz, to_khz, ..
            } => Some(from_khz.max(to_khz)),
            _ => None,
        })
        .max()
        .unwrap_or(0)
}

fn set_switch_in_thread(rec: &mut Rec, tid: u32) {
    if let Rec::SwitchIn { thread, .. } = rec {
        *thread = tid;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Vec<Rec> {
        vec![
            Rec::Enqueue {
                cpu: 0,
                thread: 0,
                time: 0,
                depth: 1,
            },
            Rec::SwitchIn {
                cpu: 0,
                thread: 0,
                kind: ThreadKind::Workload,
                time: 0,
                runq_depth: 0,
            },
            Rec::IrqSpan {
                cpu: 0,
                time: 50,
                duration_ns: 10,
                timer: true,
                softirq: false,
            },
            Rec::SwitchOut {
                cpu: 0,
                thread: 0,
                time: 100,
                state: ThreadState::Exited,
            },
            Rec::SwitchIn {
                cpu: 0,
                thread: 1,
                kind: ThreadKind::Workload,
                time: 100,
                runq_depth: 0,
            },
        ]
    }

    #[test]
    fn swap_pick_swaps_two_switch_ins() {
        let mut recs = sample();
        assert!(Mutation::SwapPick.apply(&mut recs, &[3, 3], 2));
        assert!(matches!(recs[1], Rec::SwitchIn { thread: 1, .. }));
        assert!(matches!(recs[4], Rec::SwitchIn { thread: 0, .. }));
    }

    #[test]
    fn drop_irq_span_removes_exactly_one_timer_span() {
        let mut recs = sample();
        assert!(Mutation::DropIrqSpan.apply(&mut recs, &[3, 3], 2));
        assert!(recs.iter().all(|r| !matches!(r, Rec::IrqSpan { .. })));
    }

    #[test]
    fn affinity_break_needs_a_pinned_thread() {
        let mut recs = sample();
        // Fully permissive masks: no site to break.
        assert!(!Mutation::AffinityBreak.apply(&mut recs.clone(), &[3, 3], 2));
        // Thread 0 pinned to cpu 1 (mask 0b10): enqueue re-routed to 0.
        assert!(Mutation::AffinityBreak.apply(&mut recs, &[2, 3], 2));
        assert!(matches!(recs[0], Rec::Enqueue { cpu: 0, .. }));
    }

    #[test]
    fn ghost_run_duplicates_a_switch_in() {
        let mut recs = sample();
        assert!(Mutation::GhostRun.apply(&mut recs, &[3, 3], 2));
        let ins = recs
            .iter()
            .filter(|r| matches!(r, Rec::SwitchIn { .. }))
            .count();
        assert_eq!(ins, 3);
    }

    /// A stream with a boost, a throttle episode, and a re-boost.
    fn dvfs_sample() -> Vec<Rec> {
        vec![
            Rec::FreqTransition {
                cpu: 0,
                time: 10,
                from_khz: 800_000,
                to_khz: 5_200_000,
            },
            Rec::Throttle {
                cpu: 0,
                time: 200,
                heat_milli: 2_600_000,
                entered: true,
            },
            Rec::FreqTransition {
                cpu: 0,
                time: 200,
                from_khz: 5_200_000,
                to_khz: 800_000,
            },
            Rec::Throttle {
                cpu: 0,
                time: 400,
                heat_milli: 1_900_000,
                entered: false,
            },
            Rec::FreqTransition {
                cpu: 0,
                time: 400,
                from_khz: 800_000,
                to_khz: 5_200_000,
            },
        ]
    }

    #[test]
    fn dvfs_mutations_need_a_dvfs_stream() {
        // A stream without frequency records offers no site for any of
        // the DVFS mutations.
        for m in [
            Mutation::TurboLeak,
            Mutation::ThrottleEarly,
            Mutation::GhostTurbo,
            Mutation::ThrottleStuck,
        ] {
            let mut recs = sample();
            assert!(!m.apply(&mut recs, &[3, 3], 2), "{}", m.name());
        }
    }

    #[test]
    fn turbo_leak_drops_a_transition_leaving_turbo() {
        let mut recs = dvfs_sample();
        assert!(Mutation::TurboLeak.apply(&mut recs, &[3, 3], 2));
        let freq = recs
            .iter()
            .filter(|r| matches!(r, Rec::FreqTransition { .. }))
            .count();
        assert_eq!(freq, 2);
        assert!(!recs.iter().any(|r| matches!(
            r,
            Rec::FreqTransition {
                from_khz: 5_200_000,
                ..
            }
        )));
    }

    #[test]
    fn throttle_early_zeroes_the_enter_heat() {
        let mut recs = dvfs_sample();
        assert!(Mutation::ThrottleEarly.apply(&mut recs, &[3, 3], 2));
        assert!(matches!(
            recs[1],
            Rec::Throttle {
                heat_milli: 0,
                entered: true,
                ..
            }
        ));
    }

    #[test]
    fn ghost_turbo_duplicates_the_boost() {
        let mut recs = dvfs_sample();
        assert!(Mutation::GhostTurbo.apply(&mut recs, &[3, 3], 2));
        let boosts = recs
            .iter()
            .filter(|r| {
                matches!(
                    r,
                    Rec::FreqTransition {
                        to_khz: 5_200_000,
                        ..
                    }
                )
            })
            .count();
        assert_eq!(boosts, 3);
    }

    #[test]
    fn throttle_stuck_swallows_the_exit() {
        let mut recs = dvfs_sample();
        assert!(Mutation::ThrottleStuck.apply(&mut recs, &[3, 3], 2));
        assert!(!recs
            .iter()
            .any(|r| matches!(r, Rec::Throttle { entered: false, .. })));
    }

    #[test]
    fn every_mutation_round_trips_its_name() {
        for m in Mutation::ALL {
            assert_eq!(Mutation::from_name(m.name()), Some(m));
        }
    }
}
