//! Owned scheduling records, the recording observer, and the
//! mutation-test stream transforms.
//!
//! The kernel's [`SchedRecord`] borrows string fields to stay
//! allocation-free on the hot path; the conformance suite needs an
//! owned, indexable copy of the whole stream to replay it through the
//! oracle and invariants (with lookahead). [`Rec`] is that copy, with
//! the only string field (`source`) collapsed to the one bit the
//! checkers need: whether the span was the local timer interrupt.
//!
//! [`Mutation`] simulates an intentionally buggy scheduler by
//! perturbing a recorded stream before it reaches the checkers — the
//! suite's mutation tests prove each seeded bug is caught by at least
//! one oracle or invariant check.

use noiselab_kernel::{DecisionPoint, KernelObserver, SchedRecord, ThreadKind, ThreadState};
use std::cell::RefCell;
use std::rc::Rc;

/// Source label of the periodic timer interrupt in kernel IRQ spans.
pub const TIMER_SOURCE: &str = "local_timer:236";

/// An owned mirror of [`SchedRecord`].
#[derive(Debug, Clone, PartialEq)]
pub enum Rec {
    SwitchIn {
        cpu: u32,
        thread: u32,
        kind: ThreadKind,
        time: u64,
        runq_depth: u32,
    },
    SwitchOut {
        cpu: u32,
        thread: u32,
        time: u64,
        state: ThreadState,
    },
    Preempt {
        cpu: u32,
        thread: u32,
        time: u64,
    },
    Enqueue {
        cpu: u32,
        thread: u32,
        time: u64,
        depth: u32,
    },
    Dequeue {
        cpu: u32,
        thread: u32,
        time: u64,
    },
    Migrate {
        thread: u32,
        to_cpu: u32,
        time: u64,
        cross_numa: bool,
    },
    IrqSpan {
        cpu: u32,
        time: u64,
        duration_ns: u64,
        timer: bool,
        softirq: bool,
    },
    PolicySwitch {
        thread: u32,
        time: u64,
        rt: bool,
    },
    Decision {
        cpu: u32,
        time: u64,
        point: DecisionPoint,
    },
}

impl Rec {
    pub fn time(&self) -> u64 {
        match *self {
            Rec::SwitchIn { time, .. }
            | Rec::SwitchOut { time, .. }
            | Rec::Preempt { time, .. }
            | Rec::Enqueue { time, .. }
            | Rec::Dequeue { time, .. }
            | Rec::Migrate { time, .. }
            | Rec::IrqSpan { time, .. }
            | Rec::PolicySwitch { time, .. }
            | Rec::Decision { time, .. } => time,
        }
    }

    fn from_sched(rec: &SchedRecord<'_>) -> Rec {
        match *rec {
            SchedRecord::SwitchIn {
                cpu,
                thread,
                kind,
                time,
                runq_depth,
                ..
            } => Rec::SwitchIn {
                cpu,
                thread,
                kind,
                time: time.0,
                runq_depth,
            },
            SchedRecord::SwitchOut {
                cpu,
                thread,
                time,
                state,
            } => Rec::SwitchOut {
                cpu,
                thread,
                time: time.0,
                state,
            },
            SchedRecord::Preempt { cpu, thread, time } => Rec::Preempt {
                cpu,
                thread,
                time: time.0,
            },
            SchedRecord::Enqueue {
                cpu,
                thread,
                time,
                depth,
            } => Rec::Enqueue {
                cpu,
                thread,
                time: time.0,
                depth,
            },
            SchedRecord::Dequeue { cpu, thread, time } => Rec::Dequeue {
                cpu,
                thread,
                time: time.0,
            },
            SchedRecord::Migrate {
                thread,
                to_cpu,
                time,
                cross_numa,
            } => Rec::Migrate {
                thread,
                to_cpu,
                time: time.0,
                cross_numa,
            },
            SchedRecord::IrqSpan {
                cpu,
                time,
                duration_ns,
                source,
                softirq,
            } => Rec::IrqSpan {
                cpu,
                time: time.0,
                duration_ns,
                timer: source == TIMER_SOURCE,
                softirq,
            },
            SchedRecord::PolicySwitch { thread, time, rt } => Rec::PolicySwitch {
                thread,
                time: time.0,
                rt,
            },
            SchedRecord::Decision { cpu, time, point } => Rec::Decision {
                cpu,
                time: time.0,
                point,
            },
        }
    }
}

/// A [`KernelObserver`] that copies every scheduling record into a
/// shared vector.
pub struct Recording {
    out: Rc<RefCell<Vec<Rec>>>,
}

impl Recording {
    /// A fresh recorder plus the store it writes into.
    pub fn new() -> (Recording, Rc<RefCell<Vec<Rec>>>) {
        let store = Rc::new(RefCell::new(Vec::new()));
        (Recording { out: store.clone() }, store)
    }
}

impl KernelObserver for Recording {
    fn sched(&mut self, rec: &SchedRecord<'_>) {
        self.out.borrow_mut().push(Rec::from_sched(rec));
    }
}

/// An intentionally seeded scheduler bug, expressed as a perturbation
/// of the recorded stream (as if a buggy scheduler had produced it).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mutation {
    /// Swap the threads of the first two fair picks on one CPU: the
    /// scheduler "picked the wrong task". Caught by the oracle's
    /// argmin-vruntime pick check.
    SwapPick,
    /// Drop one timer IRQ span: interrupt time goes unaccounted.
    /// Caught by the osnoise conservation invariant (record sum vs
    /// kernel `irq_ns`).
    DropIrqSpan,
    /// Re-route the first pinned thread's first enqueue to a CPU
    /// outside its affinity mask. Caught by the affinity invariant.
    AffinityBreak,
    /// Duplicate a switch-in without an intervening switch-out: two
    /// threads "running" on one CPU. Caught by the stint-overlap check
    /// of the conservation invariant.
    GhostRun,
}

impl Mutation {
    pub const ALL: [Mutation; 4] = [
        Mutation::SwapPick,
        Mutation::DropIrqSpan,
        Mutation::AffinityBreak,
        Mutation::GhostRun,
    ];

    pub fn name(self) -> &'static str {
        match self {
            Mutation::SwapPick => "swap-pick",
            Mutation::DropIrqSpan => "drop-irq-span",
            Mutation::AffinityBreak => "affinity-break",
            Mutation::GhostRun => "ghost-run",
        }
    }

    pub fn from_name(name: &str) -> Option<Mutation> {
        Mutation::ALL.iter().copied().find(|m| m.name() == name)
    }

    /// Apply the perturbation. `affinity` holds one mask per thread and
    /// `n_cpus` bounds the re-route targets. Returns `true` if the
    /// stream offered an application site (a stream without one yields
    /// no mutant and the caller should try another scenario).
    pub fn apply(self, recs: &mut Vec<Rec>, affinity: &[u64], n_cpus: u32) -> bool {
        match self {
            Mutation::SwapPick => {
                // Two switch-ins of different threads on the same CPU.
                let mut first: Option<(usize, u32, u32)> = None;
                for (i, r) in recs.iter().enumerate() {
                    if let Rec::SwitchIn { cpu, thread, .. } = *r {
                        match first {
                            None => first = Some((i, cpu, thread)),
                            Some((j, c0, t0)) if c0 == cpu && t0 != thread => {
                                let (a, b) = (j, i);
                                let (ta, tb) = (t0, thread);
                                set_switch_in_thread(&mut recs[a], tb);
                                set_switch_in_thread(&mut recs[b], ta);
                                return true;
                            }
                            Some(_) => {}
                        }
                    }
                }
                false
            }
            Mutation::DropIrqSpan => {
                let pos = recs
                    .iter()
                    .position(|r| matches!(r, Rec::IrqSpan { timer: true, .. }));
                match pos {
                    Some(i) => {
                        recs.remove(i);
                        true
                    }
                    None => false,
                }
            }
            Mutation::AffinityBreak => {
                for r in recs.iter_mut() {
                    if let Rec::Enqueue { cpu, thread, .. } = r {
                        let mask = affinity.get(*thread as usize).copied().unwrap_or(u64::MAX);
                        if let Some(bad) = (0..n_cpus).find(|c| mask & (1 << c) == 0) {
                            *cpu = bad;
                            return true;
                        }
                    }
                }
                false
            }
            Mutation::GhostRun => {
                let pos = recs.iter().position(|r| matches!(r, Rec::SwitchIn { .. }));
                match pos {
                    Some(i) => {
                        let mut ghost = recs[i].clone();
                        if let Rec::SwitchIn { time, .. } = &mut ghost {
                            *time += 1;
                        }
                        recs.insert(i + 1, ghost);
                        true
                    }
                    None => false,
                }
            }
        }
    }
}

fn set_switch_in_thread(rec: &mut Rec, tid: u32) {
    if let Rec::SwitchIn { thread, .. } = rec {
        *thread = tid;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Vec<Rec> {
        vec![
            Rec::Enqueue {
                cpu: 0,
                thread: 0,
                time: 0,
                depth: 1,
            },
            Rec::SwitchIn {
                cpu: 0,
                thread: 0,
                kind: ThreadKind::Workload,
                time: 0,
                runq_depth: 0,
            },
            Rec::IrqSpan {
                cpu: 0,
                time: 50,
                duration_ns: 10,
                timer: true,
                softirq: false,
            },
            Rec::SwitchOut {
                cpu: 0,
                thread: 0,
                time: 100,
                state: ThreadState::Exited,
            },
            Rec::SwitchIn {
                cpu: 0,
                thread: 1,
                kind: ThreadKind::Workload,
                time: 100,
                runq_depth: 0,
            },
        ]
    }

    #[test]
    fn swap_pick_swaps_two_switch_ins() {
        let mut recs = sample();
        assert!(Mutation::SwapPick.apply(&mut recs, &[3, 3], 2));
        assert!(matches!(recs[1], Rec::SwitchIn { thread: 1, .. }));
        assert!(matches!(recs[4], Rec::SwitchIn { thread: 0, .. }));
    }

    #[test]
    fn drop_irq_span_removes_exactly_one_timer_span() {
        let mut recs = sample();
        assert!(Mutation::DropIrqSpan.apply(&mut recs, &[3, 3], 2));
        assert!(recs.iter().all(|r| !matches!(r, Rec::IrqSpan { .. })));
    }

    #[test]
    fn affinity_break_needs_a_pinned_thread() {
        let mut recs = sample();
        // Fully permissive masks: no site to break.
        assert!(!Mutation::AffinityBreak.apply(&mut recs.clone(), &[3, 3], 2));
        // Thread 0 pinned to cpu 1 (mask 0b10): enqueue re-routed to 0.
        assert!(Mutation::AffinityBreak.apply(&mut recs, &[2, 3], 2));
        assert!(matches!(recs[0], Rec::Enqueue { cpu: 0, .. }));
    }

    #[test]
    fn ghost_run_duplicates_a_switch_in() {
        let mut recs = sample();
        assert!(Mutation::GhostRun.apply(&mut recs, &[3, 3], 2));
        let ins = recs
            .iter()
            .filter(|r| matches!(r, Rec::SwitchIn { .. }))
            .count();
        assert_eq!(ins, 3);
    }
}
