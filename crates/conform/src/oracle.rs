//! The differential scheduling oracle.
//!
//! A deliberately naive, obviously-correct re-implementation of the
//! production scheduler's decision rules, run over the recorded
//! scheduling stream of an oracle-eligible scenario (see
//! [`crate::scenario::Scenario::is_oracle_eligible`]). The oracle keeps
//! its own copy of every runqueue, vruntime and CFS floor, derived
//! *only* from the record stream and first principles:
//!
//! * a weight-1024 thread's vruntime advances exactly one nanosecond
//!   per on-CPU wall nanosecond, so `v(t) = v_in + (t - t_in)` between
//!   the visible charge instants (switch-out, IRQ service, and the
//!   wake-path preemption check — all of which emit records);
//! * every `SwitchIn` must name the thread an exhaustive argmin scan
//!   of the oracle's queue picks (highest-priority earliest-arrival
//!   FIFO task, else smallest `(vruntime, tid)` fair task, else the
//!   brute-force steal choice);
//! * every wake placement must equal a from-scratch replay of the
//!   `select_idle_sibling`-style placement walk;
//! * every preemption decision (wake and tick) must match the naive
//!   predicate evaluated on oracle state.
//!
//! Because each decision is re-derived exhaustively (O(n²) scans, no
//! incremental state), agreement on every record proves the production
//! scheduler's per-CPU execution traces are identical to the reference
//! scheduler's, by induction over the stream.

use crate::record::Rec;
use crate::runner::{RunOutcome, SchedParams, Topo};
use noiselab_kernel::{DecisionPoint, Policy, ThreadState};
use std::collections::BTreeSet;
use std::fmt;

/// A conformance failure: the production stream disagreed with the
/// oracle (or an invariant) at one record.
#[derive(Debug, Clone, PartialEq)]
pub struct Violation {
    /// Index into the record stream, when attributable to one record.
    pub index: Option<usize>,
    /// Virtual time of the offending record (ns).
    pub time: u64,
    pub what: String,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.index {
            Some(i) => write!(f, "record #{i} @ {} ns: {}", self.time, self.what),
            None => write!(f, "@ {} ns: {}", self.time, self.what),
        }
    }
}

/// Counters proving the oracle actually exercised its checks.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct OracleStats {
    pub switch_ins: u64,
    pub placements: u64,
    pub wake_checks: u64,
    pub tick_checks: u64,
    pub steals: u64,
}

#[derive(Debug, Clone, Copy, PartialEq)]
enum Loc {
    Off,
    Queued(u32),
    Running(u32),
}

struct OThread {
    rt_prio: u8,
    fair: bool,
    affinity: u64,
    vruntime: u64,
    last_cpu: Option<u32>,
    loc: Loc,
    t_in: u64,
    charged_until: u64,
}

#[derive(Default)]
struct OCpu {
    running: Option<u32>,
    /// FIFO tasks in arrival order (pick = max prio, earliest arrival).
    rt: Vec<u32>,
    /// Fair tasks keyed by frozen enqueue `(vruntime, tid)`.
    cfs: BTreeSet<(u64, u32)>,
    /// CFS `min_vruntime` floor, replayed from charge instants.
    floor: u64,
}

struct Oracle<'a> {
    topo: Topo,
    params: SchedParams,
    threads: Vec<OThread>,
    cpus: Vec<OCpu>,
    recs: &'a [Rec],
    /// `(cpu, point, time)` of the last placement decision.
    pending_place: Option<(u32, DecisionPoint, u64)>,
    /// `(cpu, woken tid, time)` awaiting a wake-preemption decision.
    pending_wake: Option<(u32, u32, u64)>,
    /// `(cpu, point, time)` of the last pick decision.
    pending_pick: Option<(u32, DecisionPoint, u64)>,
    /// `(victim's thread, stealing cpu)` dequeued by a steal decision.
    stolen: Option<(u32, u32)>,
    /// Indices of `TickPreempt` decisions sanctioned by the lookahead.
    sanctioned_ticks: BTreeSet<usize>,
    stats: OracleStats,
}

/// Replay the record stream of an oracle-eligible run and verify every
/// scheduling decision against the naive reference scheduler.
pub fn check_oracle(out: &RunOutcome) -> Result<OracleStats, Violation> {
    let threads = out
        .threads
        .iter()
        .map(|m| OThread {
            rt_prio: match m.policy {
                Policy::Fifo { prio } => prio,
                Policy::Other { .. } => 0,
            },
            fair: !m.policy.is_rt(),
            affinity: m.affinity,
            vruntime: 0,
            last_cpu: None,
            loc: Loc::Off,
            t_in: 0,
            charged_until: 0,
        })
        .collect();
    let mut o = Oracle {
        topo: out.topo,
        params: out.params,
        threads,
        cpus: (0..out.topo.n_cpus()).map(|_| OCpu::default()).collect(),
        recs: &out.records,
        pending_place: None,
        pending_wake: None,
        pending_pick: None,
        stolen: None,
        sanctioned_ticks: BTreeSet::new(),
        stats: OracleStats::default(),
    };
    for idx in 0..out.records.len() {
        o.step(idx)?;
    }
    Ok(o.stats)
}

impl Oracle<'_> {
    fn fail(&self, idx: usize, what: impl Into<String>) -> Violation {
        Violation {
            index: Some(idx),
            time: self.recs[idx].time(),
            what: what.into(),
        }
    }

    /// Charge the running thread `tid` up to `time`, mirroring
    /// `charge_runtime`: weight-1024 vruntime advances by wall delta,
    /// and a fair charge refreshes the CFS floor with
    /// `min(leftmost queued key, running vruntime)`.
    fn charge(&mut self, tid: u32, time: u64) {
        let t = &mut self.threads[tid as usize];
        let Loc::Running(cpu) = t.loc else { return };
        let from = t.charged_until.max(t.t_in);
        if time > from {
            t.vruntime += time - from;
            if t.fair {
                let v = t.vruntime;
                let q = &mut self.cpus[cpu as usize];
                let candidate = match q.cfs.iter().next() {
                    Some(&(k, _)) => k.min(v),
                    None => v,
                };
                q.floor = q.floor.max(candidate);
            }
        }
        self.threads[tid as usize].charged_until = time;
    }

    fn queue_len(&self, cpu: u32) -> u32 {
        let q = &self.cpus[cpu as usize];
        (q.rt.len() + q.cfs.len()) as u32
    }

    fn nr_running(&self, cpu: u32) -> usize {
        let q = &self.cpus[cpu as usize];
        usize::from(q.running.is_some()) + q.rt.len() + q.cfs.len()
    }

    fn allowed(&self, tid: u32, cpu: u32) -> bool {
        self.threads[tid as usize].affinity & (1u64 << cpu) != 0
    }

    /// Naive replay of the production wake placement.
    fn naive_select_rq(&self, tid: u32) -> (u32, DecisionPoint) {
        let t = &self.threads[tid as usize];
        let n = self.topo.n_cpus() as u32;
        let allowed: Vec<u32> = (0..n).filter(|c| t.affinity & (1u64 << c) != 0).collect();
        let is_idle = |c: u32| self.nr_running(c) == 0;
        let core_idle = |c: u32| {
            is_idle(c)
                && match self.topo.sibling_of(c) {
                    Some(sib) => is_idle(sib),
                    None => true,
                }
        };
        if let Some(last) = t.last_cpu {
            if allowed.contains(&last) && core_idle(last) {
                return (last, DecisionPoint::PlaceLastCore);
            }
        }
        let home = t.last_cpu.map(|c| self.topo.domain_of(c));
        let mut idle_any: Option<u32> = None;
        let mut idle_core_remote: Option<u32> = None;
        for &c in &allowed {
            if !is_idle(c) {
                continue;
            }
            if idle_any.is_none() {
                idle_any = Some(c);
            }
            if core_idle(c) {
                match home {
                    Some(h) if self.topo.domain_of(c) != h => {
                        if idle_core_remote.is_none() {
                            idle_core_remote = Some(c);
                        }
                    }
                    _ => return (c, DecisionPoint::PlaceHomeIdleCore),
                }
            }
        }
        if let Some(c) = idle_core_remote {
            return (c, DecisionPoint::PlaceRemoteIdleCore);
        }
        if let Some(last) = t.last_cpu {
            if allowed.contains(&last) && is_idle(last) {
                return (last, DecisionPoint::PlaceLastIdle);
            }
        }
        if let Some(c) = idle_any {
            return (c, DecisionPoint::PlaceAnyIdle);
        }
        let mut best = allowed[0];
        let mut best_load = usize::MAX;
        for &c in &allowed {
            let load = self.nr_running(c);
            if load < best_load {
                best_load = load;
                best = c;
            }
        }
        (best, DecisionPoint::PlaceLeastLoaded)
    }

    /// Naive replay of idle-balance victim selection. Returns the
    /// stolen thread and whether it came off an RT queue.
    fn naive_try_steal(&self, ci: u32) -> Option<(u32, bool)> {
        let mut best: Option<(usize, u32, bool)> = None;
        for v in 0..self.topo.n_cpus() as u32 {
            if v == ci {
                continue;
            }
            let q = &self.cpus[v as usize];
            let mut queued = q.rt.len() + q.cfs.len();
            if queued == 0 {
                continue;
            }
            if !self.topo.same_domain(ci, v) {
                if queued < 2 {
                    continue;
                }
                queued -= 1;
            }
            if let Some((cur_q, _, _)) = best {
                if queued <= cur_q {
                    continue;
                }
            }
            let mut candidate: Option<(u32, bool)> = None;
            for &t in &q.rt {
                if self.allowed(t, ci) {
                    candidate = Some((t, true));
                    break;
                }
            }
            if candidate.is_none() {
                for &(_, t) in q.cfs.iter().rev() {
                    if self.allowed(t, ci) {
                        candidate = Some((t, false));
                        break;
                    }
                }
            }
            if let Some((t, rt)) = candidate {
                best = Some((queued, t, rt));
            }
        }
        best.map(|(_, t, rt)| (t, rt))
    }

    /// The naive local pick: highest-priority earliest-arrival FIFO
    /// task, else the smallest `(vruntime, tid)` fair task.
    fn naive_pick(&self, cpu: u32) -> Option<(u32, bool)> {
        let q = &self.cpus[cpu as usize];
        if !q.rt.is_empty() {
            let mut best = q.rt[0];
            for &t in &q.rt[1..] {
                if self.threads[t as usize].rt_prio > self.threads[best as usize].rt_prio {
                    best = t;
                }
            }
            return Some((best, true));
        }
        q.cfs.iter().next().map(|&(_, t)| (t, false))
    }

    fn enqueue_into(&mut self, cpu: u32, tid: u32) {
        let fair = self.threads[tid as usize].fair;
        if fair {
            let floor = self.cpus[cpu as usize].floor;
            let t = &mut self.threads[tid as usize];
            if t.vruntime < floor {
                t.vruntime = floor;
            }
            let key = (t.vruntime, tid);
            self.cpus[cpu as usize].cfs.insert(key);
        } else {
            self.cpus[cpu as usize].rt.push(tid);
        }
        self.threads[tid as usize].loc = Loc::Queued(cpu);
    }

    fn remove_queued(&mut self, cpu: u32, tid: u32) -> bool {
        let fair = self.threads[tid as usize].fair;
        let q = &mut self.cpus[cpu as usize];
        let removed = if fair {
            q.cfs.remove(&(self.threads[tid as usize].vruntime, tid))
        } else {
            let pos = q.rt.iter().position(|&t| t == tid);
            match pos {
                Some(p) => {
                    q.rt.remove(p);
                    true
                }
                None => false,
            }
        };
        if removed {
            self.threads[tid as usize].loc = Loc::Off;
        }
        removed
    }

    fn step(&mut self, idx: usize) -> Result<(), Violation> {
        // A corrupt (or deliberately mutated) stream may name CPUs or
        // threads that do not exist; report it rather than panic.
        let (rec_cpu, rec_thread) = match self.recs[idx] {
            Rec::SwitchIn { cpu, thread, .. }
            | Rec::SwitchOut { cpu, thread, .. }
            | Rec::Preempt { cpu, thread, .. }
            | Rec::Enqueue { cpu, thread, .. }
            | Rec::Dequeue { cpu, thread, .. } => (Some(cpu), Some(thread)),
            Rec::Migrate { thread, to_cpu, .. } => (Some(to_cpu), Some(thread)),
            Rec::IrqSpan { cpu, .. }
            | Rec::Decision { cpu, .. }
            | Rec::FreqTransition { cpu, .. }
            | Rec::Throttle { cpu, .. } => (Some(cpu), None),
            Rec::PolicySwitch { thread, .. } => (None, Some(thread)),
        };
        if rec_cpu.is_some_and(|c| c as usize >= self.cpus.len())
            || rec_thread.is_some_and(|t| t as usize >= self.threads.len())
        {
            return Err(self.fail(idx, "record names a CPU or thread outside the machine"));
        }
        match self.recs[idx].clone() {
            Rec::Decision { cpu, time, point } => self.on_decision(idx, cpu, time, point),
            Rec::Enqueue {
                cpu,
                thread,
                time,
                depth,
            } => self.on_enqueue(idx, cpu, thread, time, depth),
            Rec::Dequeue { cpu, thread, .. } => {
                if !self.remove_queued(cpu, thread) {
                    return Err(self.fail(idx, format!("dequeue of unqueued thread {thread}")));
                }
                Ok(())
            }
            Rec::SwitchIn {
                cpu,
                thread,
                time,
                runq_depth,
                ..
            } => self.on_switch_in(idx, cpu, thread, time, runq_depth),
            Rec::SwitchOut {
                cpu,
                thread,
                time,
                state,
            } => self.on_switch_out(idx, cpu, thread, time, state),
            Rec::Preempt { cpu, thread, .. } => {
                // Sanity only: the preempted thread must have just left
                // this CPU (SwitchOut(Ready) precedes).
                if self.threads[thread as usize].loc != Loc::Off
                    || self.cpus[cpu as usize].running.is_some()
                {
                    return Err(self.fail(idx, format!("preempt of thread {thread} not off-cpu")));
                }
                Ok(())
            }
            Rec::Migrate {
                thread,
                to_cpu,
                cross_numa,
                ..
            } => self.on_migrate(idx, thread, to_cpu, cross_numa),
            Rec::IrqSpan {
                cpu,
                time,
                timer,
                softirq,
                ..
            } => self.on_irq_span(idx, cpu, time, timer, softirq),
            Rec::PolicySwitch { thread, rt, .. } => {
                // Not generated in oracle-eligible scenarios; tracked
                // defensively so a stray record cannot corrupt state.
                self.threads[thread as usize].fair = !rt;
                Ok(())
            }
            // DVFS records never affect pick/placement decisions; the
            // frequency invariants own them (DVFS scenarios are not
            // oracle-eligible, so these only appear on corrupt streams).
            Rec::FreqTransition { .. } | Rec::Throttle { .. } => Ok(()),
        }
    }

    fn on_decision(
        &mut self,
        idx: usize,
        cpu: u32,
        time: u64,
        point: DecisionPoint,
    ) -> Result<(), Violation> {
        use DecisionPoint as D;
        match point {
            D::PlaceLastCore
            | D::PlaceHomeIdleCore
            | D::PlaceRemoteIdleCore
            | D::PlaceLastIdle
            | D::PlaceAnyIdle
            | D::PlaceLeastLoaded => {
                self.pending_place = Some((cpu, point, time));
            }
            D::WakePreempt | D::WakeNoPreempt => {
                let Some((wcpu, woken, wtime)) = self.pending_wake.take() else {
                    return Err(self.fail(idx, "wake decision without a preceding enqueue"));
                };
                if wcpu != cpu || wtime != time {
                    return Err(self.fail(idx, "wake decision does not match the last enqueue"));
                }
                let Some(cur) = self.cpus[cpu as usize].running else {
                    return Err(self.fail(idx, "wake decision on an idle cpu"));
                };
                let new_t = &self.threads[woken as usize];
                let cur_t = &self.threads[cur as usize];
                let should = match (new_t.fair, cur_t.fair) {
                    (false, false) => new_t.rt_prio > cur_t.rt_prio,
                    (false, true) => true,
                    (true, false) => false,
                    (true, true) => {
                        new_t.vruntime + self.params.wakeup_granularity_ns < cur_t.vruntime
                    }
                };
                let claimed = point == D::WakePreempt;
                if claimed != should {
                    return Err(self.fail(
                        idx,
                        format!(
                            "wake of thread {woken} (v={}) vs current {cur} (v={}): kernel says \
                             preempt={claimed}, oracle says {should}",
                            new_t.vruntime, cur_t.vruntime
                        ),
                    ));
                }
                self.stats.wake_checks += 1;
            }
            D::TickPreempt => {
                if !self.sanctioned_ticks.remove(&idx) {
                    return Err(
                        self.fail(idx, "tick preemption without a sanctioning timer interrupt")
                    );
                }
            }
            D::PickNone => {
                if self.queue_len(cpu) != 0 {
                    return Err(self.fail(
                        idx,
                        format!(
                            "cpu {cpu} went idle with {} thread(s) queued",
                            self.queue_len(cpu)
                        ),
                    ));
                }
            }
            D::PickRt | D::PickFair | D::PickSteal => {
                self.pending_pick = Some((cpu, point, time));
            }
            D::StealNone => {
                if let Some((t, _)) = self.naive_try_steal(cpu) {
                    return Err(self.fail(
                        idx,
                        format!("kernel found no steal victim; oracle would steal thread {t}"),
                    ));
                }
            }
            D::StealRt | D::StealFair => {
                let Some((t, rt)) = self.naive_try_steal(cpu) else {
                    return Err(self.fail(idx, "kernel stole; oracle finds no eligible victim"));
                };
                let claimed_rt = point == D::StealRt;
                if rt != claimed_rt {
                    return Err(self.fail(
                        idx,
                        format!("steal class mismatch: kernel rt={claimed_rt}, oracle rt={rt}"),
                    ));
                }
                let Loc::Queued(victim) = self.threads[t as usize].loc else {
                    return Err(self.fail(idx, format!("oracle steal choice {t} not queued")));
                };
                self.remove_queued(victim, t);
                self.stolen = Some((t, cpu));
                self.stats.steals += 1;
            }
            // Governor decisions carry no scheduling state the oracle
            // replays; the frequency invariants cross-check them against
            // the transition stream instead.
            D::TurboGrant | D::TurboDeny | D::ThrottleEnter | D::ThrottleExit | D::FreqIdle => {}
        }
        Ok(())
    }

    fn on_enqueue(
        &mut self,
        idx: usize,
        cpu: u32,
        thread: u32,
        time: u64,
        depth: u32,
    ) -> Result<(), Violation> {
        let requeue = idx > 0
            && matches!(
                self.recs[idx - 1],
                Rec::Preempt { thread: t, time: pt, .. } if t == thread && pt == time
            );
        if self.threads[thread as usize].loc != Loc::Off {
            return Err(self.fail(idx, format!("thread {thread} enqueued twice")));
        }
        if !self.allowed(thread, cpu) {
            return Err(self.fail(
                idx,
                format!("thread {thread} enqueued on cpu {cpu} outside its affinity mask"),
            ));
        }
        if !requeue {
            // Wake path: the placement must match the oracle's replay,
            // and the decision record must have announced that branch.
            let (exp_cpu, exp_point) = self.naive_select_rq(thread);
            if cpu != exp_cpu {
                return Err(self.fail(
                    idx,
                    format!("thread {thread} placed on cpu {cpu}; oracle places on {exp_cpu}"),
                ));
            }
            match self.pending_place.take() {
                Some((pcpu, ppoint, ptime)) if pcpu == cpu && ptime == time => {
                    if ppoint != exp_point {
                        return Err(self.fail(
                            idx,
                            format!(
                                "placement branch mismatch: kernel {}, oracle {}",
                                ppoint.name(),
                                exp_point.name()
                            ),
                        ));
                    }
                }
                _ => {
                    return Err(self.fail(idx, "wake enqueue without a placement decision"));
                }
            }
            self.stats.placements += 1;
        }
        self.enqueue_into(cpu, thread);
        if depth != self.queue_len(cpu) {
            return Err(self.fail(
                idx,
                format!(
                    "enqueue depth {depth} != oracle queue length {}",
                    self.queue_len(cpu)
                ),
            ));
        }
        if !requeue {
            // `check_preempt` charges the current thread before
            // deciding; replay that charge (floor refresh included).
            if let Some(cur) = self.cpus[cpu as usize].running {
                self.charge(cur, time);
                self.pending_wake = Some((cpu, thread, time));
            } else {
                self.pending_wake = None;
            }
        }
        Ok(())
    }

    fn on_switch_in(
        &mut self,
        idx: usize,
        cpu: u32,
        thread: u32,
        time: u64,
        runq_depth: u32,
    ) -> Result<(), Violation> {
        let Some((pcpu, point, ptime)) = self.pending_pick.take() else {
            return Err(self.fail(idx, "switch-in without a pick decision"));
        };
        if pcpu != cpu || ptime != time {
            return Err(self.fail(idx, "switch-in does not match the last pick decision"));
        }
        if self.cpus[cpu as usize].running.is_some() {
            return Err(self.fail(idx, format!("cpu {cpu} switch-in while already busy")));
        }
        if point == DecisionPoint::PickSteal {
            let Some((stid, scpu)) = self.stolen.take() else {
                return Err(self.fail(idx, "steal pick without a steal decision"));
            };
            if stid != thread || scpu != cpu {
                return Err(self.fail(
                    idx,
                    format!("kernel stole thread {thread}; oracle stole {stid}"),
                ));
            }
            if self.queue_len(cpu) != 0 {
                return Err(self.fail(idx, "steal pick with non-empty local queues"));
            }
        } else {
            let Some((exp, exp_rt)) = self.naive_pick(cpu) else {
                return Err(self.fail(idx, format!("cpu {cpu} picked from empty oracle queues")));
            };
            if exp != thread {
                return Err(self.fail(
                    idx,
                    format!("cpu {cpu} picked thread {thread}; oracle picks {exp}"),
                ));
            }
            let claimed_rt = point == DecisionPoint::PickRt;
            if exp_rt != claimed_rt {
                return Err(self.fail(idx, "pick class mismatch (rt vs fair)"));
            }
            let Loc::Queued(qcpu) = self.threads[thread as usize].loc else {
                return Err(self.fail(idx, format!("picked thread {thread} not queued")));
            };
            if qcpu != cpu {
                return Err(self.fail(idx, "local pick from a foreign queue"));
            }
            self.remove_queued(cpu, thread);
        }
        if runq_depth != self.queue_len(cpu) {
            return Err(self.fail(
                idx,
                format!(
                    "switch-in runq depth {runq_depth} != oracle {}",
                    self.queue_len(cpu)
                ),
            ));
        }
        let t = &mut self.threads[thread as usize];
        t.loc = Loc::Running(cpu);
        t.t_in = time;
        t.charged_until = time;
        t.last_cpu = Some(cpu);
        self.cpus[cpu as usize].running = Some(thread);
        self.stats.switch_ins += 1;
        Ok(())
    }

    fn on_switch_out(
        &mut self,
        idx: usize,
        cpu: u32,
        thread: u32,
        time: u64,
        _state: ThreadState,
    ) -> Result<(), Violation> {
        if self.cpus[cpu as usize].running != Some(thread) {
            return Err(self.fail(
                idx,
                format!("switch-out of thread {thread} not running on cpu {cpu}"),
            ));
        }
        self.charge(thread, time);
        self.cpus[cpu as usize].running = None;
        let t = &mut self.threads[thread as usize];
        t.loc = Loc::Off;
        t.last_cpu = Some(cpu);
        Ok(())
    }

    fn on_migrate(
        &mut self,
        idx: usize,
        thread: u32,
        to_cpu: u32,
        cross_numa: bool,
    ) -> Result<(), Violation> {
        if !self.allowed(thread, to_cpu) {
            return Err(self.fail(
                idx,
                format!("thread {thread} migrated to cpu {to_cpu} outside its affinity"),
            ));
        }
        let expected = self.threads[thread as usize]
            .last_cpu
            .is_some_and(|p| !self.topo.same_domain(p, to_cpu));
        if cross_numa != expected {
            return Err(self.fail(
                idx,
                format!("cross-numa flag {cross_numa}; oracle expects {expected}"),
            ));
        }
        let stolen_here = self.stolen.is_some_and(|(t, c)| t == thread && c == to_cpu);
        let queued_here = self.threads[thread as usize].loc == Loc::Queued(to_cpu);
        if !stolen_here && !queued_here {
            return Err(self.fail(
                idx,
                format!("migrate of thread {thread} that is neither stolen nor queued on target"),
            ));
        }
        Ok(())
    }

    fn on_irq_span(
        &mut self,
        idx: usize,
        cpu: u32,
        time: u64,
        timer: bool,
        softirq: bool,
    ) -> Result<(), Violation> {
        // Softirq spans ride the same tick service; the kernel's single
        // charge happened at the tick instant (the timer span), so they
        // must not charge again at their later start time.
        if !softirq {
            if let Some(cur) = self.cpus[cpu as usize].running {
                self.charge(cur, time);
            }
        }
        if timer {
            // The scheduler tick runs right after IRQ service: replay
            // the fair-preemption predicate and cross-check it against
            // the (possible) TickPreempt decision that follows.
            let Some(cur) = self.cpus[cpu as usize].running else {
                return Err(self.fail(idx, "timer IRQ span on an idle cpu"));
            };
            let cur_t = &self.threads[cur as usize];
            let should = cur_t.fair
                && time.saturating_sub(cur_t.t_in) >= self.params.min_granularity_ns
                && self.cpus[cpu as usize]
                    .cfs
                    .iter()
                    .next()
                    .is_some_and(|&(k, _)| k < cur_t.vruntime);
            let mut j = idx + 1;
            while matches!(
                self.recs.get(j),
                Some(Rec::IrqSpan { cpu: c, softirq: true, .. }) if *c == cpu
            ) {
                j += 1;
            }
            let claimed = matches!(
                self.recs.get(j),
                Some(Rec::Decision { cpu: c, time: t, point: DecisionPoint::TickPreempt })
                    if *c == cpu && *t == time
            );
            if claimed != should {
                return Err(self.fail(
                    idx,
                    format!(
                        "scheduler tick on cpu {cpu}: kernel preempt={claimed}, oracle \
                         says {should} (ran {} ns, v={})",
                        time.saturating_sub(cur_t.t_in),
                        cur_t.vruntime
                    ),
                ));
            }
            if claimed {
                self.sanctioned_ticks.insert(j);
            }
            self.stats.tick_checks += 1;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::run;
    use crate::scenario::Scenario;
    use noiselab_sim::Rng;

    #[test]
    fn oracle_agrees_with_production_scheduler_across_seeds() {
        let mut rng = Rng::new(0xE11617);
        let mut total = OracleStats::default();
        for _ in 0..60 {
            let sc = Scenario::generate(&mut rng, false);
            assert!(sc.is_oracle_eligible());
            let out = run(&sc);
            let stats = match check_oracle(&out) {
                Ok(s) => s,
                Err(v) => panic!("oracle divergence: {v}\n{}", sc.repro_line()),
            };
            total.switch_ins += stats.switch_ins;
            total.placements += stats.placements;
            total.wake_checks += stats.wake_checks;
            total.tick_checks += stats.tick_checks;
            total.steals += stats.steals;
        }
        // The sweep must actually exercise the interesting paths.
        assert!(total.switch_ins > 500, "{total:?}");
        assert!(total.placements > 200, "{total:?}");
        assert!(total.wake_checks > 20, "{total:?}");
        assert!(total.tick_checks > 50, "{total:?}");
    }

    #[test]
    fn oracle_catches_a_swapped_pick() {
        let mut rng = Rng::new(0xBAD);
        // Find a scenario with at least two switch-ins on one CPU.
        for _ in 0..20 {
            let sc = Scenario::generate(&mut rng, false);
            let mut out = run(&sc);
            if crate::record::Mutation::SwapPick.apply(
                &mut out.records,
                &out.threads.iter().map(|t| t.affinity).collect::<Vec<_>>(),
                out.topo.n_cpus() as u32,
            ) {
                let err = check_oracle(&out).expect_err("swapped pick must be caught");
                assert!(err.index.is_some(), "{err}");
                return;
            }
        }
        panic!("no scenario offered a swap site");
    }
}
