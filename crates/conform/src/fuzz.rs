//! The coverage-guided conformance fuzzer.
//!
//! Deterministic campaign loop: generate or mutate a scenario, run it
//! through the production kernel, check it (differential oracle for
//! oracle-eligible scenarios, metamorphic invariants for everything),
//! and keep scenarios whose decision-point coverage signature sets a
//! bit no previous scenario set. Failures are shrunk to minimal
//! scenarios and reported with replayable `// conform:repro` lines.
//!
//! The whole campaign is a pure function of [`FuzzConfig`]: same seed,
//! same iteration count, same result — failures reproduce exactly on
//! any machine.

use crate::coverage::{CoverageMap, Signature};
use crate::invariants::{check_invariants, InvariantStats};
use crate::oracle::{check_oracle, OracleStats, Violation};
use crate::record::Mutation;
use crate::runner::{run, RunOutcome};
use crate::scenario::Scenario;
use crate::shrink::shrink;
use noiselab_sim::Rng;
use std::path::{Path, PathBuf};

/// Campaign parameters.
#[derive(Debug, Clone)]
pub struct FuzzConfig {
    pub iterations: u64,
    pub seed: u64,
    /// Directory for the minimized on-disk corpus (loaded before the
    /// campaign, rewritten after). `None` keeps the corpus in memory.
    pub corpus_dir: Option<PathBuf>,
    /// Apply an intentional scheduler bug to every recorded stream
    /// before checking (mutation-testing mode: the campaign *should*
    /// fail).
    pub mutation: Option<Mutation>,
    /// Maximum checker re-runs the shrinker may spend per failure.
    pub shrink_budget: u32,
    /// Stop after this many distinct shrunk failures.
    pub max_failures: usize,
}

impl Default for FuzzConfig {
    fn default() -> FuzzConfig {
        FuzzConfig {
            iterations: 500,
            seed: 0xC0DE,
            corpus_dir: None,
            mutation: None,
            shrink_budget: 300,
            max_failures: 5,
        }
    }
}

/// A shrunk failing scenario plus the first check it violates.
#[derive(Debug)]
pub struct Failure {
    pub scenario: Scenario,
    pub violation: Violation,
    pub mutation: Option<Mutation>,
}

impl Failure {
    /// The replayable one-liner for bug reports and regression tests.
    pub fn repro(&self) -> String {
        self.scenario.repro_line()
    }
}

/// Campaign results.
#[derive(Debug, Default)]
pub struct FuzzReport {
    pub iterations: u64,
    /// Scenarios replayed through the differential oracle.
    pub oracle_runs: u64,
    pub oracle: OracleStats,
    pub invariants: InvariantStats,
    pub coverage_bits: u32,
    pub corpus_len: usize,
    pub failures: Vec<Failure>,
    /// Non-fatal campaign notes (corpus I/O problems and the like).
    pub notes: Vec<String>,
}

impl FuzzReport {
    pub fn ok(&self) -> bool {
        self.failures.is_empty()
    }
}

/// Check one already-executed outcome against the applicable checkers.
fn check_out(
    sc: &Scenario,
    mut out: RunOutcome,
    mutation: Option<Mutation>,
    oracle_acc: Option<&mut (u64, OracleStats)>,
    inv_acc: Option<&mut InvariantStats>,
) -> Option<Violation> {
    if let Some(m) = mutation {
        let masks: Vec<u64> = out.threads.iter().map(|t| t.affinity).collect();
        let n_cpus = out.topo.n_cpus() as u32;
        if !m.apply(&mut out.records, &masks, n_cpus) {
            return None; // nothing to mutate: not a meaningful mutant
        }
    }
    if sc.is_oracle_eligible() {
        match check_oracle(&out) {
            Ok(stats) => {
                if let Some((runs, acc)) = oracle_acc {
                    *runs += 1;
                    acc.switch_ins += stats.switch_ins;
                    acc.placements += stats.placements;
                    acc.wake_checks += stats.wake_checks;
                    acc.tick_checks += stats.tick_checks;
                    acc.steals += stats.steals;
                }
            }
            Err(v) => return Some(v),
        }
    }
    let inv = check_invariants(&out, sc.fairness_probe);
    if let Some(acc) = inv_acc {
        acc.stints += inv.stats.stints;
        acc.irq_spans += inv.stats.irq_spans;
        acc.stable_instants += inv.stats.stable_instants;
        acc.affinity_checks += inv.stats.affinity_checks;
        acc.fairness_samples += inv.stats.fairness_samples;
        acc.freq_transitions += inv.stats.freq_transitions;
        acc.throttle_events += inv.stats.throttle_events;
        acc.cycle_checks += inv.stats.cycle_checks;
    }
    inv.violations.into_iter().next()
}

/// Run and check one scenario. Returns the first violation, if any.
///
/// Oracle-eligible scenarios go through both the differential oracle
/// and the invariants; everything else through the invariants alone.
/// `mutation` perturbs the recorded stream first; a stream with
/// nowhere to apply it checks clean.
pub fn check_scenario(sc: &Scenario, mutation: Option<Mutation>) -> Option<Violation> {
    check_out(sc, run(sc), mutation, None, None)
}

/// Run a full campaign.
pub fn fuzz(cfg: &FuzzConfig) -> FuzzReport {
    let mut report = FuzzReport::default();
    let mut rng = Rng::new(cfg.seed);
    let mut map = CoverageMap::new();
    let mut corpus: Vec<Scenario> = Vec::new();
    let mut oracle_acc = (0u64, OracleStats::default());
    let mut inv_acc = InvariantStats::default();

    if let Some(dir) = &cfg.corpus_dir {
        match load_corpus(dir) {
            Ok(loaded) => {
                for sc in loaded {
                    let out = run(&sc);
                    if map.merge(&Signature::of(&out.records)) > 0 {
                        corpus.push(sc);
                    }
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {}
            Err(e) => report.notes.push(format!("corpus load: {e}")),
        }
    }

    for i in 0..cfg.iterations {
        report.iterations = i + 1;
        let full = rng.chance(0.5);
        let sc = if corpus.is_empty() || rng.chance(0.5) {
            Scenario::generate(&mut rng, full)
        } else {
            let base = &corpus[rng.index(corpus.len())];
            base.mutate(&mut rng, full)
        };

        let out = run(&sc);
        // Coverage is taken over the pristine stream, before any
        // mutation-testing perturbation.
        if map.merge(&Signature::of(&out.records)) > 0 {
            corpus.push(sc.clone());
        }

        let violation = check_out(
            &sc,
            out,
            cfg.mutation,
            Some(&mut oracle_acc),
            Some(&mut inv_acc),
        );
        if let Some(v) = violation {
            let mutation = cfg.mutation;
            let mut fails = |c: &Scenario| check_scenario(c, mutation).is_some();
            let small = shrink(&sc, &mut fails, cfg.shrink_budget);
            let violation = check_scenario(&small, mutation).unwrap_or(v);
            if !report.failures.iter().any(|f| f.scenario == small) {
                report.failures.push(Failure {
                    scenario: small,
                    violation,
                    mutation,
                });
            }
            if report.failures.len() >= cfg.max_failures {
                break;
            }
        }
    }

    report.oracle_runs = oracle_acc.0;
    report.oracle = oracle_acc.1;
    report.invariants = inv_acc;
    report.coverage_bits = map.count();
    report.corpus_len = corpus.len();
    if let Some(dir) = &cfg.corpus_dir {
        match save_minimized_corpus(dir, &corpus) {
            Ok(kept) => report.corpus_len = kept,
            Err(e) => report.notes.push(format!("corpus save: {e}")),
        }
    }
    report
}

/// Load every `*.json` scenario in a corpus directory (sorted for
/// determinism). Unparseable files are skipped.
pub fn load_corpus(dir: &Path) -> std::io::Result<Vec<Scenario>> {
    let mut files: Vec<PathBuf> = std::fs::read_dir(dir)?
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| p.extension().is_some_and(|x| x == "json"))
        .collect();
    files.sort();
    let mut out = Vec::new();
    for f in files {
        let text = std::fs::read_to_string(&f)?;
        if let Ok(sc) = serde_json::from_str::<Scenario>(&text) {
            out.push(sc);
        }
    }
    Ok(out)
}

/// Rewrite the corpus directory with a greedily minimized set: replay
/// entries in order, keep only those that still add coverage.
pub fn save_minimized_corpus(dir: &Path, corpus: &[Scenario]) -> std::io::Result<usize> {
    std::fs::create_dir_all(dir)?;
    // Clear previous entries so the directory *is* the minimized set.
    for e in std::fs::read_dir(dir)?.flatten() {
        let p = e.path();
        if p.extension().is_some_and(|x| x == "json") {
            let _ = std::fs::remove_file(&p);
        }
    }
    let mut map = CoverageMap::new();
    let mut kept = 0usize;
    for sc in corpus {
        let out = run(sc);
        if map.merge(&Signature::of(&out.records)) == 0 {
            continue;
        }
        let name = format!("case-{kept:04}.json");
        let json = serde_json::to_string(sc).map_err(std::io::Error::other)?;
        std::fs::write(dir.join(name), json)?;
        kept += 1;
    }
    Ok(kept)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clean_campaign_finds_no_failures_and_builds_coverage() {
        let report = fuzz(&FuzzConfig {
            iterations: 120,
            seed: 7,
            ..FuzzConfig::default()
        });
        assert!(
            report.ok(),
            "unexpected failure: {} ({})",
            report.failures[0].violation,
            report.failures[0].repro()
        );
        assert!(report.coverage_bits > 30, "{}", report.coverage_bits);
        assert!(report.corpus_len > 0);
        assert!(report.oracle_runs > 20);
        assert!(report.oracle.switch_ins > 200);
        assert!(report.invariants.stints > 200);
    }

    #[test]
    fn campaigns_are_deterministic() {
        let cfg = FuzzConfig {
            iterations: 40,
            seed: 99,
            ..FuzzConfig::default()
        };
        let a = fuzz(&cfg);
        let b = fuzz(&cfg);
        assert_eq!(a.coverage_bits, b.coverage_bits);
        assert_eq!(a.corpus_len, b.corpus_len);
        assert_eq!(a.oracle.switch_ins, b.oracle.switch_ins);
        assert_eq!(a.failures.len(), b.failures.len());
    }

    #[test]
    fn mutation_campaign_fails_with_a_shrunk_repro() {
        let report = fuzz(&FuzzConfig {
            iterations: 60,
            seed: 3,
            mutation: Some(Mutation::GhostRun),
            max_failures: 1,
            ..FuzzConfig::default()
        });
        assert!(!report.ok(), "seeded bug escaped the campaign");
        let f = &report.failures[0];
        assert!(f.repro().contains("conform:repro"));
        // The shrunk repro must still fail when replayed.
        let back = Scenario::from_repro_line(&f.repro()).unwrap();
        assert!(check_scenario(&back, Some(Mutation::GhostRun)).is_some());
    }

    #[test]
    fn campaign_exercises_the_dvfs_axis() {
        let report = fuzz(&FuzzConfig {
            iterations: 150,
            seed: 0xD1F5,
            ..FuzzConfig::default()
        });
        assert!(report.ok(), "{}", report.failures[0].repro());
        // Full-mode generation turns DVFS on often enough that the
        // frequency invariants must actually fire over a campaign.
        assert!(
            report.invariants.freq_transitions > 20,
            "{:?}",
            report.invariants
        );
        assert!(
            report.invariants.cycle_checks > 0,
            "{:?}",
            report.invariants
        );
    }

    #[test]
    fn dvfs_mutation_campaign_fails_with_a_shrunk_repro() {
        for m in [
            Mutation::TurboLeak,
            Mutation::ThrottleEarly,
            Mutation::GhostTurbo,
            Mutation::ThrottleStuck,
        ] {
            let report = fuzz(&FuzzConfig {
                iterations: 200,
                seed: 0xBADF + m as u64,
                mutation: Some(m),
                max_failures: 1,
                ..FuzzConfig::default()
            });
            assert!(!report.ok(), "seeded {} escaped the campaign", m.name());
            let f = &report.failures[0];
            assert!(f.repro().contains("conform:repro"));
            // The shrunk repro stays a DVFS scenario (the mutation has
            // no site otherwise) and still fails on replay.
            assert!(f.scenario.dvfs.enabled, "{}", f.repro());
            let back = Scenario::from_repro_line(&f.repro()).unwrap();
            assert!(check_scenario(&back, Some(m)).is_some(), "{}", f.repro());
        }
    }

    #[test]
    fn corpus_round_trips_minimized() {
        let dir = std::env::temp_dir().join(format!("conform-corpus-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let report = fuzz(&FuzzConfig {
            iterations: 60,
            seed: 11,
            corpus_dir: Some(dir.clone()),
            ..FuzzConfig::default()
        });
        assert!(report.ok());
        let saved = load_corpus(&dir).unwrap();
        assert_eq!(saved.len(), report.corpus_len);
        assert!(!saved.is_empty());
        // Reloading must seed coverage rather than duplicate entries.
        let report2 = fuzz(&FuzzConfig {
            iterations: 10,
            seed: 12,
            corpus_dir: Some(dir.clone()),
            ..FuzzConfig::default()
        });
        assert!(report2.ok());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
