//! Metamorphic scheduler invariants.
//!
//! Unlike the differential oracle (which requires oracle-eligible
//! scenarios), these checks hold for *every* scenario the fuzzer can
//! generate — yields, barriers, nice values, policy switches, faults
//! and all — because they assert properties of the record stream and
//! the kernel's own accounting rather than replaying exact vruntime
//! arithmetic:
//!
//! 1. **Conservation** — per-CPU on-CPU stints never overlap, and when
//!    every thread has exited their sum equals the kernel's charged
//!    `busy_ns` exactly; the sum of emitted IRQ spans always equals the
//!    kernel's `irq_ns` exactly (osnoise accounting: irq + noise +
//!    useful + idle partitions wall time).
//! 2. **Work conservation** — at every stable instant (whenever
//!    virtual time advances), no CPU sits idle with threads in its
//!    runqueues.
//! 3. **RT supremacy** — at every stable instant, a queued `SCHED_FIFO`
//!    thread never waits behind a lower-priority runner: FIFO-over-
//!    OTHER preemption latency is exactly zero, and FIFO-over-FIFO
//!    respects priority.
//! 4. **Affinity** — no enqueue, switch-in or migration ever lands a
//!    thread on a CPU outside its affinity mask.
//! 5. **Bounded fairness** — in fairness-probe scenarios (equal-weight
//!    CPU hogs pinned to one CPU), cumulative on-CPU time across live
//!    threads never spreads beyond a few scheduling quanta.
//! 6. **Frequency conservation** (DVFS scenarios) — per-CPU frequency
//!    transitions chain exactly (each `from_khz` equals the previous
//!    `to_khz`, starting from `min_khz`), only configured levels
//!    appear, the per-package turbo budget is never exceeded, throttle
//!    records alternate with open hysteresis (enter at or above
//!    `throttle_at`, exit at or below `release_at`), no CPU raises its
//!    frequency while throttled, and — when every thread exited — the
//!    kernel's cycle accounting equals the stint stream replayed at
//!    the recorded frequencies, exactly. A disabled-DVFS run must
//!    contain no frequency records at all.

use crate::oracle::Violation;
use crate::record::Rec;
use crate::runner::{RunOutcome, SchedParams};
use noiselab_kernel::Policy;

/// How many checks actually fired (so tests can prove the invariants
/// were exercised, not vacuously skipped).
#[derive(Debug, Clone, Copy, Default)]
pub struct InvariantStats {
    pub stints: u64,
    pub irq_spans: u64,
    pub stable_instants: u64,
    pub affinity_checks: u64,
    pub fairness_samples: u64,
    pub freq_transitions: u64,
    pub throttle_events: u64,
    pub cycle_checks: u64,
}

/// Everything the invariant pass produces.
#[derive(Debug, Default)]
pub struct InvariantOutcome {
    pub violations: Vec<Violation>,
    pub stats: InvariantStats,
}

/// Maximum tolerated cumulative on-CPU spread between equal-weight
/// CPU-bound threads sharing one CPU: a few full scheduling quanta
/// (tick + minimum granularity + wakeup granularity), with headroom
/// for the staggered first round.
pub fn fairness_bound_ns(p: &SchedParams) -> u64 {
    3 * (p.tick_ns + p.min_granularity_ns + p.wakeup_granularity_ns)
}

#[derive(Clone, Copy, PartialEq)]
enum RtClass {
    Fair,
    /// FIFO at a statically known priority.
    Rt(u8),
    /// FIFO after a mid-run policy switch: priority unknown to the
    /// checker (the record only says "became RT"), so it is excluded
    /// from FIFO-vs-FIFO comparisons but still outranks fair threads.
    RtUnknown,
}

struct Track {
    class: RtClass,
    /// CPU the thread is currently queued on.
    queued_on: Option<u32>,
    /// CPU the thread is currently running on.
    running_on: Option<u32>,
    /// Start of the current on-CPU stint.
    stint_start: u64,
    /// Total completed on-CPU nanoseconds.
    cum_ns: u64,
    exited: bool,
}

/// Run every metamorphic invariant over one recorded outcome.
/// `fairness_probe` marks scenarios shaped for invariant 5.
pub fn check_invariants(out: &RunOutcome, fairness_probe: bool) -> InvariantOutcome {
    let mut res = InvariantOutcome::default();
    let n_cpus = out.topo.n_cpus();
    let mut threads: Vec<Track> = out
        .threads
        .iter()
        .map(|m| Track {
            class: match m.policy {
                Policy::Fifo { prio } => RtClass::Rt(prio),
                Policy::Other { .. } => RtClass::Fair,
            },
            queued_on: None,
            running_on: None,
            stint_start: 0,
            cum_ns: 0,
            exited: false,
        })
        .collect();
    let mut running: Vec<Option<u32>> = vec![None; n_cpus];
    let mut queues: Vec<Vec<u32>> = vec![Vec::new(); n_cpus];
    let mut stint_ns: Vec<u64> = vec![0; n_cpus];
    let mut irq_ns: Vec<u64> = vec![0; n_cpus];
    let fairness_bound = fairness_bound_ns(&out.params);
    let mut cur_time = 0u64;
    // Frequency replay (invariant 6): per-CPU frequency reconstructed
    // from the transition stream, cycle accumulation at the replayed
    // frequency, and throttle state for hysteresis/raise checks. Every
    // CPU boots at `min_khz`.
    let dvfs = &out.dvfs;
    let mut khz: Vec<u64> = vec![dvfs.min_khz as u64; n_cpus];
    let mut cyc: Vec<u128> = vec![0; n_cpus];
    let mut cyc_mark: Vec<Option<u64>> = vec![None; n_cpus];
    let mut throttled: Vec<bool> = vec![false; n_cpus];
    let mut turbo_now: Vec<u32> = vec![0; dvfs.n_packages(n_cpus as u32) as usize];

    let fail = |res: &mut InvariantOutcome, index: Option<usize>, time: u64, what: String| {
        res.violations.push(Violation { index, time, what });
    };

    for (idx, rec) in out.records.iter().enumerate() {
        let time = rec.time();
        // A corrupt (or deliberately mutated) stream may name CPUs or
        // threads that do not exist; that is itself a violation, not a
        // crash.
        let (rec_cpu, rec_thread) = match *rec {
            Rec::SwitchIn { cpu, thread, .. }
            | Rec::SwitchOut { cpu, thread, .. }
            | Rec::Preempt { cpu, thread, .. }
            | Rec::Enqueue { cpu, thread, .. }
            | Rec::Dequeue { cpu, thread, .. } => (Some(cpu), Some(thread)),
            Rec::Migrate { thread, to_cpu, .. } => (Some(to_cpu), Some(thread)),
            Rec::IrqSpan { cpu, .. }
            | Rec::Decision { cpu, .. }
            | Rec::FreqTransition { cpu, .. }
            | Rec::Throttle { cpu, .. } => (Some(cpu), None),
            Rec::PolicySwitch { thread, .. } => (None, Some(thread)),
        };
        if rec_cpu.is_some_and(|c| c as usize >= n_cpus)
            || rec_thread.is_some_and(|t| t as usize >= threads.len())
        {
            fail(
                &mut res,
                Some(idx),
                time,
                format!("record names a CPU or thread outside the machine: {rec:?}"),
            );
            continue;
        }
        if time > cur_time {
            // The previous instant's state is now stable: check the
            // point-in-time invariants.
            stable_instant_checks(
                &mut res,
                &threads,
                &running,
                &queues,
                cur_time,
                fairness_probe,
                fairness_bound,
            );
            cur_time = time;
        }
        match *rec {
            Rec::Enqueue { cpu, thread, .. } => {
                res.stats.affinity_checks += 1;
                if out.threads[thread as usize].affinity & (1u64 << cpu) == 0 {
                    fail(
                        &mut res,
                        Some(idx),
                        time,
                        format!("thread {thread} enqueued on cpu {cpu} outside its affinity"),
                    );
                }
                let t = &mut threads[thread as usize];
                t.queued_on = Some(cpu);
                if !queues[cpu as usize].contains(&thread) {
                    queues[cpu as usize].push(thread);
                }
            }
            Rec::Dequeue { cpu, thread, .. } => {
                threads[thread as usize].queued_on = None;
                queues[cpu as usize].retain(|&t| t != thread);
            }
            Rec::SwitchIn { cpu, thread, .. } => {
                res.stats.affinity_checks += 1;
                if out.threads[thread as usize].affinity & (1u64 << cpu) == 0 {
                    fail(
                        &mut res,
                        Some(idx),
                        time,
                        format!("thread {thread} switched in on cpu {cpu} outside its affinity"),
                    );
                }
                if let Some(other) = running[cpu as usize] {
                    fail(
                        &mut res,
                        Some(idx),
                        time,
                        format!(
                            "overlapping stints on cpu {cpu}: thread {thread} switched in while \
                             thread {other} still running"
                        ),
                    );
                }
                running[cpu as usize] = Some(thread);
                cyc_mark[cpu as usize] = Some(time);
                let t = &mut threads[thread as usize];
                t.queued_on = None;
                t.running_on = Some(cpu);
                t.stint_start = time;
                queues[cpu as usize].retain(|&q| q != thread);
            }
            Rec::SwitchOut {
                cpu, thread, state, ..
            } => {
                if running[cpu as usize] != Some(thread) {
                    fail(
                        &mut res,
                        Some(idx),
                        time,
                        format!("switch-out of thread {thread} that is not running on cpu {cpu}"),
                    );
                } else if time < threads[thread as usize].stint_start {
                    // Only reachable on corrupt streams (a mutation can
                    // push a ghost switch-in past its switch-out).
                    fail(
                        &mut res,
                        Some(idx),
                        time,
                        format!("switch-out of thread {thread} predates its switch-in"),
                    );
                } else {
                    running[cpu as usize] = None;
                    if let Some(m) = cyc_mark[cpu as usize].take() {
                        cyc[cpu as usize] +=
                            time.saturating_sub(m) as u128 * khz[cpu as usize] as u128;
                    }
                    let t = &mut threads[thread as usize];
                    let dur = time - t.stint_start;
                    t.cum_ns += dur;
                    t.running_on = None;
                    stint_ns[cpu as usize] += dur;
                    res.stats.stints += 1;
                    if state == noiselab_kernel::ThreadState::Exited {
                        t.exited = true;
                    }
                }
            }
            Rec::Preempt { .. } => {}
            Rec::Migrate { thread, to_cpu, .. } => {
                res.stats.affinity_checks += 1;
                if out.threads[thread as usize].affinity & (1u64 << to_cpu) == 0 {
                    fail(
                        &mut res,
                        Some(idx),
                        time,
                        format!("thread {thread} migrated to cpu {to_cpu} outside its affinity"),
                    );
                }
                // A steal: the thread leaves a foreign runqueue now;
                // the stealer's switch-in follows. A wake migration
                // (already queued on `to_cpu`) needs no bookkeeping.
                let t = &mut threads[thread as usize];
                if let Some(from) = t.queued_on {
                    if from != to_cpu {
                        queues[from as usize].retain(|&q| q != thread);
                        t.queued_on = None;
                    }
                }
            }
            Rec::IrqSpan {
                cpu, duration_ns, ..
            } => {
                irq_ns[cpu as usize] += duration_ns;
                res.stats.irq_spans += 1;
            }
            Rec::PolicySwitch { thread, rt, .. } => {
                threads[thread as usize].class = if rt {
                    RtClass::RtUnknown
                } else {
                    RtClass::Fair
                };
            }
            Rec::Decision { .. } => {}
            Rec::FreqTransition {
                cpu,
                from_khz,
                to_khz,
                ..
            } => {
                res.stats.freq_transitions += 1;
                let c = cpu as usize;
                if !dvfs.enabled {
                    fail(
                        &mut res,
                        Some(idx),
                        time,
                        format!("DVFS disabled but cpu {cpu} recorded a frequency transition"),
                    );
                    continue;
                }
                if from_khz as u64 != khz[c] {
                    fail(
                        &mut res,
                        Some(idx),
                        time,
                        format!(
                            "cpu {cpu} frequency chain broken: transition claims from \
                             {from_khz} kHz but the replayed frequency is {} kHz",
                            khz[c]
                        ),
                    );
                }
                if ![dvfs.min_khz, dvfs.base_khz, dvfs.turbo_khz].contains(&to_khz) {
                    fail(
                        &mut res,
                        Some(idx),
                        time,
                        format!("cpu {cpu} transitioned to unconfigured frequency {to_khz} kHz"),
                    );
                }
                if throttled[c] && to_khz > dvfs.min_khz {
                    fail(
                        &mut res,
                        Some(idx),
                        time,
                        format!("cpu {cpu} raised frequency to {to_khz} kHz while throttled"),
                    );
                }
                // Close the cycle segment at the old frequency; the
                // kernel charges the running thread before every
                // frequency change, so this is exact.
                if let Some(m) = cyc_mark[c] {
                    cyc[c] += time.saturating_sub(m) as u128 * khz[c] as u128;
                    cyc_mark[c] = Some(time);
                }
                // Per-package turbo budget, meaningful only when turbo
                // is a distinct level.
                if dvfs.turbo_khz > dvfs.base_khz {
                    let pkg = dvfs.package_of(cpu) as usize;
                    if khz[c] == dvfs.turbo_khz as u64 {
                        turbo_now[pkg] = turbo_now[pkg].saturating_sub(1);
                    }
                    if to_khz == dvfs.turbo_khz {
                        turbo_now[pkg] += 1;
                        if turbo_now[pkg] > dvfs.turbo_slots {
                            fail(
                                &mut res,
                                Some(idx),
                                time,
                                format!(
                                    "package {pkg}: {} CPUs at turbo exceeds the budget of {}",
                                    turbo_now[pkg], dvfs.turbo_slots
                                ),
                            );
                        }
                    }
                }
                khz[c] = to_khz as u64;
            }
            Rec::Throttle {
                cpu,
                heat_milli,
                entered,
                ..
            } => {
                res.stats.throttle_events += 1;
                let c = cpu as usize;
                if !dvfs.enabled {
                    fail(
                        &mut res,
                        Some(idx),
                        time,
                        format!("DVFS disabled but cpu {cpu} recorded a throttle event"),
                    );
                    continue;
                }
                if entered == throttled[c] {
                    fail(
                        &mut res,
                        Some(idx),
                        time,
                        format!(
                            "cpu {cpu} throttle records do not alternate: {} twice in a row",
                            if entered { "entered" } else { "exited" }
                        ),
                    );
                }
                if entered && heat_milli < dvfs.throttle_at {
                    fail(
                        &mut res,
                        Some(idx),
                        time,
                        format!(
                            "cpu {cpu} throttled at {heat_milli} milli-heat, below the \
                             threshold of {}",
                            dvfs.throttle_at
                        ),
                    );
                }
                if !entered && heat_milli > dvfs.release_at {
                    fail(
                        &mut res,
                        Some(idx),
                        time,
                        format!(
                            "cpu {cpu} left throttle at {heat_milli} milli-heat, above the \
                             release point of {}",
                            dvfs.release_at
                        ),
                    );
                }
                throttled[c] = entered;
            }
        }
    }
    stable_instant_checks(
        &mut res,
        &threads,
        &running,
        &queues,
        cur_time,
        fairness_probe,
        fairness_bound,
    );

    // Conservation against the kernel's own per-CPU accounting.
    for c in 0..n_cpus {
        if irq_ns[c] != out.cpu_irq[c] {
            res.violations.push(Violation {
                index: None,
                time: cur_time,
                what: format!(
                    "cpu {c}: IRQ spans sum to {} ns but the kernel charged {} ns",
                    irq_ns[c], out.cpu_irq[c]
                ),
            });
        }
        if out.all_exited && stint_ns[c] != out.cpu_busy[c] {
            res.violations.push(Violation {
                index: None,
                time: cur_time,
                what: format!(
                    "cpu {c}: on-CPU stints sum to {} ns but the kernel charged {} ns busy",
                    stint_ns[c], out.cpu_busy[c]
                ),
            });
        }
        // Frequency-scaled cycle conservation: the kernel's cycle
        // counter must equal the stint stream replayed at the recorded
        // frequencies, nanosecond for nanosecond.
        if dvfs.enabled && out.all_exited && c < out.cycles.len() {
            res.stats.cycle_checks += 1;
            if cyc[c] != out.cycles[c] {
                res.violations.push(Violation {
                    index: None,
                    time: cur_time,
                    what: format!(
                        "cpu {c}: replaying stints at the recorded frequencies yields {} \
                         cycles but the kernel charged {}",
                        cyc[c], out.cycles[c]
                    ),
                });
            }
        }
    }
    res
}

#[allow(clippy::too_many_arguments)]
fn stable_instant_checks(
    res: &mut InvariantOutcome,
    threads: &[Track],
    running: &[Option<u32>],
    queues: &[Vec<u32>],
    time: u64,
    fairness_probe: bool,
    fairness_bound: u64,
) {
    res.stats.stable_instants += 1;
    for (c, q) in queues.iter().enumerate() {
        if running[c].is_none() && !q.is_empty() {
            res.violations.push(Violation {
                index: None,
                time,
                what: format!(
                    "work conservation: cpu {c} idle with {} thread(s) queued ({:?})",
                    q.len(),
                    q
                ),
            });
        }
        // RT supremacy: the best queued FIFO thread never outranks the
        // runner.
        let best_queued: Option<RtClass> = q
            .iter()
            .filter_map(|&t| match threads[t as usize].class {
                RtClass::Fair => None,
                rt => Some(rt),
            })
            .fold(None, |acc, rt| {
                Some(match (acc, rt) {
                    (None, rt) => rt,
                    (Some(RtClass::Rt(a)), RtClass::Rt(b)) => RtClass::Rt(a.max(b)),
                    (Some(_), RtClass::RtUnknown) | (Some(RtClass::RtUnknown), _) => {
                        RtClass::RtUnknown
                    }
                    (Some(acc), _) => acc,
                })
            });
        if let Some(queued_rt) = best_queued {
            match running[c].map(|t| threads[t as usize].class) {
                Some(RtClass::Fair) => res.violations.push(Violation {
                    index: None,
                    time,
                    what: format!(
                        "rt supremacy: cpu {c} runs a fair thread while a FIFO thread waits"
                    ),
                }),
                Some(RtClass::Rt(run_prio)) => {
                    if let RtClass::Rt(qp) = queued_rt {
                        if qp > run_prio {
                            res.violations.push(Violation {
                                index: None,
                                time,
                                what: format!(
                                    "rt supremacy: cpu {c} runs FIFO prio {run_prio} while \
                                     prio {qp} waits"
                                ),
                            });
                        }
                    }
                }
                // Unknown-priority runner or an idle CPU: the idle case
                // is already a work-conservation violation above.
                _ => {}
            }
        }
    }
    if fairness_probe {
        let mut lo = u64::MAX;
        let mut hi = 0u64;
        let mut live = 0;
        for t in threads {
            if t.exited {
                continue;
            }
            let cum = t.cum_ns
                + t.running_on
                    .map_or(0, |_| time.saturating_sub(t.stint_start));
            lo = lo.min(cum);
            hi = hi.max(cum);
            live += 1;
        }
        if live >= 2 {
            res.stats.fairness_samples += 1;
            if hi - lo > fairness_bound {
                res.violations.push(Violation {
                    index: None,
                    time,
                    what: format!(
                        "fairness: cumulative on-CPU spread {} ns exceeds bound {} ns",
                        hi - lo,
                        fairness_bound
                    ),
                });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::Mutation;
    use crate::runner::run;
    use crate::scenario::Scenario;
    use noiselab_kernel::{ThreadKind, ThreadState};
    use noiselab_sim::Rng;

    #[test]
    fn clean_runs_satisfy_every_invariant() {
        let mut rng = Rng::new(0x1B4);
        let mut stats = InvariantStats::default();
        for _ in 0..40 {
            let sc = Scenario::generate(&mut rng, true);
            let out = run(&sc);
            let r = check_invariants(&out, sc.fairness_probe);
            assert!(
                r.violations.is_empty(),
                "{}\n{}",
                r.violations[0],
                sc.repro_line()
            );
            stats.stints += r.stats.stints;
            stats.irq_spans += r.stats.irq_spans;
            stats.fairness_samples += r.stats.fairness_samples;
        }
        assert!(stats.stints > 300, "{stats:?}");
        assert!(stats.irq_spans > 100, "{stats:?}");
        assert!(stats.fairness_samples > 50, "{stats:?}");
    }

    #[test]
    fn dropped_irq_span_breaks_conservation() {
        let mut rng = Rng::new(0xD50);
        for _ in 0..10 {
            let sc = Scenario::generate(&mut rng, false);
            let mut out = run(&sc);
            let masks: Vec<u64> = out.threads.iter().map(|t| t.affinity).collect();
            if Mutation::DropIrqSpan.apply(&mut out.records, &masks, out.topo.n_cpus() as u32) {
                let r = check_invariants(&out, false);
                assert!(
                    r.violations.iter().any(|v| v.what.contains("IRQ spans")),
                    "dropped span not caught"
                );
                return;
            }
        }
        panic!("no scenario produced a timer span");
    }

    #[test]
    fn ghost_run_breaks_stint_accounting() {
        let mut rng = Rng::new(0x6057);
        let sc = Scenario::generate(&mut rng, false);
        let mut out = run(&sc);
        let masks: Vec<u64> = out.threads.iter().map(|t| t.affinity).collect();
        assert!(Mutation::GhostRun.apply(&mut out.records, &masks, out.topo.n_cpus() as u32));
        let r = check_invariants(&out, false);
        assert!(!r.violations.is_empty(), "ghost switch-in not caught");
    }

    #[test]
    fn affinity_break_is_caught() {
        let mut rng = Rng::new(0xAF1);
        for _ in 0..30 {
            let sc = Scenario::generate(&mut rng, false);
            let mut out = run(&sc);
            let masks: Vec<u64> = out.threads.iter().map(|t| t.affinity).collect();
            if Mutation::AffinityBreak.apply(&mut out.records, &masks, out.topo.n_cpus() as u32) {
                let r = check_invariants(&out, false);
                assert!(
                    r.violations.iter().any(|v| v.what.contains("affinity")),
                    "affinity break not caught"
                );
                return;
            }
        }
        panic!("no scenario had a pinned thread to break");
    }

    /// Synthetic stream: a FIFO thread waits while a fair thread runs.
    #[test]
    fn rt_supremacy_violation_on_synthetic_stream() {
        let out = synthetic_outcome(
            vec![
                Rec::SwitchIn {
                    cpu: 0,
                    thread: 0,
                    kind: ThreadKind::Workload,
                    time: 0,
                    runq_depth: 0,
                },
                Rec::Enqueue {
                    cpu: 0,
                    thread: 1,
                    time: 10,
                    depth: 1,
                },
                // Time advances with the FIFO thread still queued.
                Rec::SwitchOut {
                    cpu: 0,
                    thread: 0,
                    time: 1_000,
                    state: ThreadState::Exited,
                },
            ],
            vec![Policy::Other { nice: 0 }, Policy::Fifo { prio: 3 }],
        );
        let r = check_invariants(&out, false);
        assert!(
            r.violations.iter().any(|v| v.what.contains("rt supremacy")),
            "{:?}",
            r.violations
        );
    }

    /// Synthetic stream: a CPU goes idle with work queued.
    #[test]
    fn work_conservation_violation_on_synthetic_stream() {
        let out = synthetic_outcome(
            vec![
                Rec::Enqueue {
                    cpu: 0,
                    thread: 0,
                    time: 0,
                    depth: 1,
                },
                Rec::IrqSpan {
                    cpu: 0,
                    time: 500,
                    duration_ns: 0,
                    timer: false,
                    softirq: false,
                },
            ],
            vec![Policy::Other { nice: 0 }],
        );
        let r = check_invariants(&out, false);
        assert!(
            r.violations
                .iter()
                .any(|v| v.what.contains("work conservation")),
            "{:?}",
            r.violations
        );
    }

    fn synthetic_outcome(records: Vec<Rec>, policies: Vec<Policy>) -> RunOutcome {
        use crate::runner::{SchedParams, ThreadMeta, Topo};
        RunOutcome {
            records,
            threads: policies
                .into_iter()
                .map(|policy| ThreadMeta {
                    policy,
                    affinity: u64::MAX,
                    exited: false,
                })
                .collect(),
            topo: Topo {
                cores: 1,
                smt: 1,
                numa: 1,
            },
            params: SchedParams {
                wakeup_granularity_ns: 1_000_000,
                min_granularity_ns: 3_000_000,
                tick_ns: 1_000_000,
            },
            cpu_busy: vec![0],
            cpu_irq: vec![0],
            all_exited: false,
            dvfs: noiselab_machine::DvfsConfig::default(),
            cycles: Vec::new(),
        }
    }

    /// A scenario guaranteed to boost and throttle: one hot CPU-bound
    /// thread under an aggressive thermal envelope.
    fn dvfs_scenario(seed: u64, governor: noiselab_machine::Governor) -> Scenario {
        use crate::scenario::{FaultKnobs, Step, ThreadPlan};
        use noiselab_machine::DvfsConfig;
        let mut sc = Scenario {
            seed,
            cores: 2,
            smt: 1,
            numa: 1,
            tickless: false,
            tick_us: 1_000,
            horizon_us: 0,
            fairness_probe: false,
            threads: vec![
                ThreadPlan {
                    rt_prio: 0,
                    nice: 0,
                    pin: None,
                    start_us: 0,
                    steps: vec![Step::Burn { us: 2_000 }],
                },
                ThreadPlan {
                    rt_prio: 0,
                    nice: 0,
                    pin: None,
                    start_us: 0,
                    steps: vec![
                        Step::Burn { us: 1_000 },
                        Step::Sleep { us: 500 },
                        Step::Burn { us: 1_000 },
                    ],
                },
            ],
            irqs: Vec::new(),
            faults: FaultKnobs::default(),
            dvfs: DvfsConfig {
                enabled: true,
                governor,
                turbo_slots: 1,
                heat_turbo: 4_000,
                heat_base: 500,
                cool: 1_000,
                throttle_at: 200_000,
                release_at: 100_000,
                ..DvfsConfig::default()
            },
        };
        sc.sanitize();
        sc
    }

    #[test]
    fn clean_dvfs_runs_satisfy_frequency_invariants() {
        use noiselab_machine::Governor;
        let mut total = InvariantStats::default();
        for (i, gov) in Governor::ALL.iter().enumerate() {
            let sc = dvfs_scenario(0xD1F5 + i as u64, *gov);
            let out = run(&sc);
            let r = check_invariants(&out, false);
            assert!(
                r.violations.is_empty(),
                "{}\n{}",
                r.violations[0],
                sc.repro_line()
            );
            total.freq_transitions += r.stats.freq_transitions;
            total.throttle_events += r.stats.throttle_events;
            total.cycle_checks += r.stats.cycle_checks;
        }
        // The checks must actually fire: boosts happen under every
        // governor with runnable work, and the hot envelope throttles.
        assert!(total.freq_transitions >= 6, "{total:?}");
        assert!(total.throttle_events >= 2, "{total:?}");
        assert!(total.cycle_checks >= 6, "{total:?}");
    }

    #[test]
    fn disabled_dvfs_stream_has_no_frequency_records() {
        let mut sc = dvfs_scenario(0x0FF, noiselab_machine::Governor::Performance);
        sc.dvfs = noiselab_machine::DvfsConfig::default();
        sc.sanitize();
        let out = run(&sc);
        assert!(out.records.iter().all(|r| !matches!(
            r,
            crate::record::Rec::FreqTransition { .. } | crate::record::Rec::Throttle { .. }
        )));
        assert!(out.cycles.is_empty());
        let r = check_invariants(&out, false);
        assert!(r.violations.is_empty());
    }

    #[test]
    fn turbo_leak_breaks_the_frequency_chain() {
        let sc = dvfs_scenario(0x7EA6, noiselab_machine::Governor::Performance);
        let mut out = run(&sc);
        let masks: Vec<u64> = out.threads.iter().map(|t| t.affinity).collect();
        assert!(
            Mutation::TurboLeak.apply(&mut out.records, &masks, out.topo.n_cpus() as u32),
            "no turbo-leaving transition with a successor to drop\n{}",
            sc.repro_line()
        );
        let r = check_invariants(&out, false);
        assert!(
            r.violations
                .iter()
                .any(|v| v.what.contains("chain") || v.what.contains("cycles")),
            "turbo leak not caught: {:?}",
            r.violations
        );
    }

    #[test]
    fn throttle_early_violates_hysteresis() {
        let sc = dvfs_scenario(0x7E01, noiselab_machine::Governor::Performance);
        let mut out = run(&sc);
        let masks: Vec<u64> = out.threads.iter().map(|t| t.affinity).collect();
        assert!(
            Mutation::ThrottleEarly.apply(&mut out.records, &masks, out.topo.n_cpus() as u32),
            "no throttle-enter to rewrite\n{}",
            sc.repro_line()
        );
        let r = check_invariants(&out, false);
        assert!(
            r.violations.iter().any(|v| v.what.contains("below the")),
            "early throttle not caught: {:?}",
            r.violations
        );
    }

    #[test]
    fn ghost_turbo_is_caught() {
        let sc = dvfs_scenario(0x0006_0572, noiselab_machine::Governor::Performance);
        let mut out = run(&sc);
        let masks: Vec<u64> = out.threads.iter().map(|t| t.affinity).collect();
        assert!(
            Mutation::GhostTurbo.apply(&mut out.records, &masks, out.topo.n_cpus() as u32),
            "no boost to duplicate\n{}",
            sc.repro_line()
        );
        let r = check_invariants(&out, false);
        assert!(
            r.violations.iter().any(|v| v.what.contains("chain")),
            "ghost turbo not caught: {:?}",
            r.violations
        );
    }

    #[test]
    fn throttle_stuck_is_caught() {
        let sc = dvfs_scenario(0x57CC, noiselab_machine::Governor::Performance);
        let mut out = run(&sc);
        let masks: Vec<u64> = out.threads.iter().map(|t| t.affinity).collect();
        assert!(
            Mutation::ThrottleStuck.apply(&mut out.records, &masks, out.topo.n_cpus() as u32),
            "no throttle-exit to drop\n{}",
            sc.repro_line()
        );
        let r = check_invariants(&out, false);
        assert!(
            r.violations
                .iter()
                .any(|v| v.what.contains("while throttled") || v.what.contains("alternate")),
            "stuck throttle not caught: {:?}",
            r.violations
        );
    }
}
