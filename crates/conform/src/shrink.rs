//! Failure shrinking: reduce a failing scenario to a minimal
//! replayable repro.
//!
//! Classic greedy delta-debugging over the scenario structure: try a
//! round of simplifications (drop a thread, drop an IRQ, drop fault
//! knobs, truncate scripts, halve durations, flatten topology), keep
//! any candidate that still fails, and repeat to a fixpoint or until
//! the re-run budget is spent. Every accepted candidate is
//! [`Scenario::sanitize`]d first so shrinking can never manufacture a
//! structurally invalid scenario that "fails" for the wrong reason.

use crate::scenario::{Scenario, Step};

/// Shrink `sc` against `still_fails`, re-running at most `budget`
/// candidates. Returns the smallest failing scenario found (possibly
/// the input itself).
pub fn shrink(
    sc: &Scenario,
    still_fails: &mut dyn FnMut(&Scenario) -> bool,
    budget: u32,
) -> Scenario {
    let mut best = sc.clone();
    let mut runs = 0u32;
    loop {
        let mut improved = false;
        for mut cand in candidates(&best) {
            if runs >= budget {
                return best;
            }
            cand.sanitize();
            if cand == best {
                continue;
            }
            runs += 1;
            if still_fails(&cand) {
                best = cand;
                improved = true;
                break; // restart candidate generation from the new best
            }
        }
        if !improved {
            return best;
        }
    }
}

/// One round of candidate simplifications, most aggressive first.
fn candidates(sc: &Scenario) -> Vec<Scenario> {
    let mut out = Vec::new();

    // Drop one thread (highest index first keeps abort indices simple).
    if sc.threads.len() > 1 {
        for i in (0..sc.threads.len()).rev() {
            let mut c = sc.clone();
            c.threads.remove(i);
            let i = i as u32;
            c.faults.aborts.retain(|a| a.thread != i);
            for a in &mut c.faults.aborts {
                if a.thread > i {
                    a.thread -= 1;
                }
            }
            out.push(c);
        }
    }

    // Drop one injected IRQ.
    for i in 0..sc.irqs.len() {
        let mut c = sc.clone();
        c.irqs.remove(i);
        out.push(c);
    }

    // Drop the DVFS axis entirely, then try the tamest governor: a
    // failure that survives either is not a frequency bug.
    if sc.dvfs.enabled {
        let mut c = sc.clone();
        c.dvfs = noiselab_machine::DvfsConfig::default();
        out.push(c);
        if sc.dvfs.governor != noiselab_machine::Governor::Powersave {
            let mut c = sc.clone();
            c.dvfs.governor = noiselab_machine::Governor::Powersave;
            out.push(c);
        }
    }

    // Drop fault knobs.
    if sc.faults.lost_tick_prob > 0.0 {
        let mut c = sc.clone();
        c.faults.lost_tick_prob = 0.0;
        out.push(c);
    }
    if sc.faults.spurious_per_sec > 0.0 {
        let mut c = sc.clone();
        c.faults.spurious_per_sec = 0.0;
        out.push(c);
    }
    for i in 0..sc.faults.aborts.len() {
        let mut c = sc.clone();
        c.faults.aborts.remove(i);
        out.push(c);
    }

    // Truncate one thread's script by its last step.
    for (i, t) in sc.threads.iter().enumerate() {
        if t.steps.len() > 1 {
            let mut c = sc.clone();
            c.threads[i].steps.pop();
            out.push(c);
        }
    }

    // Halve every duration in one thread's script.
    for i in 0..sc.threads.len() {
        let mut c = sc.clone();
        let mut changed = false;
        for s in &mut c.threads[i].steps {
            match s {
                Step::Burn { us } | Step::Sleep { us } if *us > 1 => {
                    *us /= 2;
                    changed = true;
                }
                Step::Compute { kflops } if *kflops > 1 => {
                    *kflops /= 2;
                    changed = true;
                }
                _ => {}
            }
        }
        if changed {
            out.push(c);
        }
    }

    // Flatten topology.
    if sc.smt > 1 {
        let mut c = sc.clone();
        c.smt = 1;
        out.push(c);
    }
    if sc.numa > 1 {
        let mut c = sc.clone();
        c.numa = 1;
        out.push(c);
    }
    if sc.cores > 1 {
        let mut c = sc.clone();
        c.cores -= 1;
        out.push(c);
    }

    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::{AbortPlan, FaultKnobs, IrqPlan, ThreadPlan};
    use noiselab_sim::Rng;

    #[test]
    fn shrinks_to_a_single_small_thread_when_anything_fails() {
        // Failure predicate "always fails": the shrinker should reach
        // rock bottom — one thread, minimal script, no IRQs/faults.
        let mut rng = Rng::new(77);
        let sc = Scenario::generate(&mut rng, true);
        let small = shrink(&sc, &mut |_| true, 500);
        assert_eq!(small.threads.len(), 1);
        assert!(small.irqs.is_empty());
        assert!(small.faults.aborts.is_empty());
        assert_eq!(small.cores, 1);
        assert_eq!(small.smt, 1);
    }

    #[test]
    fn preserves_the_failure_trigger() {
        // Failure depends on a specific thread count: shrinking must
        // not cross below it.
        let mut rng = Rng::new(78);
        let sc = Scenario::generate(&mut rng, true);
        let small = shrink(&sc, &mut |c| c.threads.len() >= 2, 500);
        assert_eq!(small.threads.len(), 2);
    }

    #[test]
    fn abort_indices_survive_thread_removal() {
        let mut sc = Scenario {
            seed: 1,
            cores: 1,
            smt: 1,
            numa: 1,
            tickless: true,
            tick_us: 1_000,
            horizon_us: 0,
            fairness_probe: false,
            threads: (0..3)
                .map(|_| ThreadPlan {
                    rt_prio: 0,
                    nice: 0,
                    pin: None,
                    start_us: 0,
                    steps: vec![Step::Burn { us: 100 }],
                })
                .collect(),
            irqs: vec![IrqPlan {
                cpu: 0,
                at_us: 0,
                dur_ns: 1_000,
            }],
            faults: FaultKnobs {
                lost_tick_prob: 0.0,
                spurious_per_sec: 0.0,
                aborts: vec![AbortPlan {
                    thread: 2,
                    at_us: 50,
                }],
            },
            dvfs: noiselab_machine::DvfsConfig::default(),
        };
        sc.sanitize();
        // Require the abort to survive: only thread removals that keep
        // a valid abort target are acceptable.
        let small = shrink(&sc, &mut |c| !c.faults.aborts.is_empty(), 500);
        let target = small.faults.aborts[0].thread as usize;
        assert!(
            target < small.threads.len(),
            "abort target {target} out of range for {} threads",
            small.threads.len()
        );
    }
}
