//! Branch-coverage signatures over scheduler decision points.
//!
//! The production kernel announces every decision branch it takes
//! through [`DecisionPoint`] records. The fuzzer turns one run's
//! stream into a fixed-size bit signature:
//!
//! * 16 bits — each decision point hit at least once;
//! * 256 bits — ordered per-CPU decision pairs (`prev -> next`), the
//!   scheduler-trace analogue of AFL edge coverage;
//! * 4 bits — enqueue-depth buckets (0–1, 2–3, 4–7, 8+), so scenarios
//!   that build deep runqueues count as new behaviour.
//!
//! A scenario earns a place in the corpus iff its signature sets a bit
//! the accumulated [`CoverageMap`] has never seen.

use crate::record::Rec;
use noiselab_kernel::DecisionPoint;

const POINTS: usize = DecisionPoint::ALL.len();
const SIG_BITS: usize = POINTS + POINTS * POINTS + 4;
const SIG_WORDS: usize = SIG_BITS.div_ceil(64);

/// One run's coverage signature.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Signature {
    bits: [u64; SIG_WORDS],
}

impl Signature {
    /// Distill a record stream into its signature.
    pub fn of(records: &[Rec]) -> Signature {
        let mut sig = Signature {
            bits: [0; SIG_WORDS],
        };
        // Last decision point seen on each CPU (for edge pairs).
        let mut prev: Vec<Option<usize>> = Vec::new();
        for rec in records {
            match *rec {
                Rec::Decision { cpu, point, .. } => {
                    let p = point.index();
                    sig.set(p);
                    let c = cpu as usize;
                    if prev.len() <= c {
                        prev.resize(c + 1, None);
                    }
                    if let Some(q) = prev[c] {
                        sig.set(POINTS + q * POINTS + p);
                    }
                    prev[c] = Some(p);
                }
                Rec::Enqueue { depth, .. } => {
                    let bucket = match depth {
                        0..=1 => 0,
                        2..=3 => 1,
                        4..=7 => 2,
                        _ => 3,
                    };
                    sig.set(POINTS + POINTS * POINTS + bucket);
                }
                _ => {}
            }
        }
        sig
    }

    fn set(&mut self, bit: usize) {
        self.bits[bit / 64] |= 1u64 << (bit % 64);
    }

    pub fn count(&self) -> u32 {
        self.bits.iter().map(|w| w.count_ones()).sum()
    }
}

/// Accumulated coverage across a whole fuzzing campaign.
#[derive(Debug, Clone, Default)]
pub struct CoverageMap {
    bits: [u64; SIG_WORDS],
}

impl CoverageMap {
    pub fn new() -> CoverageMap {
        CoverageMap {
            bits: [0; SIG_WORDS],
        }
    }

    /// Merge a signature in; returns how many bits were new.
    pub fn merge(&mut self, sig: &Signature) -> u32 {
        let mut new = 0;
        for (acc, s) in self.bits.iter_mut().zip(sig.bits.iter()) {
            new += (s & !*acc).count_ones();
            *acc |= s;
        }
        new
    }

    /// Would this signature add anything?
    pub fn is_novel(&self, sig: &Signature) -> bool {
        self.bits
            .iter()
            .zip(sig.bits.iter())
            .any(|(acc, s)| s & !acc != 0)
    }

    pub fn count(&self) -> u32 {
        self.bits.iter().map(|w| w.count_ones()).sum()
    }

    /// Names of the plain decision points covered so far.
    pub fn covered_points(&self) -> Vec<&'static str> {
        DecisionPoint::ALL
            .iter()
            .filter(|p| self.bits[p.index() / 64] & (1 << (p.index() % 64)) != 0)
            .map(|p| p.name())
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::run;
    use crate::scenario::Scenario;
    use noiselab_sim::Rng;

    #[test]
    fn signature_is_deterministic_and_nonempty() {
        let mut rng = Rng::new(21);
        let sc = Scenario::generate(&mut rng, true);
        let out = run(&sc);
        let a = Signature::of(&out.records);
        let b = Signature::of(&out.records);
        assert_eq!(a, b);
        assert!(a.count() > 0);
    }

    #[test]
    fn merge_reports_only_new_bits() {
        let mut rng = Rng::new(22);
        let sc = Scenario::generate(&mut rng, true);
        let out = run(&sc);
        let sig = Signature::of(&out.records);
        let mut map = CoverageMap::new();
        assert!(map.is_novel(&sig));
        let first = map.merge(&sig);
        assert_eq!(first, sig.count());
        assert!(!map.is_novel(&sig));
        assert_eq!(map.merge(&sig), 0);
        assert_eq!(map.count(), sig.count());
    }

    #[test]
    fn a_sweep_covers_most_decision_points() {
        let mut rng = Rng::new(23);
        let mut map = CoverageMap::new();
        for _ in 0..60 {
            let sc = Scenario::generate(&mut rng, true);
            let out = run(&sc);
            map.merge(&Signature::of(&out.records));
        }
        let covered = map.covered_points();
        // The generator must reach the bulk of the decision surface;
        // a handful of exotic branches may stay rare per-seed.
        assert!(covered.len() >= 10, "only covered {covered:?}");
    }

    #[test]
    fn dvfs_scenarios_reach_the_governor_decision_points() {
        let mut rng = Rng::new(0xF4E9);
        let mut map = CoverageMap::new();
        for _ in 0..80 {
            let sc = Scenario::generate(&mut rng, true);
            let out = run(&sc);
            map.merge(&Signature::of(&out.records));
        }
        let covered = map.covered_points();
        for p in [
            "turbo-grant",
            "throttle-enter",
            "throttle-exit",
            "freq-idle",
        ] {
            assert!(covered.contains(&p), "{p} never covered: {covered:?}");
        }
    }
}
