//! Fuzzable scheduler scenarios.
//!
//! A [`Scenario`] is a complete, serialisable description of one
//! conformance run: machine topology, per-thread scripts, injected
//! device interrupts and fault knobs. Scenarios come in two flavours:
//!
//! * **oracle-eligible** — every `SCHED_OTHER` thread runs at nice 0
//!   and every work step is followed by a sleep (or is the last step),
//!   so a thread's vruntime advances exactly one nanosecond per on-CPU
//!   wall nanosecond and every vruntime-charge instant coincides with
//!   an observable [`noiselab_kernel::SchedRecord`]. These scenarios
//!   run through the differential oracle, which re-derives every
//!   scheduling decision from first principles.
//! * **full** — arbitrary nice values, yields, barriers and policy
//!   switches. These are checked by the metamorphic invariants only.
//!
//! Both flavours are generated and mutated deterministically from a
//! seed, and every scenario round-trips through a single-line JSON
//! repro string (`// conform:repro {...}`) so a fuzzer failure can be
//! pasted straight into a test or `noiselab conform --replay`.

use noiselab_machine::{DvfsConfig, Governor};
use noiselab_sim::Rng;
use serde::{Deserialize, Serialize};

/// Marker prefix of a replayable repro line.
pub const REPRO_MARKER: &str = "conform:repro";

/// Hard cap on simulated CPUs in generated scenarios (keeps runs fast
/// and within `CpuSet`'s 64-bit mask).
pub const MAX_CORES: usize = 4;

/// One conformance scenario: everything needed to reproduce a run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Scenario {
    /// Kernel RNG seed (timer-IRQ noise, softirq draws).
    pub seed: u64,
    pub cores: usize,
    pub smt: usize,
    /// NUMA domains (1 = UMA).
    pub numa: usize,
    pub tickless: bool,
    pub tick_us: u64,
    pub horizon_us: u64,
    /// Marks a fairness-probe scenario: equal-weight CPU-bound threads
    /// pinned to CPU 0, asserted to stay within a bounded vruntime
    /// spread.
    #[serde(default)]
    pub fairness_probe: bool,
    pub threads: Vec<ThreadPlan>,
    #[serde(default)]
    pub irqs: Vec<IrqPlan>,
    #[serde(default)]
    pub faults: FaultKnobs,
    /// DVFS axis: per-CPU frequency governors, turbo budget and
    /// thermal throttling. Disabled by default (and absent from old
    /// repro lines), which keeps the record stream bit-identical to a
    /// frequency-free kernel.
    #[serde(default)]
    pub dvfs: DvfsConfig,
}

/// One simulated thread: policy, pinning, start time and script.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ThreadPlan {
    /// `SCHED_FIFO` priority; 0 means `SCHED_OTHER`.
    #[serde(default)]
    pub rt_prio: u8,
    /// Nice value when `rt_prio == 0`.
    #[serde(default)]
    pub nice: i8,
    /// CPUs the thread may run on; `None` = unpinned.
    #[serde(default)]
    pub pin: Option<Vec<u32>>,
    #[serde(default)]
    pub start_us: u64,
    pub steps: Vec<Step>,
}

/// One scripted action. The kernel appends an implicit `Exit`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Step {
    /// Occupy the CPU for `us` microseconds of CPU time.
    Burn { us: u64 },
    /// Execute `kflops` kiloflops of roofline compute.
    Compute { kflops: u64 },
    /// Sleep for `us` microseconds.
    Sleep { us: u64 },
    /// Give up the CPU, staying runnable (full mode only).
    Yield,
    /// Meet barrier `id`, spinning up to `spin_us` first (full mode).
    Barrier { id: u32, spin_us: u64 },
    /// Switch own scheduling policy (full mode only).
    SetPolicy { rt_prio: u8, nice: i8 },
}

/// A pre-scheduled device interrupt.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct IrqPlan {
    pub cpu: u32,
    pub at_us: u64,
    pub dur_ns: u64,
}

/// Deterministic fault-plan knobs folded into the fuzz space.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct FaultKnobs {
    /// Per-tick probability that the timer interrupt is lost.
    #[serde(default)]
    pub lost_tick_prob: f64,
    /// Spurious device-IRQ arrival rate (per simulated second).
    #[serde(default)]
    pub spurious_per_sec: f64,
    /// Threads torn down mid-run: `(thread index, abort time)`.
    #[serde(default)]
    pub aborts: Vec<AbortPlan>,
}

#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AbortPlan {
    pub thread: u32,
    pub at_us: u64,
}

impl Scenario {
    pub fn n_cpus(&self) -> usize {
        self.cores * self.smt
    }

    /// Can the differential oracle replay this scenario exactly?
    ///
    /// Requires: every fair thread at nice 0 (weight 1024, so vruntime
    /// advances 1 ns per charged ns with no integer-division residue),
    /// and scripts built only from work steps each followed by a sleep
    /// (or terminal) — then every vruntime charge instant coincides
    /// with an emitted scheduling record and the oracle can replay the
    /// CFS floor exactly. Yields, barriers and policy switches have
    /// hidden charge points and disqualify a scenario.
    pub fn is_oracle_eligible(&self) -> bool {
        // Frequency scaling changes compute rates mid-run at instants
        // the oracle does not replay; the frequency invariants own the
        // DVFS axis instead.
        if self.dvfs.enabled {
            return false;
        }
        self.threads.iter().all(|t| {
            (t.rt_prio > 0 || t.nice == 0)
                && t.steps.iter().enumerate().all(|(i, s)| match s {
                    Step::Burn { .. } | Step::Compute { .. } => match t.steps.get(i + 1) {
                        None => true,
                        Some(Step::Sleep { us }) => *us >= 1,
                        Some(_) => false,
                    },
                    Step::Sleep { us } => *us >= 1,
                    Step::Yield | Step::Barrier { .. } | Step::SetPolicy { .. } => false,
                })
        })
    }

    /// One-line replayable repro string.
    pub fn repro_line(&self) -> String {
        let json = serde_json::to_string(self).unwrap_or_else(|e| {
            // A scenario is a tree of plain values; serialisation cannot
            // fail short of allocation failure.
            format!("{{\"error\":\"{e}\"}}")
        });
        format!("// {REPRO_MARKER} {json}")
    }

    /// Parse a repro line (tolerates surrounding text and the comment
    /// prefix; also accepts bare JSON).
    pub fn from_repro_line(line: &str) -> Result<Scenario, String> {
        let json = match line.find(REPRO_MARKER) {
            Some(pos) => &line[pos + REPRO_MARKER.len()..],
            None => line,
        };
        serde_json::from_str(json.trim()).map_err(|e| format!("bad repro line: {e}"))
    }

    /// Generate a fresh scenario. `full` widens the space beyond the
    /// oracle-eligible subset (nice values, yields, barriers, policy
    /// switches, fairness probes).
    pub fn generate(rng: &mut Rng, full: bool) -> Scenario {
        if full && rng.chance(0.2) {
            return Self::generate_fairness_probe(rng);
        }
        let cores = 1 + rng.index(MAX_CORES);
        let smt = 1 + rng.index(2);
        let numa = if cores >= 2 && rng.chance(0.3) { 2 } else { 1 };
        let n_cpus = cores * smt;

        let n_threads = 2 + rng.index(5);
        let mut threads = Vec::with_capacity(n_threads);
        for _ in 0..n_threads {
            threads.push(Self::gen_thread(rng, n_cpus, full));
        }
        if full {
            Self::maybe_add_barrier_group(rng, &mut threads);
        }

        let mut irqs = Vec::new();
        for _ in 0..rng.index(6) {
            irqs.push(IrqPlan {
                cpu: rng.below(n_cpus as u64) as u32,
                at_us: rng.below(20_000),
                dur_ns: 5_000 + rng.below(295_000),
            });
        }

        let mut faults = FaultKnobs::default();
        if rng.chance(0.1) {
            faults.lost_tick_prob = 0.1;
        }
        if rng.chance(0.1) {
            faults.spurious_per_sec = 1_000.0 + rng.range_f64(0.0, 3_000.0);
        }
        if rng.chance(0.1) {
            faults.aborts.push(AbortPlan {
                thread: rng.below(n_threads as u64) as u32,
                at_us: rng.below(10_000),
            });
        }

        // DVFS rides only on full scenarios so the eligible-mode random
        // stream (and every oracle test seeded against it) is untouched.
        let dvfs = if full && rng.chance(0.35) {
            Self::gen_dvfs(rng)
        } else {
            DvfsConfig::default()
        };

        let mut sc = Scenario {
            seed: rng.next_u64(),
            cores,
            smt,
            numa,
            tickless: rng.chance(0.5),
            tick_us: if rng.chance(0.5) { 1_000 } else { 4_000 },
            horizon_us: 0,
            fairness_probe: false,
            threads,
            irqs,
            faults,
            dvfs,
        };
        sc.sanitize();
        sc
    }

    /// A DVFS configuration hot enough that generated scripts actually
    /// exercise turbo contention and thermal throttling within the
    /// scenario horizon (the shipped desktop defaults take ~100 ms of
    /// sustained turbo to throttle; fuzz scripts burn ~1 ms).
    fn gen_dvfs(rng: &mut Rng) -> DvfsConfig {
        let governor = Governor::ALL[rng.index(Governor::ALL.len())];
        let throttle_at = 100_000 + rng.below(400_000);
        let mut cfg = DvfsConfig {
            enabled: true,
            governor,
            package_cpus: if rng.chance(0.5) { 0 } else { 2 },
            turbo_slots: 1 + rng.below(2) as u32,
            heat_turbo: 2_000 + rng.below(4_000),
            heat_base: 200 + rng.below(800),
            cool: 500 + rng.below(1_500),
            throttle_at,
            release_at: throttle_at / 2,
            ..DvfsConfig::default()
        };
        cfg.sanitize();
        cfg
    }

    /// Equal-weight CPU-bound threads pinned to CPU 0: the fairness
    /// invariant's qualifying shape.
    fn generate_fairness_probe(rng: &mut Rng) -> Scenario {
        let n = 2 + rng.index(3);
        let burn = 8_000 + rng.below(12_000);
        let threads = (0..n)
            .map(|_| ThreadPlan {
                rt_prio: 0,
                nice: 0,
                pin: Some(vec![0]),
                start_us: 0,
                steps: vec![Step::Burn { us: burn }],
            })
            .collect();
        let mut sc = Scenario {
            seed: rng.next_u64(),
            cores: 1 + rng.index(2),
            smt: 1,
            numa: 1,
            tickless: rng.chance(0.5),
            tick_us: 1_000,
            horizon_us: 0,
            fairness_probe: true,
            threads,
            irqs: Vec::new(),
            faults: FaultKnobs::default(),
            dvfs: DvfsConfig::default(),
        };
        sc.sanitize();
        sc
    }

    fn gen_thread(rng: &mut Rng, n_cpus: usize, full: bool) -> ThreadPlan {
        let rt_prio = if rng.chance(0.2) {
            1 + rng.below(5) as u8
        } else {
            0
        };
        let nice = if full && rt_prio == 0 && rng.chance(0.3) {
            rng.below(7) as i8 - 3
        } else {
            0
        };
        let pin = if rng.chance(0.3) {
            let k = 1 + rng.index(n_cpus);
            let mut cpus: Vec<u32> = (0..n_cpus as u32).collect();
            rng.shuffle(&mut cpus);
            cpus.truncate(k);
            cpus.sort_unstable();
            Some(cpus)
        } else {
            None
        };

        let mut steps = Vec::new();
        let pairs = 1 + rng.index(3);
        for i in 0..pairs {
            if full && rng.chance(0.15) {
                steps.push(Step::Yield);
            }
            if rng.chance(0.8) {
                steps.push(Step::Burn {
                    us: 50 + rng.below(1_950),
                });
            } else {
                steps.push(Step::Compute {
                    kflops: 50 + rng.below(1_950),
                });
            }
            let last = i == pairs - 1;
            if !last || rng.chance(0.5) {
                steps.push(Step::Sleep {
                    us: 100 + rng.below(2_900),
                });
            }
        }
        if full && rt_prio == 0 && rng.chance(0.1) {
            let mid = steps.len() / 2;
            steps.insert(
                mid,
                Step::SetPolicy {
                    rt_prio: if rng.chance(0.5) {
                        1 + rng.below(3) as u8
                    } else {
                        0
                    },
                    nice: 0,
                },
            );
        }
        ThreadPlan {
            rt_prio,
            nice,
            pin,
            start_us: rng.below(3_000),
            steps,
        }
    }

    /// With some probability, rewrite a few threads into a consistent
    /// barrier group (same id, same number of rounds each).
    fn maybe_add_barrier_group(rng: &mut Rng, threads: &mut [ThreadPlan]) {
        if threads.len() < 2 || !rng.chance(0.3) {
            return;
        }
        let parties = 2 + rng.index(threads.len() - 1);
        let rounds = 1 + rng.index(2);
        for t in threads.iter_mut().take(parties) {
            let mut steps = Vec::new();
            for _ in 0..rounds {
                steps.push(Step::Burn {
                    us: 100 + rng.below(1_900),
                });
                steps.push(Step::Barrier {
                    id: 0,
                    spin_us: rng.below(100),
                });
            }
            t.steps = steps;
            t.rt_prio = 0;
        }
    }

    /// Derive one mutant: a structural tweak of an existing scenario.
    pub fn mutate(&self, rng: &mut Rng, full: bool) -> Scenario {
        let mut sc = self.clone();
        let arms = if full { 8 } else { 7 };
        match rng.index(arms) {
            0 => sc.seed = rng.next_u64(),
            1 => sc.tickless = !sc.tickless,
            2 => {
                let n = sc.n_cpus();
                sc.threads.push(Self::gen_thread(rng, n, full));
            }
            3 => {
                if sc.threads.len() > 1 {
                    let i = rng.index(sc.threads.len());
                    sc.threads.remove(i);
                }
            }
            4 => {
                let n = sc.n_cpus() as u64;
                sc.irqs.push(IrqPlan {
                    cpu: rng.below(n) as u32,
                    at_us: rng.below(20_000),
                    dur_ns: 5_000 + rng.below(295_000),
                });
            }
            5 => {
                let i = rng.index(sc.threads.len());
                let t = &mut sc.threads[i];
                for s in &mut t.steps {
                    match s {
                        Step::Burn { us } | Step::Sleep { us } => {
                            *us = (*us * (50 + rng.below(150)) / 100).max(1)
                        }
                        Step::Compute { kflops } => {
                            *kflops = (*kflops * (50 + rng.below(150)) / 100).max(1)
                        }
                        _ => {}
                    }
                }
            }
            6 => {
                let i = rng.index(sc.threads.len());
                sc.threads[i].rt_prio = if rng.chance(0.5) {
                    0
                } else {
                    1 + rng.below(5) as u8
                };
            }
            _ => {
                // DVFS axis (full mode only, `arms == 8`): toggle the
                // subsystem, hop governor, or squeeze the turbo budget.
                if sc.dvfs.enabled {
                    match rng.index(3) {
                        0 => sc.dvfs = DvfsConfig::default(),
                        1 => {
                            sc.dvfs.governor = Governor::ALL[rng.index(Governor::ALL.len())];
                        }
                        _ => {
                            sc.dvfs.turbo_slots = 1 + rng.below(2) as u32;
                            sc.dvfs.package_cpus = if rng.chance(0.5) { 0 } else { 2 };
                        }
                    }
                } else {
                    sc.dvfs = Self::gen_dvfs(rng);
                }
            }
        }
        sc.sanitize();
        sc
    }

    /// Does the scenario match the shape the bounded-fairness
    /// invariant is sound for: two or more equal-weight `SCHED_OTHER`
    /// threads, all pinned to CPU 0, each burning the same amount from
    /// t = 0, with no interrupts or faults?
    pub fn has_fairness_probe_shape(&self) -> bool {
        if self.threads.len() < 2 || !self.irqs.is_empty() || self.dvfs.enabled {
            return false;
        }
        let f = &self.faults;
        if f.lost_tick_prob > 0.0 || f.spurious_per_sec > 0.0 || !f.aborts.is_empty() {
            return false;
        }
        let burn = match self.threads[0].steps.as_slice() {
            [Step::Burn { us }] => *us,
            _ => return false,
        };
        self.threads.iter().all(|t| {
            t.rt_prio == 0
                && t.nice == 0
                && t.pin.as_deref() == Some(&[0])
                && t.start_us == 0
                && matches!(t.steps.as_slice(), [Step::Burn { us }] if *us == burn)
        })
    }

    /// Re-establish structural validity after generation, mutation or
    /// shrinking: clamp topology, fix pins and abort targets, make
    /// barrier groups consistent, and recompute a horizon generous
    /// enough for everything to finish.
    pub fn sanitize(&mut self) {
        self.cores = self.cores.clamp(1, MAX_CORES);
        self.smt = self.smt.clamp(1, 2);
        self.numa = self.numa.clamp(1, self.cores.max(1));
        self.tick_us = self.tick_us.clamp(100, 10_000);
        if self.threads.is_empty() {
            self.threads.push(ThreadPlan {
                rt_prio: 0,
                nice: 0,
                pin: None,
                start_us: 0,
                steps: vec![Step::Burn { us: 100 }],
            });
        }
        let n_cpus = self.n_cpus() as u32;
        for t in &mut self.threads {
            if let Some(pin) = &mut t.pin {
                pin.retain(|c| *c < n_cpus);
                pin.sort_unstable();
                pin.dedup();
                if pin.is_empty() {
                    t.pin = None;
                }
            }
        }
        self.irqs.retain(|i| i.cpu < n_cpus);
        let n_threads = self.threads.len() as u32;
        self.faults.aborts.retain(|a| a.thread < n_threads);
        self.dvfs.sanitize();

        // Barrier groups: every id must be referenced by >= 2 threads,
        // each the same number of times; otherwise strip the steps.
        let mut ids: Vec<u32> = self
            .threads
            .iter()
            .flat_map(|t| t.steps.iter())
            .filter_map(|s| match s {
                Step::Barrier { id, .. } => Some(*id),
                _ => None,
            })
            .collect();
        ids.sort_unstable();
        ids.dedup();
        for id in ids {
            let counts: Vec<usize> = self
                .threads
                .iter()
                .map(|t| {
                    t.steps
                        .iter()
                        .filter(|s| matches!(s, Step::Barrier { id: i, .. } if *i == id))
                        .count()
                })
                .filter(|&c| c > 0)
                .collect();
            let consistent = counts.len() >= 2 && counts.windows(2).all(|w| w[0] == w[1]);
            if !consistent {
                for t in &mut self.threads {
                    t.steps
                        .retain(|s| !matches!(s, Step::Barrier { id: i, .. } if *i == id));
                }
            }
        }

        // The fairness invariant only applies to the exact probe shape;
        // mutation or shrinking may have broken it, and a stale flag
        // would assert fairness over unequal-weight threads.
        self.fairness_probe = self.fairness_probe && self.has_fairness_probe_shape();

        // Horizon: generous over the worst serialisation of all work on
        // one SMT-contended CPU plus sleeps, spins and IRQ service.
        let mut work_us: u64 = 0;
        let mut sleep_us: u64 = 0;
        let mut start_max: u64 = 0;
        for t in &self.threads {
            start_max = start_max.max(t.start_us);
            for s in &t.steps {
                match s {
                    Step::Burn { us } => work_us += us,
                    Step::Compute { kflops } => work_us += kflops, // 1 kflop ~= 1 us at 1 flop/ns
                    Step::Sleep { us } => sleep_us += us,
                    Step::Barrier { spin_us, .. } => work_us += spin_us,
                    Step::Yield | Step::SetPolicy { .. } => {}
                }
            }
        }
        let irq_us: u64 = self.irqs.iter().map(|i| i.dur_ns / 1_000 + 1).sum();
        // Under DVFS a powersave or throttled CPU computes at
        // `min_khz / turbo_khz` of the roofline rate, stretching every
        // work step by up to the inverse ratio.
        let freq_stretch = if self.dvfs.enabled {
            (self.dvfs.turbo_khz as u64).div_ceil(self.dvfs.min_khz.max(1) as u64)
        } else {
            1
        };
        self.horizon_us = 20_000 + start_max + 4 * work_us * freq_stretch + sleep_us + irq_us;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn repro_line_round_trips() {
        let mut rng = Rng::new(7);
        for _ in 0..20 {
            let sc = Scenario::generate(&mut rng, true);
            let line = sc.repro_line();
            assert!(line.starts_with("// conform:repro {"));
            let back = Scenario::from_repro_line(&line).unwrap();
            assert_eq!(back, sc);
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let gen = |seed| {
            let mut rng = Rng::new(seed);
            (0..10)
                .map(|_| Scenario::generate(&mut rng, true))
                .collect::<Vec<_>>()
        };
        assert_eq!(gen(3), gen(3));
        assert_ne!(gen(3), gen(4));
    }

    #[test]
    fn eligible_generation_stays_eligible() {
        let mut rng = Rng::new(11);
        for _ in 0..50 {
            let sc = Scenario::generate(&mut rng, false);
            assert!(sc.is_oracle_eligible(), "{}", sc.repro_line());
        }
    }

    #[test]
    fn eligibility_rejects_hidden_charge_shapes() {
        let base = ThreadPlan {
            rt_prio: 0,
            nice: 0,
            pin: None,
            start_us: 0,
            steps: vec![Step::Burn { us: 10 }, Step::Burn { us: 10 }],
        };
        let sc = |t: ThreadPlan| Scenario {
            seed: 0,
            cores: 1,
            smt: 1,
            numa: 1,
            tickless: true,
            tick_us: 1_000,
            horizon_us: 1_000,
            fairness_probe: false,
            threads: vec![t],
            irqs: Vec::new(),
            faults: FaultKnobs::default(),
            dvfs: DvfsConfig::default(),
        };
        // Back-to-back work steps hide a charge at the first completion.
        assert!(!sc(base.clone()).is_oracle_eligible());
        let mut ok = base.clone();
        ok.steps = vec![Step::Burn { us: 10 }, Step::Sleep { us: 10 }];
        assert!(sc(ok).is_oracle_eligible());
        let mut niced = base;
        niced.steps = vec![Step::Burn { us: 10 }];
        niced.nice = 2;
        assert!(!sc(niced).is_oracle_eligible());
    }

    #[test]
    fn sanitize_repairs_broken_barrier_groups_and_pins() {
        let mut sc = Scenario {
            seed: 0,
            cores: 9, // clamped
            smt: 1,
            numa: 1,
            tickless: false,
            tick_us: 1_000,
            horizon_us: 0,
            fairness_probe: false,
            threads: vec![
                ThreadPlan {
                    rt_prio: 0,
                    nice: 0,
                    pin: Some(vec![63]), // out of range -> unpinned
                    start_us: 0,
                    steps: vec![
                        Step::Burn { us: 10 },
                        Step::Barrier { id: 5, spin_us: 0 }, // sole party
                    ],
                },
                ThreadPlan {
                    rt_prio: 0,
                    nice: 0,
                    pin: None,
                    start_us: 0,
                    steps: vec![Step::Burn { us: 10 }],
                },
            ],
            irqs: vec![IrqPlan {
                cpu: 40,
                at_us: 0,
                dur_ns: 100,
            }],
            faults: FaultKnobs {
                lost_tick_prob: 0.0,
                spurious_per_sec: 0.0,
                aborts: vec![AbortPlan {
                    thread: 9,
                    at_us: 0,
                }],
            },
            dvfs: DvfsConfig::default(),
        };
        sc.sanitize();
        assert_eq!(sc.cores, MAX_CORES);
        assert_eq!(sc.threads[0].pin, None);
        assert!(sc.threads[0]
            .steps
            .iter()
            .all(|s| !matches!(s, Step::Barrier { .. })));
        assert!(sc.irqs.is_empty());
        assert!(sc.faults.aborts.is_empty());
        assert!(sc.horizon_us >= 20_000);
    }
}
