//! Scheduler conformance suite.
//!
//! Three complementary layers of evidence that the production
//! scheduler in `noiselab-kernel` does what the paper's methodology
//! assumes it does:
//!
//! 1. **Differential oracle** ([`oracle`]) — a naive, obviously
//!    correct reference scheduler replays the recorded decision stream
//!    of an oracle-eligible scenario and re-derives every placement,
//!    pick, steal and preemption from first principles. Agreement on
//!    every record proves trace-identical scheduling.
//! 2. **Metamorphic invariants** ([`invariants`]) — properties that
//!    hold for *any* scenario: stint/IRQ conservation against the
//!    kernel's own accounting, per-CPU work conservation, FIFO
//!    supremacy (zero FIFO-over-OTHER preemption latency), affinity,
//!    and bounded fairness for equal-weight CPU hogs.
//! 3. **Coverage-guided fuzzer** ([`fuzz`]) — a deterministic,
//!    seeded campaign over `{topology, scripts, IRQs, faults, policy
//!    switches}` guided by decision-point edge coverage ([`coverage`]),
//!    with greedy failure shrinking ([`shrink`]) down to one-line
//!    `// conform:repro` strings anyone can replay via
//!    `noiselab conform --replay`.
//!
//! Mutation tests ([`record::Mutation`]) seed intentional scheduler
//! bugs into recorded streams and prove each one is caught by at least
//! one layer.

pub mod coverage;
pub mod fuzz;
pub mod invariants;
pub mod oracle;
pub mod record;
pub mod report;
pub mod runner;
pub mod scenario;
pub mod shrink;

pub use coverage::{CoverageMap, Signature};
pub use fuzz::{check_scenario, fuzz, Failure, FuzzConfig, FuzzReport};
pub use invariants::{check_invariants, fairness_bound_ns, InvariantOutcome, InvariantStats};
pub use oracle::{check_oracle, OracleStats, Violation};
pub use record::{Mutation, Rec, Recording};
pub use report::{render_json, render_text};
pub use runner::{run, RunOutcome, SchedParams, ThreadMeta, Topo};
pub use scenario::{Scenario, Step, ThreadPlan, REPRO_MARKER};
pub use shrink::shrink;
