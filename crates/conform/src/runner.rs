//! Build and run a kernel from a [`Scenario`], capturing the full
//! scheduling-record stream plus the kernel's own accounting for
//! cross-checking.

use crate::record::{Rec, Recording};
use crate::scenario::{Scenario, Step};
use noiselab_kernel::{
    Action, FaultPlan, Kernel, KernelConfig, Policy, ScriptBehavior, SpuriousIrqSpec, ThreadKind,
    ThreadSpec,
};
use noiselab_machine::{CpuId, CpuSet, DvfsConfig, Machine, PerfModel, WorkUnit};
use noiselab_sim::{SimDuration, SimTime};
use std::collections::BTreeMap;

/// Static facts about one scenario thread, for the checkers.
#[derive(Debug, Clone)]
pub struct ThreadMeta {
    pub policy: Policy,
    /// Affinity as a bitmask over logical CPUs.
    pub affinity: u64,
    pub exited: bool,
}

/// Machine shape, duplicated so the oracle can replicate topology
/// queries (`sibling_of`, `domain_of`) without holding the machine.
#[derive(Debug, Clone, Copy)]
pub struct Topo {
    pub cores: usize,
    pub smt: usize,
    pub numa: usize,
}

impl Topo {
    pub fn n_cpus(&self) -> usize {
        self.cores * self.smt
    }

    /// Mirror of `Machine::sibling_of`.
    pub fn sibling_of(&self, cpu: u32) -> Option<u32> {
        if self.smt < 2 {
            return None;
        }
        let i = cpu as usize;
        Some(if i < self.cores {
            (i + self.cores) as u32
        } else {
            (i - self.cores) as u32
        })
    }

    /// Mirror of `Machine::domain_of`.
    pub fn domain_of(&self, cpu: u32) -> usize {
        if self.numa <= 1 {
            return 0;
        }
        (cpu as usize % self.cores) * self.numa / self.cores
    }

    pub fn same_domain(&self, a: u32, b: u32) -> bool {
        self.domain_of(a) == self.domain_of(b)
    }
}

/// Scheduler tunables the checkers replicate decisions against.
#[derive(Debug, Clone, Copy)]
pub struct SchedParams {
    pub wakeup_granularity_ns: u64,
    pub min_granularity_ns: u64,
    pub tick_ns: u64,
}

/// Everything one conformance run produces.
pub struct RunOutcome {
    pub records: Vec<Rec>,
    pub threads: Vec<ThreadMeta>,
    pub topo: Topo,
    pub params: SchedParams,
    /// Kernel-side per-CPU accounting: charged busy ns.
    pub cpu_busy: Vec<u64>,
    /// Kernel-side per-CPU accounting: IRQ/softirq stall ns.
    pub cpu_irq: Vec<u64>,
    /// True when every thread exited before the horizon (the kernel's
    /// charge-based accounting is then complete and exactly
    /// cross-checkable against the record stream).
    pub all_exited: bool,
    /// The DVFS config the run executed under (disabled ⇒ the stream
    /// must contain no frequency records at all).
    pub dvfs: DvfsConfig,
    /// Kernel-side per-CPU cycle accounting (`Σ busy_ns × kHz`), empty
    /// when DVFS is disabled. Cross-checked against the stint stream
    /// replayed at the recorded frequencies.
    pub cycles: Vec<u128>,
}

fn step_to_action(step: &Step, barriers: &BTreeMap<u32, noiselab_kernel::BarrierId>) -> Action {
    match step {
        Step::Burn { us } => Action::Burn(SimDuration::from_micros(*us)),
        Step::Compute { kflops } => Action::Compute(WorkUnit::compute(*kflops as f64 * 1_000.0)),
        Step::Sleep { us } => Action::SleepFor(SimDuration::from_micros(*us)),
        Step::Yield => Action::Yield,
        Step::Barrier { id, spin_us } => Action::Barrier {
            id: barriers[id],
            spin: SimDuration::from_micros(*spin_us),
        },
        Step::SetPolicy { rt_prio, nice } => Action::SetPolicy(if *rt_prio > 0 {
            Policy::Fifo { prio: *rt_prio }
        } else {
            Policy::Other { nice: *nice }
        }),
    }
}

/// Execute a scenario and collect the evidence for the checkers.
pub fn run(sc: &Scenario) -> RunOutcome {
    let machine = Machine {
        name: "conform".into(),
        cores: sc.cores,
        smt: sc.smt,
        perf: PerfModel {
            flops_per_ns: 1.0,
            smt_factor: 0.5,
            per_core_bw: 10.0,
            socket_bw: 20.0,
        },
        migration_cost: SimDuration::from_nanos(500),
        ctx_switch: SimDuration::from_nanos(300),
        wake_latency: SimDuration::from_nanos(700),
        tick_period: SimDuration::from_micros(sc.tick_us),
        reserved_cpus: CpuSet::EMPTY,
        numa_domains: sc.numa,
        dvfs: sc.dvfs.clone(),
    };
    let config = KernelConfig {
        tickless: sc.tickless,
        ..KernelConfig::default()
    };
    let params = SchedParams {
        wakeup_granularity_ns: config.wakeup_granularity.nanos(),
        min_granularity_ns: config.min_granularity.nanos(),
        tick_ns: machine.tick_period.nanos(),
    };
    let topo = Topo {
        cores: sc.cores,
        smt: sc.smt,
        numa: sc.numa,
    };
    let n_cpus = machine.n_cpus();

    let mut kernel = Kernel::new(machine, config, sc.seed);
    let (recording, store) = Recording::new();
    kernel.attach_observer(Box::new(recording));

    // Barriers: one kernel barrier per scenario id, with the party
    // count equal to the number of threads referencing it.
    let mut parties: BTreeMap<u32, usize> = BTreeMap::new();
    for t in &sc.threads {
        let mut seen = Vec::new();
        for s in &t.steps {
            if let Step::Barrier { id, .. } = s {
                if !seen.contains(id) {
                    seen.push(*id);
                }
            }
        }
        for id in seen {
            *parties.entry(id).or_insert(0) += 1;
        }
    }
    let barriers: BTreeMap<u32, noiselab_kernel::BarrierId> = parties
        .into_iter()
        .map(|(id, n)| (id, kernel.new_barrier(n)))
        .collect();

    let mut tids = Vec::with_capacity(sc.threads.len());
    for (i, plan) in sc.threads.iter().enumerate() {
        let policy = if plan.rt_prio > 0 {
            Policy::Fifo { prio: plan.rt_prio }
        } else {
            Policy::Other { nice: plan.nice }
        };
        let affinity = match &plan.pin {
            Some(cpus) => {
                let mut set = CpuSet::EMPTY;
                for c in cpus {
                    set.insert(CpuId(*c));
                }
                set
            }
            None => CpuSet::EMPTY, // spawn() widens to all CPUs
        };
        let spec = ThreadSpec::new(format!("conform-{i}"), ThreadKind::Workload)
            .policy(policy)
            .affinity(affinity)
            .start_at(SimTime(plan.start_us * 1_000));
        let actions: Vec<Action> = plan
            .steps
            .iter()
            .map(|s| step_to_action(s, &barriers))
            .collect();
        tids.push(kernel.spawn(spec, Box::new(ScriptBehavior::new(actions))));
    }

    for irq in &sc.irqs {
        kernel.inject_irq(
            CpuId(irq.cpu),
            SimTime(irq.at_us * 1_000),
            SimDuration(irq.dur_ns),
            "conform:nic",
        );
    }

    let knobs = &sc.faults;
    if knobs.lost_tick_prob > 0.0 || knobs.spurious_per_sec > 0.0 {
        let plan = FaultPlan {
            seed: sc.seed ^ 0x5EED,
            lost_tick_prob: knobs.lost_tick_prob,
            spurious: (knobs.spurious_per_sec > 0.0).then(|| SpuriousIrqSpec {
                rate_per_sec: knobs.spurious_per_sec,
                service_mean: SimDuration::from_micros(30),
                window: SimDuration(sc.horizon_us * 1_000),
            }),
            ..FaultPlan::default()
        };
        let rng = kernel.fork_rng(0xC0F0);
        kernel.install_faults(&plan, rng);
    }
    for abort in &knobs.aborts {
        kernel.schedule_abort(tids[abort.thread as usize], SimTime(abort.at_us * 1_000));
    }

    // A drained queue is fine (all work done and ticks parked); the
    // checkers judge the stream either way.
    let _ = kernel.run_until(SimTime(sc.horizon_us * 1_000));

    let threads: Vec<ThreadMeta> = tids
        .iter()
        .zip(&sc.threads)
        .map(|(&tid, plan)| {
            let t = kernel.thread(tid);
            let mask = t.affinity.iter().fold(0u64, |m, c| m | 1u64 << c.index());
            // Spawn-time policy: scripts may switch policy mid-run; the
            // checkers track PolicySwitch records from here.
            let policy = if plan.rt_prio > 0 {
                Policy::Fifo { prio: plan.rt_prio }
            } else {
                Policy::Other { nice: plan.nice }
            };
            ThreadMeta {
                policy,
                affinity: mask,
                exited: t.exit_time.is_some(),
            }
        })
        .collect();
    let all_exited = threads.iter().all(|t| t.exited);

    let (cpu_busy, cpu_irq): (Vec<u64>, Vec<u64>) = (0..n_cpus)
        .map(|c| kernel.cpu_stats(CpuId(c as u32)))
        .unzip();
    let cycles = kernel.dvfs_summary().map(|s| s.cycles).unwrap_or_default();

    let records = store.borrow().clone();
    RunOutcome {
        records,
        threads,
        topo,
        params,
        cpu_busy,
        cpu_irq,
        all_exited,
        dvfs: sc.dvfs.clone(),
        cycles,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use noiselab_sim::Rng;

    #[test]
    fn runs_are_deterministic() {
        let mut rng = Rng::new(42);
        let sc = Scenario::generate(&mut rng, true);
        let a = run(&sc);
        let b = run(&sc);
        assert_eq!(a.records, b.records);
        assert_eq!(a.cpu_busy, b.cpu_busy);
        assert_eq!(a.cpu_irq, b.cpu_irq);
    }

    #[test]
    fn generated_scenarios_finish_within_horizon() {
        let mut rng = Rng::new(9);
        for _ in 0..25 {
            let sc = Scenario::generate(&mut rng, false);
            let out = run(&sc);
            // Eligible scenarios have no barriers, so nothing can
            // deadlock; the sanitized horizon must be generous enough.
            if sc.faults.aborts.is_empty() {
                assert!(out.all_exited, "{}", sc.repro_line());
            }
            assert!(!out.records.is_empty());
        }
    }

    #[test]
    fn topo_mirrors_machine_topology() {
        let t = Topo {
            cores: 4,
            smt: 2,
            numa: 2,
        };
        let m = Machine {
            name: "x".into(),
            cores: 4,
            smt: 2,
            perf: PerfModel {
                flops_per_ns: 1.0,
                smt_factor: 0.5,
                per_core_bw: 10.0,
                socket_bw: 20.0,
            },
            migration_cost: SimDuration::ZERO,
            ctx_switch: SimDuration::ZERO,
            wake_latency: SimDuration::ZERO,
            tick_period: SimDuration::from_millis(1),
            reserved_cpus: CpuSet::EMPTY,
            numa_domains: 2,
            dvfs: DvfsConfig::default(),
        };
        for c in 0..8u32 {
            assert_eq!(
                t.sibling_of(c),
                m.sibling_of(CpuId(c)).map(|s| s.0),
                "sibling of {c}"
            );
            assert_eq!(t.domain_of(c), m.domain_of(CpuId(c)), "domain of {c}");
        }
    }
}
