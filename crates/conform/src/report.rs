//! Rendering fuzz-campaign results for humans, CI logs and `--json`.

use crate::fuzz::FuzzReport;
use serde::{Serialize, Value};
use std::fmt::Write as _;

/// Human-readable campaign summary (the `noiselab conform` default).
pub fn render_text(r: &FuzzReport) -> String {
    let mut s = String::new();
    let _ = writeln!(s, "conformance campaign: {} scenario(s)", r.iterations);
    let _ = writeln!(
        s,
        "  oracle        {} eligible run(s): {} switch-ins, {} placements, {} wake checks, \
         {} tick checks, {} steals",
        r.oracle_runs,
        r.oracle.switch_ins,
        r.oracle.placements,
        r.oracle.wake_checks,
        r.oracle.tick_checks,
        r.oracle.steals
    );
    let _ = writeln!(
        s,
        "  invariants    {} stints, {} irq spans, {} stable instants, {} affinity checks, \
         {} fairness samples",
        r.invariants.stints,
        r.invariants.irq_spans,
        r.invariants.stable_instants,
        r.invariants.affinity_checks,
        r.invariants.fairness_samples
    );
    let _ = writeln!(
        s,
        "  coverage      {} signature bit(s), corpus {} case(s)",
        r.coverage_bits, r.corpus_len
    );
    for note in &r.notes {
        let _ = writeln!(s, "  note          {note}");
    }
    if r.failures.is_empty() {
        let _ = writeln!(s, "  verdict       PASS");
    } else {
        let _ = writeln!(s, "  verdict       FAIL ({} failure(s))", r.failures.len());
        for (i, f) in r.failures.iter().enumerate() {
            let _ = writeln!(s, "  failure #{i}: {}", f.violation);
            if let Some(m) = f.mutation {
                let _ = writeln!(s, "    seeded mutation: {}", m.name());
            }
            let _ = writeln!(s, "    {}", f.repro());
        }
    }
    s
}

fn obj(pairs: Vec<(&str, Value)>) -> Value {
    Value::Object(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
}

/// Machine-readable campaign summary (the `--json` flag).
pub fn render_json(r: &FuzzReport) -> String {
    let failures: Vec<Value> = r
        .failures
        .iter()
        .map(|f| {
            obj(vec![
                ("violation", Value::Str(f.violation.to_string())),
                (
                    "mutation",
                    match f.mutation {
                        Some(m) => Value::Str(m.name().to_string()),
                        None => Value::Null,
                    },
                ),
                ("repro", Value::Str(f.repro())),
                ("scenario", f.scenario.to_value()),
            ])
        })
        .collect();
    let v = obj(vec![
        ("iterations", r.iterations.to_value()),
        (
            "oracle",
            obj(vec![
                ("runs", r.oracle_runs.to_value()),
                ("switch_ins", r.oracle.switch_ins.to_value()),
                ("placements", r.oracle.placements.to_value()),
                ("wake_checks", r.oracle.wake_checks.to_value()),
                ("tick_checks", r.oracle.tick_checks.to_value()),
                ("steals", r.oracle.steals.to_value()),
            ]),
        ),
        (
            "invariants",
            obj(vec![
                ("stints", r.invariants.stints.to_value()),
                ("irq_spans", r.invariants.irq_spans.to_value()),
                ("stable_instants", r.invariants.stable_instants.to_value()),
                ("affinity_checks", r.invariants.affinity_checks.to_value()),
                ("fairness_samples", r.invariants.fairness_samples.to_value()),
            ]),
        ),
        ("coverage_bits", r.coverage_bits.to_value()),
        ("corpus_len", (r.corpus_len as u64).to_value()),
        (
            "notes",
            Value::Array(r.notes.iter().map(|n| Value::Str(n.clone())).collect()),
        ),
        ("ok", Value::Bool(r.ok())),
        ("failures", Value::Array(failures)),
    ]);
    serde_json::to_string_pretty(&v).unwrap_or_else(|e| format!("{{\"error\":\"{e}\"}}"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fuzz::{fuzz, FuzzConfig};
    use crate::record::Mutation;

    #[test]
    fn text_and_json_render_pass_and_fail() {
        let pass = fuzz(&FuzzConfig {
            iterations: 15,
            seed: 5,
            ..FuzzConfig::default()
        });
        let t = render_text(&pass);
        assert!(t.contains("verdict       PASS"), "{t}");
        let j: Value = serde_json::from_str(&render_json(&pass)).unwrap();
        assert_eq!(j.get("ok"), Some(&Value::Bool(true)));

        let fail = fuzz(&FuzzConfig {
            iterations: 30,
            seed: 5,
            mutation: Some(Mutation::GhostRun),
            max_failures: 1,
            ..FuzzConfig::default()
        });
        assert!(!fail.ok());
        let t = render_text(&fail);
        assert!(t.contains("FAIL"), "{t}");
        assert!(t.contains("conform:repro"), "{t}");
        let j: Value = serde_json::from_str(&render_json(&fail)).unwrap();
        assert_eq!(j.get("ok"), Some(&Value::Bool(false)));
        let fails = j.get("failures").and_then(|f| f.as_array());
        assert!(fails.is_some_and(|a| !a.is_empty()));
    }
}
