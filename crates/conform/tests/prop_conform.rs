//! Property tests over the conformance scenario space.
//!
//! The PR gate runs a modest number of cases per property; the nightly
//! CI job widens the sweep via `PROPTEST_CASES`. Past failures are
//! pinned in `proptest-regressions/` and replay before every sweep.

use noiselab_conform::{check_scenario, Scenario};
use noiselab_sim::Rng;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Every generated scenario — oracle-eligible or full — passes the
    /// differential oracle (when eligible) and all metamorphic
    /// invariants.
    #[test]
    fn generated_scenarios_check_clean(seed in any::<u64>(), full in any::<bool>()) {
        let mut rng = Rng::new(seed);
        let sc = Scenario::generate(&mut rng, full);
        let v = check_scenario(&sc, None);
        prop_assert!(v.is_none(), "violation {:?}\n{}", v, sc.repro_line());
    }

    /// Structural mutation preserves validity: mutants of a clean
    /// scenario are themselves clean (the scheduler has no bug for
    /// them to find, and sanitize keeps them well-formed).
    #[test]
    fn mutated_scenarios_check_clean(seed in any::<u64>()) {
        let mut rng = Rng::new(seed);
        let sc = Scenario::generate(&mut rng, true);
        let mut mrng = Rng::new(seed ^ 0x5A5A);
        let m = sc.mutate(&mut mrng, true);
        let v = check_scenario(&m, None);
        prop_assert!(v.is_none(), "violation {:?}\n{}", v, m.repro_line());
    }

    /// The repro one-liner is a faithful round trip for any scenario.
    #[test]
    fn repro_lines_round_trip(seed in any::<u64>(), full in any::<bool>()) {
        let mut rng = Rng::new(seed);
        let sc = Scenario::generate(&mut rng, full);
        let back = Scenario::from_repro_line(&sc.repro_line());
        prop_assert!(back.is_ok(), "{:?}", back.err());
        prop_assert_eq!(back.unwrap(), sc);
    }

    /// `sanitize` is idempotent: generated scenarios are already
    /// sanitized, so a second pass changes nothing.
    #[test]
    fn sanitize_is_idempotent(seed in any::<u64>(), full in any::<bool>()) {
        let mut rng = Rng::new(seed);
        let sc = Scenario::generate(&mut rng, full);
        let mut again = sc.clone();
        again.sanitize();
        prop_assert_eq!(again, sc);
    }
}
