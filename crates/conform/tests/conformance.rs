//! The conformance suite's acceptance tests: trace-identical
//! scheduling under the differential oracle across a large fuzzed
//! sweep, all metamorphic invariants holding for arbitrary scenarios,
//! and every seeded scheduler bug (mutation test) caught by at least
//! one checker with a shrunk, replayable repro.

use noiselab_conform::{
    check_invariants, check_oracle, check_scenario, fuzz, run, FuzzConfig, Mutation, OracleStats,
    Scenario,
};
use noiselab_sim::Rng;

/// The oracle replays every scheduling decision of a large seeded
/// sweep and must agree with the production kernel on all of them.
/// (CI additionally runs `noiselab conform --fuzz 10000` for the
/// paper-scale campaign; this test keeps a dense always-on core.)
#[test]
fn oracle_proves_trace_identical_scheduling_across_fuzzed_scenarios() {
    let mut rng = Rng::new(0x0AC1E);
    let mut total = OracleStats::default();
    for i in 0..250 {
        let sc = Scenario::generate(&mut rng, false);
        assert!(sc.is_oracle_eligible(), "generator broke eligibility");
        let out = run(&sc);
        match check_oracle(&out) {
            Ok(stats) => {
                total.switch_ins += stats.switch_ins;
                total.placements += stats.placements;
                total.wake_checks += stats.wake_checks;
                total.tick_checks += stats.tick_checks;
                total.steals += stats.steals;
            }
            Err(v) => panic!(
                "scenario {i} diverged from the oracle: {v}\n{}",
                sc.repro_line()
            ),
        }
        // Invariants hold on eligible scenarios too.
        let inv = check_invariants(&out, false);
        assert!(
            inv.violations.is_empty(),
            "scenario {i}: {}\n{}",
            inv.violations[0],
            sc.repro_line()
        );
    }
    // The sweep must genuinely exercise each decision family.
    assert!(total.switch_ins > 2_000, "{total:?}");
    assert!(total.placements > 1_000, "{total:?}");
    assert!(total.wake_checks > 100, "{total:?}");
    assert!(total.tick_checks > 200, "{total:?}");
    assert!(total.steals > 10, "{total:?}");
}

/// Full-space scenarios (nice values, yields, barriers, policy
/// switches, faults) satisfy every metamorphic invariant.
#[test]
fn full_scenarios_hold_all_invariants() {
    let mut rng = Rng::new(0xF011);
    for i in 0..120 {
        let sc = Scenario::generate(&mut rng, true);
        let out = run(&sc);
        let inv = check_invariants(&out, sc.fairness_probe);
        assert!(
            inv.violations.is_empty(),
            "scenario {i}: {}\n{}",
            inv.violations[0],
            sc.repro_line()
        );
    }
}

/// Mutation testing: each intentionally seeded scheduler bug must be
/// caught by at least one checker, and the shrunk repro must replay
/// and still fail — the acceptance criterion for the whole suite.
#[test]
fn every_seeded_mutation_is_caught_with_a_replayable_repro() {
    for &mutation in Mutation::ALL.iter() {
        let report = fuzz(&FuzzConfig {
            iterations: 80,
            seed: 0xB06 ^ mutation.name().len() as u64,
            mutation: Some(mutation),
            max_failures: 1,
            ..FuzzConfig::default()
        });
        assert!(
            !report.ok(),
            "seeded bug `{}` escaped an 80-scenario campaign",
            mutation.name()
        );
        let failure = &report.failures[0];
        let repro = failure.repro();
        assert!(
            repro.contains("conform:repro"),
            "failure lacks a repro line: {repro}"
        );
        // The one-liner replays into an identical scenario that still
        // trips a checker under the same mutation.
        let replayed = Scenario::from_repro_line(&repro)
            .unwrap_or_else(|e| panic!("unparseable repro for `{}`: {e}", mutation.name()));
        assert_eq!(&replayed, &failure.scenario);
        let v = check_scenario(&replayed, Some(mutation));
        assert!(
            v.is_some(),
            "shrunk repro for `{}` no longer fails: {repro}",
            mutation.name()
        );
    }
}

/// A clean campaign (no seeded bug) over the mixed scenario space must
/// pass, accumulate coverage, and keep a nonempty corpus.
#[test]
fn clean_mixed_campaign_passes_with_coverage() {
    let report = fuzz(&FuzzConfig {
        iterations: 150,
        seed: 0xC1EA,
        ..FuzzConfig::default()
    });
    assert!(
        report.ok(),
        "clean campaign failed: {} ({})",
        report.failures[0].violation,
        report.failures[0].repro()
    );
    assert!(report.coverage_bits >= 40, "{}", report.coverage_bits);
    assert!(report.corpus_len >= 5, "{}", report.corpus_len);
    assert!(report.oracle_runs >= 30, "{}", report.oracle_runs);
}

/// The fairness probe is not vacuous: an unfair spread on the same
/// probe shape is rejected.
#[test]
fn fairness_probes_exercise_the_bound() {
    let mut rng = Rng::new(0xFA12);
    let mut samples = 0;
    for _ in 0..60 {
        let sc = Scenario::generate(&mut rng, true);
        if !sc.fairness_probe {
            continue;
        }
        let out = run(&sc);
        let inv = check_invariants(&out, true);
        assert!(
            inv.violations.is_empty(),
            "{}\n{}",
            inv.violations[0],
            sc.repro_line()
        );
        samples += inv.stats.fairness_samples;
    }
    assert!(
        samples > 100,
        "fairness invariant barely sampled: {samples}"
    );
}
