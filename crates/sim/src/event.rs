//! Discrete-event queue with stable ordering and O(log n) cancellation.
//!
//! Events are ordered by `(time, sequence)` where `sequence` is a
//! monotonically increasing insertion counter. This makes simulations
//! fully deterministic: two events scheduled for the same instant fire in
//! insertion order, independent of heap internals.
//!
//! Cancellation is handled lazily through [`EventToken`]s: cancelling marks
//! the token; stale entries are skipped when popped. This is the standard
//! technique for simulators where most events (e.g. compute-completion
//! predictions) are rescheduled many times before they fire.

use crate::time::SimTime;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Identifies a scheduled event so it can be cancelled.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct EventToken(u64);

impl EventToken {
    /// A token that never refers to a live event.
    pub const NONE: EventToken = EventToken(u64::MAX);
}

struct Entry<E> {
    time: SimTime,
    seq: u64,
    token: u64,
    payload: E,
}

// Ordering: earliest time first, then lowest sequence.
impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}
impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.time, self.seq).cmp(&(other.time, other.seq))
    }
}

/// The event queue. `E` is the simulation-specific payload type.
pub struct EventQueue<E> {
    heap: BinaryHeap<Reverse<Entry<E>>>,
    next_seq: u64,
    next_token: u64,
    /// Tokens that have been cancelled but whose entries are still in the
    /// heap. Kept as a sorted vec-free bitset-ish structure: we use a
    /// HashSet-free approach via generation is impossible for arbitrary
    /// tokens, so a HashSet it is.
    cancelled: std::collections::HashSet<u64>,
    now: SimTime,
    live: usize,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
            next_token: 0,
            cancelled: std::collections::HashSet::new(),
            now: SimTime::ZERO,
            live: 0,
        }
    }

    /// Current virtual time: the timestamp of the last popped event.
    #[inline]
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of live (non-cancelled) events.
    #[inline]
    pub fn len(&self) -> usize {
        self.live
    }

    #[inline]
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// Schedule `payload` at absolute time `at`. Scheduling in the past
    /// (before `now`) is a logic error and panics in debug builds; in
    /// release it fires immediately at `now`.
    pub fn schedule(&mut self, at: SimTime, payload: E) -> EventToken {
        debug_assert!(
            at >= self.now,
            "scheduling event in the past: at={at} now={}",
            self.now
        );
        let at = at.max(self.now);
        let token = self.next_token;
        self.next_token += 1;
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Reverse(Entry { time: at, seq, token, payload }));
        self.live += 1;
        EventToken(token)
    }

    /// Cancel a previously scheduled event. Cancelling an already-fired or
    /// already-cancelled event is a no-op.
    pub fn cancel(&mut self, token: EventToken) {
        if token == EventToken::NONE {
            return;
        }
        if self.cancelled.insert(token.0) {
            self.live = self.live.saturating_sub(1);
        }
    }

    /// Pop the next live event, advancing `now` to its timestamp.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        while let Some(Reverse(entry)) = self.heap.pop() {
            if self.cancelled.remove(&entry.token) {
                continue;
            }
            self.live -= 1;
            debug_assert!(entry.time >= self.now);
            self.now = entry.time;
            return Some((entry.time, entry.payload));
        }
        None
    }

    /// Peek the timestamp of the next live event without firing it.
    pub fn peek_time(&mut self) -> Option<SimTime> {
        // Drop stale heads so peek is accurate.
        while let Some(Reverse(entry)) = self.heap.peek() {
            if self.cancelled.contains(&entry.token) {
                let Reverse(entry) = self.heap.pop().unwrap();
                self.cancelled.remove(&entry.token);
            } else {
                return Some(entry.time);
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(SimTime(30), "c");
        q.schedule(SimTime(10), "a");
        q.schedule(SimTime(20), "b");
        assert_eq!(q.pop(), Some((SimTime(10), "a")));
        assert_eq!(q.pop(), Some((SimTime(20), "b")));
        assert_eq!(q.pop(), Some((SimTime(30), "c")));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn ties_fire_in_insertion_order() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.schedule(SimTime(5), i);
        }
        for i in 0..100 {
            assert_eq!(q.pop(), Some((SimTime(5), i)));
        }
    }

    #[test]
    fn cancellation_skips_event() {
        let mut q = EventQueue::new();
        let t1 = q.schedule(SimTime(10), 1);
        q.schedule(SimTime(20), 2);
        q.cancel(t1);
        assert_eq!(q.len(), 1);
        assert_eq!(q.pop(), Some((SimTime(20), 2)));
        assert!(q.is_empty());
    }

    #[test]
    fn cancel_is_idempotent_and_safe_after_fire() {
        let mut q = EventQueue::new();
        let t = q.schedule(SimTime(10), 1);
        q.cancel(t);
        q.cancel(t);
        assert_eq!(q.pop(), None);
        let t2 = q.schedule(SimTime(20), 2);
        assert_eq!(q.pop(), Some((SimTime(20), 2)));
        q.cancel(t2); // already fired: no-op
        assert!(q.is_empty());
    }

    #[test]
    fn now_advances_with_pops() {
        let mut q = EventQueue::new();
        q.schedule(SimTime(15), ());
        assert_eq!(q.now(), SimTime::ZERO);
        q.pop();
        assert_eq!(q.now(), SimTime(15));
    }

    #[test]
    fn peek_time_skips_cancelled() {
        let mut q = EventQueue::new();
        let t = q.schedule(SimTime(5), 1);
        q.schedule(SimTime(9), 2);
        q.cancel(t);
        assert_eq!(q.peek_time(), Some(SimTime(9)));
    }

    #[test]
    #[should_panic(expected = "scheduling event in the past")]
    fn scheduling_in_past_panics_in_debug() {
        let mut q = EventQueue::new();
        q.schedule(SimTime(10), ());
        q.pop();
        q.schedule(SimTime(5), ());
    }
}
