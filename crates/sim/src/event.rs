//! Discrete-event queue with stable ordering and O(1) cancellation.
//!
//! Events are ordered by `(time, sequence)` where `sequence` is a
//! monotonically increasing insertion counter. This makes simulations
//! fully deterministic: two events scheduled for the same instant fire in
//! insertion order, independent of heap internals.
//!
//! Cancellation is handled lazily through [`EventToken`]s: cancelling marks
//! the token; stale entries are skipped when popped. This is the standard
//! technique for simulators where most events (e.g. compute-completion
//! predictions) are rescheduled many times before they fire.

use crate::time::SimTime;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Identifies a scheduled event so it can be cancelled.
///
/// Packs a slot index (low 32 bits) and that slot's generation stamp
/// (high 32 bits). Slots are recycled once their heap entry is gone;
/// the generation bump at recycle time makes stale tokens inert, so a
/// caller holding a token for an event that already fired cannot
/// accidentally cancel the slot's next occupant.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct EventToken(u64);

impl EventToken {
    /// A token that never refers to a live event.
    pub const NONE: EventToken = EventToken(u64::MAX);

    #[inline]
    fn pack(slot: u32, gen: u32) -> EventToken {
        EventToken(slot as u64 | ((gen as u64) << 32))
    }

    #[inline]
    fn unpack(self) -> (u32, u32) {
        (self.0 as u32, (self.0 >> 32) as u32)
    }
}

/// Per-slot bookkeeping for the token table.
#[derive(Clone, Copy, PartialEq, Eq)]
enum SlotState {
    /// No heap entry references this slot; it is on the free list.
    Free,
    /// The slot's heap entry is pending and will fire.
    Scheduled,
    /// The slot's heap entry is pending but was cancelled; it will be
    /// dropped when it surfaces (or at the next compaction).
    Cancelled,
}

#[derive(Clone, Copy)]
struct Slot {
    gen: u32,
    state: SlotState,
}

struct Entry<E> {
    time: SimTime,
    seq: u64,
    token: EventToken,
    payload: E,
}

// Ordering: earliest time first, then lowest sequence.
impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}
impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.time, self.seq).cmp(&(other.time, other.seq))
    }
}

/// The event queue. `E` is the simulation-specific payload type.
pub struct EventQueue<E> {
    heap: BinaryHeap<Reverse<Entry<E>>>,
    next_seq: u64,
    /// Token table: `slots[s]` tracks the state and generation of slot
    /// `s`. Cancellation and liveness checks are a single indexed load —
    /// no hashing on the schedule/cancel/pop hot paths.
    slots: Vec<Slot>,
    free: Vec<u32>,
    now: SimTime,
    live: usize,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
            slots: Vec::new(),
            free: Vec::new(),
            now: SimTime::ZERO,
            live: 0,
        }
    }

    /// Current virtual time: the timestamp of the last popped event.
    #[inline]
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Return the queue to its boot state (time zero, no events,
    /// sequence counter restarted) while keeping the heap's and token
    /// table's allocations — the arena-reuse hook for repetition loops.
    /// Slot generations are bumped, not cleared, so tokens from the
    /// previous run stay inert instead of aliasing new events.
    pub fn reset(&mut self) {
        self.heap.clear();
        self.next_seq = 0;
        self.now = SimTime::ZERO;
        self.live = 0;
        self.free.clear();
        // Rebuild the free list high-to-low so slots are reissued in
        // ascending order, matching a freshly grown table.
        for (i, slot) in self.slots.iter_mut().enumerate().rev() {
            slot.state = SlotState::Free;
            slot.gen = slot.gen.wrapping_add(1);
            self.free.push(i as u32);
        }
    }

    /// Number of live (non-cancelled) events.
    #[inline]
    pub fn len(&self) -> usize {
        self.live
    }

    #[inline]
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// Schedule `payload` at absolute time `at`. Scheduling in the past
    /// (before `now`) is a logic error and panics in debug builds; in
    /// release it fires immediately at `now`.
    pub fn schedule(&mut self, at: SimTime, payload: E) -> EventToken {
        debug_assert!(
            at >= self.now,
            "scheduling event in the past: at={at} now={}",
            self.now
        );
        let at = at.max(self.now);
        let slot = match self.free.pop() {
            Some(s) => s,
            None => {
                let s = self.slots.len() as u32;
                self.slots.push(Slot {
                    gen: 0,
                    state: SlotState::Free,
                });
                s
            }
        };
        let entry = &mut self.slots[slot as usize];
        debug_assert!(entry.state == SlotState::Free);
        entry.state = SlotState::Scheduled;
        let token = EventToken::pack(slot, entry.gen);
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Reverse(Entry {
            time: at,
            seq,
            token,
            payload,
        }));
        self.live += 1;
        token
    }

    /// Cancel a previously scheduled event. Cancelling an already-fired or
    /// already-cancelled event is a no-op.
    pub fn cancel(&mut self, token: EventToken) {
        if token == EventToken::NONE {
            return;
        }
        let (slot, gen) = token.unpack();
        let Some(entry) = self.slots.get_mut(slot as usize) else {
            return;
        };
        if entry.gen == gen && entry.state == SlotState::Scheduled {
            entry.state = SlotState::Cancelled;
            self.live -= 1;
            self.maybe_compact();
        }
    }

    /// Cancel `token` (if still pending) and schedule `payload` at `at`,
    /// returning the replacement's token. The single entry point for
    /// re-prediction churn (compute-completion updates), so callers
    /// cannot forget the cancel half and leak live duplicates.
    pub fn reschedule(&mut self, token: EventToken, at: SimTime, payload: E) -> EventToken {
        self.cancel(token);
        self.schedule(at, payload)
    }

    /// Pop the next live event, advancing `now` to its timestamp.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        while let Some(Reverse(entry)) = self.heap.pop() {
            if self.release(entry.token) {
                self.live -= 1;
                debug_assert!(entry.time >= self.now);
                self.now = entry.time;
                return Some((entry.time, entry.payload));
            }
        }
        None
    }

    /// Peek the timestamp of the next live event without firing it.
    pub fn peek_time(&mut self) -> Option<SimTime> {
        // Drop stale heads so peek is accurate.
        while let Some(Reverse(entry)) = self.heap.peek() {
            let (slot, _) = entry.token.unpack();
            if self.slots[slot as usize].state == SlotState::Cancelled {
                let Reverse(entry) = self.heap.pop().unwrap();
                self.release(entry.token);
            } else {
                return Some(entry.time);
            }
        }
        None
    }

    /// Retire the heap entry for `token`, recycling its slot. Returns
    /// true when the entry was live (scheduled, not cancelled).
    #[inline]
    fn release(&mut self, token: EventToken) -> bool {
        let (slot, gen) = token.unpack();
        let entry = &mut self.slots[slot as usize];
        // Each slot has exactly one heap entry per generation, so a
        // surfaced entry's generation always matches its slot's.
        debug_assert!(entry.gen == gen && entry.state != SlotState::Free);
        let was_live = entry.state == SlotState::Scheduled;
        entry.state = SlotState::Free;
        entry.gen = entry.gen.wrapping_add(1);
        self.free.push(slot);
        was_live
    }

    /// Rebuild the heap without cancelled entries once they dominate it.
    /// Reschedule-heavy phases (compute re-prediction on every dispatch)
    /// would otherwise grow the heap — and every push/pop's `log n` —
    /// without bound. Amortised O(1): a rebuild costs O(n) and only
    /// happens after Ω(n) cancellations.
    fn maybe_compact(&mut self) {
        if self.heap.len() < 64 || self.heap.len() < 2 * self.live {
            return;
        }
        let entries = std::mem::take(&mut self.heap).into_vec();
        let mut kept = Vec::with_capacity(self.live);
        for Reverse(entry) in entries {
            let (slot, _) = entry.token.unpack();
            if self.slots[slot as usize].state == SlotState::Cancelled {
                self.release(entry.token);
            } else {
                kept.push(Reverse(entry));
            }
        }
        self.heap = BinaryHeap::from(kept);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reset_restores_boot_state_and_defuses_old_tokens() {
        let mut q = EventQueue::new();
        let stale = q.schedule(SimTime(10), 1);
        q.schedule(SimTime(20), 2);
        assert_eq!(q.pop(), Some((SimTime(10), 1)));
        q.reset();
        assert_eq!(q.now(), SimTime::ZERO);
        assert!(q.is_empty());
        assert_eq!(q.pop(), None);
        // A second run behaves exactly like a fresh queue...
        q.schedule(SimTime(5), 7);
        let live = q.schedule(SimTime(6), 8);
        // ...and a token from the previous run cannot cancel its slot's
        // new occupant.
        q.cancel(stale);
        assert_eq!(q.len(), 2);
        q.cancel(live);
        assert_eq!(q.pop(), Some((SimTime(5), 7)));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(SimTime(30), "c");
        q.schedule(SimTime(10), "a");
        q.schedule(SimTime(20), "b");
        assert_eq!(q.pop(), Some((SimTime(10), "a")));
        assert_eq!(q.pop(), Some((SimTime(20), "b")));
        assert_eq!(q.pop(), Some((SimTime(30), "c")));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn ties_fire_in_insertion_order() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.schedule(SimTime(5), i);
        }
        for i in 0..100 {
            assert_eq!(q.pop(), Some((SimTime(5), i)));
        }
    }

    #[test]
    fn cancellation_skips_event() {
        let mut q = EventQueue::new();
        let t1 = q.schedule(SimTime(10), 1);
        q.schedule(SimTime(20), 2);
        q.cancel(t1);
        assert_eq!(q.len(), 1);
        assert_eq!(q.pop(), Some((SimTime(20), 2)));
        assert!(q.is_empty());
    }

    #[test]
    fn cancel_is_idempotent_and_safe_after_fire() {
        let mut q = EventQueue::new();
        let t = q.schedule(SimTime(10), 1);
        q.cancel(t);
        q.cancel(t);
        assert_eq!(q.pop(), None);
        let t2 = q.schedule(SimTime(20), 2);
        assert_eq!(q.pop(), Some((SimTime(20), 2)));
        q.cancel(t2); // already fired: no-op
        assert!(q.is_empty());
    }

    #[test]
    fn now_advances_with_pops() {
        let mut q = EventQueue::new();
        q.schedule(SimTime(15), ());
        assert_eq!(q.now(), SimTime::ZERO);
        q.pop();
        assert_eq!(q.now(), SimTime(15));
    }

    #[test]
    fn peek_time_skips_cancelled() {
        let mut q = EventQueue::new();
        let t = q.schedule(SimTime(5), 1);
        q.schedule(SimTime(9), 2);
        q.cancel(t);
        assert_eq!(q.peek_time(), Some(SimTime(9)));
    }

    #[test]
    #[should_panic(expected = "scheduling event in the past")]
    fn scheduling_in_past_panics_in_debug() {
        let mut q = EventQueue::new();
        q.schedule(SimTime(10), ());
        q.pop();
        q.schedule(SimTime(5), ());
    }

    #[test]
    fn stale_token_does_not_cancel_slot_reuser() {
        let mut q = EventQueue::new();
        let t1 = q.schedule(SimTime(10), 1);
        assert_eq!(q.pop(), Some((SimTime(10), 1)));
        // t1's slot is recycled for the next event.
        let t2 = q.schedule(SimTime(20), 2);
        q.cancel(t1); // stale: generation mismatch, must be a no-op
        assert_eq!(q.len(), 1);
        assert_eq!(q.pop(), Some((SimTime(20), 2)));
        let _ = t2;
    }

    #[test]
    fn reschedule_replaces_pending_event() {
        let mut q = EventQueue::new();
        let t = q.schedule(SimTime(50), "old");
        let t2 = q.reschedule(t, SimTime(10), "new");
        assert_eq!(q.len(), 1);
        assert_eq!(q.pop(), Some((SimTime(10), "new")));
        assert_eq!(q.pop(), None);
        q.cancel(t2); // fired already: no-op
        assert!(q.is_empty());
    }

    #[test]
    fn reschedule_of_fired_token_just_schedules() {
        let mut q = EventQueue::new();
        let t = q.schedule(SimTime(5), 1);
        assert_eq!(q.pop(), Some((SimTime(5), 1)));
        let _ = q.reschedule(t, SimTime(9), 2);
        assert_eq!(q.pop(), Some((SimTime(9), 2)));
    }

    #[test]
    fn compaction_bounds_heap_garbage() {
        let mut q = EventQueue::new();
        // A long cancel/schedule churn: without compaction the heap
        // would hold every dead entry until pop time.
        let mut token = EventToken::NONE;
        for i in 0..10_000u64 {
            token = q.reschedule(token, SimTime(1_000_000 + i), i);
        }
        assert_eq!(q.len(), 1);
        assert!(
            q.heap.len() <= 128,
            "heap kept {} entries for 1 live event",
            q.heap.len()
        );
        // Slots are recycled rather than leaked.
        assert!(
            q.slots.len() <= 128,
            "token table grew to {}",
            q.slots.len()
        );
        assert_eq!(q.pop().map(|(_, v)| v), Some(9_999));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn interleaved_cancel_pop_stress_keeps_counts_consistent() {
        let mut q = EventQueue::new();
        let mut tokens = Vec::new();
        for round in 0..50u64 {
            for i in 0..40u64 {
                tokens.push(q.schedule(SimTime(round * 1000 + i * 13 % 997), (round, i)));
            }
            // Cancel every third token ever issued (mostly stale).
            for t in tokens.iter().step_by(3) {
                q.cancel(*t);
            }
            for _ in 0..20 {
                q.pop();
            }
        }
        while q.pop().is_some() {}
        assert!(q.is_empty());
        assert_eq!(q.len(), 0);
    }
}
