//! # noiselab-sim
//!
//! Deterministic discrete-event simulation primitives used by every other
//! noiselab crate: virtual [`time`], a stable-ordered [`event`] queue with
//! cancellation, and a self-contained seeded [`rng`].
//!
//! Nothing in this crate knows about CPUs, schedulers or noise — it is the
//! minimal kernel of determinism the paper's "reproducible evaluation"
//! claim rests on: given the same seed, a simulation replays the exact
//! same event sequence.

pub mod event;
pub mod rng;
pub mod time;

pub use event::{EventQueue, EventToken};
pub use rng::Rng;
pub use time::{SimDuration, SimTime, NANOS_PER_MICRO, NANOS_PER_MILLI, NANOS_PER_SEC};
