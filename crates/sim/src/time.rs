//! Virtual time primitives.
//!
//! All simulation time is expressed in integer nanoseconds since the start
//! of the simulation. Nanosecond resolution matches the `osnoise` tracer
//! output that the paper's injector consumes (durations of 140 ns .. ms).

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// An instant in virtual time, in nanoseconds since simulation start.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
#[serde(transparent)]
pub struct SimTime(pub u64);

/// A span of virtual time, in nanoseconds.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
#[serde(transparent)]
pub struct SimDuration(pub u64);

pub const NANOS_PER_MICRO: u64 = 1_000;
pub const NANOS_PER_MILLI: u64 = 1_000_000;
pub const NANOS_PER_SEC: u64 = 1_000_000_000;

impl SimTime {
    pub const ZERO: SimTime = SimTime(0);
    /// A time far beyond any simulated horizon; used as "never".
    pub const MAX: SimTime = SimTime(u64::MAX);

    #[inline]
    pub fn nanos(self) -> u64 {
        self.0
    }

    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / NANOS_PER_SEC as f64
    }

    #[inline]
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / NANOS_PER_MILLI as f64
    }

    #[inline]
    pub fn from_secs_f64(secs: f64) -> Self {
        SimTime((secs * NANOS_PER_SEC as f64).round() as u64)
    }

    /// Duration elapsed since `earlier`. Saturates at zero if `earlier`
    /// is in the future.
    #[inline]
    pub fn since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    #[inline]
    pub fn saturating_add(self, d: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(d.0))
    }

    #[inline]
    pub fn min(self, other: SimTime) -> SimTime {
        SimTime(self.0.min(other.0))
    }

    #[inline]
    pub fn max(self, other: SimTime) -> SimTime {
        SimTime(self.0.max(other.0))
    }
}

impl SimDuration {
    pub const ZERO: SimDuration = SimDuration(0);

    #[inline]
    pub fn nanos(self) -> u64 {
        self.0
    }

    #[inline]
    pub fn from_nanos(ns: u64) -> Self {
        SimDuration(ns)
    }

    #[inline]
    pub fn from_micros(us: u64) -> Self {
        SimDuration(us * NANOS_PER_MICRO)
    }

    #[inline]
    pub fn from_millis(ms: u64) -> Self {
        SimDuration(ms * NANOS_PER_MILLI)
    }

    #[inline]
    pub fn from_secs(s: u64) -> Self {
        SimDuration(s * NANOS_PER_SEC)
    }

    #[inline]
    pub fn from_secs_f64(secs: f64) -> Self {
        SimDuration((secs * NANOS_PER_SEC as f64).round().max(0.0) as u64)
    }

    #[inline]
    pub fn from_micros_f64(us: f64) -> Self {
        SimDuration((us * NANOS_PER_MICRO as f64).round().max(0.0) as u64)
    }

    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / NANOS_PER_SEC as f64
    }

    #[inline]
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / NANOS_PER_MILLI as f64
    }

    #[inline]
    pub fn as_micros_f64(self) -> f64 {
        self.0 as f64 / NANOS_PER_MICRO as f64
    }

    #[inline]
    pub fn saturating_sub(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(other.0))
    }

    #[inline]
    pub fn min(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.min(other.0))
    }

    #[inline]
    pub fn max(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.max(other.0))
    }

    /// Scale by a non-negative factor, rounding to the nearest nanosecond.
    #[inline]
    pub fn mul_f64(self, f: f64) -> SimDuration {
        debug_assert!(f >= 0.0);
        SimDuration((self.0 as f64 * f).round() as u64)
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    #[inline]
    fn add(self, d: SimDuration) -> SimTime {
        SimTime(self.0 + d.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    #[inline]
    fn add_assign(&mut self, d: SimDuration) {
        self.0 += d.0;
    }
}

impl Sub<SimDuration> for SimTime {
    type Output = SimTime;
    #[inline]
    fn sub(self, d: SimDuration) -> SimTime {
        SimTime(self.0 - d.0)
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    #[inline]
    fn sub(self, t: SimTime) -> SimDuration {
        SimDuration(self.0 - t.0)
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn add(self, d: SimDuration) -> SimDuration {
        SimDuration(self.0 + d.0)
    }
}

impl AddAssign for SimDuration {
    #[inline]
    fn add_assign(&mut self, d: SimDuration) {
        self.0 += d.0;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn sub(self, d: SimDuration) -> SimDuration {
        SimDuration(self.0 - d.0)
    }
}

impl SubAssign for SimDuration {
    #[inline]
    fn sub_assign(&mut self, d: SimDuration) {
        self.0 -= d.0;
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn mul(self, k: u64) -> SimDuration {
        SimDuration(self.0 * k)
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn div(self, k: u64) -> SimDuration {
        SimDuration(self.0 / k)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.9}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= NANOS_PER_SEC {
            write!(f, "{:.3}s", self.as_secs_f64())
        } else if self.0 >= NANOS_PER_MILLI {
            write!(f, "{:.3}ms", self.as_millis_f64())
        } else if self.0 >= NANOS_PER_MICRO {
            write!(f, "{:.3}us", self.as_micros_f64())
        } else {
            write!(f, "{}ns", self.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_arithmetic_roundtrips() {
        let t = SimTime(1_500);
        let d = SimDuration::from_micros(2);
        assert_eq!((t + d) - t, d);
        assert_eq!((t + d) - d, t);
    }

    #[test]
    fn since_saturates() {
        assert_eq!(SimTime(5).since(SimTime(10)), SimDuration::ZERO);
        assert_eq!(SimTime(10).since(SimTime(5)), SimDuration(5));
    }

    #[test]
    fn duration_constructors_agree() {
        assert_eq!(SimDuration::from_millis(3).nanos(), 3_000_000);
        assert_eq!(SimDuration::from_micros(3).nanos(), 3_000);
        assert_eq!(SimDuration::from_secs(1), SimDuration(NANOS_PER_SEC));
        assert_eq!(SimDuration::from_secs_f64(0.5).nanos(), 500_000_000);
    }

    #[test]
    fn secs_f64_roundtrip() {
        let t = SimTime::from_secs_f64(1.25);
        assert!((t.as_secs_f64() - 1.25).abs() < 1e-12);
    }

    #[test]
    fn mul_f64_rounds() {
        assert_eq!(SimDuration(10).mul_f64(0.5), SimDuration(5));
        assert_eq!(SimDuration(3).mul_f64(0.5), SimDuration(2)); // round-half-up
    }

    #[test]
    fn display_picks_unit() {
        assert_eq!(format!("{}", SimDuration(500)), "500ns");
        assert_eq!(format!("{}", SimDuration::from_micros(2)), "2.000us");
        assert_eq!(format!("{}", SimDuration::from_millis(2)), "2.000ms");
        assert_eq!(format!("{}", SimDuration::from_secs(2)), "2.000s");
    }
}
