//! Deterministic pseudo-random number generation.
//!
//! The simulator carries its own small RNG (xoshiro256**, seeded through
//! SplitMix64) so that event-level determinism does not depend on the
//! version of any external crate. Every experiment is reproducible from a
//! single `u64` seed, which is the property the paper's methodology is
//! built around.

/// xoshiro256** generator with convenience samplers for the distributions
/// the noise model needs (uniform, exponential, normal, log-normal).
#[derive(Debug, Clone)]
pub struct Rng {
    s: [u64; 4],
    /// Cached second normal variate from Box-Muller.
    spare_normal: Option<f64>,
}

#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl Rng {
    /// Create a generator from a 64-bit seed. Distinct seeds give
    /// statistically independent streams.
    pub fn new(seed: u64) -> Self {
        let mut sm = seed;
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        Rng {
            s,
            spare_normal: None,
        }
    }

    /// Derive an independent child generator; used to give every noise
    /// source and every run its own stream without correlation.
    pub fn fork(&mut self, stream: u64) -> Rng {
        Rng::new(self.next_u64() ^ stream.wrapping_mul(0x9E37_79B9_7F4A_7C15))
    }

    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// Uniform in `[0, 1)`.
    #[inline]
    pub fn f64(&mut self) -> f64 {
        // 53 high bits -> uniform double in [0,1)
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform integer in `[0, n)`. `n` must be nonzero.
    #[inline]
    pub fn below(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0);
        // Lemire-style multiply-shift; bias is negligible for our n.
        ((self.next_u64() as u128 * n as u128) >> 64) as u64
    }

    /// Uniform in `[lo, hi)`.
    #[inline]
    pub fn range_f64(&mut self, lo: f64, hi: f64) -> f64 {
        lo + (hi - lo) * self.f64()
    }

    /// Bernoulli trial with probability `p`.
    #[inline]
    pub fn chance(&mut self, p: f64) -> bool {
        self.f64() < p
    }

    /// Exponential with the given mean (inter-arrival sampling).
    #[inline]
    pub fn exp(&mut self, mean: f64) -> f64 {
        debug_assert!(mean > 0.0);
        // Avoid ln(0).
        let u = (1.0 - self.f64()).max(f64::MIN_POSITIVE);
        -mean * u.ln()
    }

    /// Standard normal via Box-Muller with caching.
    pub fn std_normal(&mut self) -> f64 {
        if let Some(z) = self.spare_normal.take() {
            return z;
        }
        let u1 = (1.0 - self.f64()).max(f64::MIN_POSITIVE);
        let u2 = self.f64();
        let r = (-2.0 * u1.ln()).sqrt();
        let theta = 2.0 * std::f64::consts::PI * u2;
        self.spare_normal = Some(r * theta.sin());
        r * theta.cos()
    }

    /// Normal with mean/sd.
    #[inline]
    pub fn normal(&mut self, mean: f64, sd: f64) -> f64 {
        mean + sd * self.std_normal()
    }

    /// Normal truncated below at `lo` (resampling is avoided by clamping,
    /// which is adequate for noise-duration jitter).
    #[inline]
    pub fn normal_min(&mut self, mean: f64, sd: f64, lo: f64) -> f64 {
        self.normal(mean, sd).max(lo)
    }

    /// Log-normal parameterised by the *median* `median = e^mu` and shape
    /// `sigma`; heavy-tailed durations for kworker-style noise bursts.
    #[inline]
    pub fn log_normal(&mut self, median: f64, sigma: f64) -> f64 {
        debug_assert!(median > 0.0);
        median * (sigma * self.std_normal()).exp()
    }

    /// Pick a uniformly random element index for a slice length.
    #[inline]
    pub fn index(&mut self, len: usize) -> usize {
        debug_assert!(len > 0);
        self.below(len as u64) as usize
    }

    /// Fisher-Yates shuffle.
    pub fn shuffle<T>(&mut self, xs: &mut [T]) {
        for i in (1..xs.len()).rev() {
            let j = self.index(i + 1);
            xs.swap(i, j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_from_seed() {
        let mut a = Rng::new(42);
        let mut b = Rng::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = Rng::new(1);
        let mut b = Rng::new(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 4);
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = Rng::new(7);
        for _ in 0..10_000 {
            let x = r.f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn below_in_range_and_covers() {
        let mut r = Rng::new(9);
        let mut seen = [false; 10];
        for _ in 0..10_000 {
            let x = r.below(10) as usize;
            assert!(x < 10);
            seen[x] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn exp_mean_roughly_correct() {
        let mut r = Rng::new(11);
        let n = 200_000;
        let mean: f64 = (0..n).map(|_| r.exp(5.0)).sum::<f64>() / n as f64;
        assert!((mean - 5.0).abs() < 0.1, "mean={mean}");
    }

    #[test]
    fn normal_moments_roughly_correct() {
        let mut r = Rng::new(13);
        let n = 200_000;
        let xs: Vec<f64> = (0..n).map(|_| r.normal(2.0, 3.0)).collect();
        let mean = xs.iter().sum::<f64>() / n as f64;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!((mean - 2.0).abs() < 0.05, "mean={mean}");
        assert!((var.sqrt() - 3.0).abs() < 0.05, "sd={}", var.sqrt());
    }

    #[test]
    fn log_normal_median_roughly_correct() {
        let mut r = Rng::new(17);
        let n = 100_001;
        let mut xs: Vec<f64> = (0..n).map(|_| r.log_normal(10.0, 1.0)).collect();
        xs.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let median = xs[n / 2];
        assert!((median - 10.0).abs() < 0.5, "median={median}");
    }

    #[test]
    fn fork_streams_are_independent() {
        let mut parent = Rng::new(5);
        let mut a = parent.fork(0);
        let mut b = parent.fork(1);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 4);
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut r = Rng::new(23);
        let mut v: Vec<u32> = (0..50).collect();
        r.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }
}
