//! Property tests for the event queue: total ordering, stable ties,
//! cancellation correctness.

use noiselab_sim::{EventQueue, SimTime};
use proptest::prelude::*;

proptest! {
    /// Popping returns events in nondecreasing time order, and ties in
    /// insertion order.
    #[test]
    fn pops_are_totally_ordered(times in proptest::collection::vec(0u64..1_000, 1..200)) {
        let mut q = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.schedule(SimTime(t), i);
        }
        let mut last: Option<(SimTime, usize)> = None;
        let mut count = 0;
        while let Some((t, idx)) = q.pop() {
            prop_assert_eq!(t, SimTime(times[idx]));
            if let Some((lt, lidx)) = last {
                prop_assert!(t >= lt);
                if t == lt {
                    prop_assert!(idx > lidx, "tie not in insertion order");
                }
            }
            last = Some((t, idx));
            count += 1;
        }
        prop_assert_eq!(count, times.len());
    }

    /// Cancelling an arbitrary subset removes exactly those events.
    #[test]
    fn cancellation_removes_exactly_the_cancelled(
        times in proptest::collection::vec(0u64..1_000, 1..100),
        cancel_mask in proptest::collection::vec(any::<bool>(), 1..100),
    ) {
        let mut q = EventQueue::new();
        let tokens: Vec<_> =
            times.iter().enumerate().map(|(i, &t)| q.schedule(SimTime(t), i)).collect();
        let mut expected: Vec<usize> = Vec::new();
        for (i, token) in tokens.iter().enumerate() {
            if *cancel_mask.get(i).unwrap_or(&false) {
                q.cancel(*token);
            } else {
                expected.push(i);
            }
        }
        prop_assert_eq!(q.len(), expected.len());
        let mut seen: Vec<usize> = Vec::new();
        while let Some((_, idx)) = q.pop() {
            seen.push(idx);
        }
        seen.sort_unstable();
        expected.sort_unstable();
        prop_assert_eq!(seen, expected);
    }

    /// `now` never goes backwards.
    #[test]
    fn now_is_monotone(times in proptest::collection::vec(0u64..10_000, 1..100)) {
        let mut q = EventQueue::new();
        for &t in &times {
            q.schedule(SimTime(t), ());
        }
        let mut prev = SimTime::ZERO;
        while q.pop().is_some() {
            prop_assert!(q.now() >= prev);
            prev = q.now();
        }
    }
}

proptest! {
    /// The RNG is reproducible and its samplers stay in range.
    #[test]
    fn rng_streams_reproducible(seed in any::<u64>()) {
        let mut a = noiselab_sim::Rng::new(seed);
        let mut b = noiselab_sim::Rng::new(seed);
        for _ in 0..64 {
            prop_assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn rng_bounds(seed in any::<u64>(), n in 1u64..1_000_000) {
        let mut r = noiselab_sim::Rng::new(seed);
        for _ in 0..100 {
            prop_assert!(r.below(n) < n);
            let f = r.f64();
            prop_assert!((0.0..1.0).contains(&f));
            prop_assert!(r.exp(1.5) >= 0.0);
        }
    }
}
