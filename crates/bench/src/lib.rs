//! Shared plumbing for the bench targets: result persistence so the
//! aggregate benches (Tables 6 and 7) can reuse the outcomes of the
//! per-workload injection benches (Tables 3-5) instead of re-running
//! them, plus a tee helper writing each rendered table to disk.

use noiselab_core::experiments::inject::InjectionTable;
use std::fs;
use std::path::PathBuf;

/// Directory where bench results are cached and rendered tables are
/// written (`NOISELAB_RESULTS`, default `target/noiselab-results`, resolved relative to the bench cwd (the package directory under `cargo bench`)).
pub fn results_dir() -> PathBuf {
    let dir = std::env::var("NOISELAB_RESULTS")
        .map(PathBuf::from)
        .unwrap_or_else(|_| PathBuf::from("target/noiselab-results"));
    fs::create_dir_all(&dir).expect("cannot create results dir");
    dir
}

/// Persist an injection table outcome as JSON.
pub fn save_table(name: &str, table: &InjectionTable) {
    let path = results_dir().join(format!("{name}.json"));
    let json = serde_json::to_string(table).expect("serialise table");
    fs::write(&path, json).expect("write table cache");
}

/// Load a previously persisted injection table, if present and parseable.
pub fn load_table(name: &str) -> Option<InjectionTable> {
    let path = results_dir().join(format!("{name}.json"));
    let data = fs::read_to_string(path).ok()?;
    serde_json::from_str(&data).ok()
}

/// Print a rendered table and also write it next to the JSON cache.
pub fn emit(name: &str, rendered: &str) {
    println!("{rendered}");
    let path = results_dir().join(format!("{name}.txt"));
    fs::write(path, rendered).expect("write rendered table");
}

/// Wall-clock banner helper.
pub fn finish(name: &str, t0: std::time::Instant) {
    println!("[{name}: {:.1}s]", t0.elapsed().as_secs_f64());
}
