//! Shared plumbing for the bench targets: result persistence so the
//! aggregate benches (Tables 6 and 7) can reuse the outcomes of the
//! per-workload injection benches (Tables 3-5) instead of re-running
//! them, plus a tee helper writing each rendered table to disk.
//!
//! Everything here degrades instead of panicking: a missing or
//! unwritable results directory costs the cache and the on-disk copy,
//! never the bench run. The fallible plumbing is exposed as `try_*`
//! variants with typed `io::Error`s.

use noiselab_core::experiments::inject::InjectionTable;
use std::fs;
use std::io;
use std::path::PathBuf;

/// Host-side timing for bench banners, routed through the workspace's
/// single audited wall-clock site in `noiselab_telemetry`. Simulated
/// time never touches this — it lives in `noiselab_sim::SimTime`.
pub fn wall_clock() -> std::time::Instant {
    noiselab_telemetry::wall_clock()
}

/// Directory where bench results are cached and rendered tables are
/// written (`NOISELAB_RESULTS`, default `target/noiselab-results`,
/// resolved relative to the bench cwd (the package directory under
/// `cargo bench`)).
pub fn try_results_dir() -> io::Result<PathBuf> {
    let dir = std::env::var("NOISELAB_RESULTS")
        .map(PathBuf::from)
        .unwrap_or_else(|_| PathBuf::from("target/noiselab-results"));
    fs::create_dir_all(&dir)?;
    Ok(dir)
}

/// Persist an injection table outcome as JSON.
pub fn try_save_table(name: &str, table: &InjectionTable) -> io::Result<()> {
    let path = try_results_dir()?.join(format!("{name}.json"));
    let json = serde_json::to_string(table)
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
    fs::write(&path, json)
}

/// [`try_save_table`], downgraded to a warning on failure: losing the
/// cache must not lose the bench run.
pub fn save_table(name: &str, table: &InjectionTable) {
    if let Err(e) = try_save_table(name, table) {
        eprintln!("noiselab-bench: {name}: result cache not written: {e}");
    }
}

/// Load a previously persisted injection table, if present and parseable.
pub fn load_table(name: &str) -> Option<InjectionTable> {
    let path = try_results_dir().ok()?.join(format!("{name}.json"));
    let data = fs::read_to_string(path).ok()?;
    serde_json::from_str(&data).ok()
}

/// Write a rendered table next to the JSON cache.
pub fn try_write_rendered(name: &str, rendered: &str) -> io::Result<()> {
    let path = try_results_dir()?.join(format!("{name}.txt"));
    fs::write(path, rendered)
}

/// Print a rendered table and also write it next to the JSON cache
/// (with a warning, not a panic, if the disk copy fails).
pub fn emit(name: &str, rendered: &str) {
    println!("{rendered}");
    if let Err(e) = try_write_rendered(name, rendered) {
        eprintln!("noiselab-bench: {name}: rendered table not written: {e}");
    }
}

/// Wall-clock banner helper.
pub fn finish(name: &str, t0: std::time::Instant) {
    println!("[{name}: {:.1}s]", t0.elapsed().as_secs_f64());
}
