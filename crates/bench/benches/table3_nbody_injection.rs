//! Regenerates paper Table 3: N-body under noise injection — average
//! execution time and percentage change vs the matching baseline, per
//! mitigation, on both platforms.
//!
//! Headline paper shapes: housekeeping columns reduce the degradation
//! monotonically; TP is no better than Rm; SYCL rows degrade far less
//! than OMP rows; AMD SMT rows degrade less than their non-SMT peers.

use noiselab_core::experiments::{inject, Scale};

fn main() {
    let t0 = noiselab_bench::wall_clock();
    let table = inject::run_table(&inject::table3_spec(), Scale::from_env(), false);
    noiselab_bench::emit("table3", &table.render());
    noiselab_bench::save_table("table3", &table);
    noiselab_bench::finish("table3", t0);
}
