//! Regenerates paper Table 4: Babelstream under noise injection.
//!
//! Headline paper shape: the memory-bound workload pays almost nothing
//! for housekeeping cores, so the HK columns approach the baseline even
//! under heavy noise (paper: OMP #2 Rm +28.9 % vs RmHK +0.2 %).

use noiselab_core::experiments::{inject, Scale};

fn main() {
    let t0 = noiselab_bench::wall_clock();
    let table = inject::run_table(&inject::table4_spec(), Scale::from_env(), false);
    noiselab_bench::emit("table4", &table.render());
    noiselab_bench::save_table("table4", &table);
    noiselab_bench::finish("table4", t0);
}
