//! Regenerates paper Table 6: average relative performance change (%)
//! under injection per model and mitigation, aggregated over Tables
//! 3-5. Reuses the cached outcomes of the table3/4/5 benches when
//! present (cargo bench runs them first alphabetically); otherwise
//! recomputes at smoke scale.
//!
//! Paper values: OMP 42.85/20.43/17.24/49.58/27.73/24.22,
//! SYCL 19.08/10.52/8.96/22.01/10.92/9.60 — SYCL's average improvement
//! 16.82 percentage points.

use noiselab_core::experiments::{inject, table6, Scale};

fn main() {
    let t0 = noiselab_bench::wall_clock();
    let mut tables = Vec::new();
    for (name, spec) in [
        ("table3", inject::table3_spec()),
        ("table4", inject::table4_spec()),
        ("table5", inject::table5_spec()),
    ] {
        match noiselab_bench::load_table(name) {
            Some(t) => tables.push(t),
            None => {
                eprintln!("{name} cache missing; recomputing at smoke scale");
                tables.push(inject::run_table(&spec, Scale::smoke(), true));
            }
        }
    }
    let summary = table6::Table6::aggregate(&tables);
    noiselab_bench::emit("table6", &summary.render());
    assert!(
        summary.sycl_advantage_points() > 0.0,
        "SYCL should be more resilient on average (paper: 16.82 points)"
    );
    noiselab_bench::finish("table6", t0);
}
