//! The runlevel-3 check of paper section 5.1: disabling the GUI reduces
//! baseline variability but leaves the mitigation trends unchanged.

use noiselab_core::experiments::{runlevel, Scale};

fn main() {
    let t0 = noiselab_bench::wall_clock();
    let cmp = runlevel::run(Scale::from_env(), false);
    noiselab_bench::emit("ablation_runlevel3", &cmp.render());
    assert!(
        cmp.avg_rl3() <= cmp.avg_rl5() * 1.2,
        "disabling the GUI should not increase variability: rl3 {:.2} vs rl5 {:.2}",
        cmp.avg_rl3(),
        cmp.avg_rl5()
    );
    noiselab_bench::finish("ablation_runlevel3", t0);
}
