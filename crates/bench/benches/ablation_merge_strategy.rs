//! Ablation of the overlap-merge strategy (paper section 5.2): the
//! original pessimistic merge glues interleaved fragments of diverse
//! noise into long SCHED_FIFO segments, over-injecting and flattening
//! mitigation differences (paper: 25.74 % accuracy error); the improved
//! merge keeps interrupt- and thread-based noise separate and boosts
//! thread-noise priority (5.70 %).

use noiselab_core::experiments::{ablation, Scale};

fn main() {
    let t0 = noiselab_bench::wall_clock();
    let result = ablation::merge_ablation(Scale::from_env(), false);
    noiselab_bench::emit("ablation_merge", &result.render());
    assert!(
        result.improved_accuracy < result.naive_accuracy,
        "improved merge should replicate better: {:.2}% vs {:.2}%",
        result.improved_accuracy * 100.0,
        result.naive_accuracy * 100.0
    );
    assert!(result.naive_fifo_frac > result.improved_fifo_frac);
    noiselab_bench::finish("ablation_merge", t0);
}
