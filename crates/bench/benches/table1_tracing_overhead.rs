//! Regenerates paper Table 1: average execution time with osnoise
//! tracing off and on, per workload, on the Intel platform.
//!
//! Paper values: N-body 0.4510 -> 0.4540 (+0.67 %), Babelstream
//! 1.9221 -> 1.9359 (+0.72 %), MiniFE 1.0631 -> 1.0658 (+0.25 %).

use noiselab_core::experiments::{table1, Scale};

fn main() {
    let t0 = noiselab_bench::wall_clock();
    let table = table1::run(Scale::from_env());
    noiselab_bench::emit("table1", &table.render());
    for r in &table.rows {
        assert!(
            r.increase() < 0.02,
            "tracing overhead for {} is {:.2}%, expected < 2%",
            r.workload,
            r.increase() * 100.0
        );
    }
    noiselab_bench::finish("table1", t0);
}
