//! FWQ extension: the classic fixed-work-quantum jitter probe, used
//! here to cross-validate the noise model — the interference FWQ
//! detects must be consistent with what the osnoise tracer records in
//! the same run.

use noiselab_kernel::{Kernel, KernelConfig};
use noiselab_machine::Machine;
use noiselab_noise::{install, NoiseProfile, OsNoiseTracer};
use noiselab_sim::{Rng, SimDuration};
use noiselab_workloads::fwq::{measure, Fwq};

fn main() {
    let t0 = noiselab_bench::wall_clock();
    let mut kernel = Kernel::new(Machine::intel_9700kf(), KernelConfig::default(), 11);
    let mut rng = Rng::new(111);
    let mut profile = NoiseProfile::desktop();
    profile.anomaly_prob = 1.0;
    install(&mut kernel, &profile, &mut rng);
    let (tracer, buffer) = OsNoiseTracer::new();
    kernel.attach_tracer(Box::new(tracer));

    let report = measure(&mut kernel, &Fwq::default());
    let trace = buffer.take_trace(0, SimDuration::ZERO);
    let traced_ms: f64 = trace.events.iter().map(|e| e.duration.nanos()).sum::<u64>() as f64 / 1e6;

    let rendered = format!(
        "== FWQ cross-validation (Intel, desktop noise + forced anomaly) ==\n\
         quanta: {} x {:.1}us  disturbed: {} ({:.2}%)\n\
         FWQ-detected noise: {:.3}ms  max detention: {:.3}ms\n\
         osnoise-traced noise: {:.3}ms ({} events)\n",
        report.total_samples,
        report.min_quantum.as_micros_f64(),
        report.disturbed_samples,
        report.disturbed_samples as f64 / report.total_samples as f64 * 100.0,
        report.total_noise.as_millis_f64(),
        report.max_detention.as_millis_f64(),
        traced_ms,
        trace.events.len()
    );
    noiselab_bench::emit("extension_fwq", &rendered);
    assert!(report.total_noise.nanos() > 0, "FWQ saw no noise");
    let ratio = traced_ms / report.total_noise.as_millis_f64();
    assert!(
        (0.2..20.0).contains(&ratio),
        "tracer and FWQ disagree wildly: ratio {ratio:.2}"
    );
    noiselab_bench::finish("extension_fwq", t0);
}
