//! Regenerates paper Table 5: MiniFE under noise injection — the most
//! noise-amplifying workload (dot-product reductions barrier every few
//! hundred microseconds), with the largest paper degradations (up to
//! +118.8 % for TPHK-OMP on AMD).

use noiselab_core::experiments::{inject, Scale};

fn main() {
    let t0 = noiselab_bench::wall_clock();
    let table = inject::run_table(&inject::table5_spec(), Scale::from_env(), false);
    noiselab_bench::emit("table5", &table.render());
    noiselab_bench::save_table("table5", &table);
    noiselab_bench::finish("table5", t0);
}
