//! Criterion micro-benchmarks of the simulation substrate itself:
//! event-queue throughput, a full scheduler-saturated kernel run, and
//! one end-to-end workload run. These track the simulator's own
//! performance (the experiments above run hundreds of thousands of
//! simulated seconds).

use criterion::{criterion_group, criterion_main, Criterion};
use noiselab_core::{run_once, ExecConfig, Mitigation, Model, Platform};
use noiselab_kernel::{Action, Kernel, KernelConfig, ScriptBehavior, ThreadKind, ThreadSpec};
use noiselab_machine::{Machine, WorkUnit};
use noiselab_sim::{EventQueue, SimTime};
use noiselab_workloads::NBody;

fn bench_event_queue(c: &mut Criterion) {
    c.bench_function("event_queue_push_pop_10k", |b| {
        b.iter(|| {
            let mut q = EventQueue::new();
            for i in 0..10_000u64 {
                q.schedule(SimTime(i * 7 % 9_999), i);
            }
            let mut acc = 0u64;
            while let Some((_, v)) = q.pop() {
                acc = acc.wrapping_add(v);
            }
            acc
        })
    });
}

fn bench_saturated_kernel(c: &mut Criterion) {
    c.bench_function("kernel_16_threads_8_cpus_10ms", |b| {
        b.iter(|| {
            let mut k = Kernel::new(Machine::intel_9700kf(), KernelConfig::default(), 1);
            let tids: Vec<_> = (0..16)
                .map(|i| {
                    k.spawn(
                        ThreadSpec::new(format!("w{i}"), ThreadKind::Workload),
                        Box::new(ScriptBehavior::new(vec![Action::Compute(
                            WorkUnit::compute(150_000_000.0),
                        )])),
                    )
                })
                .collect();
            for t in tids {
                k.run_until_exit(t, SimTime::from_secs_f64(1.0)).unwrap();
            }
        })
    });
}

fn bench_run_once(c: &mut Criterion) {
    let platform = Platform::intel();
    let w = NBody { bodies: 8_192, steps: 3, sycl_kernel_efficiency: 1.3 };
    let cfg = ExecConfig::new(Model::Omp, Mitigation::Rm);
    let mut seed = 0u64;
    c.bench_function("run_once_nbody_small_intel", |b| {
        b.iter(|| {
            seed += 1;
            run_once(&platform, &w, &cfg, seed, false, None)
        })
    });
}

criterion_group!(
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_event_queue, bench_saturated_kernel, bench_run_once
);
criterion_main!(benches);
