//! Criterion micro-benchmarks of the simulation substrate itself:
//! event-queue throughput, a full scheduler-saturated kernel run, and
//! one end-to-end workload run. These track the simulator's own
//! performance (the experiments above run hundreds of thousands of
//! simulated seconds).

use criterion::{criterion_group, criterion_main, Criterion};
use noiselab_core::{run_once, ExecConfig, Mitigation, Model, Platform};
use noiselab_kernel::{Action, Kernel, KernelConfig, ScriptBehavior, ThreadKind, ThreadSpec};
use noiselab_machine::{Machine, WorkUnit};
use noiselab_sim::{EventQueue, SimDuration, SimTime};
use noiselab_workloads::NBody;

fn bench_event_queue(c: &mut Criterion) {
    c.bench_function("event_queue_push_pop_10k", |b| {
        b.iter(|| {
            let mut q = EventQueue::new();
            for i in 0..10_000u64 {
                q.schedule(SimTime(i * 7 % 9_999), i);
            }
            let mut acc = 0u64;
            while let Some((_, v)) = q.pop() {
                acc = acc.wrapping_add(v);
            }
            acc
        })
    });

    // Cancellation-heavy churn: the timer-retarget pattern of the kernel
    // (schedule a completion, cancel it, schedule a new one) that the
    // token table + lazy compaction must keep O(log n) with a bounded
    // heap. Every scheduled event is cancelled and replaced 4 times.
    c.bench_function("event_queue_schedule_cancel_churn_10k", |b| {
        b.iter(|| {
            let mut q = EventQueue::new();
            let mut tok = Vec::with_capacity(64);
            for round in 0..10_000u64 {
                tok.push(q.schedule(SimTime(round * 13 % 65_536), round));
                if tok.len() == 64 {
                    for t in tok.drain(..) {
                        q.cancel(t);
                    }
                }
            }
            let mut acc = 0u64;
            while let Some((_, v)) = q.pop() {
                acc = acc.wrapping_add(v);
            }
            acc
        })
    });

    c.bench_function("event_queue_reschedule_10k", |b| {
        b.iter(|| {
            let mut q = EventQueue::new();
            let mut t = q.schedule(SimTime(1), 0u64);
            for i in 1..10_000u64 {
                t = q.reschedule(t, SimTime(i % 4_096 + 1), i);
            }
            q.pop()
        })
    });
}

/// One busy CPU on a 48-core machine over 200 ms of virtual time: the
/// paper-scale shape (most CPUs idle most of the time) where tickless
/// idle pays off. Eager mode processes ~2400 idle ticks per simulated
/// 100 ms; tickless parks them all.
fn dispatch_scenario(tickless: bool) {
    let machine = Machine::a64fx(false);
    let cfg = KernelConfig {
        tickless,
        ..KernelConfig::default()
    };
    let mut k = Kernel::new(machine, cfg, 1);
    let t = k.spawn(
        ThreadSpec::new("w", ThreadKind::Workload),
        Box::new(ScriptBehavior::new(vec![
            Action::Compute(WorkUnit::compute(100_000_000.0)),
            Action::SleepFor(SimDuration::from_millis(50)),
            Action::Compute(WorkUnit::compute(100_000_000.0)),
        ])),
    );
    k.run_until_exit(t, SimTime::from_secs_f64(1.0)).unwrap();
}

fn bench_kernel_dispatch(c: &mut Criterion) {
    c.bench_function("kernel_dispatch_mostly_idle_eager", |b| {
        b.iter(|| dispatch_scenario(false))
    });
    c.bench_function("kernel_dispatch_mostly_idle_tickless", |b| {
        b.iter(|| dispatch_scenario(true))
    });
}

/// Rate-recompute churn: threads alternating short computes and sleeps
/// force a recompute_rates call every few microseconds of virtual time.
fn bench_rate_churn(c: &mut Criterion) {
    c.bench_function("kernel_rate_churn_8_threads", |b| {
        b.iter(|| {
            let mut k = Kernel::new(Machine::intel_9700kf(), KernelConfig::default(), 2);
            let tids: Vec<_> = (0..8)
                .map(|i| {
                    let script: Vec<Action> = (0..200)
                        .flat_map(|_| {
                            [
                                Action::Compute(WorkUnit::compute(20_000.0)),
                                Action::SleepFor(SimDuration::from_micros(5)),
                            ]
                        })
                        .collect();
                    k.spawn(
                        ThreadSpec::new(format!("w{i}"), ThreadKind::Workload),
                        Box::new(ScriptBehavior::new(script)),
                    )
                })
                .collect();
            for t in tids {
                k.run_until_exit(t, SimTime::from_secs_f64(1.0)).unwrap();
            }
        })
    });
}

fn bench_saturated_kernel(c: &mut Criterion) {
    c.bench_function("kernel_16_threads_8_cpus_10ms", |b| {
        b.iter(|| {
            let mut k = Kernel::new(Machine::intel_9700kf(), KernelConfig::default(), 1);
            let tids: Vec<_> = (0..16)
                .map(|i| {
                    k.spawn(
                        ThreadSpec::new(format!("w{i}"), ThreadKind::Workload),
                        Box::new(ScriptBehavior::new(vec![Action::Compute(
                            WorkUnit::compute(150_000_000.0),
                        )])),
                    )
                })
                .collect();
            for t in tids {
                k.run_until_exit(t, SimTime::from_secs_f64(1.0)).unwrap();
            }
        })
    });
}

fn bench_run_once(c: &mut Criterion) {
    let platform = Platform::intel();
    let w = NBody {
        bodies: 8_192,
        steps: 3,
        sycl_kernel_efficiency: 1.3,
    };
    let cfg = ExecConfig::new(Model::Omp, Mitigation::Rm);
    let mut seed = 0u64;
    c.bench_function("run_once_nbody_small_intel", |b| {
        b.iter(|| {
            seed += 1;
            run_once(&platform, &w, &cfg, seed, false, None).expect("bench run failed")
        })
    });
}

criterion_group!(
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_event_queue, bench_kernel_dispatch, bench_rate_churn,
        bench_saturated_kernel, bench_run_once
);
criterion_main!(benches);
