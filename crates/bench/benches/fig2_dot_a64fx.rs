//! Regenerates paper Figure 2: variability of the Babelstream dot
//! kernel vs thread count on the two A64FX systems.
//!
//! Paper shape: without reserved cores variability explodes at full
//! 48-core occupancy, when no spare core can absorb OS interference.

use noiselab_core::experiments::{fig2, Scale};

fn main() {
    let t0 = noiselab_bench::wall_clock();
    let fig = fig2::run(Scale::from_env(), false);
    noiselab_bench::emit("fig2", &fig.render());
    let r = fig2::Fig2::full_occupancy_sd(&fig.reserved);
    let u = fig2::Fig2::full_occupancy_sd(&fig.unreserved);
    assert!(
        u > r,
        "full occupancy on the unreserved system should be noisier: {u:.2} vs {r:.2} ms"
    );
    noiselab_bench::finish("fig2", t0);
}
