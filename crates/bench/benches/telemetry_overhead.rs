//! Telemetry overhead microbench: the simulator's event engine with
//! and without the telemetry observer (and the virtual tracer)
//! attached, reduced to a machine-readable summary.
//!
//! Emits `BENCH_telemetry.json` at the repository root: virtual
//! events per host second, host ns per event, and the host-time
//! overhead of each observation mode relative to the bare run, plus
//! the full [`noiselab_core::OverheadReport`] (per-mode rows and the
//! host-time phase profile) for drill-down.

use noiselab_core::experiments::suite;
use noiselab_core::{measure_overhead, ExecConfig, Mitigation, Model, OverheadReport, Platform};
use serde::Serialize;

/// The machine-readable summary consumed by CI and the docs.
#[derive(Serialize)]
struct BenchTelemetry {
    bench: String,
    workload: String,
    config: String,
    seed: u64,
    reps: u32,
    events_per_run: u64,
    /// Dispatched kernel events per host second, telemetry off / on.
    virtual_events_per_host_sec_off: f64,
    virtual_events_per_host_sec_on: f64,
    /// Host nanoseconds per dispatched event, telemetry off / on.
    host_ns_per_event_off: f64,
    host_ns_per_event_on: f64,
    /// Host-time overhead vs. the bare run, percent.
    telemetry_overhead_pct: f64,
    tracer_overhead_pct: f64,
    both_overhead_pct: f64,
    report: OverheadReport,
}

fn main() {
    let t0 = noiselab_bench::wall_clock();
    // Paper-scale nbody: enough virtual time (hundreds of ms, a few
    // thousand kernel events) for stable per-event host costs.
    let platform = Platform::intel();
    let workload = suite::nbody_for(&platform);
    let cfg = ExecConfig::new(Model::Omp, Mitigation::Rm);
    let (seed, reps) = (1, 5);
    let report =
        measure_overhead(&platform, &workload, &cfg, seed, reps).expect("bench run failed");

    let row = |mode: &str| {
        report
            .rows
            .iter()
            .find(|r| r.mode == mode)
            .unwrap_or_else(|| panic!("mode {mode} missing from overhead report"))
    };
    let rate = |host_ns: u64| report.events as f64 / (host_ns as f64 / 1e9);
    let summary = BenchTelemetry {
        bench: "telemetry_overhead".into(),
        workload: report.workload.clone(),
        config: report.config.clone(),
        seed,
        reps,
        events_per_run: report.events,
        virtual_events_per_host_sec_off: rate(row("bare").host_ns),
        virtual_events_per_host_sec_on: rate(row("+telemetry").host_ns),
        host_ns_per_event_off: row("bare").host_ns_per_event,
        host_ns_per_event_on: row("+telemetry").host_ns_per_event,
        telemetry_overhead_pct: row("+telemetry").overhead_pct,
        tracer_overhead_pct: row("+tracer").overhead_pct,
        both_overhead_pct: row("+both").overhead_pct,
        report,
    };

    noiselab_bench::emit("telemetry_overhead", &summary.report.render());
    let out = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_telemetry.json");
    match serde_json::to_string_pretty(&summary) {
        Ok(json) => {
            if let Err(e) = std::fs::write(out, json + "\n") {
                eprintln!("noiselab-bench: telemetry summary not written: {e}");
            } else {
                println!("wrote {out}");
            }
        }
        Err(e) => eprintln!("noiselab-bench: telemetry summary not serialized: {e}"),
    }
    noiselab_bench::finish("telemetry_overhead", t0);
}
