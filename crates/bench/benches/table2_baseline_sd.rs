//! Regenerates paper Table 2: average run-to-run standard deviation
//! (ms) of baseline executions per mitigation configuration and model,
//! averaged across workloads and platforms.
//!
//! Paper values (ms): OMP 7.77 / 5.99 / 9.99 / 5.90 / 7.46 / 8.69 and
//! SYCL 7.18 / 7.84 / 5.55 / 6.75 / 7.63 / 5.36 — i.e. both models show
//! comparable baseline variability, with no mitigation dominating.

use noiselab_core::experiments::{table2, Scale};

fn main() {
    let t0 = noiselab_bench::wall_clock();
    let table = table2::run(Scale::from_env());
    noiselab_bench::emit("table2", &table.render());
    noiselab_bench::finish("table2", t0);
}
