//! Regenerates paper Figure 1: schedbench execution-time variability
//! across schedule methods (st/dy/gd x chunk), on the A64FX with
//! firmware-reserved OS cores vs without.
//!
//! Paper shape: the unreserved system shows much larger spreads.

use noiselab_core::experiments::{fig1, Scale};

fn main() {
    let t0 = noiselab_bench::wall_clock();
    let fig = fig1::run(Scale::from_env(), false);
    noiselab_bench::emit("fig1", &fig.render());
    let reserved = fig1::Fig1::avg_sd(&fig.reserved);
    let unreserved = fig1::Fig1::avg_sd(&fig.unreserved);
    assert!(
        unreserved > reserved * 1.5,
        "unreserved system should be markedly noisier: {unreserved:.2} vs {reserved:.2} ms"
    );
    noiselab_bench::finish("fig1", t0);
}
