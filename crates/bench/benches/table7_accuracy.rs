//! Regenerates paper Table 7: absolute replication accuracy of the
//! injector for each of the ten worst-case traces (paper average:
//! 8.57 %, seven of ten within 8 %). Reuses the cached outcomes of the
//! table3/4/5 benches when present.

use noiselab_core::experiments::{inject, table7, Scale};

fn main() {
    let t0 = noiselab_bench::wall_clock();
    let mut tables = Vec::new();
    for (name, spec) in [
        ("table3", inject::table3_spec()),
        ("table4", inject::table4_spec()),
        ("table5", inject::table5_spec()),
    ] {
        match noiselab_bench::load_table(name) {
            Some(t) => tables.push(t),
            None => {
                eprintln!("{name} cache missing; recomputing at smoke scale");
                tables.push(inject::run_table(&spec, Scale::smoke(), true));
            }
        }
    }
    let acc = table7::Table7::from_tables(&tables);
    noiselab_bench::emit("table7", &acc.render());
    assert_eq!(
        acc.records.len(),
        10,
        "the paper uses ten worst-case traces"
    );
    noiselab_bench::finish("table7", t0);
}
