//! Hot-path cost sweep: host ns/event for every workload × scheduling
//! config, in all four observation modes, consolidated into
//! `BENCH_hotpath.json` at the repository root.
//!
//! The file keeps a history so an optimization trajectory stays
//! honest: the first run on a tree writes the `baseline` snapshot;
//! every later run appends a labelled snapshot to `steps` (label from
//! `NOISELAB_BENCH_LABEL`, default `step-N`). CI runs the same binary
//! in check mode (`NOISELAB_BENCH_CHECK=1`), which re-measures at low
//! reps and fails on a >25 % bare-ns/event regression against the last
//! committed snapshot instead of writing anything.
//!
//! Env knobs:
//! * `NOISELAB_BENCH_REPS`  — reps per mode (default 5; nightly uses 9)
//! * `NOISELAB_BENCH_LABEL` — snapshot label for the history
//! * `NOISELAB_BENCH_CHECK` — compare, don't write; exit 1 on regression

use noiselab_core::experiments::suite;
use noiselab_core::{measure_overhead, ExecConfig, Mitigation, Model, Platform};
use noiselab_workloads::Workload;
use serde::{Deserialize, Serialize};

const OUT: &str = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_hotpath.json");
/// Allowed bare-path regression before the check mode fails the run.
const GATE_PCT: f64 = 25.0;

/// One (workload, config) cell's per-mode cost.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct Cell {
    workload: String,
    config: String,
    events_per_run: u64,
    bare_ns_per_event: f64,
    telemetry_ns_per_event: f64,
    telemetry_overhead_pct: f64,
    tracer_overhead_pct: f64,
    both_overhead_pct: f64,
}

/// One labelled measurement of the whole sweep.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct Snapshot {
    label: String,
    reps: u32,
    cells: Vec<Cell>,
}

/// The on-disk history: baseline first, then one snapshot per
/// optimization step.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct History {
    bench: String,
    baseline: Snapshot,
    steps: Vec<Snapshot>,
}

impl History {
    fn latest(&self) -> &Snapshot {
        self.steps.last().unwrap_or(&self.baseline)
    }
}

fn sweep(reps: u32, label: String) -> Snapshot {
    let platform = Platform::intel();
    let workloads: Vec<Box<dyn Workload>> = vec![
        Box::new(suite::nbody_for(&platform)),
        Box::new(suite::babelstream_for(&platform)),
        Box::new(suite::minife_for(&platform)),
    ];
    // Roam (the paper's default placement) and pinned.
    let configs = [
        ExecConfig::new(Model::Omp, Mitigation::Rm),
        ExecConfig::new(Model::Omp, Mitigation::Tp),
    ];
    let mut cells = Vec::new();
    for w in &workloads {
        for cfg in &configs {
            let rep = measure_overhead(&platform, w.as_ref(), cfg, 1, reps)
                .expect("hotpath bench cell failed");
            let row = |mode: &str| {
                rep.rows
                    .iter()
                    .find(|r| r.mode == mode)
                    .unwrap_or_else(|| panic!("mode {mode} missing"))
            };
            cells.push(Cell {
                workload: rep.workload.clone(),
                config: rep.config.clone(),
                events_per_run: rep.events,
                bare_ns_per_event: row("bare").host_ns_per_event,
                telemetry_ns_per_event: row("+telemetry").host_ns_per_event,
                telemetry_overhead_pct: row("+telemetry").overhead_pct,
                tracer_overhead_pct: row("+tracer").overhead_pct,
                both_overhead_pct: row("+both").overhead_pct,
            });
            println!(
                "{:<12} {:<8} {:>7} ev  bare {:>7.1} ns/ev  tel {:>+6.1}%  trc {:>+6.1}%  both {:>+6.1}%",
                cells.last().unwrap().workload,
                cells.last().unwrap().config,
                cells.last().unwrap().events_per_run,
                cells.last().unwrap().bare_ns_per_event,
                cells.last().unwrap().telemetry_overhead_pct,
                cells.last().unwrap().tracer_overhead_pct,
                cells.last().unwrap().both_overhead_pct,
            );
        }
    }
    Snapshot { label, reps, cells }
}

/// Compare a fresh sweep against the committed history; returns the
/// regressions as `(workload/config key, human-readable line)` pairs.
fn check(history: &History, fresh: &Snapshot) -> Vec<(String, String)> {
    let committed = history.latest();
    let mut bad = Vec::new();
    for cell in &fresh.cells {
        let Some(prev) = committed
            .cells
            .iter()
            .find(|c| c.workload == cell.workload && c.config == cell.config)
        else {
            continue;
        };
        let pct =
            (cell.bare_ns_per_event - prev.bare_ns_per_event) / prev.bare_ns_per_event * 100.0;
        if pct > GATE_PCT {
            bad.push((
                format!("{}/{}", cell.workload, cell.config),
                format!(
                    "{} / {}: bare {:.1} -> {:.1} ns/event ({:+.1}% > {:.0}% gate)",
                    cell.workload,
                    cell.config,
                    prev.bare_ns_per_event,
                    cell.bare_ns_per_event,
                    pct,
                    GATE_PCT
                ),
            ));
        }
    }
    bad
}

fn main() {
    let t0 = noiselab_bench::wall_clock();
    let reps: u32 = std::env::var("NOISELAB_BENCH_REPS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(5);
    let check_mode = std::env::var("NOISELAB_BENCH_CHECK").is_ok_and(|v| v == "1");
    let existing: Option<History> = std::fs::read_to_string(OUT)
        .ok()
        .and_then(|s| serde_json::from_str(&s).ok());

    if check_mode {
        let history = existing.expect("check mode needs a committed BENCH_hotpath.json");
        let fresh = sweep(reps, "check".into());
        let mut bad = check(&history, &fresh);
        if !bad.is_empty() {
            // A genuine regression reproduces; a transient load spike
            // on a shared host does not. Re-measure once and keep only
            // the cells that exceed the gate in both sweeps.
            let retry = sweep(reps, "check-retry".into());
            let confirmed = check(&history, &retry);
            bad.retain(|(key, _)| confirmed.iter().any(|(k, _)| k == key));
        }
        if bad.is_empty() {
            println!(
                "hotpath perf gate: OK vs '{}' ({} cells within {:.0}%)",
                history.latest().label,
                fresh.cells.len(),
                GATE_PCT
            );
        } else {
            eprintln!("hotpath perf gate: REGRESSION");
            for (_, line) in &bad {
                eprintln!("  {line}");
            }
            std::process::exit(1);
        }
        noiselab_bench::finish("hotpath", t0);
        return;
    }

    let history = match existing {
        None => {
            let label = std::env::var("NOISELAB_BENCH_LABEL").unwrap_or_else(|_| "baseline".into());
            History {
                bench: "hotpath".into(),
                baseline: sweep(reps, label),
                steps: Vec::new(),
            }
        }
        Some(mut h) => {
            let label = std::env::var("NOISELAB_BENCH_LABEL")
                .unwrap_or_else(|_| format!("step-{}", h.steps.len() + 1));
            h.steps.push(sweep(reps, label));
            h
        }
    };
    match serde_json::to_string_pretty(&history) {
        Ok(json) => {
            if let Err(e) = std::fs::write(OUT, json + "\n") {
                eprintln!("noiselab-bench: hotpath history not written: {e}");
            } else {
                println!("wrote {OUT} (snapshot '{}')", history.latest().label);
            }
        }
        Err(e) => eprintln!("noiselab-bench: hotpath history not serialized: {e}"),
    }
    noiselab_bench::finish("hotpath", t0);
}
