//! NUMA extension (paper sections 5.1/6): on a 128-core, 8-domain node,
//! roaming threads under node noise pay cross-NUMA migration penalties
//! that pinned threads avoid — the regime where the paper expects
//! thread pinning to become clearly beneficial.

use noiselab_core::experiments::{numa, Scale};

fn main() {
    let t0 = noiselab_bench::wall_clock();
    let scale = Scale::from_env();
    let cmp = numa::run(scale.baseline_runs, false);
    noiselab_bench::emit("extension_numa", &cmp.render());
    let rm = cmp.row("Rm-OMP").expect("Rm row");
    let tp = cmp.row("TP-OMP").expect("TP row");
    assert_eq!(tp.migrations, 0.0, "pinned threads must not migrate");
    assert!(
        rm.migrations > 0.0,
        "roaming threads should migrate under node noise"
    );
    noiselab_bench::finish("extension_numa", t0);
}
