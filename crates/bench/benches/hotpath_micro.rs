//! Criterion microbenches for the hot-path primitives the event
//! pipeline overhaul introduced, each isolating one mechanism the
//! macro sweep (`hotpath.rs`) only sees in aggregate:
//!
//! * `observer_dispatch/{0,1,4}` — a fixed kernel scenario with N
//!   batch-subscribed observers attached, showing the per-observer
//!   marginal cost of the masked, batched dispatch path;
//! * `intern/{hit,first_sight_64}` — steady-state id lookup vs the
//!   first-sight path that allocates and inserts;
//! * `arena/{fresh_per_run,reused}` — one fully instrumented run
//!   (tracer + telemetry) drawing state from a cold arena every
//!   iteration vs recycling one arena, i.e. the allocation cost the
//!   repetition loops now avoid;
//! * `wire/{encode_1k,decode_1k}` — the fixed-width 29-byte record
//!   codec shared by the tracer, the span recorder and NLTB v2.

use std::hint::black_box;
use std::time::Duration;

use criterion::{criterion_group, criterion_main, Criterion};
use noiselab_core::{
    run_once_instrumented_in, ExecConfig, Mitigation, Model, Observe, Platform, RunArena,
};
use noiselab_kernel::{
    Action, InternTable, Kernel, KernelConfig, KernelObserver, ScriptBehavior, ThreadKind,
    ThreadSpec, WireRecord, WIRE_NO_THREAD, WIRE_RECORD_BYTES,
};
use noiselab_machine::WorkUnit;
use noiselab_sim::SimDuration;
use noiselab_telemetry::TelemetryConfig;
use noiselab_testutil::{costed_machine, horizon, tiny_nbody};

/// Observer that touches each batch once — the cheapest subscriber the
/// batched `events` hook supports, so the measurement is dominated by
/// dispatch plumbing rather than observer work.
struct CountingObserver(u64);

impl KernelObserver for CountingObserver {
    fn events(&mut self, batch: &[WireRecord], _intern: &InternTable) {
        self.0 += batch.len() as u64;
    }
}

/// A fixed two-thread kernel scenario (compute, sleep, compute on a
/// 4-core costed machine) with `n_obs` observers attached; returns the
/// summed exit times so the run cannot be optimised away.
fn kernel_scenario(n_obs: usize) -> u64 {
    let mut k = Kernel::new(costed_machine(4, 1), KernelConfig::default(), 7);
    for _ in 0..n_obs {
        k.attach_observer(Box::new(CountingObserver(0)));
    }
    let spawn = |k: &mut Kernel, name: &str, fibs: f64| {
        k.spawn(
            ThreadSpec::new(name, ThreadKind::Workload),
            Box::new(ScriptBehavior::new(vec![
                Action::Compute(WorkUnit::compute(fibs)),
                Action::SleepFor(SimDuration::from_micros(200)),
                Action::Compute(WorkUnit::compute(fibs)),
            ])),
        )
    };
    let a = spawn(&mut k, "a", 4_000_000.0);
    let b = spawn(&mut k, "b", 3_000_000.0);
    [a, b]
        .iter()
        .map(|&t| {
            k.run_until_exit(t, horizon())
                .expect("bench run failed")
                .nanos()
        })
        .sum()
}

fn bench_observer_dispatch(c: &mut Criterion) {
    for (id, n_obs) in [
        ("observer_dispatch/0", 0usize),
        ("observer_dispatch/1", 1),
        ("observer_dispatch/4", 4),
    ] {
        c.bench_function(id, |b| b.iter(|| kernel_scenario(black_box(n_obs))));
    }
}

fn bench_intern(c: &mut Criterion) {
    let names: Vec<String> = (0..64).map(|i| format!("noise:src{i}")).collect();

    let mut warm = InternTable::new();
    for n in &names {
        warm.intern(n);
    }
    c.bench_function("intern/hit", |b| {
        b.iter(|| {
            let mut acc = 0u32;
            for n in &names {
                acc = acc.wrapping_add(warm.intern(black_box(n)));
            }
            acc
        })
    });

    let mut cold = InternTable::new();
    c.bench_function("intern/first_sight_64", |b| {
        b.iter(|| {
            cold.clear();
            let mut acc = 0u32;
            for n in &names {
                acc = acc.wrapping_add(cold.intern(black_box(n)));
            }
            acc
        })
    });
}

/// One fully instrumented run (tracer + telemetry attached) through
/// `arena` — the exact body of the overhead-measurement rep loop.
fn instrumented_run(platform: &Platform, arena: &mut RunArena) -> u64 {
    let cfg = ExecConfig::new(Model::Omp, Mitigation::Rm);
    let observe = Observe {
        telemetry: Some(TelemetryConfig::default()),
        ..Observe::default()
    };
    run_once_instrumented_in(
        platform,
        &tiny_nbody(2),
        &cfg,
        &KernelConfig::default(),
        7,
        true,
        None,
        None,
        observe,
        arena,
    )
    .expect("bench run failed")
    .output
    .stream_hash
}

fn bench_arena(c: &mut Criterion) {
    let platform = Platform::intel();

    c.bench_function("arena/fresh_per_run", |b| {
        b.iter(|| {
            let mut arena = RunArena::default();
            instrumented_run(&platform, &mut arena)
        })
    });

    let mut arena = RunArena::default();
    instrumented_run(&platform, &mut arena); // warm the buffers once
    c.bench_function("arena/reused", |b| {
        b.iter(|| instrumented_run(&platform, &mut arena))
    });
}

fn bench_wire_codec(c: &mut Criterion) {
    const N: usize = 1024;
    let records: Vec<WireRecord> = (0..N as u64)
        .map(|i| WireRecord {
            start: i * 1_000,
            dur_ns: 250 + i,
            cpu: (i % 8) as u32,
            thread: if i % 5 == 0 {
                WIRE_NO_THREAD
            } else {
                (i % 17) as u32
            },
            name: (i % 11) as u32,
            tag: (i % 3) as u8,
        })
        .collect();

    let mut buf = Vec::with_capacity(N * WIRE_RECORD_BYTES);
    c.bench_function("wire/encode_1k", |b| {
        b.iter(|| {
            buf.clear();
            for r in &records {
                r.encode_into(&mut buf);
            }
            buf.len()
        })
    });

    let mut encoded = Vec::new();
    for r in &records {
        r.encode_into(&mut encoded);
    }
    c.bench_function("wire/decode_1k", |b| {
        b.iter(|| {
            let mut acc = 0u64;
            for i in 0..N {
                let r = WireRecord::decode_from(black_box(&encoded), i * WIRE_RECORD_BYTES)
                    .expect("in-bounds record");
                acc = acc.wrapping_add(r.start ^ u64::from(r.cpu));
            }
            acc
        })
    });
}

criterion_group!(
    name = benches;
    config = Criterion::default()
        .sample_size(20)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(1));
    targets = bench_observer_dispatch, bench_intern, bench_arena, bench_wire_codec
);
criterion_main!(benches);
