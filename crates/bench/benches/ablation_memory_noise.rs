//! Extension ablation (paper sections 6-7 future work): housekeeping
//! cores absorb CPU-occupation noise but cannot absorb memory-bandwidth
//! noise, because the contended resource is the socket, not a CPU.

use noiselab_core::experiments::{ablation, Scale};

fn main() {
    let t0 = noiselab_bench::wall_clock();
    let result = ablation::memory_noise_ablation(Scale::from_env(), false);
    noiselab_bench::emit("ablation_memory", &result.render());
    assert!(
        result.cpu_gain() > result.mem_gain(),
        "housekeeping should help less against memory noise: cpu {:.1}% vs mem {:.1}%",
        result.cpu_gain() * 100.0,
        result.mem_gain() * 100.0
    );
    noiselab_bench::finish("ablation_memory", t0);
}
