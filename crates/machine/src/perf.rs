//! Roofline execution-rate model.
//!
//! Work is expressed machine-independently as a [`WorkUnit`] — a number of
//! floating-point operations plus the bytes of memory traffic it streams.
//! The machine converts a unit to a *solo time* (the classic roofline:
//! limited either by the core's compute rate or by the bandwidth a single
//! core can draw), and the kernel's contention model then scales execution
//! down when SMT siblings compete for the core or when the socket's
//! bandwidth is oversubscribed.

use serde::{Deserialize, Serialize};

/// A quantum of work: `flops` floating point operations performing
/// `bytes` of memory traffic.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct WorkUnit {
    pub flops: f64,
    pub bytes: f64,
}

impl WorkUnit {
    pub const fn new(flops: f64, bytes: f64) -> Self {
        WorkUnit { flops, bytes }
    }

    /// Pure compute work (fits in cache / register traffic only).
    pub const fn compute(flops: f64) -> Self {
        WorkUnit { flops, bytes: 0.0 }
    }

    /// Pure streaming work (negligible arithmetic, e.g. STREAM copy).
    pub const fn stream(bytes: f64) -> Self {
        WorkUnit { flops: 0.0, bytes }
    }

    /// Arithmetic intensity in flop/byte. Infinite for pure compute.
    pub fn intensity(&self) -> f64 {
        if self.bytes == 0.0 {
            f64::INFINITY
        } else {
            self.flops / self.bytes
        }
    }

    pub fn scaled(&self, k: f64) -> WorkUnit {
        WorkUnit {
            flops: self.flops * k,
            bytes: self.bytes * k,
        }
    }
}

impl std::ops::Add for WorkUnit {
    type Output = WorkUnit;
    fn add(self, o: WorkUnit) -> WorkUnit {
        WorkUnit {
            flops: self.flops + o.flops,
            bytes: self.bytes + o.bytes,
        }
    }
}

/// Per-platform performance parameters. Rates use the convenient identity
/// 1 GB/s == 1 byte/ns, so all bandwidths are "bytes per nanosecond".
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PerfModel {
    /// Sustained flops per nanosecond per physical core (single thread).
    pub flops_per_ns: f64,
    /// Compute throughput factor for each of two active SMT siblings
    /// (e.g. 0.62 means two busy siblings each run at 62 % of solo speed;
    /// combined core throughput 1.24x).
    pub smt_factor: f64,
    /// Max bandwidth a single core can draw (bytes/ns = GB/s).
    pub per_core_bw: f64,
    /// Socket-wide memory bandwidth (bytes/ns = GB/s).
    pub socket_bw: f64,
}

/// The solo execution profile of a work unit on a given machine: how long
/// it takes alone, how much of that time is compute-limited, and the
/// bandwidth it draws while running at full speed.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SoloProfile {
    /// Time to execute alone on an otherwise idle machine (ns).
    pub solo_ns: f64,
    /// Pure-compute time component (ns); `<= solo_ns`.
    pub cpu_ns: f64,
    /// Bandwidth drawn when running at full rate (bytes/ns).
    pub bw_demand: f64,
}

impl PerfModel {
    /// Roofline solo profile of `w` on one core of this machine.
    pub fn solo(&self, w: &WorkUnit) -> SoloProfile {
        let cpu_ns = w.flops / self.flops_per_ns;
        let mem_ns = w.bytes / self.per_core_bw;
        let solo_ns = cpu_ns.max(mem_ns).max(1.0); // at least 1 ns
        let bw_demand = if solo_ns > 0.0 {
            w.bytes / solo_ns
        } else {
            0.0
        };
        SoloProfile {
            solo_ns,
            cpu_ns,
            bw_demand,
        }
    }

    /// Execution rate (fraction of solo progress per ns) given a compute
    /// throughput factor `compute_factor` (1.0 solo, [`Self::smt_factor`]
    /// when the sibling is busy) and an allocated bandwidth `bw_alloc`.
    ///
    /// The rate is limited by whichever resource binds:
    /// * compute: cannot retire flops faster than the core allows;
    /// * memory: cannot stream bytes faster than the allocation.
    pub fn rate(&self, solo: &SoloProfile, compute_factor: f64, bw_alloc: f64) -> f64 {
        debug_assert!((0.0..=1.0).contains(&compute_factor));
        let compute_rate = if solo.cpu_ns > 0.0 {
            // r * cpu_ns/solo_ns flops-per-ns-fraction <= compute_factor
            compute_factor * solo.solo_ns / solo.cpu_ns
        } else {
            f64::INFINITY
        };
        let mem_rate = if solo.bw_demand > 0.0 {
            bw_alloc / solo.bw_demand
        } else {
            f64::INFINITY
        };
        compute_rate.min(mem_rate).clamp(0.0, 1.0)
    }

    /// Frequency-aware execution rate: `freq_factor` (current frequency
    /// over turbo, in (0, 1]; see [`crate::dvfs::DvfsConfig::freq_factor`])
    /// scales the *compute* roof only. A throttled compute-bound unit
    /// slows in proportion to frequency, while a memory-bound unit keeps
    /// streaming at its bandwidth allocation — DRAM does not slow down
    /// with the core clock.
    ///
    /// At `freq_factor == 1.0` this is exactly [`Self::rate`] (the
    /// multiplication is by the IEEE-exact identity), which is what
    /// keeps DVFS-disabled runs bit-identical.
    pub fn rate_at_freq(
        &self,
        solo: &SoloProfile,
        compute_factor: f64,
        bw_alloc: f64,
        freq_factor: f64,
    ) -> f64 {
        debug_assert!(freq_factor > 0.0 && freq_factor <= 1.0);
        self.rate(solo, compute_factor * freq_factor, bw_alloc)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> PerfModel {
        PerfModel {
            flops_per_ns: 10.0,
            smt_factor: 0.6,
            per_core_bw: 20.0,
            socket_bw: 60.0,
        }
    }

    #[test]
    fn compute_bound_solo_time() {
        let m = model();
        let s = m.solo(&WorkUnit::compute(1000.0));
        assert_eq!(s.solo_ns, 100.0);
        assert_eq!(s.cpu_ns, 100.0);
        assert_eq!(s.bw_demand, 0.0);
    }

    #[test]
    fn memory_bound_solo_time() {
        let m = model();
        let s = m.solo(&WorkUnit::stream(2000.0));
        assert_eq!(s.solo_ns, 100.0); // 2000 bytes / 20 B/ns
        assert_eq!(s.cpu_ns, 0.0);
        assert_eq!(s.bw_demand, 20.0);
    }

    #[test]
    fn roofline_takes_max() {
        let m = model();
        // compute 50ns, memory 100ns -> memory bound
        let s = m.solo(&WorkUnit::new(500.0, 2000.0));
        assert_eq!(s.solo_ns, 100.0);
        assert_eq!(s.cpu_ns, 50.0);
    }

    #[test]
    fn full_rate_when_uncontended() {
        let m = model();
        let s = m.solo(&WorkUnit::new(500.0, 2000.0));
        assert_eq!(m.rate(&s, 1.0, s.bw_demand), 1.0);
    }

    #[test]
    fn smt_halves_compute_bound_rate() {
        let m = model();
        let s = m.solo(&WorkUnit::compute(1000.0));
        let r = m.rate(&s, 0.6, 0.0);
        assert!((r - 0.6).abs() < 1e-12);
    }

    #[test]
    fn smt_does_not_hurt_memory_bound_much() {
        let m = model();
        // memory-bound: cpu_ns is half of solo_ns
        let s = m.solo(&WorkUnit::new(500.0, 2000.0));
        // compute factor 0.6 allows rate up to 0.6*100/50 = 1.2 -> clamped 1.0
        let r = m.rate(&s, 0.6, s.bw_demand);
        assert_eq!(r, 1.0);
    }

    #[test]
    fn bandwidth_starvation_scales_rate() {
        let m = model();
        let s = m.solo(&WorkUnit::stream(2000.0));
        let r = m.rate(&s, 1.0, 10.0); // only half the demand allocated
        assert!((r - 0.5).abs() < 1e-12);
    }

    #[test]
    fn zero_alloc_zero_rate_for_memory_work() {
        let m = model();
        let s = m.solo(&WorkUnit::stream(2000.0));
        assert_eq!(m.rate(&s, 1.0, 0.0), 0.0);
    }

    #[test]
    fn intensity() {
        assert_eq!(WorkUnit::new(10.0, 5.0).intensity(), 2.0);
        assert!(WorkUnit::compute(10.0).intensity().is_infinite());
    }

    #[test]
    fn throttle_slows_compute_bound_but_not_memory_bound() {
        let m = model();
        let compute = m.solo(&WorkUnit::compute(1000.0));
        let stream = m.solo(&WorkUnit::stream(2000.0));
        // Base/turbo factor ~0.69: compute-bound work slows in exact
        // proportion, memory-bound keeps its bandwidth-limited rate.
        let f = 3_600_000.0 / 5_200_000.0;
        let rc = m.rate_at_freq(&compute, 1.0, 0.0, f);
        assert!((rc - f).abs() < 1e-12, "rc={rc}");
        let rm = m.rate_at_freq(&stream, 1.0, stream.bw_demand, f);
        assert_eq!(rm, 1.0);
    }

    #[test]
    fn full_frequency_rate_is_bitwise_plain_rate() {
        let m = model();
        let s = m.solo(&WorkUnit::new(500.0, 2000.0));
        for (cf, bw) in [(1.0, s.bw_demand), (0.6, 3.0), (0.0, 0.0)] {
            assert_eq!(
                m.rate_at_freq(&s, cf, bw, 1.0).to_bits(),
                m.rate(&s, cf, bw).to_bits()
            );
        }
    }

    #[test]
    fn solo_time_floor_one_ns() {
        let m = model();
        let s = m.solo(&WorkUnit::compute(0.0));
        assert_eq!(s.solo_ns, 1.0);
    }
}
