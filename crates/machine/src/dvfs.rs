//! Dynamic voltage/frequency scaling: the machine-level half of the
//! DVFS noise axis.
//!
//! Real CPUs do not run at one frequency. Cores boost into a shared
//! turbo budget, governors move frequency with load, and sustained work
//! accumulates heat until the package throttles — all of which shows up
//! as run-to-run performance variance that the paper's platforms could
//! only suppress (the Intel testbed pins 4.7 GHz precisely to kill this
//! axis). This module describes that machinery *deterministically*: a
//! [`DvfsConfig`] carried by [`crate::Machine`] names three discrete
//! frequency levels, a per-package turbo budget, and an integer
//! fixed-point thermal model. The kernel advances the state in virtual
//! time; nothing here draws randomness, touches floats in state that is
//! hashed, or depends on host behavior.
//!
//! Frequency reaches the roofline model as a multiplier on the compute
//! roof only: a throttled compute-bound unit slows proportionally while
//! a memory-bound unit keeps streaming at DRAM speed (frequency barely
//! moves the memory roof on real parts). Turbo is normalized to factor
//! 1.0, so `flops_per_ns` in [`crate::PerfModel`] is the turbo-speed
//! rate and lower levels are exact fractions of it.
//!
//! Thermal state is integer-only by construction. Heat accumulates in
//! units of milli-heat x nanoseconds (`heat_x1000` in the kernel's
//! runtime): each busy nanosecond at level L adds `heat rate of L`
//! (milli-heat per busy microsecond) to the scaled accumulator, and
//! each wall nanosecond removes `cool_per_us`. No division happens on
//! the accumulation path, so the value is exact regardless of how the
//! kernel slices charges — a requirement of the determinism audit
//! (float-order taint must never reach `state_hash`).

use serde::{Deserialize, Serialize};

/// Frequency-selection policy, mirroring the cpufreq governors the
/// paper's Ubuntu testbeds expose.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Governor {
    /// Race-to-idle: request turbo whenever the CPU is busy, fall back
    /// to base when the package's turbo budget is exhausted.
    Performance,
    /// Never leave the minimum frequency.
    Powersave,
    /// Load-following, schedutil-like: turbo only when work is queued
    /// behind the running thread, base for a lone runner, min when
    /// idle.
    Schedutil,
}

impl Governor {
    pub const ALL: [Governor; 3] = [
        Governor::Performance,
        Governor::Powersave,
        Governor::Schedutil,
    ];

    pub fn name(self) -> &'static str {
        match self {
            Governor::Performance => "performance",
            Governor::Powersave => "powersave",
            Governor::Schedutil => "schedutil",
        }
    }

    /// Short uppercase tag used in campaign cell labels ("Rm-OMP-PERF").
    pub fn tag(self) -> &'static str {
        match self {
            Governor::Performance => "PERF",
            Governor::Powersave => "SAVE",
            Governor::Schedutil => "UTIL",
        }
    }

    pub fn from_name(s: &str) -> Option<Governor> {
        Governor::ALL.iter().copied().find(|g| g.name() == s)
    }
}

/// One of the three discrete frequency levels a CPU can occupy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub enum FreqLevel {
    Min,
    Base,
    Turbo,
}

impl FreqLevel {
    pub fn name(self) -> &'static str {
        match self {
            FreqLevel::Min => "min",
            FreqLevel::Base => "base",
            FreqLevel::Turbo => "turbo",
        }
    }
}

/// The machine's DVFS description. Disabled by default: a machine with
/// `enabled == false` behaves bit-identically to one built before this
/// field existed (every preset ships it disabled, and the kernel skips
/// the subsystem entirely — no events, no rate scaling, no state).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct DvfsConfig {
    pub enabled: bool,
    pub governor: Governor,
    /// Throttle / idle frequency in kHz.
    pub min_khz: u32,
    /// Sustained all-core frequency in kHz.
    pub base_khz: u32,
    /// Boost frequency in kHz; the roofline's `flops_per_ns` is the
    /// rate *at this level* (factor 1.0).
    pub turbo_khz: u32,
    /// Logical CPUs per package — the turbo-budget and (future) power
    /// domain. 0 means one package spanning the whole machine.
    pub package_cpus: u32,
    /// Maximum CPUs concurrently at turbo per package.
    pub turbo_slots: u32,
    /// Milli-heat added per busy microsecond at turbo.
    pub heat_turbo: u64,
    /// Milli-heat added per busy microsecond at or below base.
    pub heat_base: u64,
    /// Milli-heat removed per wall microsecond (always-on cooling).
    pub cool: u64,
    /// Heat (milli-heat) at which a CPU throttles to `min_khz`.
    pub throttle_at: u64,
    /// Heat (milli-heat) a throttled CPU must cool below before it may
    /// leave `min_khz` again. Must be `< throttle_at` (hysteresis).
    pub release_at: u64,
}

impl Default for DvfsConfig {
    fn default() -> Self {
        // Desktop-flavored numbers: ~100 ms of sustained turbo heats a
        // core to its throttle point, ~100 ms at min cools it back to
        // the release point. Disabled, so inert unless a scenario or
        // platform switches the axis on.
        DvfsConfig {
            enabled: false,
            governor: Governor::Performance,
            min_khz: 800_000,
            base_khz: 3_600_000,
            turbo_khz: 5_200_000,
            package_cpus: 0,
            turbo_slots: 2,
            heat_turbo: 40,
            heat_base: 10,
            cool: 15,
            throttle_at: 2_500_000,
            release_at: 2_000_000,
        }
    }
}

impl DvfsConfig {
    /// An enabled config with the default desktop numbers.
    pub fn enabled_default(governor: Governor) -> Self {
        DvfsConfig {
            enabled: true,
            governor,
            ..DvfsConfig::default()
        }
    }

    /// Frequency of a level in kHz.
    pub fn khz(&self, level: FreqLevel) -> u32 {
        match level {
            FreqLevel::Min => self.min_khz,
            FreqLevel::Base => self.base_khz,
            FreqLevel::Turbo => self.turbo_khz,
        }
    }

    /// Compute-roof multiplier for a level: `khz / turbo_khz`, so turbo
    /// is exactly 1.0 and every level is a fraction in (0, 1]. The
    /// value is a pure function of two integers — identical on every
    /// host and safe to feed the rate path.
    pub fn freq_factor(&self, level: FreqLevel) -> f64 {
        self.khz(level) as f64 / self.turbo_khz as f64
    }

    /// Milli-heat per busy microsecond at a level.
    pub fn heat_rate(&self, level: FreqLevel) -> u64 {
        match level {
            FreqLevel::Turbo => self.heat_turbo,
            _ => self.heat_base,
        }
    }

    /// Package (turbo-budget domain) of a logical CPU.
    pub fn package_of(&self, cpu: u32) -> u32 {
        cpu.checked_div(self.package_cpus).unwrap_or(0)
    }

    /// Number of packages for a machine with `n_cpus` logical CPUs.
    pub fn n_packages(&self, n_cpus: u32) -> u32 {
        if self.package_cpus == 0 {
            1
        } else {
            n_cpus.div_ceil(self.package_cpus).max(1)
        }
    }

    /// Clamp the config into a well-formed state: frequency levels
    /// ordered, hysteresis open (release strictly below throttle), and
    /// at least one turbo slot. Scenario sanitization and platform
    /// construction both funnel through here.
    pub fn sanitize(&mut self) {
        self.min_khz = self.min_khz.max(1);
        self.base_khz = self.base_khz.max(self.min_khz);
        self.turbo_khz = self.turbo_khz.max(self.base_khz);
        self.turbo_slots = self.turbo_slots.max(1);
        self.throttle_at = self.throttle_at.max(1);
        if self.release_at >= self.throttle_at {
            self.release_at = self.throttle_at - 1;
        }
    }

    /// True when the config is already well-formed (what [`sanitize`]
    /// enforces).
    ///
    /// [`sanitize`]: DvfsConfig::sanitize
    pub fn is_sane(&self) -> bool {
        let mut c = self.clone();
        c.sanitize();
        c == *self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_disabled_and_sane() {
        let c = DvfsConfig::default();
        assert!(!c.enabled);
        assert!(c.is_sane());
        assert_eq!(c.khz(FreqLevel::Turbo), c.turbo_khz);
    }

    #[test]
    fn freq_factor_normalizes_turbo_to_one() {
        let c = DvfsConfig::default();
        assert_eq!(c.freq_factor(FreqLevel::Turbo), 1.0);
        let base = c.freq_factor(FreqLevel::Base);
        let min = c.freq_factor(FreqLevel::Min);
        assert!(min < base && base < 1.0);
        assert_eq!(base, 3_600_000.0 / 5_200_000.0);
    }

    #[test]
    fn packages_partition_cpus() {
        let mut c = DvfsConfig {
            package_cpus: 4,
            ..DvfsConfig::default()
        };
        assert_eq!(c.package_of(0), 0);
        assert_eq!(c.package_of(3), 0);
        assert_eq!(c.package_of(4), 1);
        assert_eq!(c.n_packages(10), 3);
        c.package_cpus = 0;
        assert_eq!(c.package_of(31), 0);
        assert_eq!(c.n_packages(32), 1);
    }

    #[test]
    fn sanitize_repairs_inverted_levels_and_closed_hysteresis() {
        let mut c = DvfsConfig {
            min_khz: 4_000_000,
            base_khz: 2_000_000,
            turbo_khz: 1_000_000,
            throttle_at: 100,
            release_at: 100,
            turbo_slots: 0,
            ..DvfsConfig::default()
        };
        assert!(!c.is_sane());
        c.sanitize();
        assert!(c.min_khz <= c.base_khz && c.base_khz <= c.turbo_khz);
        assert!(c.release_at < c.throttle_at);
        assert!(c.turbo_slots >= 1);
        assert!(c.is_sane());
    }

    #[test]
    fn governor_names_round_trip() {
        for g in Governor::ALL {
            assert_eq!(Governor::from_name(g.name()), Some(g));
        }
        assert_eq!(Governor::from_name("ondemand"), None);
    }

    #[test]
    fn serde_default_field_round_trip() {
        let c = DvfsConfig::enabled_default(Governor::Schedutil);
        let j = serde_json::to_string(&c).unwrap();
        let back: DvfsConfig = serde_json::from_str(&j).unwrap();
        assert_eq!(back, c);
    }
}
