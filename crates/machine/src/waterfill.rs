//! Max-min fair ("water-filling") bandwidth allocation.
//!
//! When several running threads demand memory bandwidth, the socket's
//! capacity is divided max-min fairly: every thread gets as much as it
//! demands, unless capacity is short, in which case the shortfall is borne
//! by the heaviest demanders first. This is the standard processor-sharing
//! model for a saturated memory controller and is what makes Babelstream
//! behave as a bandwidth-bound workload in the simulation: adding more
//! threads past saturation does not add throughput, and removing a few
//! (housekeeping cores) barely costs any.

/// Allocate `capacity` among `demands` max-min fairly.
///
/// Returns per-demand allocations `a` with the invariants:
/// * `a[i] <= demands[i]` (never allocate more than demanded),
/// * `sum(a) <= capacity + eps`,
/// * if `sum(demands) <= capacity`, then `a == demands`,
/// * max-min fairness: you cannot raise any `a[i]` without lowering some
///   `a[j] <= a[i]`.
pub fn waterfill(demands: &[f64], capacity: f64) -> Vec<f64> {
    let mut alloc = Vec::new();
    let mut order = Vec::new();
    waterfill_into(demands, capacity, &mut alloc, &mut order);
    alloc
}

/// Scratch-buffer variant of [`waterfill`] for hot paths: writes the
/// allocations into `alloc` (cleared first) and uses `order` as index
/// scratch, so steady-state callers make no allocations once the
/// buffers have grown to the working-set size. Produces bit-identical
/// results to [`waterfill`].
///
/// Returns `true` when the fill was unsaturated (`sum(demands) <=
/// capacity`): in that case `alloc` is a bit-exact copy of `demands`,
/// a fact hot callers exploit to keep rate updates local.
pub fn waterfill_into(
    demands: &[f64],
    capacity: f64,
    alloc: &mut Vec<f64>,
    order: &mut Vec<usize>,
) -> bool {
    debug_assert!(capacity >= 0.0);
    debug_assert!(demands.iter().all(|&d| d >= 0.0));
    let n = demands.len();
    alloc.clear();
    if n == 0 {
        return true;
    }
    let total: f64 = demands.iter().sum();
    if total <= capacity {
        alloc.extend_from_slice(demands);
        return true;
    }

    // Sort indices by demand ascending; satisfy small demands fully while
    // they fit under the running fair share.
    order.clear();
    order.extend(0..n);
    order.sort_by(|&a, &b| demands[a].partial_cmp(&demands[b]).unwrap().then(a.cmp(&b)));

    alloc.resize(n, 0.0);
    let mut remaining = capacity;
    let mut left = n;
    for (rank, &i) in order.iter().enumerate() {
        let fair = remaining / left as f64;
        if demands[i] <= fair {
            alloc[i] = demands[i];
            remaining -= demands[i];
        } else {
            // All remaining demands are >= this one; they split evenly.
            let share = remaining / left as f64;
            for &j in &order[rank..] {
                alloc[j] = share;
            }
            return false;
        }
        left -= 1;
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: f64, b: f64) -> bool {
        (a - b).abs() < 1e-9
    }

    #[test]
    fn under_capacity_everyone_satisfied() {
        let a = waterfill(&[1.0, 2.0, 3.0], 10.0);
        assert_eq!(a, vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn equal_demands_split_evenly() {
        let a = waterfill(&[5.0, 5.0, 5.0, 5.0], 10.0);
        assert!(a.iter().all(|&x| close(x, 2.5)));
    }

    #[test]
    fn small_demand_fully_served() {
        // fair share would be 4, so the 1.0 demand is fully served and the
        // rest split the remainder.
        let a = waterfill(&[1.0, 10.0, 10.0], 12.0);
        assert!(close(a[0], 1.0));
        assert!(close(a[1], 5.5));
        assert!(close(a[2], 5.5));
    }

    #[test]
    fn conserves_capacity_when_saturated() {
        let d = [3.0, 7.0, 2.0, 9.0, 4.0];
        let a = waterfill(&d, 10.0);
        let s: f64 = a.iter().sum();
        assert!(close(s, 10.0), "sum={s}");
        for i in 0..d.len() {
            assert!(a[i] <= d[i] + 1e-9);
        }
    }

    #[test]
    fn zero_capacity_allocates_nothing() {
        let a = waterfill(&[1.0, 2.0], 0.0);
        assert!(a.iter().all(|&x| close(x, 0.0)));
    }

    #[test]
    fn empty_demands() {
        assert!(waterfill(&[], 5.0).is_empty());
    }

    #[test]
    fn zero_demand_thread_gets_zero() {
        let a = waterfill(&[0.0, 8.0, 8.0], 8.0);
        assert!(close(a[0], 0.0));
        assert!(close(a[1], 4.0));
        assert!(close(a[2], 4.0));
    }
}
