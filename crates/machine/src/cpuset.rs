//! CPU affinity masks.
//!
//! A [`CpuSet`] is a bitmask over logical CPU ids, the simulated analogue
//! of `cpu_set_t` / `sched_setaffinity` masks. It backs thread pinning
//! (TP), housekeeping restrictions (HK/HK2) and firmware core reservation
//! (the A64FX motivation platforms).

use serde::{Deserialize, Serialize};
use std::fmt;

/// Logical CPU identifier (a.k.a. hardware thread). Follows the Linux x86
/// enumeration convention: cpu `c` and cpu `c + ncores` are SMT siblings.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
#[serde(transparent)]
pub struct CpuId(pub u32);

impl CpuId {
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for CpuId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "cpu{}", self.0)
    }
}

/// Bitmask of up to 128 logical CPUs (enough for every platform modelled
/// here; the largest, A64FX, has 50).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
#[serde(transparent)]
pub struct CpuSet(pub u128);

impl CpuSet {
    pub const EMPTY: CpuSet = CpuSet(0);

    /// Set containing CPUs `0..n`.
    #[inline]
    pub fn first_n(n: usize) -> CpuSet {
        debug_assert!(n <= 128);
        if n >= 128 {
            CpuSet(u128::MAX)
        } else {
            CpuSet((1u128 << n) - 1)
        }
    }

    #[inline]
    pub fn single(cpu: CpuId) -> CpuSet {
        CpuSet(1u128 << cpu.0)
    }

    #[inline]
    pub fn contains(self, cpu: CpuId) -> bool {
        self.0 >> cpu.0 & 1 == 1
    }

    #[inline]
    pub fn insert(&mut self, cpu: CpuId) {
        self.0 |= 1u128 << cpu.0;
    }

    #[inline]
    pub fn remove(&mut self, cpu: CpuId) {
        self.0 &= !(1u128 << cpu.0);
    }

    #[inline]
    pub fn union(self, other: CpuSet) -> CpuSet {
        CpuSet(self.0 | other.0)
    }

    #[inline]
    pub fn intersection(self, other: CpuSet) -> CpuSet {
        CpuSet(self.0 & other.0)
    }

    /// CPUs in `self` but not in `other`.
    #[inline]
    pub fn difference(self, other: CpuSet) -> CpuSet {
        CpuSet(self.0 & !other.0)
    }

    #[inline]
    pub fn is_empty(self) -> bool {
        self.0 == 0
    }

    #[inline]
    pub fn len(self) -> usize {
        self.0.count_ones() as usize
    }

    /// Iterate over member CPU ids in ascending order.
    pub fn iter(self) -> impl Iterator<Item = CpuId> {
        let mut bits = self.0;
        std::iter::from_fn(move || {
            if bits == 0 {
                None
            } else {
                let i = bits.trailing_zeros();
                bits &= bits - 1;
                Some(CpuId(i))
            }
        })
    }

    /// Lowest-numbered member, if any.
    #[inline]
    pub fn first(self) -> Option<CpuId> {
        if self.0 == 0 {
            None
        } else {
            Some(CpuId(self.0.trailing_zeros()))
        }
    }

    /// The `k`-th member in ascending order.
    pub fn nth(self, k: usize) -> Option<CpuId> {
        self.iter().nth(k)
    }
}

impl FromIterator<CpuId> for CpuSet {
    fn from_iter<I: IntoIterator<Item = CpuId>>(iter: I) -> Self {
        let mut s = CpuSet::EMPTY;
        for c in iter {
            s.insert(c);
        }
        s
    }
}

impl fmt::Debug for CpuSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "CpuSet{{")?;
        let mut first = true;
        for c in self.iter() {
            if !first {
                write!(f, ",")?;
            }
            write!(f, "{}", c.0)?;
            first = false;
        }
        write!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_n_has_n_members() {
        let s = CpuSet::first_n(10);
        assert_eq!(s.len(), 10);
        assert!(s.contains(CpuId(0)));
        assert!(s.contains(CpuId(9)));
        assert!(!s.contains(CpuId(10)));
    }

    #[test]
    fn insert_remove_roundtrip() {
        let mut s = CpuSet::EMPTY;
        s.insert(CpuId(5));
        assert!(s.contains(CpuId(5)));
        s.remove(CpuId(5));
        assert!(s.is_empty());
    }

    #[test]
    fn set_algebra() {
        let a = CpuSet::first_n(4);
        let b = CpuSet::first_n(8).difference(CpuSet::first_n(2));
        assert_eq!(a.intersection(b).len(), 2); // {2,3}
        assert_eq!(a.union(b).len(), 8);
        assert_eq!(a.difference(b), CpuSet::first_n(2));
    }

    #[test]
    fn iter_ascends() {
        let s: CpuSet = [CpuId(7), CpuId(2), CpuId(31)].into_iter().collect();
        let v: Vec<u32> = s.iter().map(|c| c.0).collect();
        assert_eq!(v, vec![2, 7, 31]);
    }

    #[test]
    fn nth_and_first() {
        let s: CpuSet = [CpuId(3), CpuId(9), CpuId(64)].into_iter().collect();
        assert_eq!(s.first(), Some(CpuId(3)));
        assert_eq!(s.nth(2), Some(CpuId(64)));
        assert_eq!(s.nth(3), None);
    }

    #[test]
    fn works_past_64_cpus() {
        let mut s = CpuSet::EMPTY;
        s.insert(CpuId(100));
        assert!(s.contains(CpuId(100)));
        assert_eq!(s.len(), 1);
    }
}
