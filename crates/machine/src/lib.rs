//! # noiselab-machine
//!
//! The hardware model under the simulated OS: CPU topology with SMT
//! ([`machine`]), affinity masks ([`cpuset`]), a roofline execution-rate
//! model ([`perf`]) and max-min fair bandwidth sharing ([`waterfill`]).
//!
//! Three platform presets mirror the paper's testbeds: the AMD Ryzen
//! 9950X3D and Intel i7-9700KF desktops used for all evaluation tables,
//! and the two A64FX systems (with and without firmware-reserved OS
//! cores) behind the motivation figures.

pub mod cpuset;
pub mod dvfs;
pub mod machine;
pub mod perf;
pub mod waterfill;

pub use cpuset::{CpuId, CpuSet};
pub use dvfs::{DvfsConfig, FreqLevel, Governor};
pub use machine::Machine;
pub use perf::{PerfModel, SoloProfile, WorkUnit};
pub use waterfill::{waterfill, waterfill_into};
