//! Machine topology and platform presets.

use crate::cpuset::{CpuId, CpuSet};
use crate::dvfs::DvfsConfig;
use crate::perf::PerfModel;
use noiselab_sim::SimDuration;
use serde::{Deserialize, Serialize};

/// A single-socket multicore machine.
///
/// Logical CPU numbering follows the Linux x86 convention: with `cores`
/// physical cores and 2-way SMT, cpus `0..cores` are the first hardware
/// thread of each core and cpu `c + cores` is the SMT sibling of cpu `c`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Machine {
    pub name: String,
    /// Physical core count.
    pub cores: usize,
    /// SMT ways (1 = no SMT, 2 = two hardware threads per core).
    pub smt: usize,
    pub perf: PerfModel,
    /// Cost of migrating a thread to another core (cache refill etc.),
    /// charged as unproductive time on arrival.
    pub migration_cost: SimDuration,
    /// Context-switch cost charged when a CPU switches threads.
    pub ctx_switch: SimDuration,
    /// Latency from wake-up decision to first instruction on a CPU.
    pub wake_latency: SimDuration,
    /// Scheduler tick period (4 ms == CONFIG_HZ=250, as on both paper
    /// platforms' Ubuntu kernels).
    pub tick_period: SimDuration,
    /// CPUs reserved for the OS at firmware level and invisible to user
    /// workloads (the "A64FX:reserved" configuration). Empty on desktop
    /// platforms.
    pub reserved_cpus: CpuSet,
    /// NUMA domains the physical cores are split into (1 = UMA, as on
    /// all the paper's platforms). Cross-domain migrations pay
    /// [`Self::NUMA_MIGRATION_FACTOR`] times the migration cost and wake
    /// placement prefers the previous domain — the mechanism that makes
    /// thread pinning valuable on large systems (paper §5.1/§6).
    pub numa_domains: usize,
    /// Frequency/thermal model (DVFS noise axis). Disabled by default
    /// — and absent from configs written before it existed — so every
    /// machine without it behaves bit-identically to the pre-DVFS
    /// simulator.
    #[serde(default)]
    pub dvfs: DvfsConfig,
}

/// Cross-domain migration cost multiplier (cache refill from a remote
/// domain plus first-touch penalties).
pub const NUMA_MIGRATION_FACTOR: f64 = 4.0;

impl Machine {
    /// Total logical CPU count (including reserved CPUs).
    #[inline]
    pub fn n_cpus(&self) -> usize {
        self.cores * self.smt
    }

    /// All logical CPUs.
    #[inline]
    pub fn all_cpus(&self) -> CpuSet {
        CpuSet::first_n(self.n_cpus())
    }

    /// CPUs available to user workloads (all minus firmware-reserved).
    #[inline]
    pub fn user_cpus(&self) -> CpuSet {
        self.all_cpus().difference(self.reserved_cpus)
    }

    /// Physical core index of a logical cpu.
    #[inline]
    pub fn core_of(&self, cpu: CpuId) -> usize {
        cpu.index() % self.cores
    }

    /// The SMT sibling of `cpu`, if the machine has SMT.
    #[inline]
    pub fn sibling_of(&self, cpu: CpuId) -> Option<CpuId> {
        if self.smt < 2 {
            return None;
        }
        let i = cpu.index();
        Some(if i < self.cores {
            CpuId((i + self.cores) as u32)
        } else {
            CpuId((i - self.cores) as u32)
        })
    }

    /// Restrict to the primary hardware thread of each core (SMT "off":
    /// the paper's non-SMT rows on the AMD platform run one thread per
    /// physical core).
    #[inline]
    pub fn primary_threads(&self) -> CpuSet {
        CpuSet::first_n(self.cores)
    }

    /// NUMA domain of a logical cpu (0 on UMA machines).
    #[inline]
    pub fn domain_of(&self, cpu: CpuId) -> usize {
        if self.numa_domains <= 1 {
            return 0;
        }
        self.core_of(cpu) * self.numa_domains / self.cores
    }

    /// Are two cpus in the same NUMA domain?
    #[inline]
    pub fn same_domain(&self, a: CpuId, b: CpuId) -> bool {
        self.domain_of(a) == self.domain_of(b)
    }

    /// The AMD Ryzen 9 9950X3D desktop from the paper's evaluation:
    /// 16 cores / 32 threads, SMT enabled, Ubuntu 24.04 (HZ=250).
    pub fn amd_9950x3d() -> Machine {
        Machine {
            name: "AMD Ryzen 9950X3D".into(),
            cores: 16,
            smt: 2,
            perf: PerfModel {
                // Sustained double-precision rate per core at ~5.2 GHz.
                flops_per_ns: 55.0,
                smt_factor: 0.62,
                per_core_bw: 32.0,
                // Dual-channel DDR5-5600, sustained.
                socket_bw: 64.0,
            },
            migration_cost: SimDuration::from_micros(18),
            ctx_switch: SimDuration::from_micros(3),
            wake_latency: SimDuration::from_micros(6),
            tick_period: SimDuration::from_millis(4),
            reserved_cpus: CpuSet::EMPTY,
            numa_domains: 1,
            dvfs: DvfsConfig::default(),
        }
    }

    /// The Intel i7-9700KF desktop from the paper's evaluation:
    /// 8 cores, no SMT, fixed 4.7 GHz, Ubuntu 24.04 (HZ=250).
    pub fn intel_9700kf() -> Machine {
        Machine {
            name: "Intel i7 9700KF".into(),
            cores: 8,
            smt: 1,
            perf: PerfModel {
                flops_per_ns: 30.0,
                smt_factor: 1.0, // no SMT
                per_core_bw: 15.0,
                // Dual-channel DDR4-2666, sustained.
                socket_bw: 36.0,
            },
            migration_cost: SimDuration::from_micros(15),
            ctx_switch: SimDuration::from_micros(3),
            wake_latency: SimDuration::from_micros(5),
            tick_period: SimDuration::from_millis(4),
            reserved_cpus: CpuSet::EMPTY,
            numa_domains: 1,
            dvfs: DvfsConfig::default(),
        }
    }

    /// Fujitsu A64FX, 48 compute cores, no SMT, HBM2. With
    /// `reserved = true` two extra cores exist but are firmware-reserved
    /// for the OS (the BSC "A64FX:reserved" system of the motivation
    /// section); with `false` all 48 cores are user-visible and OS noise
    /// shares them (the MACC "A64FX:w/o" system).
    pub fn a64fx(reserved: bool) -> Machine {
        let (cores, reserved_cpus, name) = if reserved {
            // 48 user cores + 2 OS cores, exposed as cpus 48 and 49.
            (
                50,
                [CpuId(48), CpuId(49)].into_iter().collect(),
                "A64FX:reserved",
            )
        } else {
            (48, CpuSet::EMPTY, "A64FX:w/o")
        };
        Machine {
            name: name.into(),
            cores,
            smt: 1,
            perf: PerfModel {
                // 1.8 GHz, SVE-512; sustained DP per core.
                flops_per_ns: 20.0,
                smt_factor: 1.0,
                per_core_bw: 50.0,
                // Four HBM2 stacks, sustained.
                socket_bw: 800.0,
            },
            migration_cost: SimDuration::from_micros(25),
            ctx_switch: SimDuration::from_micros(4),
            wake_latency: SimDuration::from_micros(7),
            tick_period: SimDuration::from_millis(4),
            reserved_cpus,
            numa_domains: 1,
            dvfs: DvfsConfig::default(),
        }
    }

    /// A large dual-socket HPC node in the style of the 128-core EPYC
    /// systems of the paper's reference [7]: 8 NUMA domains of 16 cores.
    /// Not part of the paper's evaluation — used by the NUMA extension
    /// experiment to validate the paper's §5.1/§6 expectation that
    /// thread pinning becomes beneficial at this scale.
    pub fn epyc_numa() -> Machine {
        Machine {
            name: "EPYC 2x64 NUMA".into(),
            cores: 128,
            smt: 1,
            perf: PerfModel {
                flops_per_ns: 35.0,
                smt_factor: 1.0,
                per_core_bw: 25.0,
                socket_bw: 300.0,
            },
            migration_cost: SimDuration::from_micros(20),
            ctx_switch: SimDuration::from_micros(3),
            wake_latency: SimDuration::from_micros(6),
            tick_period: SimDuration::from_millis(4),
            reserved_cpus: CpuSet::EMPTY,
            numa_domains: 8,
            dvfs: DvfsConfig::default(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn amd_topology() {
        let m = Machine::amd_9950x3d();
        assert_eq!(m.n_cpus(), 32);
        assert_eq!(m.core_of(CpuId(3)), 3);
        assert_eq!(m.core_of(CpuId(19)), 3);
        assert_eq!(m.sibling_of(CpuId(3)), Some(CpuId(19)));
        assert_eq!(m.sibling_of(CpuId(19)), Some(CpuId(3)));
        assert_eq!(m.primary_threads().len(), 16);
        assert_eq!(m.user_cpus().len(), 32);
    }

    #[test]
    fn intel_topology() {
        let m = Machine::intel_9700kf();
        assert_eq!(m.n_cpus(), 8);
        assert_eq!(m.sibling_of(CpuId(0)), None);
        assert_eq!(m.user_cpus(), CpuSet::first_n(8));
    }

    #[test]
    fn a64fx_reserved_hides_os_cores() {
        let m = Machine::a64fx(true);
        assert_eq!(m.n_cpus(), 50);
        assert_eq!(m.user_cpus().len(), 48);
        assert!(!m.user_cpus().contains(CpuId(48)));
        assert!(m.reserved_cpus.contains(CpuId(49)));

        let w = Machine::a64fx(false);
        assert_eq!(w.n_cpus(), 48);
        assert_eq!(w.user_cpus().len(), 48);
    }
}
