//! Property tests for max-min fair bandwidth allocation and the
//! roofline rate model.

use noiselab_machine::{waterfill, PerfModel, WorkUnit};
use proptest::prelude::*;

fn demands() -> impl Strategy<Value = Vec<f64>> {
    proptest::collection::vec(0.0f64..100.0, 0..20)
}

proptest! {
    /// Core max-min fairness invariants.
    #[test]
    fn waterfill_invariants(d in demands(), capacity in 0.0f64..500.0) {
        let a = waterfill(&d, capacity);
        prop_assert_eq!(a.len(), d.len());
        let total: f64 = a.iter().sum();
        // Never exceed capacity (within fp tolerance).
        prop_assert!(total <= capacity + 1e-6, "total={total} capacity={capacity}");
        for i in 0..d.len() {
            // Never allocate more than demanded, never negative.
            prop_assert!(a[i] <= d[i] + 1e-9);
            prop_assert!(a[i] >= -1e-12);
        }
        // If demand fits, everyone is fully served.
        if d.iter().sum::<f64>() <= capacity {
            for i in 0..d.len() {
                prop_assert!((a[i] - d[i]).abs() < 1e-9);
            }
        }
    }

    /// Max-min property: an under-served flow's allocation is at least
    /// as large as any other flow's (you cannot help someone without
    /// hurting someone already no better off).
    #[test]
    fn waterfill_max_min(d in demands(), capacity in 0.0f64..500.0) {
        let a = waterfill(&d, capacity);
        for i in 0..d.len() {
            if a[i] + 1e-9 < d[i] {
                for j in 0..d.len() {
                    prop_assert!(
                        a[j] <= a[i] + 1e-6,
                        "flow {j} got {} while under-served flow {i} got {}",
                        a[j],
                        a[i]
                    );
                }
            }
        }
    }

    /// Monotone in capacity: more capacity never reduces anyone's share.
    #[test]
    fn waterfill_monotone_in_capacity(d in demands(), c1 in 0.0f64..250.0, extra in 0.0f64..250.0) {
        let a1 = waterfill(&d, c1);
        let a2 = waterfill(&d, c1 + extra);
        for i in 0..d.len() {
            prop_assert!(a2[i] + 1e-6 >= a1[i]);
        }
    }
}

proptest! {
    /// Roofline rates are always in [0, 1] and solo profiles positive.
    #[test]
    fn rate_bounds(
        flops in 0.0f64..1e9,
        bytes in 0.0f64..1e9,
        factor in 0.0f64..1.0,
        alloc in 0.0f64..100.0,
    ) {
        let m = PerfModel { flops_per_ns: 10.0, smt_factor: 0.6, per_core_bw: 20.0, socket_bw: 60.0 };
        let solo = m.solo(&WorkUnit::new(flops, bytes));
        prop_assert!(solo.solo_ns >= 1.0);
        prop_assert!(solo.cpu_ns <= solo.solo_ns + 1e-9);
        let r = m.rate(&solo, factor, alloc);
        prop_assert!((0.0..=1.0).contains(&r), "rate={r}");
        // Full factor and full demand allocation give full rate.
        let r_full = m.rate(&solo, 1.0, solo.bw_demand);
        prop_assert!((r_full - 1.0).abs() < 1e-9);
    }
}
