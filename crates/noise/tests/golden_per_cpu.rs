//! Golden test for the OsNoiseTracer per-CPU summary: a deterministic
//! event stream is pushed through a deliberately tiny ring buffer so
//! every column of the accounting (recorded, dropped, per-class noise,
//! the degraded flag) is exercised, and the rendered table is pinned
//! byte-for-byte in `tests/fixtures/per_cpu_summary.txt`. Regenerate
//! with `UPDATE_GOLDEN=1 cargo test -p noiselab-noise` after a
//! deliberate format change.

use noiselab_kernel::{NoiseClass, ThreadId, TraceSink};
use noiselab_machine::CpuId;
use noiselab_noise::analysis::{per_cpu_summary, render_per_cpu_summary};
use noiselab_noise::{OsNoiseTracer, RunTrace};
use noiselab_sim::{SimDuration, SimTime};
use std::path::PathBuf;

const FIXTURE: &str = "per_cpu_summary.txt";

fn fixture_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(FIXTURE)
}

/// A three-CPU run through a capacity-6 buffer: cpu0 gets irq + thread
/// noise recorded, cpu1 gets all three classes, cpu2's events arrive
/// after the buffer fills so it appears only in the drop counters.
fn fixture_trace() -> RunTrace {
    let (mut tracer, buf) = OsNoiseTracer::with_capacity(6);
    let events: [(u32, NoiseClass, &str, u64, u64); 9] = [
        (0, NoiseClass::Irq, "local_timer:236", 1_000, 4_100),
        (1, NoiseClass::Softirq, "timer:1", 2_000, 9_500),
        (0, NoiseClass::Thread, "kworker/u129:5", 5_000, 1_203_000),
        (1, NoiseClass::Irq, "nic:77", 8_000, 12_250),
        (1, NoiseClass::Thread, "migration/1", 9_000, 48_000),
        (0, NoiseClass::Irq, "local_timer:236", 20_000, 3_900),
        // The buffer is full from here: two drops on cpu2, one on cpu0.
        (2, NoiseClass::Thread, "Xorg", 25_000, 7_000),
        (0, NoiseClass::Softirq, "rcu:9", 30_000, 800),
        (2, NoiseClass::Irq, "nic:77", 31_000, 600),
    ];
    for (cpu, class, source, start, dur) in events {
        tracer.record(
            CpuId(cpu),
            class,
            source,
            Some(ThreadId(0)),
            SimTime(start),
            SimDuration(dur),
        );
    }
    buf.take_trace(3, SimDuration(2_000_000_000))
}

fn golden() -> String {
    let rendered = render_per_cpu_summary(&fixture_trace());
    let path = fixture_path();
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::create_dir_all(path.parent().expect("fixture dir")).expect("mkdir fixtures");
        std::fs::write(&path, &rendered).expect("write fixture");
    }
    rendered
}

#[test]
fn per_cpu_summary_matches_golden_fixture() {
    let rendered = golden();
    let want = std::fs::read_to_string(fixture_path())
        .expect("fixture missing — regenerate with UPDATE_GOLDEN=1 cargo test");
    assert_eq!(
        rendered, want,
        "per-CPU summary drifted from the golden fixture; if the change \
         is deliberate, regenerate with UPDATE_GOLDEN=1"
    );
}

#[test]
fn per_cpu_accounting_is_conserved() {
    let trace = fixture_trace();
    let rows = per_cpu_summary(&trace);

    // Every emitted event lands in exactly one row, recorded or dropped.
    let recorded: u64 = rows.iter().map(|r| r.recorded).sum();
    let dropped: u64 = rows.iter().map(|r| r.dropped).sum();
    assert_eq!(recorded, trace.events.len() as u64);
    assert_eq!(dropped, trace.dropped_events);
    assert_eq!(recorded + dropped, 9);
    assert!(trace.degraded);

    // cpu2 was offered events only after the buffer filled: it must
    // still get a row, with nothing recorded.
    let cpu2 = rows.iter().find(|r| r.cpu == 2).expect("cpu2 row");
    assert_eq!((cpu2.recorded, cpu2.dropped, cpu2.emitted()), (0, 2, 2));
    assert_eq!(cpu2.by_class, [SimDuration::ZERO; 3]);

    // cpu1 recorded all three classes; the split must match the events.
    let cpu1 = rows.iter().find(|r| r.cpu == 1).expect("cpu1 row");
    assert_eq!(
        cpu1.by_class,
        [SimDuration(12_250), SimDuration(9_500), SimDuration(48_000)]
    );
}
