//! Property: the bounded tracer's drop accounting conserves events —
//! `recorded + dropped == emitted` — for any buffer capacity and any
//! event stream, including the streams produced by kernel fault plans,
//! and the degraded flag is set exactly when something was dropped.

use noiselab_kernel::{
    Action, FaultPlan, Kernel, KernelConfig, ScriptBehavior, SpuriousIrqSpec, ThreadKind,
    ThreadSpec,
};
use noiselab_machine::{CpuSet, Machine, PerfModel, WorkUnit};
use noiselab_noise::OsNoiseTracer;
use noiselab_sim::{Rng, SimDuration, SimTime};
use proptest::prelude::*;

fn machine(cores: usize) -> Machine {
    Machine {
        name: "p".into(),
        cores,
        smt: 1,
        perf: PerfModel {
            flops_per_ns: 1.0,
            smt_factor: 0.5,
            per_core_bw: 10.0,
            socket_bw: 20.0,
        },
        migration_cost: SimDuration::from_nanos(500),
        ctx_switch: SimDuration::from_nanos(300),
        wake_latency: SimDuration::from_nanos(700),
        tick_period: SimDuration::from_millis(1),
        reserved_cpus: CpuSet::EMPTY,
        numa_domains: 1,
        dvfs: Default::default(),
    }
}

/// Run a faulted, traced workload with the given buffer capacity;
/// return (recorded, dropped, emitted, degraded, per-CPU drop sum).
fn run_traced(
    capacity: usize,
    seed: u64,
    fault_seed: u64,
    rate: f64,
) -> (u64, u64, u64, bool, u64) {
    let mut k = Kernel::new(machine(2), KernelConfig::default(), seed);
    let plan = FaultPlan {
        seed: fault_seed,
        lost_tick_prob: 0.1,
        spurious: Some(SpuriousIrqSpec {
            rate_per_sec: rate,
            service_mean: SimDuration::from_micros(10),
            window: SimDuration::from_millis(20),
        }),
        ..FaultPlan::default()
    };
    k.install_faults(&plan, Rng::new(fault_seed ^ seed));
    let (tracer, buf) = OsNoiseTracer::with_capacity(capacity);
    k.attach_tracer(Box::new(tracer));
    let t = k.spawn(
        ThreadSpec::new("w", ThreadKind::Workload),
        Box::new(ScriptBehavior::new(vec![Action::Compute(
            WorkUnit::compute(15_000_000.0),
        )])),
    );
    k.run_until_exit(t, SimTime::from_secs_f64(10.0))
        .expect("faulted run failed");
    let emitted = buf.emitted();
    let trace = buf.take_trace(0, SimDuration(1));
    let per_cpu: u64 = trace.dropped_by_cpu.iter().map(|&(_, d)| d).sum();
    (
        trace.events.len() as u64,
        trace.dropped_events,
        emitted,
        trace.degraded,
        per_cpu,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn drop_accounting_conserves_events(
        capacity in 0usize..600,
        seed in 1u64..500,
        fault_seed in 1u64..500,
        rate in 1_000.0f64..80_000.0,
    ) {
        let (recorded, dropped, emitted, degraded, per_cpu) =
            run_traced(capacity, seed, fault_seed, rate);
        prop_assert_eq!(recorded + dropped, emitted);
        prop_assert_eq!(per_cpu, dropped);
        prop_assert_eq!(degraded, dropped > 0);
        prop_assert!(recorded as usize <= capacity);
    }
}

#[test]
fn unbounded_enough_buffer_never_degrades() {
    let (recorded, dropped, emitted, degraded, _) = run_traced(1 << 20, 7, 9, 20_000.0);
    assert_eq!(dropped, 0);
    assert_eq!(recorded, emitted);
    assert!(!degraded);
    assert!(recorded > 0, "faulted traced run should emit events");
}
