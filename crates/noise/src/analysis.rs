//! Trace analysis utilities: characterise a collected trace set the way
//! the paper's §4.1 does before building an injection configuration —
//! per-class and per-source noise budgets, per-CPU distribution, and
//! run-to-run spread.

use crate::trace::{RunTrace, TraceSet};
use noiselab_kernel::NoiseClass;
use noiselab_sim::SimDuration;
use std::collections::BTreeMap;

/// Per-source aggregate over one run.
#[derive(Debug, Clone, PartialEq)]
pub struct SourceBudget {
    pub events: usize,
    pub total: SimDuration,
    pub max_event: SimDuration,
}

/// Characterisation of a single run's noise.
#[derive(Debug, Clone, PartialEq)]
pub struct RunSummary {
    pub exec_time: SimDuration,
    pub events: usize,
    /// Total recorded noise per class: `[irq, softirq, thread]`.
    pub by_class: [SimDuration; 3],
    /// Noise as a fraction of `exec_time x n_cpus_touched` is workload
    /// dependent; this simpler figure is total noise / exec time (can
    /// exceed 1 with many CPUs).
    pub noise_ratio: f64,
    pub by_source: BTreeMap<String, SourceBudget>,
    /// CPU carrying the most noise, with its total.
    pub busiest_cpu: Option<(u32, SimDuration)>,
    /// Events the tracer ring buffer dropped; budgets above
    /// under-report interference by roughly `1 - completeness`.
    pub dropped_events: u64,
    /// Fraction of emitted events recorded (1.0 for intact traces).
    pub completeness: f64,
}

/// Summarise a single run.
pub fn summarize_run(run: &RunTrace) -> RunSummary {
    let mut by_source: BTreeMap<String, SourceBudget> = BTreeMap::new();
    let mut per_cpu: BTreeMap<u32, u64> = BTreeMap::new();
    for e in &run.events {
        let b = by_source.entry(e.source.clone()).or_insert(SourceBudget {
            events: 0,
            total: SimDuration::ZERO,
            max_event: SimDuration::ZERO,
        });
        b.events += 1;
        b.total += e.duration;
        b.max_event = b.max_event.max(e.duration);
        *per_cpu.entry(e.cpu.0).or_insert(0) += e.duration.nanos();
    }
    let total: u64 = run.events.iter().map(|e| e.duration.nanos()).sum();
    RunSummary {
        exec_time: run.exec_time,
        events: run.events.len(),
        by_class: run.noise_by_class(),
        noise_ratio: if run.exec_time.nanos() > 0 {
            total as f64 / run.exec_time.nanos() as f64
        } else {
            0.0
        },
        by_source,
        busiest_cpu: per_cpu
            .into_iter()
            .max_by_key(|&(cpu, ns)| (ns, std::cmp::Reverse(cpu)))
            .map(|(cpu, ns)| (cpu, SimDuration(ns))),
        dropped_events: run.dropped_events,
        completeness: run.completeness(),
    }
}

/// Total recorded noise in a run (sum of all event durations).
pub fn total_noise(run: &RunTrace) -> SimDuration {
    SimDuration(run.events.iter().map(|e| e.duration.nanos()).sum())
}

/// Per-(source, CPU) noise budgets for one run — the joint breakdown
/// blame attribution needs to say "irq storms *on CPU 3*" rather than
/// naming source and CPU from independent marginals (which can blame a
/// pairing that never co-occurred). BTreeMap keys give a deterministic
/// iteration order.
pub fn source_cpu_budgets(run: &RunTrace) -> BTreeMap<(String, u32), SourceBudget> {
    let mut out: BTreeMap<(String, u32), SourceBudget> = BTreeMap::new();
    for e in &run.events {
        let b = out
            .entry((e.source.clone(), e.cpu.0))
            .or_insert(SourceBudget {
                events: 0,
                total: SimDuration::ZERO,
                max_event: SimDuration::ZERO,
            });
        b.events += 1;
        b.total += e.duration;
        b.max_event = b.max_event.max(e.duration);
    }
    out
}

/// Per-(source, CPU) budgets summed over every run of a set.
pub fn set_source_cpu_budgets(set: &TraceSet) -> BTreeMap<(String, u32), SourceBudget> {
    let mut out: BTreeMap<(String, u32), SourceBudget> = BTreeMap::new();
    for run in &set.runs {
        for (key, b) in source_cpu_budgets(run) {
            let agg = out.entry(key).or_insert(SourceBudget {
                events: 0,
                total: SimDuration::ZERO,
                max_event: SimDuration::ZERO,
            });
            agg.events += b.events;
            agg.total += b.total;
            agg.max_event = agg.max_event.max(b.max_event);
        }
    }
    out
}

/// One CPU's slice of a run: what the tracer recorded there, what its
/// ring buffer dropped there, and how the recorded noise splits by
/// class — the `osnoise`-style per-CPU accounting.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CpuSummary {
    pub cpu: u32,
    /// Events recorded for this CPU.
    pub recorded: u64,
    /// Events the ring buffer dropped for this CPU on overflow.
    pub dropped: u64,
    /// Recorded noise per class: `[irq, softirq, thread]`.
    pub by_class: [SimDuration; 3],
}

impl CpuSummary {
    /// Everything the tracer was offered for this CPU.
    pub fn emitted(&self) -> u64 {
        self.recorded + self.dropped
    }
}

/// Break a run down per CPU, sorted by CPU id. CPUs that only appear
/// in the drop counters (every recorded slot was taken before their
/// first event) still get a row.
pub fn per_cpu_summary(run: &RunTrace) -> Vec<CpuSummary> {
    let mut cpus: BTreeMap<u32, CpuSummary> = BTreeMap::new();
    fn row(cpus: &mut BTreeMap<u32, CpuSummary>, cpu: u32) -> &mut CpuSummary {
        cpus.entry(cpu).or_insert(CpuSummary {
            cpu,
            recorded: 0,
            dropped: 0,
            by_class: [SimDuration::ZERO; 3],
        })
    }
    for e in &run.events {
        let s = row(&mut cpus, e.cpu.0);
        s.recorded += 1;
        let idx = match e.class {
            NoiseClass::Irq => 0,
            NoiseClass::Softirq => 1,
            NoiseClass::Thread => 2,
        };
        s.by_class[idx] += e.duration;
    }
    for &(cpu, dropped) in &run.dropped_by_cpu {
        row(&mut cpus, cpu).dropped += dropped;
    }
    cpus.into_values().collect()
}

/// Render the per-CPU breakdown as the fixed-width table the golden
/// fixture pins (`crates/noise/tests/golden_per_cpu.rs`).
pub fn render_per_cpu_summary(run: &RunTrace) -> String {
    let rows = per_cpu_summary(run);
    let emitted: u64 = rows.iter().map(|r| r.emitted()).sum();
    let mut out = format!(
        "run #{}: exec {:.4}s, {} event(s) emitted, {} dropped, degraded: {}\n",
        run.run_index,
        run.exec_time.as_secs_f64(),
        emitted,
        run.dropped_events,
        run.degraded
    );
    out.push_str("  cpu   recorded   dropped        irq    softirq     thread\n");
    for r in &rows {
        out.push_str(&format!(
            "  {:<3} {:>10} {:>9} {:>9.3}ms {:>8.3}ms {:>8.3}ms\n",
            r.cpu,
            r.recorded,
            r.dropped,
            r.by_class[0].as_millis_f64(),
            r.by_class[1].as_millis_f64(),
            r.by_class[2].as_millis_f64()
        ));
    }
    out
}

/// Characterisation of a whole trace set.
#[derive(Debug, Clone)]
pub struct SetSummary {
    pub runs: usize,
    pub mean_exec: SimDuration,
    pub worst_exec: SimDuration,
    pub worst_index: usize,
    /// Sources ranked by total noise across all runs.
    pub top_sources: Vec<(String, SourceBudget)>,
    /// Runs whose traces were truncated by the ring buffer. Their
    /// contribution to the source ranking is an under-estimate, and
    /// they are excluded from worst-case selection when possible.
    pub degraded_runs: usize,
}

/// Summarise a trace set; `top_k` limits the source ranking.
pub fn summarize_set(set: &TraceSet, top_k: usize) -> Option<SetSummary> {
    let worst_index = set.worst_index()?;
    let mut by_source: BTreeMap<String, SourceBudget> = BTreeMap::new();
    for run in &set.runs {
        for e in &run.events {
            let b = by_source.entry(e.source.clone()).or_insert(SourceBudget {
                events: 0,
                total: SimDuration::ZERO,
                max_event: SimDuration::ZERO,
            });
            b.events += 1;
            b.total += e.duration;
            b.max_event = b.max_event.max(e.duration);
        }
    }
    let mut top: Vec<(String, SourceBudget)> = by_source.into_iter().collect();
    top.sort_by(|a, b| b.1.total.cmp(&a.1.total).then(a.0.cmp(&b.0)));
    top.truncate(top_k);
    Some(SetSummary {
        runs: set.runs.len(),
        mean_exec: set.mean_exec()?,
        worst_exec: set.runs[worst_index].exec_time,
        worst_index,
        top_sources: top,
        degraded_runs: set.degraded_count(),
    })
}

/// Render a set summary as plain text (used by the CLI `analyze`
/// subcommand).
pub fn render_set_summary(s: &SetSummary) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{} runs, mean exec {:.4}s, worst run #{} at {:.4}s ({:+.1}%)\n",
        s.runs,
        s.mean_exec.as_secs_f64(),
        s.worst_index,
        s.worst_exec.as_secs_f64(),
        (s.worst_exec.as_secs_f64() / s.mean_exec.as_secs_f64() - 1.0) * 100.0
    ));
    if s.degraded_runs > 0 {
        out.push_str(&format!(
            "warning: {} of {} traces degraded (ring-buffer drops); \
             source totals under-report noise\n",
            s.degraded_runs, s.runs
        ));
    }
    out.push_str("top noise sources (total across runs):\n");
    for (src, b) in &s.top_sources {
        out.push_str(&format!(
            "  {:<28} {:>7} events  {:>10.3}ms total  {:>9.3}ms max\n",
            src,
            b.events,
            b.total.as_millis_f64(),
            b.max_event.as_millis_f64()
        ));
    }
    out
}

/// Does this run's noise profile look anomalous relative to the set's
/// median total noise? (simple 3x heuristic used in reports).
pub fn is_outlier(run: &RunTrace, set: &TraceSet) -> bool {
    let total = |r: &RunTrace| -> u64 { r.events.iter().map(|e| e.duration.nanos()).sum() };
    let mut totals: Vec<u64> = set.runs.iter().map(total).collect();
    if totals.is_empty() {
        return false;
    }
    totals.sort_unstable();
    let median = totals[totals.len() / 2];
    total(run) > median.saturating_mul(3)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::TraceEvent;
    use noiselab_machine::CpuId;
    use noiselab_sim::SimTime;

    fn ev(cpu: u32, source: &str, dur: u64) -> TraceEvent {
        TraceEvent {
            cpu: CpuId(cpu),
            class: NoiseClass::Thread,
            source: source.into(),
            start: SimTime(0),
            duration: SimDuration(dur),
        }
    }

    fn run(idx: usize, exec: u64, events: Vec<TraceEvent>) -> RunTrace {
        RunTrace::new(idx, SimDuration(exec), events)
    }

    #[test]
    fn run_summary_aggregates() {
        let r = run(
            0,
            1_000_000,
            vec![
                ev(0, "kworker", 1_000),
                ev(1, "kworker", 3_000),
                ev(1, "Xorg", 500),
            ],
        );
        let s = summarize_run(&r);
        assert_eq!(s.events, 3);
        assert_eq!(s.by_source["kworker"].events, 2);
        assert_eq!(s.by_source["kworker"].total, SimDuration(4_000));
        assert_eq!(s.by_source["kworker"].max_event, SimDuration(3_000));
        assert_eq!(s.busiest_cpu, Some((1, SimDuration(3_500))));
        assert!((s.noise_ratio - 0.0045).abs() < 1e-9);
        assert_eq!(s.dropped_events, 0);
        assert_eq!(s.completeness, 1.0);
    }

    #[test]
    fn degraded_runs_surface_in_summaries() {
        let mut degraded = run(0, 200, vec![ev(0, "a", 10)]);
        degraded.dropped_events = 30;
        degraded.degraded = true;
        let set = TraceSet {
            runs: vec![run(1, 100, vec![ev(0, "a", 10)]), degraded.clone()],
        };
        let rs = summarize_run(&degraded);
        assert_eq!(rs.dropped_events, 30);
        assert!((rs.completeness - 1.0 / 31.0).abs() < 1e-12);
        let s = summarize_set(&set, 10).unwrap();
        assert_eq!(s.degraded_runs, 1);
        // Worst-case selection skips the degraded (longer) run.
        assert_eq!(s.worst_index, 0);
        assert!(render_set_summary(&s).contains("degraded"));
    }

    #[test]
    fn set_summary_ranks_sources() {
        let set = TraceSet {
            runs: vec![
                run(0, 100, vec![ev(0, "a", 10), ev(0, "b", 100)]),
                run(1, 300, vec![ev(0, "a", 20)]),
            ],
        };
        let s = summarize_set(&set, 10).unwrap();
        assert_eq!(s.runs, 2);
        assert_eq!(s.worst_index, 1);
        assert_eq!(s.top_sources[0].0, "b");
        assert_eq!(s.top_sources[1].1.total, SimDuration(30));
        assert!(render_set_summary(&s).contains("top noise sources"));
    }

    #[test]
    fn source_cpu_budgets_are_joint_not_marginal() {
        let r = run(
            0,
            1_000,
            vec![
                ev(0, "kworker", 100),
                ev(3, "irq", 900),
                ev(3, "irq", 500),
                ev(0, "irq", 10),
            ],
        );
        let by = source_cpu_budgets(&r);
        assert_eq!(by.len(), 3);
        assert_eq!(by[&("irq".to_string(), 3)].events, 2);
        assert_eq!(by[&("irq".to_string(), 3)].total, SimDuration(1_400));
        assert_eq!(by[&("irq".to_string(), 3)].max_event, SimDuration(900));
        assert_eq!(by[&("irq".to_string(), 0)].total, SimDuration(10));
        assert_eq!(total_noise(&r), SimDuration(1_510));
        let set = TraceSet {
            runs: vec![r.clone(), r],
        };
        let agg = set_source_cpu_budgets(&set);
        assert_eq!(agg[&("irq".to_string(), 3)].events, 4);
        assert_eq!(agg[&("irq".to_string(), 3)].total, SimDuration(2_800));
    }

    #[test]
    fn outlier_detection() {
        let quiet = run(0, 100, vec![ev(0, "a", 100)]);
        let loud = run(1, 100, vec![ev(0, "a", 10_000)]);
        let set = TraceSet {
            runs: vec![quiet.clone(), quiet.clone(), quiet.clone(), loud.clone()],
        };
        assert!(is_outlier(&loud, &set));
        assert!(!is_outlier(&quiet, &set));
    }
}
