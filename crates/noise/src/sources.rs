//! Natural OS-noise sources.
//!
//! These behaviors model the background activity a desktop Linux system
//! exhibits while a benchmark runs: kworkers flushing writeback queues,
//! periodic daemons, the GUI stack (when the system is at runlevel 5),
//! and — rarely — heavy anomalies (a kworker storm from a package
//! update, or a device interrupt storm). The rare anomalies are what
//! produce the worst-case outliers the paper's injector later replays.
//!
//! Everything is parameterised by [`NoiseProfile`] and driven by the
//! kernel's deterministic RNG, so a run's noise is a pure function of
//! the kernel seed.

use noiselab_kernel::{Action, Behavior, Ctx, Kernel, ThreadId, ThreadKind, ThreadSpec};
use noiselab_machine::{CpuId, CpuSet};
use noiselab_sim::{Rng, SimDuration, SimTime};
use serde::{Deserialize, Serialize};

/// A recurring short-burst worker thread (kworker-style).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct KworkerSpec {
    pub name: String,
    /// Mean inter-arrival of bursts (exponential).
    pub mean_interval: SimDuration,
    /// Median burst length (log-normal).
    pub median_burst: SimDuration,
    /// Log-normal shape; larger = heavier tail.
    pub sigma: f64,
}

/// A periodic background daemon.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DaemonSpec {
    pub name: String,
    pub period: SimDuration,
    /// Uniform jitter applied to each period, as a fraction of it.
    pub jitter_frac: f64,
    pub burst_mean: SimDuration,
    pub burst_sd: SimDuration,
}

/// What a rare anomaly does when it strikes.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum AnomalyKind {
    /// A burst of heavy kworker-style threads (e.g. dirty-page writeback
    /// or a package-manager scan): `threads` workers, each alternating
    /// log-normal bursts with exponential gaps, for the whole window.
    ThreadStorm {
        threads: usize,
        median_burst: SimDuration,
        sigma: f64,
        mean_gap: SimDuration,
    },
    /// A device interrupt storm on `cpus` randomly chosen CPUs with the
    /// given mean rate and per-interrupt service time.
    IrqStorm {
        cpus: usize,
        mean_interval: SimDuration,
        service: SimDuration,
    },
    /// Memory-bandwidth-consuming noise (the paper's future-work
    /// extension, §6/§7): `threads` workers continuously streaming
    /// `bytes_per_burst` of traffic each. Unlike CPU-occupation noise,
    /// this interferes with memory-bound workloads *even from
    /// housekeeping cores*, because the contended resource is the
    /// socket's bandwidth, not a CPU.
    MemoryHog {
        threads: usize,
        bytes_per_burst: f64,
    },
    /// Several noise kinds striking together over one shared window —
    /// real worst-case events (e.g. a package update) combine heavy
    /// kworker activity with device interrupt storms.
    Combined(Vec<AnomalyKind>),
}

/// A rare heavy event.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AnomalySpec {
    pub name: String,
    pub kind: AnomalyKind,
    /// Window length is drawn uniformly from this range.
    pub window: (SimDuration, SimDuration),
    /// Start offset is drawn uniformly from this range.
    pub start: (SimDuration, SimDuration),
}

/// Full description of a platform's background noise.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NoiseProfile {
    pub kworkers: Vec<KworkerSpec>,
    pub daemons: Vec<DaemonSpec>,
    /// Probability that a given run contains one anomaly.
    pub anomaly_prob: f64,
    /// Candidate anomalies (one picked uniformly when the dice hit,
    /// unless [`Self::force_all_anomalies`] is set).
    pub anomalies: Vec<AnomalySpec>,
    /// Install *every* anomaly in every run (ablation experiments that
    /// need deterministic worst-case conditions).
    #[serde(default)]
    pub force_all_anomalies: bool,
    /// Affinity of noise *threads* (kworkers, daemons, storms). `None`
    /// leaves them free to roam — the desktop situation. On the
    /// A64FX:reserved platform this is the firmware-reserved core set.
    pub os_affinity: Option<CpuSet>,
}

impl NoiseProfile {
    /// Background activity of an idle Ubuntu desktop at runlevel 5
    /// (GUI active), the configuration of the paper's main experiments.
    pub fn desktop() -> NoiseProfile {
        NoiseProfile {
            kworkers: vec![
                KworkerSpec {
                    name: "kworker/u8:2".into(),
                    mean_interval: SimDuration::from_millis(40),
                    median_burst: SimDuration::from_micros(35),
                    sigma: 1.1,
                },
                KworkerSpec {
                    name: "kworker/u8:4".into(),
                    mean_interval: SimDuration::from_millis(55),
                    median_burst: SimDuration::from_micros(28),
                    sigma: 1.2,
                },
                KworkerSpec {
                    name: "kworker/3:1".into(),
                    mean_interval: SimDuration::from_millis(70),
                    median_burst: SimDuration::from_micros(20),
                    sigma: 1.0,
                },
            ],
            daemons: vec![
                DaemonSpec {
                    name: "systemd-journald".into(),
                    period: SimDuration::from_millis(250),
                    jitter_frac: 0.3,
                    burst_mean: SimDuration::from_micros(120),
                    burst_sd: SimDuration::from_micros(40),
                },
                DaemonSpec {
                    name: "irqbalance".into(),
                    period: SimDuration::from_secs(2),
                    jitter_frac: 0.1,
                    burst_mean: SimDuration::from_micros(900),
                    burst_sd: SimDuration::from_micros(250),
                },
                // The GUI stack: compositor frame callbacks and X server
                // work. Dominant inherent-noise source at runlevel 5.
                DaemonSpec {
                    name: "gnome-shell".into(),
                    period: SimDuration::from_millis(16),
                    jitter_frac: 0.4,
                    burst_mean: SimDuration::from_micros(110),
                    burst_sd: SimDuration::from_micros(60),
                },
                DaemonSpec {
                    name: "Xorg".into(),
                    period: SimDuration::from_millis(33),
                    jitter_frac: 0.4,
                    burst_mean: SimDuration::from_micros(70),
                    burst_sd: SimDuration::from_micros(30),
                },
            ],
            anomaly_prob: 0.01,
            anomalies: vec![
                // Real worst cases mix fair-class kworker pressure with
                // interrupt-context noise; the interrupt share is what a
                // dynamic runtime cannot redistribute away.
                AnomalySpec {
                    name: "kworker-writeback-storm".into(),
                    kind: AnomalyKind::Combined(vec![
                        AnomalyKind::ThreadStorm {
                            threads: 4,
                            median_burst: SimDuration::from_millis(3),
                            sigma: 0.6,
                            mean_gap: SimDuration::from_micros(600),
                        },
                        AnomalyKind::IrqStorm {
                            cpus: 1,
                            mean_interval: SimDuration::from_micros(50),
                            service: SimDuration::from_micros(10),
                        },
                    ]),
                    window: (
                        SimDuration::from_millis(400),
                        SimDuration::from_millis(1_500),
                    ),
                    start: (SimDuration::from_millis(20), SimDuration::from_millis(200)),
                },
                AnomalySpec {
                    name: "packagekitd-scan".into(),
                    kind: AnomalyKind::ThreadStorm {
                        threads: 3,
                        median_burst: SimDuration::from_millis(6),
                        sigma: 0.5,
                        mean_gap: SimDuration::from_micros(1_500),
                    },
                    window: (
                        SimDuration::from_millis(400),
                        SimDuration::from_millis(1_600),
                    ),
                    start: (SimDuration::from_millis(10), SimDuration::from_millis(150)),
                },
                AnomalySpec {
                    name: "nvme-irq-storm".into(),
                    kind: AnomalyKind::IrqStorm {
                        cpus: 3,
                        mean_interval: SimDuration::from_micros(40),
                        service: SimDuration::from_micros(12),
                    },
                    window: (SimDuration::from_millis(300), SimDuration::from_millis(900)),
                    start: (SimDuration::from_millis(20), SimDuration::from_millis(250)),
                },
            ],
            force_all_anomalies: false,
            os_affinity: None,
        }
    }

    /// The AMD desktop's noise environment. The paper's AMD worst cases
    /// reach > 100 % degradation — far heavier anomalies than on the
    /// Intel box (more cores invite heavier background jobs, e.g. a
    /// parallel package build), so the anomaly pool scales up.
    pub fn desktop_amd() -> NoiseProfile {
        let mut p = Self::desktop();
        // Concentrated, near-saturating activity on a *minority* of the
        // cores: that is what amplifies through static-schedule barriers
        // (every region waits for the slowest core) while a dynamic
        // runtime can still route around it.
        p.anomalies = vec![
            // A device interrupt flood: a few CPUs nearly saturated with
            // interrupt context. FIFO-class noise is what produces the
            // paper's AMD extremes — it stalls static schedules outright,
            // is fully absorbed by enough housekeeping cores, and is
            // blunted to the SMT factor when free siblings exist.
            AnomalySpec {
                name: "nvme-irq-flood".into(),
                kind: AnomalyKind::IrqStorm {
                    cpus: 2,
                    mean_interval: SimDuration::from_micros(55),
                    service: SimDuration::from_micros(50),
                },
                window: (
                    SimDuration::from_millis(700),
                    SimDuration::from_millis(1_400),
                ),
                start: (SimDuration::from_millis(20), SimDuration::from_millis(150)),
            },
            AnomalySpec {
                name: "kworker-writeback-storm".into(),
                kind: AnomalyKind::Combined(vec![
                    AnomalyKind::ThreadStorm {
                        threads: 4,
                        median_burst: SimDuration::from_millis(4),
                        sigma: 0.6,
                        mean_gap: SimDuration::from_micros(500),
                    },
                    AnomalyKind::IrqStorm {
                        cpus: 2,
                        mean_interval: SimDuration::from_micros(40),
                        service: SimDuration::from_micros(12),
                    },
                ]),
                window: (
                    SimDuration::from_millis(400),
                    SimDuration::from_millis(1_200),
                ),
                start: (SimDuration::from_millis(20), SimDuration::from_millis(200)),
            },
            AnomalySpec {
                name: "packagekitd-scan".into(),
                kind: AnomalyKind::ThreadStorm {
                    threads: 3,
                    median_burst: SimDuration::from_millis(8),
                    sigma: 0.5,
                    mean_gap: SimDuration::from_micros(1_000),
                },
                window: (
                    SimDuration::from_millis(500),
                    SimDuration::from_millis(1_300),
                ),
                start: (SimDuration::from_millis(10), SimDuration::from_millis(150)),
            },
        ];
        p
    }

    /// Runlevel 3 (no GUI): same as desktop minus the GUI daemons.
    pub fn runlevel3() -> NoiseProfile {
        let mut p = Self::desktop();
        p.daemons
            .retain(|d| d.name != "gnome-shell" && d.name != "Xorg");
        p
    }

    /// HPC node profile: fewer daemons, no GUI; `os_affinity` restricts
    /// noise threads to the given set (the A64FX:reserved situation) or
    /// leaves them roaming (`None`, the A64FX:w/o situation). Anomaly
    /// windows are shorter and earlier than on the desktops, matching
    /// the shorter kernel-dominated runs of the motivation figures.
    pub fn hpc(os_affinity: Option<CpuSet>) -> NoiseProfile {
        let mut p = Self::runlevel3();
        p.anomaly_prob = 0.02;
        for a in &mut p.anomalies {
            a.start = (SimDuration::from_millis(5), SimDuration::from_millis(80));
            a.window = (SimDuration::from_millis(80), SimDuration::from_millis(300));
        }
        p.os_affinity = os_affinity;
        p
    }

    /// No noise threads at all (unit testing).
    pub fn silent() -> NoiseProfile {
        NoiseProfile {
            kworkers: vec![],
            daemons: vec![],
            anomaly_prob: 0.0,
            anomalies: vec![],
            force_all_anomalies: false,
            os_affinity: None,
        }
    }
}

/// What `install` set up for one run.
#[derive(Debug, Clone)]
pub struct InstalledNoise {
    pub threads: Vec<ThreadId>,
    /// Name of the anomaly active in this run, if any.
    pub anomaly: Option<String>,
}

/// Instantiate the profile's sources in `kernel`. `run_rng` decides this
/// run's anomaly dice and placement (fork it from a stable stream so the
/// decision is independent of intra-run event randomness).
pub fn install(kernel: &mut Kernel, profile: &NoiseProfile, run_rng: &mut Rng) -> InstalledNoise {
    let affinity = profile.os_affinity.unwrap_or(CpuSet::EMPTY); // EMPTY -> all CPUs at spawn
    let mut threads = Vec::new();

    for kw in &profile.kworkers {
        let spec = ThreadSpec::new(kw.name.clone(), ThreadKind::Noise)
            .affinity(affinity)
            .start_at(SimTime(run_rng.below(kw.mean_interval.nanos().max(1))));
        let b = KworkerBehavior {
            mean_interval: kw.mean_interval,
            median_burst: kw.median_burst,
            sigma: kw.sigma,
            burst_next: false,
        };
        threads.push(kernel.spawn(spec, Box::new(b)));
    }

    for d in &profile.daemons {
        let spec = ThreadSpec::new(d.name.clone(), ThreadKind::Noise)
            .affinity(affinity)
            .start_at(SimTime(run_rng.below(d.period.nanos().max(1))));
        let b = DaemonBehavior {
            period: d.period,
            jitter_frac: d.jitter_frac,
            burst_mean: d.burst_mean,
            burst_sd: d.burst_sd,
            burst_next: true,
        };
        threads.push(kernel.spawn(spec, Box::new(b)));
    }

    let mut anomaly = None;
    if !profile.anomalies.is_empty() {
        let chosen: Vec<&AnomalySpec> = if profile.force_all_anomalies {
            profile.anomalies.iter().collect()
        } else if run_rng.chance(profile.anomaly_prob) {
            vec![&profile.anomalies[run_rng.index(profile.anomalies.len())]]
        } else {
            Vec::new()
        };
        for spec in chosen {
            install_anomaly(kernel, spec, affinity, run_rng, &mut threads);
            anomaly = Some(match anomaly.take() {
                None => spec.name.clone(),
                Some(prev) => format!("{prev}+{}", spec.name),
            });
        }
    }

    InstalledNoise { threads, anomaly }
}

fn install_anomaly(
    kernel: &mut Kernel,
    spec: &AnomalySpec,
    affinity: CpuSet,
    run_rng: &mut Rng,
    threads: &mut Vec<ThreadId>,
) {
    let start = SimTime(
        spec.start.0.nanos() + run_rng.below((spec.start.1.nanos() - spec.start.0.nanos()).max(1)),
    );
    let window = SimDuration(
        spec.window.0.nanos()
            + run_rng.below((spec.window.1.nanos() - spec.window.0.nanos()).max(1)),
    );
    let end = start + window;
    install_kind(
        kernel, &spec.kind, &spec.name, start, end, affinity, run_rng, threads,
    );
}

#[allow(clippy::too_many_arguments)]
fn install_kind(
    kernel: &mut Kernel,
    kind: &AnomalyKind,
    name: &str,
    start: SimTime,
    end: SimTime,
    affinity: CpuSet,
    run_rng: &mut Rng,
    threads: &mut Vec<ThreadId>,
) {
    // Per-run unique source tag: real anomaly kworkers carry transient
    // names, and the injector's average-subtraction must not mistake an
    // anomaly source for a recurring inherent one.
    let tag = run_rng.next_u64() & 0xFFFF;
    match kind {
        AnomalyKind::ThreadStorm {
            threads: n,
            median_burst,
            sigma,
            mean_gap,
        } => {
            for i in 0..*n {
                let tspec = ThreadSpec::new(format!("{}-{tag:04x}/{i}", name), ThreadKind::Noise)
                    .affinity(affinity)
                    .start_at(start);
                let b = StormBehavior {
                    end,
                    median_burst: *median_burst,
                    sigma: *sigma,
                    mean_gap: *mean_gap,
                    burst_next: true,
                };
                threads.push(kernel.spawn(tspec, Box::new(b)));
            }
        }
        AnomalyKind::MemoryHog {
            threads: n,
            bytes_per_burst,
        } => {
            for i in 0..*n {
                let tspec = ThreadSpec::new(format!("{}-{tag:04x}/{i}", name), ThreadKind::Noise)
                    .affinity(affinity)
                    .start_at(start);
                let b = MemHogBehavior {
                    end,
                    bytes_per_burst: *bytes_per_burst,
                };
                threads.push(kernel.spawn(tspec, Box::new(b)));
            }
        }
        AnomalyKind::IrqStorm {
            cpus,
            mean_interval,
            service,
        } => {
            // Pre-schedule the interrupt series on randomly chosen
            // CPUs (device IRQs have fixed affinity, as on hardware
            // without irqbalance intervention). On systems with
            // firmware-reserved OS cores, interrupt routing is steered
            // there as well.
            let pool = if affinity.is_empty() {
                kernel.machine.all_cpus()
            } else {
                affinity.intersection(kernel.machine.all_cpus())
            };
            let all: Vec<CpuId> = pool.iter().collect();
            for _ in 0..*cpus {
                let cpu = all[run_rng.index(all.len())];
                let source = format!("{}-{tag:04x}:64", name);
                let mut t = start;
                while t < end {
                    kernel.inject_irq(cpu, t, *service, &*source);
                    t += SimDuration::from_secs_f64(run_rng.exp(mean_interval.as_secs_f64()));
                }
            }
        }
        AnomalyKind::Combined(kinds) => {
            for (j, k) in kinds.iter().enumerate() {
                let sub = format!("{name}.{j}");
                install_kind(kernel, k, &sub, start, end, affinity, run_rng, threads);
            }
        }
    }
}

/// kworker: sleep (exponential), burst (log-normal), repeat forever.
struct KworkerBehavior {
    mean_interval: SimDuration,
    median_burst: SimDuration,
    sigma: f64,
    burst_next: bool,
}

impl Behavior for KworkerBehavior {
    fn next(&mut self, ctx: &mut Ctx<'_>) -> Action {
        self.burst_next = !self.burst_next;
        if self.burst_next {
            let ns = ctx
                .rng
                .log_normal(self.median_burst.nanos() as f64, self.sigma);
            Action::Burn(SimDuration(ns.round().max(500.0) as u64))
        } else {
            let gap = ctx.rng.exp(self.mean_interval.as_secs_f64());
            Action::SleepFor(SimDuration::from_secs_f64(gap))
        }
    }

    fn label(&self) -> &str {
        "kworker"
    }
}

/// Periodic daemon: sleep (period +- jitter), burst (normal), repeat.
struct DaemonBehavior {
    period: SimDuration,
    jitter_frac: f64,
    burst_mean: SimDuration,
    burst_sd: SimDuration,
    burst_next: bool,
}

impl Behavior for DaemonBehavior {
    fn next(&mut self, ctx: &mut Ctx<'_>) -> Action {
        self.burst_next = !self.burst_next;
        if self.burst_next {
            let ns = ctx.rng.normal_min(
                self.burst_mean.nanos() as f64,
                self.burst_sd.nanos() as f64,
                1_000.0,
            );
            Action::Burn(SimDuration(ns.round() as u64))
        } else {
            let j = 1.0 + self.jitter_frac * (2.0 * ctx.rng.f64() - 1.0);
            Action::SleepFor(self.period.mul_f64(j.max(0.05)))
        }
    }

    fn label(&self) -> &str {
        "daemon"
    }
}

/// Memory-bandwidth hog: streams traffic back to back until the window
/// closes.
struct MemHogBehavior {
    end: SimTime,
    bytes_per_burst: f64,
}

impl Behavior for MemHogBehavior {
    fn next(&mut self, ctx: &mut Ctx<'_>) -> Action {
        if ctx.now >= self.end {
            return Action::Exit;
        }
        Action::Compute(noiselab_machine::WorkUnit::stream(self.bytes_per_burst))
    }

    fn label(&self) -> &str {
        "memhog"
    }
}

/// Anomaly storm worker: dense bursts until the window closes.
struct StormBehavior {
    end: SimTime,
    median_burst: SimDuration,
    sigma: f64,
    mean_gap: SimDuration,
    burst_next: bool,
}

impl Behavior for StormBehavior {
    fn next(&mut self, ctx: &mut Ctx<'_>) -> Action {
        if ctx.now >= self.end {
            return Action::Exit;
        }
        self.burst_next = !self.burst_next;
        if self.burst_next {
            let ns = ctx
                .rng
                .log_normal(self.median_burst.nanos() as f64, self.sigma);
            Action::Burn(SimDuration(ns.round().max(1_000.0) as u64))
        } else {
            let gap = ctx.rng.exp(self.mean_gap.as_secs_f64());
            Action::SleepFor(SimDuration::from_secs_f64(gap))
        }
    }

    fn label(&self) -> &str {
        "storm"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use noiselab_kernel::KernelConfig;
    use noiselab_machine::Machine;

    fn test_kernel(seed: u64) -> Kernel {
        Kernel::new(Machine::intel_9700kf(), KernelConfig::default(), seed)
    }

    #[test]
    fn silent_profile_installs_nothing() {
        let mut k = test_kernel(1);
        let mut rng = Rng::new(9);
        let installed = install(&mut k, &NoiseProfile::silent(), &mut rng);
        assert!(installed.threads.is_empty());
        assert!(installed.anomaly.is_none());
    }

    #[test]
    fn desktop_profile_spawns_all_sources() {
        let mut k = test_kernel(1);
        let mut rng = Rng::new(9);
        let p = NoiseProfile::desktop();
        let installed = install(&mut k, &p, &mut rng);
        assert_eq!(installed.threads.len(), p.kworkers.len() + p.daemons.len());
    }

    #[test]
    fn anomaly_rate_matches_probability() {
        let p = NoiseProfile {
            anomaly_prob: 0.3,
            ..NoiseProfile::desktop()
        };
        let mut rng = Rng::new(42);
        let mut hits = 0;
        for i in 0..400 {
            let mut k = test_kernel(i);
            let mut run_rng = rng.fork(i);
            if install(&mut k, &p, &mut run_rng).anomaly.is_some() {
                hits += 1;
            }
        }
        let rate = hits as f64 / 400.0;
        assert!((0.2..0.4).contains(&rate), "rate={rate}");
    }

    #[test]
    fn runlevel3_strips_gui() {
        let p = NoiseProfile::runlevel3();
        assert!(p
            .daemons
            .iter()
            .all(|d| d.name != "gnome-shell" && d.name != "Xorg"));
        assert!(!p.daemons.is_empty());
    }

    #[test]
    fn noise_threads_respect_os_affinity() {
        let reserved: CpuSet = [CpuId(6), CpuId(7)].into_iter().collect();
        let mut k = test_kernel(3);
        let mut rng = Rng::new(5);
        let p = NoiseProfile::hpc(Some(reserved));
        let installed = install(&mut k, &p, &mut rng);
        for t in &installed.threads {
            assert_eq!(k.thread(*t).affinity, reserved);
        }
    }

    #[test]
    fn profile_json_roundtrip() {
        let p = NoiseProfile::desktop();
        let s = serde_json::to_string(&p).unwrap();
        let back: NoiseProfile = serde_json::from_str(&s).unwrap();
        assert_eq!(p, back);
    }
}
