//! # noiselab-noise
//!
//! OS-noise modelling for the simulated kernel:
//!
//! * [`sources`] — the natural background activity of a running system
//!   (kworkers, daemons, GUI, rare anomalies), parameterised per
//!   platform by [`NoiseProfile`];
//! * [`tracer`] — an `osnoise`-style tracer ([`OsNoiseTracer`])
//!   recording every interference interval the kernel reports;
//! * [`trace`] — the trace data model ([`RunTrace`], [`TraceSet`]) the
//!   injector pipeline consumes, serialisable to JSON.

pub mod analysis;
pub mod sources;
pub mod trace;
pub mod tracer;

pub use sources::{
    install, AnomalyKind, AnomalySpec, DaemonSpec, InstalledNoise, KworkerSpec, NoiseProfile,
};
pub use trace::{RunTrace, TraceEvent, TraceSet};
pub use tracer::{OsNoiseTracer, TraceBuffer, DEFAULT_TRACE_CAPACITY};
