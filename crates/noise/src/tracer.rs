//! The `osnoise`-style tracer: a [`TraceSink`] that accumulates
//! [`TraceEvent`]s for one run.
//!
//! Because [`noiselab_kernel::Kernel::attach_tracer`] takes a boxed trait
//! object, the tracer shares its buffer through an `Rc<RefCell<..>>`
//! handle so the harness can read the trace after the run without
//! downcasting.

use crate::trace::{RunTrace, TraceEvent};
use noiselab_kernel::{NoiseClass, ThreadId, TraceSink};
use noiselab_machine::CpuId;
use noiselab_sim::{SimDuration, SimTime};
use std::cell::RefCell;
use std::rc::Rc;

/// Shared buffer handle.
#[derive(Clone, Default)]
pub struct TraceBuffer {
    inner: Rc<RefCell<Vec<TraceEvent>>>,
}

impl TraceBuffer {
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of events recorded so far.
    pub fn len(&self) -> usize {
        self.inner.borrow().len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drain the buffer into a [`RunTrace`].
    pub fn take_trace(&self, run_index: usize, exec_time: SimDuration) -> RunTrace {
        RunTrace {
            run_index,
            exec_time,
            events: std::mem::take(&mut *self.inner.borrow_mut()),
        }
    }
}

/// The tracer to attach to a kernel. Create with [`OsNoiseTracer::new`],
/// keep the [`TraceBuffer`] handle, box the tracer into the kernel.
pub struct OsNoiseTracer {
    buffer: TraceBuffer,
}

impl OsNoiseTracer {
    /// Returns the tracer and the shared buffer handle.
    pub fn new() -> (OsNoiseTracer, TraceBuffer) {
        let buffer = TraceBuffer::new();
        (
            OsNoiseTracer {
                buffer: buffer.clone(),
            },
            buffer,
        )
    }
}

impl TraceSink for OsNoiseTracer {
    fn record(
        &mut self,
        cpu: CpuId,
        class: NoiseClass,
        source: &str,
        _tid: Option<ThreadId>,
        start: SimTime,
        duration: SimDuration,
    ) {
        self.buffer.inner.borrow_mut().push(TraceEvent {
            cpu,
            class,
            source: source.to_string(),
            start,
            duration,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_and_drains() {
        let (mut tracer, buf) = OsNoiseTracer::new();
        tracer.record(
            CpuId(5),
            NoiseClass::Irq,
            "local_timer:236",
            None,
            SimTime(100),
            SimDuration(310),
        );
        tracer.record(
            CpuId(1),
            NoiseClass::Thread,
            "kworker/u129:5",
            Some(ThreadId(9)),
            SimTime(200),
            SimDuration(5830),
        );
        assert_eq!(buf.len(), 2);
        let trace = buf.take_trace(7, SimDuration(1_000));
        assert_eq!(trace.run_index, 7);
        assert_eq!(trace.events.len(), 2);
        assert_eq!(trace.events[0].source, "local_timer:236");
        assert!(buf.is_empty(), "buffer should be drained");
    }
}
