//! The `osnoise`-style tracer: a [`TraceSink`] that accumulates
//! [`TraceEvent`]s for one run.
//!
//! Like the real ftrace ring buffer, the tracer's capacity is bounded:
//! once full, further events are *dropped* and counted per CPU instead
//! of recorded, and the resulting [`RunTrace`] is flagged degraded so
//! analysis can down-weight it. Dropping cannot change simulated
//! timing — the kernel charges `trace_event_overhead` for every record
//! call independent of what the sink does with it — so bounding the
//! buffer never perturbs a run, it only truncates its observation.
//!
//! Because [`noiselab_kernel::Kernel::attach_tracer`] takes a boxed trait
//! object, the tracer shares its buffer through an `Rc<RefCell<..>>`
//! handle so the harness can read the trace after the run without
//! downcasting.

use crate::trace::{RunTrace, TraceEvent};
use noiselab_kernel::{InternTable, NoiseClass, ThreadId, TraceSink, WireRecord, WIRE_NO_THREAD};
use noiselab_machine::CpuId;
use noiselab_sim::{SimDuration, SimTime};
use std::cell::RefCell;
use std::rc::Rc;

/// Default ring-buffer capacity (events). Far above what any natural
/// run in this workspace emits (tens of thousands), so only fault
/// plans or deliberately tiny buffers cause drops.
pub const DEFAULT_TRACE_CAPACITY: usize = 1 << 18;

struct BufferInner {
    /// Recorded events in the shared compact wire encoding: `tag` is
    /// the [`NoiseClass`] discriminant, `name` indexes `intern`.
    /// Recording is a fixed-width push — the owned-`String` form the
    /// analysis layer wants is materialized once, at [`TraceBuffer::
    /// take_trace`] time, not per event.
    events: Vec<WireRecord>,
    intern: InternTable,
    capacity: usize,
    /// Per-CPU drop counters, grown on demand (index = cpu id).
    dropped: Vec<u64>,
    /// Everything `record` was asked to store, recorded or not.
    emitted: u64,
}

fn class_tag(class: NoiseClass) -> u8 {
    match class {
        NoiseClass::Irq => 0,
        NoiseClass::Softirq => 1,
        NoiseClass::Thread => 2,
    }
}

fn class_from_tag(tag: u8) -> NoiseClass {
    match tag {
        0 => NoiseClass::Irq,
        1 => NoiseClass::Softirq,
        _ => NoiseClass::Thread,
    }
}

/// Shared buffer handle.
#[derive(Clone)]
pub struct TraceBuffer {
    inner: Rc<RefCell<BufferInner>>,
}

impl Default for TraceBuffer {
    fn default() -> Self {
        Self::with_capacity(DEFAULT_TRACE_CAPACITY)
    }
}

impl TraceBuffer {
    pub fn new() -> Self {
        Self::default()
    }

    /// A buffer that records at most `capacity` events and counts the
    /// rest as dropped.
    pub fn with_capacity(capacity: usize) -> Self {
        TraceBuffer {
            inner: Rc::new(RefCell::new(BufferInner {
                events: Vec::new(),
                intern: InternTable::new(),
                capacity,
                dropped: Vec::new(),
                emitted: 0,
            })),
        }
    }

    /// Number of events recorded so far.
    pub fn len(&self) -> usize {
        self.inner.borrow().events.len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total events offered to the buffer (recorded + dropped).
    pub fn emitted(&self) -> u64 {
        self.inner.borrow().emitted
    }

    /// Total events dropped on overflow.
    pub fn dropped(&self) -> u64 {
        self.inner.borrow().dropped.iter().sum()
    }

    /// Empty the buffer and counters (keeping the ring's and intern
    /// table's allocations) and set the overflow capacity — the
    /// arena-reuse hook: a retained buffer reset this way behaves
    /// exactly like a fresh [`TraceBuffer::with_capacity`].
    pub fn reset(&self, capacity: usize) {
        let mut b = self.inner.borrow_mut();
        b.events.clear();
        b.intern.clear();
        b.capacity = capacity;
        b.dropped.clear();
        b.emitted = 0;
    }

    /// Drain the buffer into a [`RunTrace`], carrying the drop
    /// accounting; counters reset for the next run.
    pub fn take_trace(&self, run_index: usize, exec_time: SimDuration) -> RunTrace {
        let mut b = self.inner.borrow_mut();
        let dropped_by_cpu: Vec<(u32, u64)> = b
            .dropped
            .iter()
            .enumerate()
            .filter(|(_, &d)| d > 0)
            .map(|(cpu, &d)| (cpu as u32, d))
            .collect();
        let dropped_events: u64 = dropped_by_cpu.iter().map(|&(_, d)| d).sum();
        b.dropped.clear();
        b.emitted = 0;
        let events = b
            .events
            .iter()
            .map(|w| TraceEvent {
                cpu: CpuId(w.cpu),
                class: class_from_tag(w.tag),
                source: b
                    .intern
                    .get(w.name)
                    .expect("tracer intern table missing an id it issued")
                    .to_string(),
                start: SimTime(w.start),
                duration: SimDuration(w.dur_ns),
            })
            .collect();
        b.events.clear();
        b.intern.clear();
        RunTrace {
            run_index,
            exec_time,
            events,
            dropped_events,
            dropped_by_cpu,
            degraded: dropped_events > 0,
        }
    }
}

/// The tracer to attach to a kernel. Create with [`OsNoiseTracer::new`],
/// keep the [`TraceBuffer`] handle, box the tracer into the kernel.
pub struct OsNoiseTracer {
    buffer: TraceBuffer,
}

impl OsNoiseTracer {
    /// Returns the tracer and the shared buffer handle, at the default
    /// capacity.
    pub fn new() -> (OsNoiseTracer, TraceBuffer) {
        Self::with_capacity(DEFAULT_TRACE_CAPACITY)
    }

    /// A tracer whose ring buffer holds at most `capacity` events.
    pub fn with_capacity(capacity: usize) -> (OsNoiseTracer, TraceBuffer) {
        let buffer = TraceBuffer::with_capacity(capacity);
        (Self::from_buffer(buffer.clone()), buffer)
    }

    /// A tracer appending into an existing buffer — the arena-reuse
    /// hook: a repetition loop keeps one [`TraceBuffer`] and re-attaches
    /// it run after run, so the ring's allocation stays warm. Callers
    /// reusing a buffer across runs should [`TraceBuffer::reset`] it
    /// first in case the previous run ended without a drain.
    pub fn from_buffer(buffer: TraceBuffer) -> OsNoiseTracer {
        OsNoiseTracer { buffer }
    }
}

impl TraceSink for OsNoiseTracer {
    fn record(
        &mut self,
        cpu: CpuId,
        class: NoiseClass,
        source: &str,
        tid: Option<ThreadId>,
        start: SimTime,
        duration: SimDuration,
    ) {
        let mut b = self.buffer.inner.borrow_mut();
        b.emitted += 1;
        if b.events.len() < b.capacity {
            let name = b.intern.intern(source);
            b.events.push(WireRecord {
                start: start.0,
                dur_ns: duration.0,
                cpu: cpu.0,
                thread: tid.map_or(WIRE_NO_THREAD, |t| t.0),
                name,
                tag: class_tag(class),
            });
        } else {
            let ci = cpu.0 as usize;
            if b.dropped.len() <= ci {
                b.dropped.resize(ci + 1, 0);
            }
            b.dropped[ci] += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_and_drains() {
        let (mut tracer, buf) = OsNoiseTracer::new();
        tracer.record(
            CpuId(5),
            NoiseClass::Irq,
            "local_timer:236",
            None,
            SimTime(100),
            SimDuration(310),
        );
        tracer.record(
            CpuId(1),
            NoiseClass::Thread,
            "kworker/u129:5",
            Some(ThreadId(9)),
            SimTime(200),
            SimDuration(5830),
        );
        assert_eq!(buf.len(), 2);
        assert_eq!(buf.emitted(), 2);
        assert_eq!(buf.dropped(), 0);
        let trace = buf.take_trace(7, SimDuration(1_000));
        assert_eq!(trace.run_index, 7);
        assert_eq!(trace.events.len(), 2);
        assert_eq!(trace.events[0].source, "local_timer:236");
        assert!(!trace.degraded);
        assert!(buf.is_empty(), "buffer should be drained");
    }

    #[test]
    fn overflow_drops_and_flags_degraded() {
        let (mut tracer, buf) = OsNoiseTracer::with_capacity(3);
        for i in 0..10u32 {
            tracer.record(
                CpuId(i % 2),
                NoiseClass::Irq,
                "nic:77",
                None,
                SimTime(i as u64 * 100),
                SimDuration(10),
            );
        }
        assert_eq!(buf.len(), 3);
        assert_eq!(buf.emitted(), 10);
        assert_eq!(buf.dropped(), 7);
        let trace = buf.take_trace(0, SimDuration(1_000));
        assert!(trace.degraded);
        assert_eq!(trace.dropped_events, 7);
        assert_eq!(trace.events.len() as u64 + trace.dropped_events, 10);
        // Records 0..3 hit CPUs 0,1,0; drops 3..10 hit 1,0,1,0,1,0,1.
        assert_eq!(trace.dropped_by_cpu, vec![(0, 3), (1, 4)]);
        // Counters reset after draining.
        assert_eq!(buf.emitted(), 0);
        assert_eq!(buf.dropped(), 0);
    }
}
