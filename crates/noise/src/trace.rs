//! The `osnoise`-style trace data model.
//!
//! Mirrors the schema of paper Fig. 3: each event records the logical
//! CPU, the event type (`irq_noise` / `softirq_noise` / `thread_noise`),
//! the source (process or interrupt name), the start timestamp relative
//! to the beginning of the trace, and the duration.

use noiselab_kernel::NoiseClass;
use noiselab_machine::CpuId;
use noiselab_sim::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};

/// One `osnoise` event.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TraceEvent {
    pub cpu: CpuId,
    pub class: NoiseClass,
    /// Originating source, e.g. `local_timer:236`, `RCU:9`,
    /// `kworker/13:1`.
    pub source: String,
    /// Start time relative to the beginning of the trace.
    pub start: SimTime,
    pub duration: SimDuration,
}

impl TraceEvent {
    pub fn end(&self) -> SimTime {
        self.start + self.duration
    }

    /// Does this event overlap `other` in time (same CPU not required)?
    pub fn overlaps(&self, other: &TraceEvent) -> bool {
        self.start < other.end() && other.start < self.end()
    }
}

/// The full trace of one workload execution plus the measured execution
/// time — the unit the injector's pipeline consumes (1000 of these per
/// configuration in the paper).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RunTrace {
    /// Which repetition produced this trace.
    pub run_index: usize,
    /// Workload execution time of this run.
    pub exec_time: SimDuration,
    /// All noise events observed during the run, in record order.
    pub events: Vec<TraceEvent>,
    /// Events the bounded tracer ring buffer could not record (like a
    /// real ftrace buffer under pressure). Zero for intact traces.
    #[serde(default)]
    pub dropped_events: u64,
    /// Per-CPU breakdown of `dropped_events` as `(cpu, dropped)` pairs,
    /// only for CPUs that dropped anything.
    #[serde(default)]
    pub dropped_by_cpu: Vec<(u32, u64)>,
    /// True when the ring buffer overflowed: per-source noise totals
    /// under-report actual interference, so analysis and worst-case
    /// selection down-weight this trace.
    #[serde(default)]
    pub degraded: bool,
}

impl RunTrace {
    /// An intact (no drops) trace.
    pub fn new(run_index: usize, exec_time: SimDuration, events: Vec<TraceEvent>) -> RunTrace {
        RunTrace {
            run_index,
            exec_time,
            events,
            dropped_events: 0,
            dropped_by_cpu: Vec::new(),
            degraded: false,
        }
    }

    /// Fraction of emitted events actually recorded, in `[0, 1]`.
    pub fn completeness(&self) -> f64 {
        let recorded = self.events.len() as u64;
        let emitted = recorded + self.dropped_events;
        if emitted == 0 {
            1.0
        } else {
            recorded as f64 / emitted as f64
        }
    }

    /// Total noise duration per class, for quick characterisation.
    pub fn noise_by_class(&self) -> [SimDuration; 3] {
        let mut out = [SimDuration::ZERO; 3];
        for e in &self.events {
            let idx = match e.class {
                NoiseClass::Irq => 0,
                NoiseClass::Softirq => 1,
                NoiseClass::Thread => 2,
            };
            out[idx] += e.duration;
        }
        out
    }

    /// Total noise duration attributed to `source`.
    pub fn noise_of_source(&self, source: &str) -> SimDuration {
        self.events
            .iter()
            .filter(|e| e.source == source)
            .map(|e| e.duration)
            .fold(SimDuration::ZERO, |a, b| a + b)
    }

    /// Distinct sources present in the trace, sorted.
    pub fn sources(&self) -> Vec<String> {
        let mut v: Vec<String> = self.events.iter().map(|e| e.source.clone()).collect();
        v.sort();
        v.dedup();
        v
    }
}

/// A set of baseline traces for one workload configuration.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct TraceSet {
    pub runs: Vec<RunTrace>,
}

impl TraceSet {
    /// Index of the worst-case (longest) execution. Degraded traces
    /// (truncated by the tracer ring buffer) are only considered when
    /// every trace in the set is degraded: a truncated trace would
    /// feed the injection generator an under-reported noise profile.
    pub fn worst_index(&self) -> Option<usize> {
        let pick = |degraded_ok: bool| {
            self.runs
                .iter()
                .enumerate()
                .filter(|(_, r)| degraded_ok || !r.degraded)
                .max_by_key(|(_, r)| r.exec_time)
                .map(|(i, _)| i)
        };
        pick(false).or_else(|| pick(true))
    }

    /// How many traces in the set are degraded.
    pub fn degraded_count(&self) -> usize {
        self.runs.iter().filter(|r| r.degraded).count()
    }

    pub fn worst(&self) -> Option<&RunTrace> {
        self.worst_index().map(|i| &self.runs[i])
    }

    /// Mean execution time across runs.
    pub fn mean_exec(&self) -> Option<SimDuration> {
        if self.runs.is_empty() {
            return None;
        }
        let total: u64 = self.runs.iter().map(|r| r.exec_time.nanos()).sum();
        Some(SimDuration(total / self.runs.len() as u64))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(cpu: u32, class: NoiseClass, source: &str, start: u64, dur: u64) -> TraceEvent {
        TraceEvent {
            cpu: CpuId(cpu),
            class,
            source: source.into(),
            start: SimTime(start),
            duration: SimDuration(dur),
        }
    }

    #[test]
    fn overlap_detection() {
        let a = ev(0, NoiseClass::Irq, "x", 100, 50);
        let b = ev(0, NoiseClass::Irq, "y", 120, 10);
        let c = ev(0, NoiseClass::Irq, "z", 150, 10);
        assert!(a.overlaps(&b));
        assert!(!a.overlaps(&c)); // [100,150) vs [150,160): touching, no overlap
    }

    #[test]
    fn noise_by_class_partitions() {
        let t = RunTrace::new(
            0,
            SimDuration(1_000_000),
            vec![
                ev(0, NoiseClass::Irq, "local_timer:236", 0, 300),
                ev(1, NoiseClass::Softirq, "RCU:9", 10, 140),
                ev(2, NoiseClass::Thread, "kworker/2:1", 20, 3760),
                ev(3, NoiseClass::Irq, "local_timer:236", 30, 200),
            ],
        );
        let [irq, soft, thr] = t.noise_by_class();
        assert_eq!(irq, SimDuration(500));
        assert_eq!(soft, SimDuration(140));
        assert_eq!(thr, SimDuration(3760));
        assert_eq!(t.noise_of_source("local_timer:236"), SimDuration(500));
        assert_eq!(t.sources(), vec!["RCU:9", "kworker/2:1", "local_timer:236"]);
    }

    #[test]
    fn worst_index_is_longest_run() {
        let mk = |i, ns| RunTrace::new(i, SimDuration(ns), vec![]);
        let set = TraceSet {
            runs: vec![mk(0, 100), mk(1, 900), mk(2, 300)],
        };
        assert_eq!(set.worst_index(), Some(1));
        assert_eq!(set.mean_exec(), Some(SimDuration(433)));
    }

    #[test]
    fn worst_index_skips_degraded_traces() {
        let mk = |i, ns, degraded| {
            let mut t = RunTrace::new(i, SimDuration(ns), vec![]);
            if degraded {
                t.dropped_events = 10;
                t.degraded = true;
            }
            t
        };
        // The longest run is degraded: the intact runner-up wins.
        let set = TraceSet {
            runs: vec![mk(0, 100, false), mk(1, 900, true), mk(2, 300, false)],
        };
        assert_eq!(set.worst_index(), Some(2));
        assert_eq!(set.degraded_count(), 1);
        // All degraded: fall back to the longest anyway.
        let all = TraceSet {
            runs: vec![mk(0, 100, true), mk(1, 900, true)],
        };
        assert_eq!(all.worst_index(), Some(1));
    }

    #[test]
    fn completeness_reflects_drops() {
        let mut t = RunTrace::new(0, SimDuration(1), vec![ev(0, NoiseClass::Irq, "x", 0, 1)]);
        assert_eq!(t.completeness(), 1.0);
        t.dropped_events = 3;
        t.degraded = true;
        assert_eq!(t.completeness(), 0.25);
        let empty = RunTrace::new(0, SimDuration(1), vec![]);
        assert_eq!(empty.completeness(), 1.0);
    }

    #[test]
    fn json_roundtrip() {
        let mut t = RunTrace::new(
            3,
            SimDuration(42),
            vec![ev(5, NoiseClass::Thread, "kworker/5:0", 255, 310)],
        );
        t.dropped_events = 2;
        t.dropped_by_cpu = vec![(5, 2)];
        t.degraded = true;
        let s = serde_json::to_string(&t).unwrap();
        let back: RunTrace = serde_json::from_str(&s).unwrap();
        assert_eq!(t, back);
    }

    #[test]
    fn old_trace_json_still_deserialises() {
        // Traces serialised before drop accounting existed have no
        // dropped/degraded fields; they read back as intact.
        let s = r#"{"run_index":1,"exec_time":99,"events":[]}"#;
        let t: RunTrace = serde_json::from_str(s).unwrap();
        assert_eq!(t.dropped_events, 0);
        assert!(!t.degraded);
    }
}
