//! The `osnoise`-style trace data model.
//!
//! Mirrors the schema of paper Fig. 3: each event records the logical
//! CPU, the event type (`irq_noise` / `softirq_noise` / `thread_noise`),
//! the source (process or interrupt name), the start timestamp relative
//! to the beginning of the trace, and the duration.

use noiselab_kernel::NoiseClass;
use noiselab_machine::CpuId;
use noiselab_sim::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};

/// One `osnoise` event.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TraceEvent {
    pub cpu: CpuId,
    pub class: NoiseClass,
    /// Originating source, e.g. `local_timer:236`, `RCU:9`,
    /// `kworker/13:1`.
    pub source: String,
    /// Start time relative to the beginning of the trace.
    pub start: SimTime,
    pub duration: SimDuration,
}

impl TraceEvent {
    pub fn end(&self) -> SimTime {
        self.start + self.duration
    }

    /// Does this event overlap `other` in time (same CPU not required)?
    pub fn overlaps(&self, other: &TraceEvent) -> bool {
        self.start < other.end() && other.start < self.end()
    }
}

/// The full trace of one workload execution plus the measured execution
/// time — the unit the injector's pipeline consumes (1000 of these per
/// configuration in the paper).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RunTrace {
    /// Which repetition produced this trace.
    pub run_index: usize,
    /// Workload execution time of this run.
    pub exec_time: SimDuration,
    /// All noise events observed during the run, in record order.
    pub events: Vec<TraceEvent>,
}

impl RunTrace {
    /// Total noise duration per class, for quick characterisation.
    pub fn noise_by_class(&self) -> [SimDuration; 3] {
        let mut out = [SimDuration::ZERO; 3];
        for e in &self.events {
            let idx = match e.class {
                NoiseClass::Irq => 0,
                NoiseClass::Softirq => 1,
                NoiseClass::Thread => 2,
            };
            out[idx] += e.duration;
        }
        out
    }

    /// Total noise duration attributed to `source`.
    pub fn noise_of_source(&self, source: &str) -> SimDuration {
        self.events
            .iter()
            .filter(|e| e.source == source)
            .map(|e| e.duration)
            .fold(SimDuration::ZERO, |a, b| a + b)
    }

    /// Distinct sources present in the trace, sorted.
    pub fn sources(&self) -> Vec<String> {
        let mut v: Vec<String> = self.events.iter().map(|e| e.source.clone()).collect();
        v.sort();
        v.dedup();
        v
    }
}

/// A set of baseline traces for one workload configuration.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct TraceSet {
    pub runs: Vec<RunTrace>,
}

impl TraceSet {
    /// Index of the worst-case (longest) execution.
    pub fn worst_index(&self) -> Option<usize> {
        self.runs
            .iter()
            .enumerate()
            .max_by_key(|(_, r)| r.exec_time)
            .map(|(i, _)| i)
    }

    pub fn worst(&self) -> Option<&RunTrace> {
        self.worst_index().map(|i| &self.runs[i])
    }

    /// Mean execution time across runs.
    pub fn mean_exec(&self) -> Option<SimDuration> {
        if self.runs.is_empty() {
            return None;
        }
        let total: u64 = self.runs.iter().map(|r| r.exec_time.nanos()).sum();
        Some(SimDuration(total / self.runs.len() as u64))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(cpu: u32, class: NoiseClass, source: &str, start: u64, dur: u64) -> TraceEvent {
        TraceEvent {
            cpu: CpuId(cpu),
            class,
            source: source.into(),
            start: SimTime(start),
            duration: SimDuration(dur),
        }
    }

    #[test]
    fn overlap_detection() {
        let a = ev(0, NoiseClass::Irq, "x", 100, 50);
        let b = ev(0, NoiseClass::Irq, "y", 120, 10);
        let c = ev(0, NoiseClass::Irq, "z", 150, 10);
        assert!(a.overlaps(&b));
        assert!(!a.overlaps(&c)); // [100,150) vs [150,160): touching, no overlap
    }

    #[test]
    fn noise_by_class_partitions() {
        let t = RunTrace {
            run_index: 0,
            exec_time: SimDuration(1_000_000),
            events: vec![
                ev(0, NoiseClass::Irq, "local_timer:236", 0, 300),
                ev(1, NoiseClass::Softirq, "RCU:9", 10, 140),
                ev(2, NoiseClass::Thread, "kworker/2:1", 20, 3760),
                ev(3, NoiseClass::Irq, "local_timer:236", 30, 200),
            ],
        };
        let [irq, soft, thr] = t.noise_by_class();
        assert_eq!(irq, SimDuration(500));
        assert_eq!(soft, SimDuration(140));
        assert_eq!(thr, SimDuration(3760));
        assert_eq!(t.noise_of_source("local_timer:236"), SimDuration(500));
        assert_eq!(t.sources(), vec!["RCU:9", "kworker/2:1", "local_timer:236"]);
    }

    #[test]
    fn worst_index_is_longest_run() {
        let mk = |i, ns| RunTrace {
            run_index: i,
            exec_time: SimDuration(ns),
            events: vec![],
        };
        let set = TraceSet {
            runs: vec![mk(0, 100), mk(1, 900), mk(2, 300)],
        };
        assert_eq!(set.worst_index(), Some(1));
        assert_eq!(set.mean_exec(), Some(SimDuration(433)));
    }

    #[test]
    fn json_roundtrip() {
        let t = RunTrace {
            run_index: 3,
            exec_time: SimDuration(42),
            events: vec![ev(5, NoiseClass::Thread, "kworker/5:0", 255, 310)],
        };
        let s = serde_json::to_string(&t).unwrap();
        let back: RunTrace = serde_json::from_str(&s).unwrap();
        assert_eq!(t, back);
    }
}
