//! Shards: contiguous, disjoint slices of a campaign's cell index
//! space, each independently executable and checkpointable.
//!
//! A shard's identity is a **stable fingerprint**: FNV-1a over the
//! campaign fingerprint (the v2 contract string) and the shard's
//! (id, start, len) geometry. A shard ledger written under one campaign
//! can never be merged into another, and a re-partitioned campaign
//! (different shard size) produces different fingerprints even when the
//! cells coincide — resumability is only claimed where bit-identity is
//! actually guaranteed.

use noiselab_core::CellRecord;
use noiselab_kernel::sanitize::fnv1a_extend;
use serde::{Deserialize, Serialize};

/// FNV-1a offset basis, the same fold the run ledgers use.
const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;

/// One shard: cells `start .. start + len` of the campaign cell list.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ShardSpec {
    pub id: u32,
    pub start: usize,
    pub len: usize,
}

impl ShardSpec {
    /// The cell indices this shard owns, in canonical (ascending) order.
    pub fn cell_indices(&self) -> std::ops::Range<usize> {
        self.start..self.start + self.len
    }

    /// Stable shard fingerprint, binding the shard geometry to the
    /// campaign it belongs to.
    pub fn fingerprint(&self, campaign_fingerprint: &str) -> u64 {
        let mut h = fnv1a_extend(FNV_OFFSET, campaign_fingerprint.as_bytes());
        h = fnv1a_extend(h, &self.id.to_le_bytes());
        h = fnv1a_extend(h, &(self.start as u64).to_le_bytes());
        h = fnv1a_extend(h, &(self.len as u64).to_le_bytes());
        h
    }
}

/// Partition `n_cells` into shards of at most `shard_size` cells.
/// Deterministic: same inputs, same shards, same ids.
pub fn partition(n_cells: usize, shard_size: usize) -> Vec<ShardSpec> {
    let size = shard_size.max(1);
    (0..n_cells)
        .step_by(size)
        .enumerate()
        .map(|(id, start)| ShardSpec {
            id: id as u32,
            start,
            len: size.min(n_cells - start),
        })
        .collect()
}

/// A completed cell tagged with its campaign-global index, so shard
/// ledgers can be folded back in canonical order no matter which worker
/// produced them when.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct IndexedCell {
    pub index: usize,
    pub record: CellRecord,
}

/// The per-shard ledger a worker checkpoints after every cell and
/// finalizes into `done/` when the shard completes.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ShardResult {
    pub shard: u32,
    /// [`ShardSpec::fingerprint`] under the owning campaign — checked
    /// on wip resume and again at merge time.
    pub fingerprint: u64,
    /// Completed cells in ascending index order (a prefix of the
    /// shard's range while in progress).
    pub cells: Vec<IndexedCell>,
    /// Fold of the per-cell stream hashes ([`ShardResult::fold_hash`]);
    /// zero until finalized.
    pub hash: u64,
}

impl ShardResult {
    pub fn new(shard: u32, fingerprint: u64) -> ShardResult {
        ShardResult {
            shard,
            fingerprint,
            cells: Vec::new(),
            hash: 0,
        }
    }

    /// Deterministic fold over (index, seed, stream_hash) of every
    /// completed cell, in stored order. The merge recomputes this from
    /// the cells and refuses ledgers where they disagree.
    pub fn fold_hash(&self) -> u64 {
        let mut h = fnv1a_extend(FNV_OFFSET, &self.fingerprint.to_le_bytes());
        for c in &self.cells {
            h = fnv1a_extend(h, &(c.index as u64).to_le_bytes());
            h = fnv1a_extend(h, &c.record.key.seed.to_le_bytes());
            h = fnv1a_extend(h, &c.record.stream_hash.to_le_bytes());
        }
        h
    }

    /// Stamp the ledger's own fold hash (done when the shard completes).
    pub fn finalize(&mut self) {
        self.hash = self.fold_hash();
    }

    /// Whether a wip ledger is a sane prefix of `shard` under
    /// `fingerprint`: right shard, right campaign, and cells form the
    /// exact leading slice of the shard's index range. Anything else is
    /// discarded and the shard restarted — wrong resumes are worse than
    /// slow ones.
    pub fn is_resumable_prefix_of(&self, shard: &ShardSpec, fingerprint: u64) -> bool {
        self.shard == shard.id
            && self.fingerprint == fingerprint
            && self.cells.len() <= shard.len
            && self
                .cells
                .iter()
                .zip(shard.cell_indices())
                .all(|(c, i)| c.index == i)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use noiselab_core::CellKey;

    fn cell(index: usize) -> IndexedCell {
        IndexedCell {
            index,
            record: CellRecord {
                key: CellKey {
                    label: format!("c{index}"),
                    seed: index as u64 * 10,
                },
                samples: vec![0.5],
                failures: vec![],
                attempts: 1,
                stream_hash: 0xFEED ^ index as u64,
                metrics: Default::default(),
            },
        }
    }

    #[test]
    fn partition_covers_cells_exactly_once() {
        for (n, size) in [(0, 4), (1, 4), (7, 3), (8, 4), (9, 4), (5, 100)] {
            let shards = partition(n, size);
            let mut seen = vec![];
            for s in &shards {
                assert!(s.len >= 1 || n == 0);
                seen.extend(s.cell_indices());
            }
            assert_eq!(seen, (0..n).collect::<Vec<_>>(), "n={n} size={size}");
            // Ids are dense and ordered.
            for (k, s) in shards.iter().enumerate() {
                assert_eq!(s.id, k as u32);
            }
        }
    }

    #[test]
    fn fingerprint_binds_campaign_and_geometry() {
        let s = ShardSpec {
            id: 1,
            start: 4,
            len: 4,
        };
        let f = s.fingerprint("v2|campaign-a");
        assert_eq!(f, s.fingerprint("v2|campaign-a"), "stable");
        assert_ne!(f, s.fingerprint("v2|campaign-b"), "campaign-bound");
        let widened = ShardSpec { len: 5, ..s };
        assert_ne!(f, widened.fingerprint("v2|campaign-a"), "geometry-bound");
    }

    #[test]
    fn fold_hash_detects_tampering() {
        let mut r = ShardResult::new(0, 99);
        r.cells.push(cell(0));
        r.cells.push(cell(1));
        r.finalize();
        assert_eq!(r.hash, r.fold_hash());
        r.cells[1].record.stream_hash ^= 1;
        assert_ne!(r.hash, r.fold_hash());
    }

    #[test]
    fn resumable_prefix_rules() {
        let shard = ShardSpec {
            id: 2,
            start: 4,
            len: 3,
        };
        let fp = shard.fingerprint("v2|c");
        let mut r = ShardResult::new(2, fp);
        assert!(r.is_resumable_prefix_of(&shard, fp), "empty prefix ok");
        r.cells.push(cell(4));
        r.cells.push(cell(5));
        assert!(r.is_resumable_prefix_of(&shard, fp));
        assert!(!r.is_resumable_prefix_of(&shard, fp ^ 1), "wrong campaign");
        r.cells[1].index = 6; // gap
        assert!(!r.is_resumable_prefix_of(&shard, fp), "non-prefix");
    }
}
