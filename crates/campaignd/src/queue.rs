//! The on-disk work queue: how a campaign's shards are claimed,
//! checkpointed, completed and quarantined across OS processes.
//!
//! Layout under the queue root:
//!
//! ```text
//! campaign.json              manifest: schema, fingerprint, spec, shards
//! leases/shard-NNNNN.lease   exists => shard is claimed (O_EXCL create)
//! wip/shard-NNNNN.json       in-progress ShardResult (cell-granular)
//! done/shard-NNNNN.json      finalized ShardResult
//! quarantine/shard-NNNNN.json QuarantineNote — the shard is given up
//! crashes/shard-NNNNN.json   crash counter (supervisor-maintained)
//! ```
//!
//! The **lease file is the mutual exclusion primitive**: claiming a
//! shard is `OpenOptions::create_new`, which the filesystem makes
//! atomic — exactly one process wins, no coordinator in the loop. Every
//! mutation of `wip/`, `done/`, `quarantine/` and `crashes/` goes
//! through [`noiselab_core::durable::write_atomic`] (tmp + fsync +
//! rename + directory fsync), so any process — worker or supervisor —
//! can be SIGKILLed at any instruction and the queue remains a
//! consistent prefix of the campaign.
//!
//! Races are closed pessimistically: a claimant re-checks `done/` and
//! `quarantine/` *after* winning the lease and surrenders if either
//! appeared in the window, and the supervisor writes quarantine
//! *before* releasing a dead worker's lease. A shard can therefore
//! never be executed after being quarantined or completed.

use crate::shard::{ShardResult, ShardSpec};
use crate::spec::{CampaignSpec, SpecError};
use noiselab_core::durable::write_atomic;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::fs::OpenOptions;
use std::io::{self, Write};
use std::path::{Path, PathBuf};

/// Manifest schema version for the queue directory itself.
pub const QUEUE_SCHEMA: u32 = 1;

/// The immutable description of a sharded campaign, written once at
/// queue initialization and re-read by every worker.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QueueManifest {
    pub schema: u32,
    /// Campaign fingerprint ([`CampaignSpec::fingerprint`]); workers
    /// recompute it from `spec` and refuse manifests that disagree.
    pub fingerprint: String,
    pub spec: CampaignSpec,
    pub shards: Vec<ShardSpec>,
}

/// Why a shard was given up: written to `quarantine/` by the supervisor
/// when a shard keeps killing workers, merged into the final state as a
/// [`noiselab_core::QuarantineRecord`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QuarantineNote {
    pub shard: u32,
    pub crashes: u32,
    pub reason: String,
}

/// Persistent crash counter for one shard.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
struct CrashCount {
    crashes: u32,
}

/// Queue trouble, always naming the path involved.
#[derive(Debug)]
pub enum QueueError {
    Io {
        path: PathBuf,
        source: io::Error,
    },
    Corrupt {
        path: PathBuf,
        message: String,
    },
    Spec(SpecError),
    /// The directory holds a different campaign's queue.
    FingerprintMismatch {
        path: PathBuf,
        expected: String,
        found: String,
    },
    /// The manifest was written by a newer noiselab.
    UnsupportedSchema {
        path: PathBuf,
        schema: u32,
    },
}

impl fmt::Display for QueueError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QueueError::Io { path, source } => {
                write!(f, "queue I/O error at {}: {source}", path.display())
            }
            QueueError::Corrupt { path, message } => {
                write!(f, "corrupt queue file {}: {message}", path.display())
            }
            QueueError::Spec(e) => write!(f, "queue manifest spec: {e}"),
            QueueError::FingerprintMismatch {
                path,
                expected,
                found,
            } => write!(
                f,
                "queue {} belongs to a different campaign: manifest fingerprint \
                 {found:?} != requested {expected:?}; refusing to mix shards",
                path.display()
            ),
            QueueError::UnsupportedSchema { path, schema } => write!(
                f,
                "queue manifest {} has schema v{schema}, but this binary supports \
                 at most v{QUEUE_SCHEMA}",
                path.display()
            ),
        }
    }
}

impl std::error::Error for QueueError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            QueueError::Io { source, .. } => Some(source),
            QueueError::Spec(e) => Some(e),
            _ => None,
        }
    }
}

impl From<SpecError> for QueueError {
    fn from(e: SpecError) -> Self {
        QueueError::Spec(e)
    }
}

fn io_err(path: &Path, source: io::Error) -> QueueError {
    QueueError::Io {
        path: path.to_path_buf(),
        source,
    }
}

/// Live progress of a queue, derived from the directory contents.
#[derive(Debug, Clone, PartialEq)]
pub struct QueueStatus {
    pub total: usize,
    pub done: usize,
    pub quarantined: usize,
    pub leased: usize,
    /// Shards neither done nor quarantined (leased ones included).
    pub remaining: Vec<u32>,
}

impl QueueStatus {
    /// Nothing left to claim or wait for.
    pub fn settled(&self) -> bool {
        self.done + self.quarantined >= self.total
    }
}

/// Handle to a queue directory.
#[derive(Debug, Clone)]
pub struct WorkQueue {
    root: PathBuf,
}

const SUBDIRS: [&str; 5] = ["leases", "wip", "done", "quarantine", "crashes"];

impl WorkQueue {
    /// Initialize a queue for `spec` under `root`, partitioning its
    /// cells into shards of at most `shard_size`. If a manifest already
    /// exists the queue is **resumed**: the existing manifest must carry
    /// the same fingerprint (else [`QueueError::FingerprintMismatch`]),
    /// and its shard table — not a re-partition — stays authoritative.
    pub fn init(
        root: &Path,
        spec: &CampaignSpec,
        shard_size: usize,
    ) -> Result<(WorkQueue, QueueManifest), QueueError> {
        let fingerprint = spec.fingerprint()?;
        let queue = WorkQueue {
            root: root.to_path_buf(),
        };
        for sub in SUBDIRS {
            let dir = root.join(sub);
            std::fs::create_dir_all(&dir).map_err(|e| io_err(&dir, e))?;
        }
        let manifest_path = queue.manifest_path();
        if manifest_path.exists() {
            let (q, manifest) = WorkQueue::open(root)?;
            if manifest.fingerprint != fingerprint {
                return Err(QueueError::FingerprintMismatch {
                    path: manifest_path,
                    expected: fingerprint,
                    found: manifest.fingerprint,
                });
            }
            return Ok((q, manifest));
        }
        let manifest = QueueManifest {
            schema: QUEUE_SCHEMA,
            fingerprint,
            spec: spec.clone(),
            shards: crate::shard::partition(spec.cells.len(), shard_size),
        };
        queue.write_json(&manifest_path, &manifest)?;
        Ok((queue, manifest))
    }

    /// Open an existing queue, re-verifying that the manifest's recorded
    /// fingerprint still matches one recomputed from its spec — a worker
    /// must never run cells under a manifest whose identity drifted.
    pub fn open(root: &Path) -> Result<(WorkQueue, QueueManifest), QueueError> {
        let queue = WorkQueue {
            root: root.to_path_buf(),
        };
        let path = queue.manifest_path();
        let manifest: QueueManifest = queue
            .read_json(&path)?
            .ok_or_else(|| io_err(&path, io::Error::from(io::ErrorKind::NotFound)))?;
        if manifest.schema > QUEUE_SCHEMA {
            return Err(QueueError::UnsupportedSchema {
                path,
                schema: manifest.schema,
            });
        }
        let recomputed = manifest.spec.fingerprint()?;
        if recomputed != manifest.fingerprint {
            return Err(QueueError::FingerprintMismatch {
                path,
                expected: recomputed,
                found: manifest.fingerprint,
            });
        }
        Ok((queue, manifest))
    }

    pub fn root(&self) -> &Path {
        &self.root
    }

    pub fn manifest_path(&self) -> PathBuf {
        self.root.join("campaign.json")
    }

    fn shard_file(&self, sub: &str, id: u32, ext: &str) -> PathBuf {
        self.root.join(sub).join(format!("shard-{id:05}.{ext}"))
    }

    pub fn lease_path(&self, id: u32) -> PathBuf {
        self.shard_file("leases", id, "lease")
    }

    pub fn wip_path(&self, id: u32) -> PathBuf {
        self.shard_file("wip", id, "json")
    }

    pub fn done_path(&self, id: u32) -> PathBuf {
        self.shard_file("done", id, "json")
    }

    pub fn quarantine_path(&self, id: u32) -> PathBuf {
        self.shard_file("quarantine", id, "json")
    }

    fn crash_path(&self, id: u32) -> PathBuf {
        self.shard_file("crashes", id, "json")
    }

    // ------------------------------------------------------------------
    // claiming

    /// Atomically claim the first available shard, or `None` when every
    /// shard is done, quarantined or leased by someone else. `who` is
    /// recorded in the lease for diagnostics only.
    pub fn claim(&self, who: &str, shards: &[ShardSpec]) -> Result<Option<ShardSpec>, QueueError> {
        for shard in shards {
            if self.is_done(shard.id) || self.is_quarantined(shard.id) {
                continue;
            }
            let lease = self.lease_path(shard.id);
            match OpenOptions::new().write(true).create_new(true).open(&lease) {
                Ok(mut f) => {
                    // Best-effort diagnostics; the file's existence is
                    // the claim, its content is not load-bearing.
                    let _ = writeln!(f, "{who} pid={}", std::process::id());
                    let _ = f.sync_all();
                    // Close the check-then-act window: if the shard was
                    // completed or quarantined between our check and the
                    // create, surrender the lease immediately.
                    if self.is_done(shard.id) || self.is_quarantined(shard.id) {
                        self.release(shard.id);
                        continue;
                    }
                    return Ok(Some(*shard));
                }
                Err(e) if e.kind() == io::ErrorKind::AlreadyExists => continue,
                Err(e) => return Err(io_err(&lease, e)),
            }
        }
        Ok(None)
    }

    /// Drop a lease (worker finished with the shard, or the supervisor
    /// reclaims a dead worker's shard). Removing a nonexistent lease is
    /// a no-op — release must be idempotent across crash recovery.
    pub fn release(&self, id: u32) {
        let _ = std::fs::remove_file(self.lease_path(id));
    }

    pub fn is_leased(&self, id: u32) -> bool {
        self.lease_path(id).exists()
    }

    // ------------------------------------------------------------------
    // per-shard state

    /// Durable per-cell checkpoint of an in-progress shard.
    pub fn save_wip(&self, result: &ShardResult) -> Result<(), QueueError> {
        self.write_json(&self.wip_path(result.shard), result)
    }

    /// Load a wip ledger if present (caller validates it with
    /// [`ShardResult::is_resumable_prefix_of`]).
    pub fn load_wip(&self, id: u32) -> Result<Option<ShardResult>, QueueError> {
        self.read_json(&self.wip_path(id))
    }

    /// Finalize a shard: durably publish the ledger under `done/`, then
    /// clear the wip checkpoint and the lease. Ordering matters — once
    /// `done/` exists the shard can never be claimed again, so a crash
    /// between these steps only leaves harmless stale files.
    pub fn complete(&self, result: &ShardResult) -> Result<(), QueueError> {
        self.write_json(&self.done_path(result.shard), result)?;
        let _ = std::fs::remove_file(self.wip_path(result.shard));
        self.release(result.shard);
        Ok(())
    }

    pub fn is_done(&self, id: u32) -> bool {
        self.done_path(id).exists()
    }

    pub fn load_done(&self, id: u32) -> Result<Option<ShardResult>, QueueError> {
        self.read_json(&self.done_path(id))
    }

    /// Give up on a shard. Written **before** the dead worker's lease is
    /// released so no window exists in which another worker can claim a
    /// shard the supervisor has condemned.
    pub fn quarantine(&self, note: &QuarantineNote) -> Result<(), QueueError> {
        self.write_json(&self.quarantine_path(note.shard), note)?;
        let _ = std::fs::remove_file(self.wip_path(note.shard));
        Ok(())
    }

    pub fn is_quarantined(&self, id: u32) -> bool {
        self.quarantine_path(id).exists()
    }

    pub fn load_quarantine(&self, id: u32) -> Result<Option<QuarantineNote>, QueueError> {
        self.read_json(&self.quarantine_path(id))
    }

    /// Record one more crash against a shard; returns the new total.
    /// The counter is persistent, so a *resumed* campaign still counts a
    /// shard's earlier kills toward its quarantine threshold.
    pub fn note_crash(&self, id: u32) -> Result<u32, QueueError> {
        let path = self.crash_path(id);
        let crashes = self.crash_count(id)? + 1;
        self.write_json(&path, &CrashCount { crashes })?;
        Ok(crashes)
    }

    pub fn crash_count(&self, id: u32) -> Result<u32, QueueError> {
        Ok(self
            .read_json::<CrashCount>(&self.crash_path(id))?
            .map_or(0, |c| c.crashes))
    }

    /// Derive live progress from the directory contents.
    pub fn status(&self, manifest: &QueueManifest) -> QueueStatus {
        let mut status = QueueStatus {
            total: manifest.shards.len(),
            done: 0,
            quarantined: 0,
            leased: 0,
            remaining: Vec::new(),
        };
        for s in &manifest.shards {
            if self.is_done(s.id) {
                status.done += 1;
            } else if self.is_quarantined(s.id) {
                status.quarantined += 1;
            } else {
                if self.is_leased(s.id) {
                    status.leased += 1;
                }
                status.remaining.push(s.id);
            }
        }
        status
    }

    // ------------------------------------------------------------------
    // JSON plumbing

    fn write_json<T: Serialize>(&self, path: &Path, value: &T) -> Result<(), QueueError> {
        let text = serde_json::to_string_pretty(value).map_err(|e| QueueError::Corrupt {
            path: path.to_path_buf(),
            message: e.to_string(),
        })?;
        write_atomic(path, text.as_bytes()).map_err(|e| io_err(path, e))
    }

    fn read_json<T: serde::Deserialize>(&self, path: &Path) -> Result<Option<T>, QueueError> {
        let text = match std::fs::read_to_string(path) {
            Ok(t) => t,
            Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(None),
            Err(e) => return Err(io_err(path, e)),
        };
        serde_json::from_str(&text)
            .map(Some)
            .map_err(|e| QueueError::Corrupt {
                path: path.to_path_buf(),
                message: e.to_string(),
            })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::tiny_spec;

    fn tmp_root(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("noiselab-queue-{tag}"));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn init_partitions_and_reopen_agrees() {
        let root = tmp_root("init");
        let spec = tiny_spec();
        let (_, manifest) = WorkQueue::init(&root, &spec, 2).unwrap();
        assert_eq!(manifest.shards.len(), 2);
        assert_eq!(manifest.schema, QUEUE_SCHEMA);
        let (_, reopened) = WorkQueue::open(&root).unwrap();
        assert_eq!(manifest, reopened);
        // Re-init with the same spec resumes; a different spec refuses.
        let (_, resumed) = WorkQueue::init(&root, &spec, 3).unwrap();
        assert_eq!(resumed.shards, manifest.shards, "old partition stays");
        let mut other = spec.clone();
        other.seed_base += 1;
        let err = WorkQueue::init(&root, &other, 2).unwrap_err();
        assert!(
            matches!(err, QueueError::FingerprintMismatch { .. }),
            "{err}"
        );
        std::fs::remove_dir_all(&root).ok();
    }

    #[test]
    fn claim_is_exclusive_and_skips_done_and_quarantined() {
        let root = tmp_root("claim");
        let spec = tiny_spec();
        let (q, m) = WorkQueue::init(&root, &spec, 1).unwrap();
        assert_eq!(m.shards.len(), 4);
        let s0 = q.claim("w0", &m.shards).unwrap().unwrap();
        assert_eq!(s0.id, 0);
        let s1 = q.claim("w1", &m.shards).unwrap().unwrap();
        assert_eq!(s1.id, 1, "second claimant gets the next shard");
        // Complete shard 2, quarantine shard 3: nothing left to claim.
        let fp2 = m.shards[2].fingerprint(&m.fingerprint);
        let mut r2 = ShardResult::new(2, fp2);
        r2.finalize();
        q.complete(&r2).unwrap();
        q.quarantine(&QuarantineNote {
            shard: 3,
            crashes: 3,
            reason: "test".into(),
        })
        .unwrap();
        assert!(q.claim("w2", &m.shards).unwrap().is_none());
        // Release makes a shard claimable again.
        q.release(0);
        assert_eq!(q.claim("w2", &m.shards).unwrap().unwrap().id, 0);
        let st = q.status(&m);
        assert_eq!((st.done, st.quarantined, st.leased), (1, 1, 2));
        assert!(!st.settled());
        std::fs::remove_dir_all(&root).ok();
    }

    #[test]
    fn wip_complete_lifecycle_is_durable() {
        let root = tmp_root("wip");
        let spec = tiny_spec();
        let (q, m) = WorkQueue::init(&root, &spec, 2).unwrap();
        let shard = m.shards[0];
        let fp = shard.fingerprint(&m.fingerprint);
        let mut r = ShardResult::new(shard.id, fp);
        q.save_wip(&r).unwrap();
        assert!(!q.wip_path(shard.id).with_extension("tmp").exists());
        let loaded = q.load_wip(shard.id).unwrap().unwrap();
        assert!(loaded.is_resumable_prefix_of(&shard, fp));
        r.finalize();
        q.complete(&r).unwrap();
        assert!(q.is_done(shard.id));
        assert!(q.load_wip(shard.id).unwrap().is_none(), "wip cleared");
        assert!(!q.is_leased(shard.id), "lease cleared");
        assert_eq!(q.load_done(shard.id).unwrap().unwrap(), r);
        std::fs::remove_dir_all(&root).ok();
    }

    #[test]
    fn crash_counter_persists() {
        let root = tmp_root("crash");
        let spec = tiny_spec();
        let (q, _) = WorkQueue::init(&root, &spec, 2).unwrap();
        assert_eq!(q.crash_count(7).unwrap(), 0);
        assert_eq!(q.note_crash(7).unwrap(), 1);
        assert_eq!(q.note_crash(7).unwrap(), 2);
        // A fresh handle (new process) still sees the count.
        let (q2, _) = WorkQueue::open(&root).unwrap();
        assert_eq!(q2.crash_count(7).unwrap(), 2);
        std::fs::remove_dir_all(&root).ok();
    }

    #[test]
    fn corrupt_manifest_is_a_typed_error() {
        let root = tmp_root("corrupt");
        std::fs::create_dir_all(&root).unwrap();
        std::fs::write(root.join("campaign.json"), "{nope").unwrap();
        let err = WorkQueue::open(&root).unwrap_err();
        assert!(matches!(err, QueueError::Corrupt { .. }), "{err}");
        assert!(err.to_string().contains("campaign.json"), "{err}");
        std::fs::remove_dir_all(&root).ok();
    }
}
