//! Worker → supervisor stream protocol: one framed JSON message per
//! line on the worker's stdout.
//!
//! Frames are ordinary lines prefixed with [`FRAME_PREFIX`]; anything
//! else on stdout passes through untouched (workload prints, stray
//! diagnostics), so the protocol coexists with arbitrary output.
//! Every frame doubles as a **heartbeat** — the supervisor resets a
//! worker's liveness clock on any frame, which is why workers emit
//! `CellDone` eagerly (and flushed: a piped stdout is block-buffered,
//! and an unflushed frame is an unreported heartbeat).
//!
//! The frame format is versioned in the prefix itself (`@nlshard1`);
//! a future v2 changes the prefix and old supervisors simply pass the
//! unknown lines through instead of misparsing them.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Line prefix marking a protocol frame (version 1), trailing space
/// included.
pub const FRAME_PREFIX: &str = "@nlshard1 ";

/// Messages a worker streams while executing shards.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum WorkerMsg {
    /// First frame after startup.
    Hello { worker: String, pid: u32 },
    /// A shard lease was won.
    Claimed { worker: String, shard: u32 },
    /// One cell finished (and its wip checkpoint is durable).
    CellDone {
        shard: u32,
        index: usize,
        label: String,
        ok: u64,
        failed: u64,
        stream_hash: u64,
    },
    /// A shard ledger was finalized into `done/`.
    ShardDone { shard: u32, hash: u64, cells: u64 },
    /// No claimable shards remain; the worker is about to exit 0.
    Idle { worker: String },
    /// The worker hit a fatal error and is about to exit nonzero.
    Fault { shard: Option<u32>, message: String },
}

/// A line that carried the frame prefix but not a valid frame — typed,
/// with the byte offset of the first bad input inside the payload.
#[derive(Debug, Clone, PartialEq)]
pub struct FrameError {
    /// Byte offset into the *line* (prefix included) when known.
    pub offset: Option<usize>,
    pub message: String,
}

impl fmt::Display for FrameError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "bad worker frame")?;
        if let Some(o) = self.offset {
            write!(f, " at byte {o}")?;
        }
        write!(f, ": {}", self.message)
    }
}

impl std::error::Error for FrameError {}

/// Encode a message as a frame line (no trailing newline).
pub fn frame(msg: &WorkerMsg) -> String {
    // audit:allow(panic-path): serializing WorkerMsg cannot fail; a panic here is a protocol-definition bug, not an I/O condition
    let json = serde_json::to_string(msg).expect("WorkerMsg serializes");
    format!("{FRAME_PREFIX}{json}")
}

/// Decode one stdout line. `Ok(None)` for ordinary (non-frame) lines,
/// `Err` only for lines that claim to be frames and fail to parse.
pub fn parse_frame(line: &str) -> Result<Option<WorkerMsg>, FrameError> {
    let Some(payload) = line.strip_prefix(FRAME_PREFIX) else {
        return Ok(None);
    };
    serde_json::from_str::<WorkerMsg>(payload)
        .map(Some)
        .map_err(|e| FrameError {
            offset: e.offset().map(|o| o + FRAME_PREFIX.len()),
            message: e.to_string(),
        })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_variants_round_trip() {
        let msgs = [
            WorkerMsg::Hello {
                worker: "w0".into(),
                pid: 4242,
            },
            WorkerMsg::Claimed {
                worker: "w0".into(),
                shard: 3,
            },
            WorkerMsg::CellDone {
                shard: 3,
                index: 17,
                label: "Rm-OMP".into(),
                ok: 30,
                failed: 2,
                stream_hash: u64::MAX,
            },
            WorkerMsg::ShardDone {
                shard: 3,
                hash: 0xDEAD_BEEF,
                cells: 4,
            },
            WorkerMsg::Idle {
                worker: "w0".into(),
            },
            WorkerMsg::Fault {
                shard: None,
                message: "queue vanished".into(),
            },
        ];
        for msg in &msgs {
            let line = frame(msg);
            assert!(line.starts_with(FRAME_PREFIX));
            assert!(!line.contains('\n'), "frames are single lines");
            assert_eq!(parse_frame(&line).unwrap().as_ref(), Some(msg));
        }
    }

    #[test]
    fn ordinary_lines_pass_through() {
        assert_eq!(parse_frame("plain workload output").unwrap(), None);
        assert_eq!(parse_frame("").unwrap(), None);
        // Near-miss prefixes are not frames either.
        assert_eq!(parse_frame("@nlshard2 {}").unwrap(), None);
    }

    #[test]
    fn corrupt_frames_are_typed_errors_with_offsets() {
        let err = parse_frame("@nlshard1 {\"Hello\": {").unwrap_err();
        assert!(err.offset.is_some(), "syntax errors carry offsets");
        assert!(err.offset.unwrap() >= FRAME_PREFIX.len());
        assert!(err.to_string().contains("at byte"), "{err}");
        // Wrong shape (valid JSON) still errors, just without offset.
        assert!(parse_frame("@nlshard1 {\"NoSuchVariant\": {}}").is_err());
    }
}
