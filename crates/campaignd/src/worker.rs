//! The worker loop: claim a shard, execute its cells through the exact
//! single-process [`noiselab_core::run_cell`] path, checkpoint after
//! every cell, publish the finalized ledger, repeat until the queue is
//! drained.
//!
//! A worker is deliberately stateless between claims — everything it
//! knows is re-derived from the queue manifest, so a replacement worker
//! spawned after a SIGKILL resumes a half-done shard from its wip
//! checkpoint at cell granularity and produces the byte-identical
//! ledger the dead worker would have.

use crate::proto::{frame, WorkerMsg};
use crate::queue::WorkQueue;
use crate::shard::{IndexedCell, ShardResult};
use std::io::Write;
use std::path::PathBuf;

/// Test/chaos hook: a worker that claims the shard id named by this
/// environment variable aborts on the spot (raising SIGABRT — from the
/// supervisor's point of view, indistinguishable from a crash). The
/// quarantine tests use it to make one shard lethal deterministically.
pub const CRASH_SHARD_ENV: &str = "NOISELAB_WORKER_CRASH_SHARD";

/// What a worker process needs to start.
#[derive(Debug, Clone)]
pub struct WorkerConfig {
    /// Queue root directory.
    pub queue: PathBuf,
    /// Identity recorded in leases and frames (diagnostics only).
    pub worker_id: String,
}

/// Write one protocol frame, flushed — a piped stdout is block-buffered
/// and every frame is a heartbeat, so buffering a frame is lying to the
/// supervisor's liveness clock. A write failure means the supervisor
/// went away (EPIPE); the worker winds down rather than running
/// unsupervised.
fn emit(msg: &WorkerMsg) -> Result<(), String> {
    let line = frame(msg);
    let mut out = std::io::stdout().lock();
    out.write_all(line.as_bytes())
        .and_then(|_| out.write_all(b"\n"))
        .and_then(|_| out.flush())
        .map_err(|e| format!("worker stdout closed: {e}"))
}

/// Entry point of the hidden `campaign-worker` subcommand. Exits `Ok`
/// when the queue has nothing left to claim; a final `Fault` frame is
/// emitted (best effort) before any error return.
pub fn worker_main(cfg: &WorkerConfig) -> Result<(), String> {
    run(cfg).inspect_err(|e| {
        let _ = emit(&WorkerMsg::Fault {
            shard: None,
            message: e.clone(),
        });
    })
}

fn run(cfg: &WorkerConfig) -> Result<(), String> {
    let (queue, manifest) = WorkQueue::open(&cfg.queue).map_err(|e| e.to_string())?;
    let resolved = manifest.spec.resolve().map_err(|e| e.to_string())?;
    let plan = manifest.spec.plan(&resolved);
    let crash_shard: Option<u32> = std::env::var(CRASH_SHARD_ENV)
        .ok()
        .and_then(|v| v.parse().ok());
    emit(&WorkerMsg::Hello {
        worker: cfg.worker_id.clone(),
        pid: std::process::id(),
    })?;

    while let Some(shard) = queue
        .claim(&cfg.worker_id, &manifest.shards)
        .map_err(|e| e.to_string())?
    {
        emit(&WorkerMsg::Claimed {
            worker: cfg.worker_id.clone(),
            shard: shard.id,
        })?;
        if crash_shard == Some(shard.id) {
            // Crash as abruptly as a SIGKILL would: no unwinding, no
            // lease release, wip left as-is.
            std::process::abort();
        }

        let fingerprint = shard.fingerprint(&manifest.fingerprint);
        let mut result = match queue.load_wip(shard.id) {
            Ok(Some(r)) if r.is_resumable_prefix_of(&shard, fingerprint) => {
                eprintln!(
                    "noiselab: worker {}: resuming shard {} from cell {}/{}",
                    cfg.worker_id,
                    shard.id,
                    r.cells.len(),
                    shard.len
                );
                r
            }
            Ok(Some(_)) => {
                eprintln!(
                    "noiselab: worker {}: shard {} wip belongs to a different \
                     campaign or geometry; restarting the shard",
                    cfg.worker_id, shard.id
                );
                ShardResult::new(shard.id, fingerprint)
            }
            Ok(None) => ShardResult::new(shard.id, fingerprint),
            Err(e) => {
                // A corrupt wip checkpoint (torn by a host crash sworn
                // impossible, or hand-edited) costs a shard restart,
                // never the campaign.
                eprintln!(
                    "noiselab: worker {}: {e}; restarting the shard",
                    cfg.worker_id
                );
                ShardResult::new(shard.id, fingerprint)
            }
        };

        for i in shard.cell_indices().skip(result.cells.len()) {
            let (label, cell_cfg) = &plan.cells[i];
            let record = noiselab_core::run_cell(&plan, i, label, cell_cfg);
            let done = WorkerMsg::CellDone {
                shard: shard.id,
                index: i,
                label: label.clone(),
                ok: record.samples.len() as u64,
                failed: record.failures.len() as u64,
                stream_hash: record.stream_hash,
            };
            result.cells.push(IndexedCell { index: i, record });
            // Checkpoint before the frame: `CellDone` promises the cell
            // is durable, so a kill right after the frame loses nothing.
            queue.save_wip(&result).map_err(|e| e.to_string())?;
            emit(&done)?;
        }

        result.finalize();
        queue.complete(&result).map_err(|e| e.to_string())?;
        emit(&WorkerMsg::ShardDone {
            shard: shard.id,
            hash: result.hash,
            cells: result.cells.len() as u64,
        })?;
    }

    emit(&WorkerMsg::Idle {
        worker: cfg.worker_id.clone(),
    })?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::queue::QuarantineNote;
    use crate::spec::tiny_spec;

    #[test]
    fn in_process_worker_drains_queue_and_skips_quarantined() {
        let root = std::env::temp_dir().join("noiselab-worker-unit");
        let _ = std::fs::remove_dir_all(&root);
        let spec = tiny_spec();
        let (queue, manifest) = WorkQueue::init(&root, &spec, 1).unwrap();
        // Quarantine one shard up front: the worker must leave it alone.
        queue
            .quarantine(&QuarantineNote {
                shard: 2,
                crashes: 3,
                reason: "pre-quarantined".into(),
            })
            .unwrap();
        let cfg = WorkerConfig {
            queue: root.clone(),
            worker_id: "unit".into(),
        };
        worker_main(&cfg).unwrap();
        let status = queue.status(&manifest);
        assert!(status.settled());
        assert_eq!((status.done, status.quarantined), (3, 1));
        // Ledgers hold the right cells with verifiable hashes.
        for shard in &manifest.shards {
            if shard.id == 2 {
                continue;
            }
            let r = queue.load_done(shard.id).unwrap().unwrap();
            assert_eq!(r.cells.len(), shard.len);
            assert_eq!(r.hash, r.fold_hash());
            assert_eq!(r.fingerprint, shard.fingerprint(&manifest.fingerprint));
        }
        std::fs::remove_dir_all(&root).ok();
    }

    #[test]
    fn wip_resume_completes_a_half_done_shard_identically() {
        let spec = tiny_spec();
        // Reference: a full run in one pass.
        let ref_root = std::env::temp_dir().join("noiselab-worker-ref");
        let _ = std::fs::remove_dir_all(&ref_root);
        let (ref_q, _) = WorkQueue::init(&ref_root, &spec, 4).unwrap();
        worker_main(&WorkerConfig {
            queue: ref_root.clone(),
            worker_id: "ref".into(),
        })
        .unwrap();
        let reference = ref_q.load_done(0).unwrap().unwrap();

        // Interrupted: run the full queue once, then surgically rewind
        // the shard to a 2-cell wip prefix and let a "replacement"
        // worker finish it.
        let root = std::env::temp_dir().join("noiselab-worker-resume");
        let _ = std::fs::remove_dir_all(&root);
        let (queue, _) = WorkQueue::init(&root, &spec, 4).unwrap();
        worker_main(&WorkerConfig {
            queue: root.clone(),
            worker_id: "first".into(),
        })
        .unwrap();
        let full = queue.load_done(0).unwrap().unwrap();
        let mut half = full.clone();
        half.cells.truncate(2);
        half.hash = 0;
        queue.save_wip(&half).unwrap();
        std::fs::remove_file(queue.done_path(0)).unwrap();
        worker_main(&WorkerConfig {
            queue: root.clone(),
            worker_id: "second".into(),
        })
        .unwrap();
        let resumed = queue.load_done(0).unwrap().unwrap();
        assert_eq!(resumed, full, "resume is bit-identical to one pass");
        assert_eq!(resumed, reference, "and to an independent queue");
        std::fs::remove_dir_all(&ref_root).ok();
        std::fs::remove_dir_all(&root).ok();
    }
}
