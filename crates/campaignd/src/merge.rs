//! Deterministic merge: fold a drained queue's shard ledgers back into
//! one [`CampaignState`], independent of who executed what when.
//!
//! The merge iterates shards in **manifest order** (ascending id) and
//! each ledger's cells in ascending index order — never in completion
//! order. Everything order-sensitive downstream (gauge averaging in the
//! metrics merge, the state hash, the serialized bytes) therefore sees
//! the canonical order regardless of how claims interleaved, which is
//! what makes a 4-worker chaos-ridden campaign byte-identical to the
//! single-process driver.
//!
//! Trust, but verify: before a ledger is folded in, its recorded shard
//! fingerprint is checked against one recomputed from the manifest
//! (fingerprint-v2 contract), its fold hash is recomputed from its
//! cells, and its cell coverage must be exactly the shard's index
//! range. A ledger that fails any check poisons the merge with a typed
//! error instead of quietly producing a plausible-looking state.

use crate::queue::{QueueError, WorkQueue};
use noiselab_core::{CampaignState, CellKey, QuarantineRecord};
use noiselab_kernel::sanitize::fnv1a_extend;
use noiselab_telemetry::MetricsSnapshot;
use std::fmt;
use std::path::Path;

/// Why shard ledgers could not be merged.
#[derive(Debug)]
pub enum MergeError {
    Queue(QueueError),
    /// Some shards are neither done nor quarantined.
    Incomplete {
        missing: Vec<u32>,
    },
    /// A ledger's recorded fingerprint is not this campaign's shard.
    ShardFingerprint {
        shard: u32,
        expected: u64,
        found: u64,
    },
    /// A ledger's recorded fold hash disagrees with its cells.
    HashMismatch {
        shard: u32,
        recorded: u64,
        recomputed: u64,
    },
    /// A ledger does not cover exactly its shard's cell range.
    Coverage {
        shard: u32,
        message: String,
    },
}

impl fmt::Display for MergeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MergeError::Queue(e) => write!(f, "{e}"),
            MergeError::Incomplete { missing } => write!(
                f,
                "cannot merge: {} shard(s) still pending: {missing:?}",
                missing.len()
            ),
            MergeError::ShardFingerprint {
                shard,
                expected,
                found,
            } => write!(
                f,
                "shard {shard} ledger fingerprint {found:016x} != expected \
                 {expected:016x}; it belongs to a different campaign or geometry"
            ),
            MergeError::HashMismatch {
                shard,
                recorded,
                recomputed,
            } => write!(
                f,
                "shard {shard} ledger hash {recorded:016x} != recomputed \
                 {recomputed:016x}; the ledger was corrupted after finalization"
            ),
            MergeError::Coverage { shard, message } => {
                write!(f, "shard {shard} ledger coverage: {message}")
            }
        }
    }
}

impl std::error::Error for MergeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            MergeError::Queue(e) => Some(e),
            _ => None,
        }
    }
}

impl From<QueueError> for MergeError {
    fn from(e: QueueError) -> Self {
        MergeError::Queue(e)
    }
}

/// Merge a settled queue into one campaign state. Quarantined shards
/// contribute a [`QuarantineRecord`] naming their cells; every other
/// shard must have a verified `done/` ledger.
pub fn merge_queue(root: &Path) -> Result<CampaignState, MergeError> {
    let (queue, manifest) = WorkQueue::open(root)?;
    let mut state = CampaignState::new(manifest.fingerprint.clone());
    let mut missing = Vec::new();

    for shard in &manifest.shards {
        if let Some(ledger) = queue.load_done(shard.id)? {
            let expected = shard.fingerprint(&manifest.fingerprint);
            if ledger.fingerprint != expected {
                return Err(MergeError::ShardFingerprint {
                    shard: shard.id,
                    expected,
                    found: ledger.fingerprint,
                });
            }
            let recomputed = ledger.fold_hash();
            if ledger.hash != recomputed {
                return Err(MergeError::HashMismatch {
                    shard: shard.id,
                    recorded: ledger.hash,
                    recomputed,
                });
            }
            let got: Vec<usize> = ledger.cells.iter().map(|c| c.index).collect();
            let want: Vec<usize> = shard.cell_indices().collect();
            if got != want {
                return Err(MergeError::Coverage {
                    shard: shard.id,
                    message: format!("ledger covers {got:?}, shard owns {want:?}"),
                });
            }
            // Cells within a ledger are already in ascending index
            // order, and shards are visited in ascending id order over
            // disjoint ranges — the concatenation is the canonical
            // single-process cell order.
            state
                .cells
                .extend(ledger.cells.into_iter().map(|c| c.record));
        } else if let Some(note) = queue.load_quarantine(shard.id)? {
            state.quarantined.push(QuarantineRecord {
                shard: shard.id,
                cells: shard
                    .cell_indices()
                    .map(|i| CellKey {
                        label: manifest.spec.cells[i].label.clone(),
                        seed: manifest.spec.cell_seed(i),
                    })
                    .collect(),
                crashes: note.crashes,
                reason: note.reason,
            });
        } else {
            missing.push(shard.id);
        }
    }
    if !missing.is_empty() {
        return Err(MergeError::Incomplete { missing });
    }
    Ok(state)
}

/// Aggregate the per-cell metrics of a merged state, folding in
/// canonical (stored) cell order — the gauge averages in
/// [`MetricsSnapshot::merge`] are weighted means and therefore
/// order-sensitive, so the fold order is part of the bit-identity
/// contract.
pub fn merged_metrics(state: &CampaignState) -> MetricsSnapshot {
    let mut merged = MetricsSnapshot::default();
    for cell in &state.cells {
        merged.merge(&cell.metrics);
    }
    merged
}

/// One-number identity of a merged campaign: FNV-1a over the
/// fingerprint, every cell's (label, seed, stream hash, sample bits,
/// attempts, failure count) and every quarantine record. Printed by the
/// CLI and compared by the chaos gate — two runs of the same campaign
/// must agree here no matter how execution was distributed.
pub fn state_hash(state: &CampaignState) -> u64 {
    let mut h = fnv1a_extend(0xcbf2_9ce4_8422_2325, state.fingerprint.as_bytes());
    for cell in &state.cells {
        h = fnv1a_extend(h, cell.key.label.as_bytes());
        h = fnv1a_extend(h, &cell.key.seed.to_le_bytes());
        h = fnv1a_extend(h, &cell.stream_hash.to_le_bytes());
        for s in &cell.samples {
            h = fnv1a_extend(h, &s.to_bits().to_le_bytes());
        }
        h = fnv1a_extend(h, &cell.attempts.to_le_bytes());
        h = fnv1a_extend(h, &(cell.failures.len() as u64).to_le_bytes());
    }
    for q in &state.quarantined {
        h = fnv1a_extend(h, &q.shard.to_le_bytes());
        h = fnv1a_extend(h, &q.crashes.to_le_bytes());
        h = fnv1a_extend(h, q.reason.as_bytes());
        for k in &q.cells {
            h = fnv1a_extend(h, k.label.as_bytes());
            h = fnv1a_extend(h, &k.seed.to_le_bytes());
        }
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::queue::QuarantineNote;
    use crate::spec::tiny_spec;
    use crate::worker::{worker_main, WorkerConfig};
    use noiselab_core::run_campaign;
    use std::path::PathBuf;

    fn drained_queue(tag: &str, shard_size: usize) -> (WorkQueue, PathBuf) {
        let root = std::env::temp_dir().join(format!("noiselab-merge-{tag}"));
        let _ = std::fs::remove_dir_all(&root);
        let (queue, _) = WorkQueue::init(&root, &tiny_spec(), shard_size).unwrap();
        worker_main(&WorkerConfig {
            queue: root.clone(),
            worker_id: format!("merge-{tag}"),
        })
        .unwrap();
        (queue, root)
    }

    #[test]
    fn merged_state_equals_single_process_campaign() {
        let (_, root) = drained_queue("equal", 1);
        let merged = merge_queue(&root).unwrap();

        let spec = tiny_spec();
        let resolved = spec.resolve().unwrap();
        let single = run_campaign(&spec.plan(&resolved)).unwrap();
        assert_eq!(merged, single, "sharded == single-process, bit for bit");
        assert_eq!(
            serde_json::to_string_pretty(&merged).unwrap(),
            serde_json::to_string_pretty(&single).unwrap()
        );
        assert_eq!(state_hash(&merged), state_hash(&single));
        assert_eq!(
            merged_metrics(&merged).render(),
            merged_metrics(&single).render()
        );
        std::fs::remove_dir_all(&root).ok();
    }

    #[test]
    fn shard_size_does_not_change_the_merge() {
        let (_, r1) = drained_queue("size1", 1);
        let (_, r3) = drained_queue("size3", 3);
        let a = merge_queue(&r1).unwrap();
        let b = merge_queue(&r3).unwrap();
        assert_eq!(a, b, "partitioning is invisible in the result");
        std::fs::remove_dir_all(&r1).ok();
        std::fs::remove_dir_all(&r3).ok();
    }

    #[test]
    fn quarantined_shards_become_named_records() {
        let root = std::env::temp_dir().join("noiselab-merge-quarantine");
        let _ = std::fs::remove_dir_all(&root);
        let spec = tiny_spec();
        let (queue, manifest) = WorkQueue::init(&root, &spec, 1).unwrap();
        queue
            .quarantine(&QuarantineNote {
                shard: 1,
                crashes: 3,
                reason: "worker died 3 times".into(),
            })
            .unwrap();
        worker_main(&WorkerConfig {
            queue: root.clone(),
            worker_id: "q".into(),
        })
        .unwrap();
        let merged = merge_queue(&root).unwrap();
        assert_eq!(merged.cells.len(), 3);
        assert_eq!(merged.quarantined.len(), 1);
        let q = &merged.quarantined[0];
        assert_eq!(q.cells.len(), 1);
        assert_eq!(q.cells[0].label, spec.cells[1].label);
        assert_eq!(q.cells[0].seed, spec.cell_seed(1));
        let report = merged.report(spec.cells.len());
        assert!(report.complete, "quarantine degrades, never aborts");
        assert_eq!(report.quarantined.len(), 1);
        let _ = manifest;
        std::fs::remove_dir_all(&root).ok();
    }

    #[test]
    fn tampered_ledger_poisons_the_merge() {
        let (queue, root) = drained_queue("tamper", 2);
        let mut ledger = queue.load_done(0).unwrap().unwrap();
        ledger.cells[0].record.stream_hash ^= 1;
        // Re-save with the stale hash: merge must recompute and refuse.
        queue.complete(&ledger).unwrap();
        let err = merge_queue(&root).unwrap_err();
        assert!(
            matches!(err, MergeError::HashMismatch { shard: 0, .. }),
            "{err}"
        );
        std::fs::remove_dir_all(&root).ok();
    }

    #[test]
    fn incomplete_queue_names_missing_shards() {
        let root = std::env::temp_dir().join("noiselab-merge-incomplete");
        let _ = std::fs::remove_dir_all(&root);
        let (_, _) = WorkQueue::init(&root, &tiny_spec(), 2).unwrap();
        let err = merge_queue(&root).unwrap_err();
        assert!(
            matches!(&err, MergeError::Incomplete { missing } if missing == &vec![0, 1]),
            "{err}"
        );
        std::fs::remove_dir_all(&root).ok();
    }
}
