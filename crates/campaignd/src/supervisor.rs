//! The supervisor: spawn and babysit worker OS processes until the
//! queue settles, then merge.
//!
//! Supervision is intentionally on the *other* side of the determinism
//! contract: heartbeats, timeouts, backoff and chaos kills all read the
//! host wall clock (annotated below), because they govern only **when
//! and by whom** cells are executed — never what they compute. The
//! merged result is checked against per-shard fingerprints and fold
//! hashes, so scheduling mess cannot silently leak into measurements.
//!
//! Failure policy:
//! * a worker that dies holding a shard gets its lease reclaimed and
//!   the shard's persistent crash counter bumped;
//! * the slot respawns under exponential backoff (capped), so a
//!   fast-crashing binary cannot fork-bomb the host;
//! * a shard whose crash count reaches `max_shard_crashes` is
//!   **quarantined** — written durably *before* the lease release so no
//!   other worker can claim it in the gap — and the campaign completes
//!   without it, reporting the lost cells by name;
//! * chaos kills (`chaos_kills > 0`) SIGKILL a worker right after a
//!   `CellDone` on a shard with cells still pending — reliably
//!   mid-shard — and deliberately do **not** count toward quarantine:
//!   they assert crash *recovery*, not shard toxicity.

use crate::merge::{merge_queue, state_hash};
use crate::proto::{parse_frame, WorkerMsg};
use crate::queue::{QuarantineNote, QueueManifest, WorkQueue};
use crate::shard::ShardSpec;
use noiselab_core::CampaignState;
use std::io::BufRead;
use std::path::Path;
use std::process::{Child, Command, Stdio};
use std::sync::mpsc;
use std::time::{Duration, Instant};

/// Knobs of the supervision loop. Defaults suit multi-minute shards;
/// tests and the chaos gate shrink every timeout.
#[derive(Debug, Clone)]
pub struct SupervisorConfig {
    /// Worker process slots (>= 1).
    pub workers: usize,
    /// Kill a worker whose last frame is older than this — frames are
    /// per-cell, so this must exceed the slowest single cell.
    pub heartbeat_timeout: Duration,
    /// Kill a worker that has held one shard longer than this.
    pub shard_timeout: Duration,
    /// Crash count at which a shard is quarantined.
    pub max_shard_crashes: u32,
    /// Base of the per-slot exponential respawn backoff.
    pub respawn_backoff: Duration,
    /// Ceiling of the respawn backoff.
    pub backoff_cap: Duration,
    /// Give up on a slot after this many crash respawns.
    pub max_respawns_per_slot: u32,
    /// Chaos mode: SIGKILL this many workers, each right after a
    /// `CellDone` that leaves its shard unfinished.
    pub chaos_kills: u32,
}

impl Default for SupervisorConfig {
    fn default() -> Self {
        SupervisorConfig {
            workers: 4,
            heartbeat_timeout: Duration::from_secs(120),
            shard_timeout: Duration::from_secs(3600),
            max_shard_crashes: 3,
            respawn_backoff: Duration::from_millis(100),
            backoff_cap: Duration::from_secs(5),
            max_respawns_per_slot: 16,
            chaos_kills: 0,
        }
    }
}

/// What a supervised campaign produced.
#[derive(Debug)]
pub struct SupervisedReport {
    /// The merged, fingerprint-verified state.
    pub state: CampaignState,
    /// [`state_hash`] of `state` — the number the chaos gate compares.
    pub state_hash: u64,
    pub spawned: u32,
    /// Unplanned worker deaths (chaos kills excluded).
    pub crashes: u32,
    pub chaos_kills: u32,
    /// Heartbeat/shard-timeout kills (included in `crashes`).
    pub timeouts: u32,
    pub quarantined_shards: Vec<u32>,
}

impl SupervisedReport {
    /// The supervisor's health record as `campaignd.*` counters, in
    /// sorted name order (the invariant `MetricsSnapshot` keeps
    /// everywhere else). The CLI folds this into the saved checkpoint
    /// *after* the deterministic merge so `noiselab metrics` and
    /// `noiselab advise` can read respawn/timeout/chaos/quarantine
    /// history without scraping stderr or crash-counter files. The
    /// quarantined-cell *names* already live in `state.quarantined`;
    /// these counters carry the magnitudes.
    pub fn health_metrics(&self) -> noiselab_telemetry::MetricsSnapshot {
        let lost_cells: usize = self.state.quarantined.iter().map(|q| q.cells.len()).sum();
        let counters = vec![
            ("campaignd.chaos_kills", u64::from(self.chaos_kills)),
            ("campaignd.heartbeat_timeouts", u64::from(self.timeouts)),
            ("campaignd.lost_cells", lost_cells as u64),
            (
                "campaignd.quarantined_shards",
                self.quarantined_shards.len() as u64,
            ),
            ("campaignd.worker_crashes", u64::from(self.crashes)),
            ("campaignd.workers_spawned", u64::from(self.spawned)),
        ];
        noiselab_telemetry::MetricsSnapshot {
            runs: 0,
            counters: counters
                .into_iter()
                .map(|(name, value)| noiselab_telemetry::CounterEntry {
                    name: name.to_string(),
                    value,
                })
                .collect(),
            gauges: Vec::new(),
            histograms: Vec::new(),
        }
    }
}

/// Wall-clock read for supervision timing only; results never flow into
/// simulated data. The single annotated site the whole module uses.
fn now() -> Instant {
    Instant::now() // audit:allow(wall-clock): process supervision (heartbeats, timeouts, backoff) is host-time by nature; simulated results never depend on it
}

enum Event {
    Frame(usize, WorkerMsg),
    Bad(usize, String),
    Raw(String),
}

struct Slot {
    child: Option<Child>,
    generation: u32,
    respawns: u32,
    eligible_at: Instant,
    last_frame: Instant,
    shard: Option<u32>,
    shard_since: Instant,
    /// Set when *we* killed the child (chaos), so its death is not
    /// charged against the shard.
    chaos_killed: bool,
    /// Reason to record if this child's death quarantines its shard.
    kill_reason: Option<String>,
}

impl Slot {
    fn new(t: Instant) -> Slot {
        Slot {
            child: None,
            generation: 0,
            respawns: 0,
            eligible_at: t,
            last_frame: t,
            shard: None,
            shard_since: t,
            chaos_killed: false,
            kill_reason: None,
        }
    }
}

fn backoff(cfg: &SupervisorConfig, respawns: u32) -> Duration {
    let factor = 1u32 << respawns.min(10);
    (cfg.respawn_backoff * factor).min(cfg.backoff_cap)
}

fn spawn_worker(
    binary: &Path,
    queue_root: &Path,
    slot_idx: usize,
    generation: u32,
    tx: &mpsc::Sender<Event>,
) -> Result<Child, String> {
    let worker_id = format!("w{slot_idx}.{generation}");
    let mut child = Command::new(binary)
        .arg("campaign-worker")
        .arg("--queue")
        .arg(queue_root)
        .arg("--id")
        .arg(&worker_id)
        .stdout(Stdio::piped())
        .stderr(Stdio::inherit())
        .spawn()
        .map_err(|e| format!("cannot spawn worker {}: {e}", binary.display()))?;
    let stdout = child
        .stdout
        .take()
        .ok_or_else(|| "worker spawned without piped stdout".to_string())?;
    let tx = tx.clone();
    // One reader thread per worker pipe; it dies with the pipe. Host
    // threads here schedule OS processes — nothing simulated runs on
    // them.
    std::thread::spawn(move || {
        let reader = std::io::BufReader::new(stdout);
        for line in reader.lines() {
            let Ok(line) = line else { break };
            let event = match parse_frame(&line) {
                Ok(Some(msg)) => Event::Frame(slot_idx, msg),
                Ok(None) => Event::Raw(line),
                Err(e) => Event::Bad(slot_idx, e.to_string()),
            };
            if tx.send(event).is_err() {
                break;
            }
        }
    });
    Ok(child)
}

/// Run a full sharded campaign: supervise `cfg.workers` processes of
/// `binary` against the queue at `queue_root` until every shard is done
/// or quarantined, then verify-merge. The queue must already be
/// initialized; exactly one supervisor may own a queue at a time.
pub fn run_supervised(
    binary: &Path,
    queue_root: &Path,
    cfg: &SupervisorConfig,
) -> Result<SupervisedReport, String> {
    if cfg.workers == 0 {
        return Err("supervisor needs at least one worker slot".into());
    }
    let (queue, manifest) = WorkQueue::open(queue_root).map_err(|e| e.to_string())?;

    // Reclaim orphan leases from a previous, killed supervisor: leases
    // held by live workers can only be our own children, and we have
    // none yet.
    for shard in &manifest.shards {
        if queue.is_leased(shard.id) && !queue.is_done(shard.id) {
            eprintln!(
                "noiselab: supervisor: reclaiming orphan lease on shard {}",
                shard.id
            );
            queue.release(shard.id);
        }
    }

    let (tx, rx) = mpsc::channel::<Event>();
    let t0 = now();
    let mut slots: Vec<Slot> = (0..cfg.workers).map(|_| Slot::new(t0)).collect();
    let mut report = SupervisedReport {
        state: CampaignState::new(manifest.fingerprint.clone()),
        state_hash: 0,
        spawned: 0,
        crashes: 0,
        chaos_kills: 0,
        timeouts: 0,
        quarantined_shards: Vec::new(),
    };
    let mut chaos_remaining = cfg.chaos_kills;

    let loop_result = supervise_loop(
        binary,
        &queue,
        &manifest,
        cfg,
        &tx,
        &rx,
        &mut slots,
        &mut report,
        &mut chaos_remaining,
    );
    // Never leave children behind, least of all on an error path.
    for slot in &mut slots {
        if let Some(child) = &mut slot.child {
            let _ = child.kill();
            let _ = child.wait();
        }
    }
    loop_result?;

    let state = merge_queue(queue_root).map_err(|e| e.to_string())?;
    report.state_hash = state_hash(&state);
    report.state = state;
    Ok(report)
}

#[allow(clippy::too_many_arguments)]
fn supervise_loop(
    binary: &Path,
    queue: &WorkQueue,
    manifest: &QueueManifest,
    cfg: &SupervisorConfig,
    tx: &mpsc::Sender<Event>,
    rx: &mpsc::Receiver<Event>,
    slots: &mut [Slot],
    report: &mut SupervisedReport,
    chaos_remaining: &mut u32,
) -> Result<(), String> {
    let shard_by_id =
        |id: u32| -> Option<&ShardSpec> { manifest.shards.iter().find(|s| s.id == id) };

    loop {
        let status = queue.status(manifest);
        let live = slots.iter().filter(|s| s.child.is_some()).count();
        if status.settled() && live == 0 {
            return Ok(());
        }

        // Spawn into idle slots while there is unclaimed work no live
        // worker is presumed to pick up. Children that have not claimed
        // yet count as presumptive claimants so a burst of spawns does
        // not overshoot the queue.
        if !status.settled() {
            let presumptive = slots
                .iter()
                .filter(|s| s.child.is_some() && s.shard.is_none())
                .count();
            let mut open = status
                .remaining
                .len()
                .saturating_sub(status.leased)
                .saturating_sub(presumptive);
            let t = now();
            for (idx, slot) in slots.iter_mut().enumerate() {
                if open == 0 {
                    break;
                }
                if slot.child.is_some()
                    || t < slot.eligible_at
                    || slot.respawns >= cfg.max_respawns_per_slot
                {
                    continue;
                }
                slot.generation += 1;
                let child = spawn_worker(binary, queue.root(), idx, slot.generation, tx)?;
                slot.child = Some(child);
                slot.last_frame = t;
                slot.shard = None;
                slot.chaos_killed = false;
                slot.kill_reason = None;
                report.spawned += 1;
                open -= 1;
            }
        }

        // Drain events (block briefly on the first for pacing).
        let mut events = Vec::new();
        if let Ok(ev) = rx.recv_timeout(Duration::from_millis(25)) {
            events.push(ev);
            while let Ok(ev) = rx.try_recv() {
                events.push(ev);
            }
        }
        for event in events {
            let t = now();
            match event {
                Event::Raw(line) => println!("{line}"),
                Event::Bad(idx, msg) => {
                    // A garbled frame is suspicious but not fatal; it
                    // still proves the worker is alive.
                    eprintln!("noiselab: supervisor: worker slot {idx}: {msg}");
                    slots[idx].last_frame = t;
                }
                Event::Frame(idx, msg) => {
                    let slot = &mut slots[idx];
                    slot.last_frame = t;
                    match msg {
                        WorkerMsg::Hello { .. } => {}
                        WorkerMsg::Claimed { shard, .. } => {
                            slot.shard = Some(shard);
                            slot.shard_since = t;
                        }
                        WorkerMsg::CellDone { shard, index, .. } => {
                            let last_cell = shard_by_id(shard)
                                .map(|s| s.start + s.len - 1)
                                .unwrap_or(index);
                            if *chaos_remaining > 0 && index < last_cell {
                                if let Some(child) = &mut slot.child {
                                    // SIGKILL mid-shard: the cell just
                                    // checkpointed, at least one remains.
                                    let _ = child.kill();
                                    slot.chaos_killed = true;
                                    *chaos_remaining -= 1;
                                    report.chaos_kills += 1;
                                    eprintln!(
                                        "noiselab: supervisor: CHAOS kill of slot {idx} \
                                         mid-shard {shard} (after cell {index})"
                                    );
                                }
                            }
                        }
                        WorkerMsg::ShardDone { shard, .. } => {
                            if slot.shard == Some(shard) {
                                slot.shard = None;
                            }
                        }
                        WorkerMsg::Idle { .. } => {}
                        WorkerMsg::Fault { shard, message } => {
                            eprintln!(
                                "noiselab: supervisor: worker slot {idx} fault \
                                 (shard {shard:?}): {message}"
                            );
                        }
                    }
                }
            }
        }

        // Liveness policing and reaping.
        let t = now();
        for (idx, slot) in slots.iter_mut().enumerate() {
            let Some(child) = &mut slot.child else {
                continue;
            };

            if slot.kill_reason.is_none() && !slot.chaos_killed {
                if t.duration_since(slot.last_frame) > cfg.heartbeat_timeout {
                    slot.kill_reason = Some(format!(
                        "heartbeat timeout ({}s without a frame)",
                        cfg.heartbeat_timeout.as_secs()
                    ));
                } else if slot.shard.is_some()
                    && t.duration_since(slot.shard_since) > cfg.shard_timeout
                {
                    slot.kill_reason = Some(format!(
                        "shard wall-clock timeout ({}s)",
                        cfg.shard_timeout.as_secs()
                    ));
                }
                if let Some(reason) = &slot.kill_reason {
                    eprintln!("noiselab: supervisor: killing slot {idx}: {reason}");
                    report.timeouts += 1;
                    let _ = child.kill();
                }
            }

            match child.try_wait() {
                Ok(None) => {}
                Ok(Some(exit)) => {
                    let _ = child.wait();
                    slot.child = None;
                    let chaos = slot.chaos_killed;
                    slot.chaos_killed = false;
                    let clean = exit.success() && slot.kill_reason.is_none() && !chaos;
                    let reason = slot
                        .kill_reason
                        .take()
                        .unwrap_or_else(|| format!("worker exited abnormally ({exit})"));
                    let held = slot.shard.take();
                    match held {
                        None if clean => {} // retired after Idle
                        None => {
                            // Died between shards: nothing to reclaim,
                            // but the slot still pays the backoff so a
                            // crash-looping binary cannot spin.
                            if !chaos {
                                report.crashes += 1;
                                slot.respawns += 1;
                                slot.eligible_at = t + backoff(cfg, slot.respawns);
                            }
                        }
                        Some(sid) => {
                            // Died holding a shard — unless the ledger
                            // already landed and only the ShardDone
                            // frame was lost.
                            if queue.is_done(sid) || queue.is_quarantined(sid) {
                                queue.release(sid);
                                if !clean && !chaos {
                                    report.crashes += 1;
                                }
                                continue;
                            }
                            if chaos {
                                queue.release(sid);
                                continue;
                            }
                            report.crashes += 1;
                            let crashes = queue.note_crash(sid).map_err(|e| e.to_string())?;
                            eprintln!(
                                "noiselab: supervisor: slot {idx} died holding shard {sid} \
                                 ({reason}); crash {crashes}/{}",
                                cfg.max_shard_crashes
                            );
                            if crashes >= cfg.max_shard_crashes {
                                // Quarantine FIRST, release SECOND: no
                                // claim window for a condemned shard.
                                queue
                                    .quarantine(&QuarantineNote {
                                        shard: sid,
                                        crashes,
                                        reason: reason.clone(),
                                    })
                                    .map_err(|e| e.to_string())?;
                                report.quarantined_shards.push(sid);
                                eprintln!(
                                    "noiselab: supervisor: shard {sid} QUARANTINED \
                                     after {crashes} crashes"
                                );
                            }
                            queue.release(sid);
                            slot.respawns += 1;
                            slot.eligible_at = t + backoff(cfg, slot.respawns);
                        }
                    }
                }
                Err(e) => return Err(format!("cannot reap worker slot {idx}: {e}")),
            }
        }

        // Stall detection: work remains, nobody is running, and no slot
        // may ever spawn again.
        let status = queue.status(manifest);
        let live = slots.iter().filter(|s| s.child.is_some()).count();
        if !status.settled()
            && live == 0
            && slots
                .iter()
                .all(|s| s.respawns >= cfg.max_respawns_per_slot)
        {
            return Err(format!(
                "supervisor stalled: {} shard(s) remain but every worker slot \
                 exhausted its {} respawns",
                status.remaining.len(),
                cfg.max_respawns_per_slot
            ));
        }
    }
}
