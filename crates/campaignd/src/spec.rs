//! Serializable campaign identity. A [`CampaignSpec`] names platform
//! and workload *by string* so it can cross a process boundary: the
//! supervisor writes it into the queue manifest, every worker re-reads
//! it and resolves the same [`noiselab_core::Platform`] and workload
//! instance through the shared `by_name` tables. The derived
//! [`noiselab_core::CampaignPlan`] fingerprint therefore agrees on both
//! sides, and a worker can never execute a cell under a different
//! interpretation of "intel" or "nbody" than the supervisor hashed.

use noiselab_core::experiments::suite;
use noiselab_core::{CampaignPlan, ExecConfig, Platform, RetryPolicy};
use noiselab_kernel::FaultPlan;
use noiselab_workloads::Workload;
use serde::{Deserialize, Serialize};
use std::fmt;

/// One campaign cell: a display label plus the execution config.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CellSpec {
    pub label: String,
    pub config: ExecConfig,
}

/// The full, self-contained description of a sharded campaign.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CampaignSpec {
    /// Platform preset name ([`Platform::NAMES`]).
    pub platform: String,
    /// Workload name ([`suite::WORKLOAD_NAMES`]).
    pub workload: String,
    pub cells: Vec<CellSpec>,
    pub runs_per_cell: usize,
    pub seed_base: u64,
    pub faults: Option<FaultPlan>,
    pub retry: RetryPolicy,
}

/// A spec that named an unknown platform or workload.
#[derive(Debug, Clone, PartialEq)]
pub enum SpecError {
    UnknownPlatform(String),
    UnknownWorkload(String),
}

impl fmt::Display for SpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SpecError::UnknownPlatform(name) => write!(
                f,
                "unknown platform {name:?} (expected one of {})",
                Platform::NAMES.join(", ")
            ),
            SpecError::UnknownWorkload(name) => write!(
                f,
                "unknown workload {name:?} (expected one of {})",
                suite::WORKLOAD_NAMES.join(", ")
            ),
        }
    }
}

impl std::error::Error for SpecError {}

/// The heavyweight objects a spec's names resolve to, owned so a
/// [`CampaignPlan`] can borrow them.
pub struct ResolvedCampaign {
    pub platform: Platform,
    pub workload: Box<dyn Workload + Sync>,
}

impl fmt::Debug for ResolvedCampaign {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ResolvedCampaign")
            .field("platform", &self.platform.label())
            .field("workload", &self.workload.name())
            .finish()
    }
}

impl CampaignSpec {
    /// Resolve the platform/workload names to concrete instances.
    pub fn resolve(&self) -> Result<ResolvedCampaign, SpecError> {
        let platform = Platform::by_name(&self.platform)
            .ok_or_else(|| SpecError::UnknownPlatform(self.platform.clone()))?;
        let workload = suite::workload_by_name(&platform, &self.workload)
            .ok_or_else(|| SpecError::UnknownWorkload(self.workload.clone()))?;
        Ok(ResolvedCampaign { platform, workload })
    }

    /// The single-process plan equivalent to this spec. Workers run
    /// cells through exactly this plan, so `plan.fingerprint()` and
    /// every per-cell seed agree across all processes of a campaign.
    pub fn plan<'a>(&self, resolved: &'a ResolvedCampaign) -> CampaignPlan<'a> {
        CampaignPlan {
            platform: &resolved.platform,
            workload: resolved.workload.as_ref(),
            cells: self
                .cells
                .iter()
                .map(|c| (c.label.clone(), c.config.clone()))
                .collect(),
            runs_per_cell: self.runs_per_cell,
            seed_base: self.seed_base,
            faults: self.faults.clone(),
            retry: self.retry,
            checkpoint: None,
            limit: None,
            verify_resume: false,
        }
    }

    /// The campaign fingerprint (the v2 contract string from the
    /// single-process driver), via name resolution.
    pub fn fingerprint(&self) -> Result<String, SpecError> {
        let resolved = self.resolve()?;
        Ok(self.plan(&resolved).fingerprint())
    }

    /// First seed of cell `i`, identical to the single-process driver's
    /// derivation: fixed by position, independent of execution order.
    pub fn cell_seed(&self, i: usize) -> u64 {
        self.seed_base + (i * self.runs_per_cell) as u64
    }
}

/// A milliseconds-scale 4-cell spec shared by the unit tests of every
/// campaignd module.
#[cfg(test)]
pub(crate) fn tiny_spec() -> CampaignSpec {
    use noiselab_core::{Mitigation, Model};
    let cells = [Model::Omp, Model::Sycl]
        .iter()
        .flat_map(|&m| {
            [Mitigation::Rm, Mitigation::Tp]
                .iter()
                .map(move |&mit| ExecConfig::new(m, mit))
        })
        .map(|cfg| CellSpec {
            label: cfg.label(),
            config: cfg,
        })
        .collect();
    CampaignSpec {
        platform: "intel".into(),
        workload: "nbody-tiny".into(),
        cells,
        runs_per_cell: 2,
        seed_base: 42,
        faults: None,
        retry: RetryPolicy::none(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    #[test]
    fn spec_round_trips_and_fingerprint_matches_plan() {
        let spec = tiny_spec();
        let text = serde_json::to_string_pretty(&spec).unwrap();
        let back: CampaignSpec = serde_json::from_str(&text).unwrap();
        assert_eq!(spec, back);
        let resolved = spec.resolve().unwrap();
        let fp = spec.plan(&resolved).fingerprint();
        assert_eq!(spec.fingerprint().unwrap(), fp);
        assert!(fp.starts_with("v2|"), "{fp}");
    }

    #[test]
    fn unknown_names_are_typed_errors() {
        let mut spec = tiny_spec();
        spec.platform = "riscv".into();
        let err = spec.resolve().unwrap_err();
        assert!(matches!(err, SpecError::UnknownPlatform(_)));
        assert!(err.to_string().contains("intel"), "{err}");
        let mut spec = tiny_spec();
        spec.workload = "hpl".into();
        let err = spec.resolve().unwrap_err();
        assert!(err.to_string().contains("nbody"), "{err}");
    }

    #[test]
    fn cell_seeds_are_position_fixed() {
        let spec = tiny_spec();
        assert_eq!(spec.cell_seed(0), 42);
        assert_eq!(spec.cell_seed(3), 42 + 6);
    }
}
