//! # noiselab-campaignd
//!
//! Crash-tolerant sharded campaign engine. A campaign's (cell × seed)
//! space is partitioned into independently checkpointed [`shard`]s and
//! executed by OS worker processes (the `noiselab` binary re-invoked
//! with the hidden `campaign-worker` subcommand) that claim shards from
//! an on-disk work [`queue`] guarded by lease files, stream per-cell
//! progress to the [`supervisor`] over a stdout frame [`proto`]col, and
//! are supervised with heartbeats, per-shard wall-clock timeouts,
//! bounded retry-with-backoff and quarantine. A deterministic
//! [`merge`] folds the shard ledgers back into one
//! [`noiselab_core::CampaignState`], re-verifying every shard's stream
//! hashes against its fingerprint, so a sharded campaign — crashes,
//! retries and all — is bit-identical to the single-process driver.
//!
//! Everything a worker computes is a pure function of the campaign
//! [`spec::CampaignSpec`]; the filesystem only decides *who* computes
//! *when*. That is the whole trick: supervision can be as messy as
//! reality requires while the measurement stays exactly reproducible.

pub mod merge;
pub mod proto;
pub mod queue;
pub mod shard;
pub mod spec;
pub mod supervisor;
pub mod worker;

pub use merge::{merge_queue, merged_metrics, state_hash, MergeError};
pub use proto::{frame, parse_frame, FrameError, WorkerMsg, FRAME_PREFIX};
pub use queue::{QuarantineNote, QueueError, QueueManifest, QueueStatus, WorkQueue, QUEUE_SCHEMA};
pub use shard::{IndexedCell, ShardResult, ShardSpec};
pub use spec::{CampaignSpec, CellSpec, ResolvedCampaign, SpecError};
pub use supervisor::{run_supervised, SupervisedReport, SupervisorConfig};
pub use worker::{worker_main, WorkerConfig, CRASH_SHARD_ENV};
