//! Property: the merged campaign state is a pure function of the
//! campaign spec — the order in which shards were claimed, completed
//! and published is invisible in the merged bytes, the state hash and
//! the merged metrics snapshot.

use noiselab_campaignd::{
    merge_queue, merged_metrics, state_hash, CampaignSpec, CellSpec, ShardResult, WorkQueue,
};
use noiselab_campaignd::{worker_main, WorkerConfig};
use noiselab_core::{ExecConfig, Mitigation, Model, RetryPolicy};
use proptest::prelude::*;
use std::path::PathBuf;
use std::sync::OnceLock;

fn spec() -> CampaignSpec {
    let cells = [Model::Omp, Model::Sycl]
        .iter()
        .flat_map(|&m| {
            [Mitigation::Rm, Mitigation::Tp, Mitigation::RmHK]
                .iter()
                .map(move |&mit| ExecConfig::new(m, mit))
        })
        .map(|cfg| CellSpec {
            label: cfg.label(),
            config: cfg,
        })
        .collect();
    CampaignSpec {
        platform: "intel".into(),
        workload: "nbody-tiny".into(),
        cells,
        runs_per_cell: 2,
        seed_base: 7,
        faults: None,
        retry: RetryPolicy::none(),
    }
}

/// Execute every shard exactly once (in-process worker) and capture the
/// canonical merge artifacts. Shared across proptest cases — the cells
/// are pure functions of the spec, so executing them once is enough.
struct Reference {
    ledgers: Vec<ShardResult>,
    merged_json: String,
    hash: u64,
    metrics: String,
}

fn reference() -> &'static Reference {
    static REF: OnceLock<Reference> = OnceLock::new();
    REF.get_or_init(|| {
        let root = std::env::temp_dir().join("noiselab-merge-prop-ref");
        let _ = std::fs::remove_dir_all(&root);
        let (queue, manifest) = WorkQueue::init(&root, &spec(), 1).unwrap();
        worker_main(&WorkerConfig {
            queue: root.clone(),
            worker_id: "prop-ref".into(),
        })
        .unwrap();
        let ledgers: Vec<ShardResult> = manifest
            .shards
            .iter()
            .map(|s| queue.load_done(s.id).unwrap().unwrap())
            .collect();
        let state = merge_queue(&root).unwrap();
        let out = Reference {
            ledgers,
            merged_json: serde_json::to_string_pretty(&state).unwrap(),
            hash: state_hash(&state),
            metrics: merged_metrics(&state).render(),
        };
        let _ = std::fs::remove_dir_all(&root);
        out
    })
}

/// Deterministic Fisher-Yates from a seed (the proptest input).
fn permuted(n: usize, mut seed: u64) -> Vec<usize> {
    let mut order: Vec<usize> = (0..n).collect();
    for i in (1..n).rev() {
        seed = seed
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        let j = (seed >> 33) as usize % (i + 1);
        order.swap(i, j);
    }
    order
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]
    #[test]
    fn merge_is_independent_of_completion_order(seed in any::<u64>()) {
        let reference = reference();
        let root: PathBuf = std::env::temp_dir()
            .join(format!("noiselab-merge-prop-{seed:016x}"));
        let _ = std::fs::remove_dir_all(&root);
        let (queue, manifest) = WorkQueue::init(&root, &spec(), 1).unwrap();
        prop_assert_eq!(manifest.shards.len(), reference.ledgers.len());

        // Publish the shard ledgers in an arbitrary completion order,
        // as if claimed by racing workers in any interleaving.
        for &k in &permuted(reference.ledgers.len(), seed) {
            queue.complete(&reference.ledgers[k]).unwrap();
        }

        let state = merge_queue(&root).unwrap();
        prop_assert_eq!(
            serde_json::to_string_pretty(&state).unwrap(),
            reference.merged_json.clone()
        );
        prop_assert_eq!(state_hash(&state), reference.hash);
        prop_assert_eq!(merged_metrics(&state).render(), reference.metrics.clone());
        let _ = std::fs::remove_dir_all(&root);
    }
}
