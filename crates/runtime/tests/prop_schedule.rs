//! Property tests for the runtime engine's chunking policies: every
//! schedule covers each iteration exactly once, regardless of item
//! count, thread count and chunk size. Verified by running a real team
//! on the simulated kernel with a coverage-recording work function.

use noiselab_kernel::{Kernel, KernelConfig};
use noiselab_machine::{CpuSet, Machine, PerfModel, WorkUnit};
use noiselab_runtime::{spawn_team, ChunkPolicy, Phase, Program, RuntimeParams, TeamOptions};
use noiselab_sim::{SimDuration, SimTime};
use proptest::prelude::*;
use std::cell::RefCell;
use std::rc::Rc;

fn machine(cores: usize) -> Machine {
    Machine {
        name: "t".into(),
        cores,
        smt: 1,
        perf: PerfModel {
            flops_per_ns: 1.0,
            smt_factor: 1.0,
            per_core_bw: 100.0,
            socket_bw: 400.0,
        },
        migration_cost: SimDuration::ZERO,
        ctx_switch: SimDuration::ZERO,
        wake_latency: SimDuration::ZERO,
        tick_period: SimDuration::from_millis(4),
        reserved_cpus: CpuSet::EMPTY,
        numa_domains: 1,
        dvfs: Default::default(),
    }
}

fn quiet() -> KernelConfig {
    KernelConfig {
        timer_irq_mean: SimDuration::from_nanos(200),
        timer_irq_sd: SimDuration::ZERO,
        softirq_prob: 0.0,
        ..KernelConfig::default()
    }
}

/// Run one phase under `policy` and return per-item visit counts.
fn coverage(items: usize, nthreads: usize, cores: usize, policy: ChunkPolicy) -> Vec<u32> {
    let visits = Rc::new(RefCell::new(vec![0u32; items]));
    let v2 = visits.clone();
    let mut program = Program::new();
    program.push(Phase {
        name: "cov".into(),
        items,
        policy,
        work: Rc::new(move |start, len| {
            let mut v = v2.borrow_mut();
            for i in start..start + len {
                v[i] += 1;
            }
            WorkUnit::compute(len as f64 * 100.0)
        }),
    });
    let mut k = Kernel::new(machine(cores), quiet(), 1);
    let team = spawn_team(
        &mut k,
        program,
        TeamOptions {
            nthreads,
            affinities: vec![CpuSet::first_n(cores)],
            params: RuntimeParams {
                chunk_overhead: SimDuration::ZERO,
                phase_gap: SimDuration::ZERO,
                barrier_spin: SimDuration::from_micros(50),
                startup: SimDuration::ZERO,
            },
            start_barrier: None,
            name_prefix: "w".into(),
            start: SimTime::ZERO,
        },
    );
    for w in &team.workers {
        k.run_until_exit(*w, SimTime::from_secs_f64(100.0)).unwrap();
    }
    Rc::try_unwrap(visits).unwrap().into_inner()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn static_block_covers_exactly_once(items in 1usize..2_000, nthreads in 1usize..9) {
        let cov = coverage(items, nthreads, 8, ChunkPolicy::Static { chunk: None });
        prop_assert!(cov.iter().all(|&c| c == 1), "items={items} threads={nthreads}");
    }

    #[test]
    fn static_chunked_covers_exactly_once(
        items in 1usize..2_000,
        nthreads in 1usize..9,
        chunk in 1usize..130,
    ) {
        let cov = coverage(items, nthreads, 8, ChunkPolicy::Static { chunk: Some(chunk) });
        prop_assert!(cov.iter().all(|&c| c == 1));
    }

    #[test]
    fn dynamic_covers_exactly_once(
        items in 1usize..2_000,
        nthreads in 1usize..9,
        chunk in 1usize..130,
    ) {
        let cov = coverage(items, nthreads, 8, ChunkPolicy::Dynamic { chunk });
        prop_assert!(cov.iter().all(|&c| c == 1));
    }

    #[test]
    fn guided_covers_exactly_once(
        items in 1usize..2_000,
        nthreads in 1usize..9,
        min_chunk in 1usize..65,
    ) {
        let cov = coverage(items, nthreads, 8, ChunkPolicy::Guided { min_chunk });
        prop_assert!(cov.iter().all(|&c| c == 1));
    }
}
