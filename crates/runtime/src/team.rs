//! The SPMD team engine: executes a [`Program`] with a pool of worker
//! threads on the simulated kernel.
//!
//! Both runtime models are instances of this engine with different
//! chunking policies and [`RuntimeParams`]; the OpenMP- and SYCL-styled
//! front ends live in [`crate::omp`] and [`crate::sycl`].
//!
//! Execution protocol (every worker, including "worker 0"):
//!
//! 1. optional start barrier (synchronisation with noise injectors);
//! 2. one-time startup burn (runtime/pool initialisation);
//! 3. per phase: grab chunks per the phase's [`ChunkPolicy`] and execute
//!    them (each chunk costs its work plus the runtime's chunk
//!    overhead); when no chunks remain, the *last* worker to finish
//!    ("the closer") pays the phase gap (fork-join / kernel-launch
//!    latency) and then releases the phase barrier everyone else waits
//!    at;
//! 4. after the final phase, exit.
//!
//! The closer advances the shared phase cursor *before* entering the
//! barrier, so released workers always observe the new phase.

use crate::program::{ChunkPolicy, Phase, Program, RuntimeParams};
use noiselab_kernel::{
    Action, BarrierId, Behavior, Ctx, Kernel, Policy, ThreadId, ThreadKind, ThreadSpec,
};
use noiselab_machine::CpuSet;
use noiselab_sim::{SimDuration, SimTime};
use std::cell::RefCell;
use std::collections::VecDeque;
use std::rc::Rc;

/// Options for spawning a team.
#[derive(Clone)]
pub struct TeamOptions {
    pub nthreads: usize,
    /// Affinity per worker. One entry = same mask for all (roaming);
    /// `nthreads` entries = per-worker pinning.
    pub affinities: Vec<CpuSet>,
    pub params: RuntimeParams,
    /// Barrier shared with noise injectors; `None` for baseline runs.
    pub start_barrier: Option<BarrierId>,
    pub name_prefix: String,
    /// Start time of the worker threads.
    pub start: SimTime,
}

/// Handle to a spawned team.
#[derive(Debug, Clone)]
pub struct TeamHandle {
    pub workers: Vec<ThreadId>,
}

impl TeamHandle {
    /// The thread whose exit marks workload completion (worker 0; all
    /// workers pass the final barrier together).
    pub fn main(&self) -> ThreadId {
        self.workers[0]
    }
}

struct SharedState {
    program: Program,
    nthreads: usize,
    params: RuntimeParams,
    phase_barrier: BarrierId,
    /// Current phase index.
    phase: usize,
    /// Next unclaimed item (dynamic/guided).
    cursor: usize,
    /// Workers that found no more chunks in the current phase.
    finished: usize,
    /// Flops equivalent of one nanosecond on this machine, to fold chunk
    /// overhead into the chunk's work unit.
    flops_per_ns: f64,
}

impl SharedState {
    /// Claim the next chunk for `worker`. Static policies use the
    /// worker-local queue instead.
    fn claim_dynamic(&mut self) -> Option<(usize, usize)> {
        let phase = &self.program.phases[self.phase];
        if self.cursor >= phase.items {
            return None;
        }
        let len = match phase.policy {
            ChunkPolicy::Dynamic { chunk } => chunk.max(1),
            ChunkPolicy::Guided { min_chunk } => {
                let remaining = phase.items - self.cursor;
                (remaining / (2 * self.nthreads)).max(min_chunk.max(1))
            }
            ChunkPolicy::Static { .. } => unreachable!("static chunks are pre-partitioned"),
        };
        let start = self.cursor;
        let len = len.min(phase.items - start);
        self.cursor += len;
        Some((start, len))
    }
}

enum WState {
    Startup,
    /// Filling the local queue / claiming chunks in the current phase.
    Working {
        entered_phase: usize,
    },
    /// This worker closed the phase and owes the phase gap.
    CloserGap,
    /// Waiting at the phase barrier.
    AtBarrier,
    Done,
}

struct Worker {
    shared: Rc<RefCell<SharedState>>,
    id: usize,
    state: WState,
    /// Pre-partitioned blocks for static phases.
    my_chunks: VecDeque<(usize, usize)>,
}

impl Worker {
    /// Build this worker's static block list for the current phase.
    fn fill_static(&mut self, phase: &Phase, nthreads: usize) {
        self.my_chunks.clear();
        match phase.policy {
            ChunkPolicy::Static { chunk: None } => {
                // One contiguous block per worker.
                let base = phase.items / nthreads;
                let rem = phase.items % nthreads;
                let start = self.id * base + self.id.min(rem);
                let len = base + usize::from(self.id < rem);
                if len > 0 {
                    self.my_chunks.push_back((start, len));
                }
            }
            ChunkPolicy::Static { chunk: Some(c) } => {
                let c = c.max(1);
                let mut block = self.id * c;
                while block < phase.items {
                    let len = c.min(phase.items - block);
                    self.my_chunks.push_back((block, len));
                    block += c * nthreads;
                }
            }
            _ => {}
        }
    }

    /// Next chunk in the current phase, if any.
    fn next_chunk(&mut self) -> Option<(usize, usize)> {
        let mut sh = self.shared.borrow_mut();
        let phase = &sh.program.phases[sh.phase];
        match phase.policy {
            ChunkPolicy::Static { .. } => self.my_chunks.pop_front(),
            _ => sh.claim_dynamic(),
        }
    }
}

impl Behavior for Worker {
    fn next(&mut self, _ctx: &mut Ctx<'_>) -> Action {
        loop {
            match self.state {
                WState::Startup => {
                    self.state = WState::Working {
                        entered_phase: usize::MAX,
                    };
                    let startup = self.shared.borrow().params.startup;
                    if startup > SimDuration::ZERO {
                        return Action::Burn(startup);
                    }
                }
                WState::Working { entered_phase } => {
                    let (phase_idx, done_all) = {
                        let sh = self.shared.borrow();
                        (sh.phase, sh.phase >= sh.program.phases.len())
                    };
                    if done_all {
                        self.state = WState::Done;
                        return Action::Exit;
                    }
                    if entered_phase != phase_idx {
                        // First visit to this phase: set up static blocks.
                        let sh = self.shared.borrow();
                        let phase = sh.program.phases[phase_idx].clone();
                        let nthreads = sh.nthreads;
                        drop(sh);
                        self.fill_static(&phase, nthreads);
                        self.state = WState::Working {
                            entered_phase: phase_idx,
                        };
                    }
                    match self.next_chunk() {
                        Some((start, len)) => {
                            let sh = self.shared.borrow();
                            let phase = &sh.program.phases[phase_idx];
                            let mut w = (phase.work)(start, len);
                            let ov = sh.params.chunk_overhead.nanos() as f64;
                            if ov > 0.0 {
                                w.flops += ov * sh.flops_per_ns;
                            }
                            return Action::Compute(w);
                        }
                        None => {
                            // Phase complete for this worker.
                            let mut sh = self.shared.borrow_mut();
                            sh.finished += 1;
                            let is_closer = sh.finished == sh.nthreads;
                            if is_closer {
                                // Advance before anyone is released.
                                sh.phase += 1;
                                sh.cursor = 0;
                                sh.finished = 0;
                                let gap = sh.params.phase_gap;
                                drop(sh);
                                self.state = WState::CloserGap;
                                if gap > SimDuration::ZERO {
                                    return Action::Burn(gap);
                                }
                                continue;
                            }
                            let (bar, spin) = (sh.phase_barrier, sh.params.barrier_spin);
                            drop(sh);
                            self.state = WState::AtBarrier;
                            return Action::Barrier { id: bar, spin };
                        }
                    }
                }
                WState::CloserGap => {
                    let (bar, spin) = {
                        let sh = self.shared.borrow();
                        (sh.phase_barrier, sh.params.barrier_spin)
                    };
                    self.state = WState::AtBarrier;
                    return Action::Barrier { id: bar, spin };
                }
                WState::AtBarrier => {
                    // Barrier released: re-enter the work loop.
                    self.state = WState::Working {
                        entered_phase: usize::MAX,
                    };
                }
                WState::Done => return Action::Exit,
            }
        }
    }

    fn label(&self) -> &str {
        "team-worker"
    }
}

/// A worker wrapper that first waits on the injector start barrier.
struct WithStartBarrier {
    inner: Worker,
    start_barrier: BarrierId,
    spin: SimDuration,
    arrived: bool,
}

impl Behavior for WithStartBarrier {
    fn next(&mut self, ctx: &mut Ctx<'_>) -> Action {
        if !self.arrived {
            self.arrived = true;
            // Skip the inner StartBarrier placeholder state.
            self.inner.state = WState::Startup;
            return Action::Barrier {
                id: self.start_barrier,
                spin: self.spin,
            };
        }
        self.inner.next(ctx)
    }

    fn label(&self) -> &str {
        "team-worker"
    }
}

/// Spawn a team executing `program` and return its handle.
pub fn spawn_team(kernel: &mut Kernel, program: Program, opts: TeamOptions) -> TeamHandle {
    assert!(opts.nthreads > 0, "team needs at least one thread");
    assert!(
        opts.affinities.len() == 1 || opts.affinities.len() == opts.nthreads,
        "affinities must have 1 or nthreads entries"
    );
    let phase_barrier = kernel.new_barrier(opts.nthreads);
    let shared = Rc::new(RefCell::new(SharedState {
        program,
        nthreads: opts.nthreads,
        params: opts.params.clone(),
        phase_barrier,
        phase: 0,
        cursor: 0,
        finished: 0,
        flops_per_ns: kernel.machine.perf.flops_per_ns,
    }));

    let mut workers = Vec::with_capacity(opts.nthreads);
    for i in 0..opts.nthreads {
        let affinity = if opts.affinities.len() == 1 {
            opts.affinities[0]
        } else {
            opts.affinities[i]
        };
        let worker = Worker {
            shared: shared.clone(),
            id: i,
            state: WState::Startup,
            my_chunks: VecDeque::new(),
        };
        let behavior: Box<dyn Behavior> = match opts.start_barrier {
            Some(b) => Box::new(WithStartBarrier {
                inner: worker,
                start_barrier: b,
                spin: opts.params.barrier_spin,
                arrived: false,
            }),
            None => Box::new(worker),
        };
        let spec = ThreadSpec::new(format!("{}/{i}", opts.name_prefix), ThreadKind::Workload)
            .policy(Policy::NORMAL)
            .affinity(affinity)
            .start_at(opts.start);
        workers.push(kernel.spawn(spec, behavior));
    }
    TeamHandle { workers }
}

#[cfg(test)]
mod tests {
    use super::*;
    use noiselab_kernel::KernelConfig;
    use noiselab_machine::{CpuId, Machine, PerfModel, WorkUnit};

    fn machine(cores: usize) -> Machine {
        Machine {
            name: "t".into(),
            cores,
            smt: 1,
            perf: PerfModel {
                flops_per_ns: 1.0,
                smt_factor: 1.0,
                per_core_bw: 100.0,
                socket_bw: 400.0,
            },
            migration_cost: SimDuration::ZERO,
            ctx_switch: SimDuration::ZERO,
            wake_latency: SimDuration::ZERO,
            tick_period: SimDuration::from_millis(4),
            reserved_cpus: CpuSet::EMPTY,
            numa_domains: 1,
            dvfs: Default::default(),
        }
    }

    fn quiet_cfg() -> KernelConfig {
        KernelConfig {
            timer_irq_mean: SimDuration::from_nanos(200),
            timer_irq_sd: SimDuration::ZERO,
            softirq_prob: 0.0,
            ..KernelConfig::default()
        }
    }

    fn zero_params() -> RuntimeParams {
        RuntimeParams {
            chunk_overhead: SimDuration::ZERO,
            phase_gap: SimDuration::ZERO,
            barrier_spin: SimDuration::from_micros(100),
            startup: SimDuration::ZERO,
        }
    }

    fn uniform_program(
        phases: usize,
        items: usize,
        flops_per_item: f64,
        policy: ChunkPolicy,
    ) -> Program {
        let mut p = Program::new();
        for i in 0..phases {
            p.push(Phase {
                name: format!("p{i}"),
                items,
                policy,
                work: Rc::new(move |_, n| WorkUnit::compute(n as f64 * flops_per_item)),
            });
        }
        p
    }

    fn run_team(cores: usize, nthreads: usize, program: Program, params: RuntimeParams) -> f64 {
        let mut k = Kernel::new(machine(cores), quiet_cfg(), 1);
        let team = spawn_team(
            &mut k,
            program,
            TeamOptions {
                nthreads,
                affinities: vec![CpuSet::first_n(cores)],
                params,
                start_barrier: None,
                name_prefix: "w".into(),
                start: SimTime::ZERO,
            },
        );
        let mut end = 0.0f64;
        for w in &team.workers {
            end = end.max(
                k.run_until_exit(*w, SimTime::from_secs_f64(100.0))
                    .unwrap()
                    .as_secs_f64(),
            );
        }
        end
    }

    #[test]
    fn static_parallel_speedup() {
        // 4M flops over 4 workers at 1 flop/ns -> ~1 ms each.
        let p = uniform_program(1, 4_000, 1_000.0, ChunkPolicy::Static { chunk: None });
        let t = run_team(4, 4, p, zero_params());
        assert!((0.00095..0.0012).contains(&t), "t={t}");
    }

    #[test]
    fn dynamic_matches_static_on_uniform_work() {
        let ps = uniform_program(1, 4_000, 1_000.0, ChunkPolicy::Static { chunk: None });
        let pd = uniform_program(1, 4_000, 1_000.0, ChunkPolicy::Dynamic { chunk: 125 });
        let ts = run_team(4, 4, ps, zero_params());
        let td = run_team(4, 4, pd, zero_params());
        assert!((td - ts).abs() / ts < 0.05, "ts={ts} td={td}");
    }

    #[test]
    fn guided_completes_all_items() {
        let p = uniform_program(1, 10_000, 100.0, ChunkPolicy::Guided { min_chunk: 16 });
        let t = run_team(4, 4, p, zero_params());
        // 1 Gflop... 10_000*100 = 1 Mflop over 4 cores -> ~0.25 ms.
        assert!((0.00024..0.00035).contains(&t), "t={t}");
    }

    #[test]
    fn multi_phase_program_barriers_between_phases() {
        let p = uniform_program(10, 4_000, 100.0, ChunkPolicy::Static { chunk: None });
        let t = run_team(4, 4, p, zero_params());
        // 10 phases x 100k flops/worker = 1 ms total.
        assert!((0.00095..0.0013).contains(&t), "t={t}");
    }

    #[test]
    fn phase_gap_serialises_between_phases() {
        let mut params = zero_params();
        params.phase_gap = SimDuration::from_micros(100);
        let p = uniform_program(10, 4_000, 100.0, ChunkPolicy::Static { chunk: None });
        let t = run_team(4, 4, p, params);
        // 1 ms work + 10 gaps x 100 us = ~2 ms.
        assert!((0.0019..0.0023).contains(&t), "t={t}");
    }

    #[test]
    fn chunk_overhead_slows_dynamic_dispatch() {
        let mut params = zero_params();
        params.chunk_overhead = SimDuration::from_micros(10);
        // 400 chunks of 10 items -> 100 chunks per worker -> +1ms each.
        let p = uniform_program(1, 4_000, 1_000.0, ChunkPolicy::Dynamic { chunk: 10 });
        let t = run_team(4, 4, p, params);
        assert!((0.0019..0.0023).contains(&t), "t={t}");
    }

    #[test]
    fn static_chunked_round_robin_covers_all_items() {
        // Imbalanced work: item cost grows with index. Static chunk 1
        // round-robins so workers stay balanced; one contiguous block
        // per worker would leave worker 3 with ~4x the work.
        let mk = |policy| {
            let mut p = Program::new();
            p.push(Phase {
                name: "tri".into(),
                items: 4_000,
                policy,
                work: Rc::new(|start, n| {
                    let mut f = 0.0;
                    for i in start..start + n {
                        f += i as f64; // triangular cost
                    }
                    WorkUnit::compute(f)
                }),
            });
            p
        };
        let t_block = run_team(4, 4, mk(ChunkPolicy::Static { chunk: None }), zero_params());
        let t_rr = run_team(
            4,
            4,
            mk(ChunkPolicy::Static { chunk: Some(16) }),
            zero_params(),
        );
        assert!(
            t_rr < t_block * 0.75,
            "round-robin should balance: rr={t_rr} block={t_block}"
        );
    }

    #[test]
    fn dynamic_absorbs_imbalance() {
        let mk = |policy| {
            let mut p = Program::new();
            p.push(Phase {
                name: "tri".into(),
                items: 4_000,
                policy,
                work: Rc::new(|start, n| {
                    let mut f = 0.0;
                    for i in start..start + n {
                        f += i as f64;
                    }
                    WorkUnit::compute(f)
                }),
            });
            p
        };
        let t_block = run_team(4, 4, mk(ChunkPolicy::Static { chunk: None }), zero_params());
        let t_dyn = run_team(4, 4, mk(ChunkPolicy::Dynamic { chunk: 32 }), zero_params());
        assert!(t_dyn < t_block * 0.75, "dyn={t_dyn} block={t_block}");
    }

    #[test]
    fn more_threads_than_items_is_fine() {
        let p = uniform_program(1, 2, 1_000.0, ChunkPolicy::Static { chunk: None });
        let t = run_team(4, 4, p, zero_params());
        assert!(t > 0.0 && t < 0.001, "t={t}");
    }

    #[test]
    fn single_thread_team_runs_serially() {
        let p = uniform_program(1, 4_000, 1_000.0, ChunkPolicy::Static { chunk: None });
        let t = run_team(4, 1, p, zero_params());
        assert!((0.0039..0.0043).contains(&t), "t={t}");
    }

    #[test]
    fn pinned_team_uses_assigned_cpus() {
        let mut k = Kernel::new(machine(4), quiet_cfg(), 1);
        let p = uniform_program(1, 4_000, 1_000.0, ChunkPolicy::Static { chunk: None });
        let affinities: Vec<CpuSet> = (0..4).map(|i| CpuSet::single(CpuId(i))).collect();
        let team = spawn_team(
            &mut k,
            p,
            TeamOptions {
                nthreads: 4,
                affinities,
                params: zero_params(),
                start_barrier: None,
                name_prefix: "w".into(),
                start: SimTime::ZERO,
            },
        );
        for w in &team.workers {
            k.run_until_exit(*w, SimTime::from_secs_f64(1.0)).unwrap();
            assert_eq!(k.thread(*w).stats.migrations, 0);
        }
    }

    #[test]
    fn start_barrier_gates_execution() {
        let mut k = Kernel::new(machine(2), quiet_cfg(), 1);
        let start = k.new_barrier(3); // 2 workers + 1 gate
        let p = uniform_program(1, 2_000, 1_000.0, ChunkPolicy::Static { chunk: None });
        let team = spawn_team(
            &mut k,
            p,
            TeamOptions {
                nthreads: 2,
                affinities: vec![CpuSet::first_n(2)],
                params: zero_params(),
                start_barrier: Some(start),
                name_prefix: "w".into(),
                start: SimTime::ZERO,
            },
        );
        // Gate thread releases the barrier at t = 5 ms.
        use noiselab_kernel::ScriptBehavior;
        k.spawn(
            ThreadSpec::new("gate", ThreadKind::Workload).start_at(SimTime::from_secs_f64(0.005)),
            Box::new(ScriptBehavior::new(vec![Action::Barrier {
                id: start,
                spin: SimDuration::ZERO,
            }])),
        );
        let e = k
            .run_until_exit(team.main(), SimTime::from_secs_f64(1.0))
            .unwrap()
            .as_secs_f64();
        // 5 ms gate + 1 ms work.
        assert!((0.0059..0.0063).contains(&e), "e={e}");
    }
}
