//! SYCL-style runtime model (DPC++ CPU backend).
//!
//! Mirrors the behaviour of a SYCL CPU runtime as it matters to noise
//! resilience: every kernel is an ND-range decomposed into work-groups
//! that a worker pool claims *dynamically* — so when noise stalls one
//! worker, the others absorb its remaining work-groups and the kernel's
//! critical path degrades by roughly `stall / nthreads` instead of
//! `stall` — at the price of per-kernel submission latency and
//! per-work-group dispatch cost that make raw execution slower than the
//! OpenMP model, exactly the trade-off the paper measures.
//!
//! A `kernel_efficiency` factor (≥ 1) scales kernel work to account for
//! the less specialised code generation the paper observes for SYCL
//! (consistently longer raw execution times than OpenMP for the same
//! benchmark); each workload documents its factor.

use crate::program::{ChunkPolicy, Phase, Program, RuntimeParams, WorkFn};
use crate::team::{spawn_team, TeamHandle, TeamOptions};
use noiselab_kernel::{BarrierId, Kernel};
use noiselab_machine::{CpuSet, WorkUnit};
use noiselab_sim::{SimDuration, SimTime};
use std::rc::Rc;

/// Runtime overheads of the modelled SYCL CPU backend.
pub fn default_params() -> RuntimeParams {
    RuntimeParams {
        // Per modelled work-group batch (see `SyclQueue::submit`).
        chunk_overhead: SimDuration::from_micros(2),
        // Kernel submission: host-side queue processing + dispatch.
        phase_gap: SimDuration::from_micros(18),
        // TBB-style dispatcher spins briefly before parking.
        barrier_spin: SimDuration::from_micros(50),
        startup: SimDuration::from_micros(80),
    }
}

/// An in-order SYCL queue under construction: `submit` appends kernels;
/// `finish` produces the [`Program`].
pub struct SyclQueue {
    program: Program,
    nthreads_hint: usize,
    kernel_efficiency: f64,
    bandwidth_efficiency: f64,
}

impl SyclQueue {
    /// `nthreads_hint` sizes the modelled work-group batches;
    /// `kernel_efficiency >= 1` scales kernel cost relative to the
    /// OpenMP-compiled equivalent.
    pub fn new(nthreads_hint: usize, kernel_efficiency: f64) -> Self {
        assert!(kernel_efficiency >= 1.0);
        SyclQueue {
            program: Program::new(),
            nthreads_hint: nthreads_hint.max(1),
            kernel_efficiency,
            bandwidth_efficiency: 1.0,
        }
    }

    /// Fraction (0, 1] of the machine's streaming bandwidth the SYCL
    /// backend sustains. Generic ND-range code vectorises gather/scatter
    /// less aggressively than OpenMP-compiled loops, so memory-bound
    /// kernels run below the machine's STREAM rate; effective traffic is
    /// scaled by `1 / efficiency`.
    pub fn with_bandwidth_efficiency(mut self, efficiency: f64) -> Self {
        assert!(efficiency > 0.0 && efficiency <= 1.0);
        self.bandwidth_efficiency = efficiency;
        self
    }

    /// Submit an ND-range kernel of `global` items with the given
    /// work-group size.
    ///
    /// Work-groups are claimed dynamically by the pool. To keep event
    /// counts tractable, consecutive work-groups are modelled in batches
    /// targeting ~8 batches per worker, while the dispatch overhead is
    /// charged per *real* work-group so the runtime cost is preserved.
    pub fn submit(
        &mut self,
        name: impl Into<String>,
        global: usize,
        wg_size: usize,
        work: WorkFn,
    ) -> &mut Self {
        let wg_size = wg_size.max(1);
        let n_wgs = global.div_ceil(wg_size);
        let target_batches = self.nthreads_hint * 8;
        let wgs_per_batch = n_wgs.div_ceil(target_batches).max(1);
        let batch_items = (wgs_per_batch * wg_size).min(global.max(1));

        // Fold the per-work-group dispatch cost into the work function:
        // each batch carries `wgs_in_batch * wg_dispatch` of pure-CPU
        // overhead, expressed in flops at program-build time via the
        // efficiency-scaled work below (the engine also charges the
        // per-chunk overhead from `RuntimeParams`, calibrated for one
        // batch).
        let eff = self.kernel_efficiency;
        let bw_scale = 1.0 / self.bandwidth_efficiency;
        let scaled: WorkFn = Rc::new(move |start, n| {
            let w = work(start, n);
            WorkUnit {
                flops: w.flops * eff,
                bytes: w.bytes * bw_scale,
            }
        });

        self.program.push(Phase {
            name: name.into(),
            items: global,
            policy: ChunkPolicy::Dynamic { chunk: batch_items },
            work: scaled,
        });
        self
    }

    pub fn finish(self) -> Program {
        self.program
    }
}

/// Launch options for a SYCL execution.
#[derive(Clone)]
pub struct SyclLaunch {
    /// Worker-pool size (the CPU device's compute units in the mask).
    pub num_threads: usize,
    pub affinities: Vec<CpuSet>,
    pub params: RuntimeParams,
    pub start_barrier: Option<BarrierId>,
    pub start: SimTime,
}

impl SyclLaunch {
    pub fn new(num_threads: usize, mask: CpuSet) -> Self {
        SyclLaunch {
            num_threads,
            affinities: vec![mask],
            params: default_params(),
            start_barrier: None,
            start: SimTime::ZERO,
        }
    }

    pub fn pinned(num_threads: usize, masks: Vec<CpuSet>) -> Self {
        assert_eq!(masks.len(), num_threads);
        SyclLaunch {
            num_threads,
            affinities: masks,
            params: default_params(),
            start_barrier: None,
            start: SimTime::ZERO,
        }
    }
}

/// Run a SYCL program: spawn the worker pool on `kernel`.
pub fn launch(kernel: &mut Kernel, program: Program, opts: SyclLaunch) -> TeamHandle {
    spawn_team(
        kernel,
        program,
        TeamOptions {
            nthreads: opts.num_threads,
            affinities: opts.affinities,
            params: opts.params,
            start_barrier: opts.start_barrier,
            name_prefix: "sycl".into(),
            start: opts.start,
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn submit_batches_workgroups() {
        let mut q = SyclQueue::new(4, 1.0);
        q.submit(
            "k",
            32_768,
            256,
            Rc::new(|_, n| WorkUnit::compute(n as f64)),
        );
        let p = q.finish();
        assert_eq!(p.phases.len(), 1);
        // 128 wgs into ~32 batches -> 4 wgs/batch -> 1024 items.
        match p.phases[0].policy {
            ChunkPolicy::Dynamic { chunk } => assert_eq!(chunk, 1024),
            _ => panic!("expected dynamic"),
        }
    }

    #[test]
    fn efficiency_scales_flops_not_bytes() {
        let mut q = SyclQueue::new(4, 1.5);
        q.submit(
            "k",
            100,
            10,
            Rc::new(|_, n| WorkUnit::new(n as f64, n as f64 * 8.0)),
        );
        let p = q.finish();
        let w = (p.phases[0].work)(0, 100);
        assert_eq!(w.flops, 150.0);
        assert_eq!(w.bytes, 800.0);
    }

    #[test]
    fn bandwidth_efficiency_inflates_bytes() {
        let mut q = SyclQueue::new(4, 1.0).with_bandwidth_efficiency(0.8);
        q.submit(
            "k",
            100,
            10,
            Rc::new(|_, n| WorkUnit::new(n as f64, n as f64 * 8.0)),
        );
        let p = q.finish();
        let w = (p.phases[0].work)(0, 100);
        assert_eq!(w.flops, 100.0);
        assert!((w.bytes - 1000.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "kernel_efficiency")]
    fn efficiency_below_one_rejected() {
        SyclQueue::new(4, 0.9);
    }

    #[test]
    fn tiny_kernels_get_single_batch() {
        let mut q = SyclQueue::new(8, 1.0);
        q.submit("k", 5, 256, Rc::new(|_, n| WorkUnit::compute(n as f64)));
        let p = q.finish();
        match p.phases[0].policy {
            ChunkPolicy::Dynamic { chunk } => assert!(chunk >= 5),
            _ => panic!(),
        }
    }
}
