//! Data-parallel program description shared by both runtime models.
//!
//! A program is a sequence of *phases* (an OpenMP parallel-for region or
//! a SYCL kernel). Each phase iterates over `items` work items whose
//! cost is given by a closure mapping an item range to a [`WorkUnit`].
//! How items are carved into chunks — and what overhead each chunk and
//! phase transition carries — is what distinguishes the OpenMP model
//! from the SYCL model.

use noiselab_machine::WorkUnit;
use noiselab_sim::SimDuration;
use std::rc::Rc;

/// Cost function of a phase: `(first_item, n_items) -> WorkUnit`.
pub type WorkFn = Rc<dyn Fn(usize, usize) -> WorkUnit>;

/// How a phase's items are divided among workers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChunkPolicy {
    /// Pre-partitioned: each worker owns a fixed set of blocks
    /// (OpenMP `schedule(static[,chunk])`). `chunk = None` gives each
    /// worker one contiguous block.
    Static { chunk: Option<usize> },
    /// First-come-first-served blocks of `chunk` items (OpenMP
    /// `schedule(dynamic,chunk)`; SYCL work-group dispatch).
    Dynamic { chunk: usize },
    /// Exponentially decreasing blocks, floor `min_chunk` (OpenMP
    /// `schedule(guided)`).
    Guided { min_chunk: usize },
}

/// One parallel region / kernel.
#[derive(Clone)]
pub struct Phase {
    pub name: String,
    pub items: usize,
    pub policy: ChunkPolicy,
    pub work: WorkFn,
}

impl std::fmt::Debug for Phase {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Phase")
            .field("name", &self.name)
            .field("items", &self.items)
            .field("policy", &self.policy)
            .finish()
    }
}

/// A whole workload expressed as phases.
#[derive(Debug, Clone, Default)]
pub struct Program {
    pub phases: Vec<Phase>,
}

impl Program {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn push(&mut self, phase: Phase) {
        self.phases.push(phase);
    }

    /// Total work of the program executed once by a single worker —
    /// useful for sanity checks and solo-time estimates.
    pub fn total_work(&self) -> WorkUnit {
        let mut acc = WorkUnit::default();
        for p in &self.phases {
            acc = acc + (p.work)(0, p.items);
        }
        acc
    }
}

/// Overheads and waiting behaviour of a runtime implementation.
#[derive(Debug, Clone, PartialEq)]
pub struct RuntimeParams {
    /// Unproductive CPU time charged per dispatched chunk (scheduling
    /// bookkeeping, work-group launch).
    pub chunk_overhead: SimDuration,
    /// Serial gap between phases: fork/join cost for OpenMP, kernel
    /// launch/submission latency for SYCL. Charged on the critical path.
    pub phase_gap: SimDuration,
    /// How long workers spin at a phase barrier before blocking.
    pub barrier_spin: SimDuration,
    /// One-time per-worker runtime initialisation (pool creation).
    pub startup: SimDuration,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn total_work_sums_phases() {
        let mut p = Program::new();
        p.push(Phase {
            name: "a".into(),
            items: 10,
            policy: ChunkPolicy::Static { chunk: None },
            work: Rc::new(|_, n| WorkUnit::compute(n as f64 * 5.0)),
        });
        p.push(Phase {
            name: "b".into(),
            items: 4,
            policy: ChunkPolicy::Dynamic { chunk: 1 },
            work: Rc::new(|_, n| WorkUnit::stream(n as f64 * 8.0)),
        });
        let w = p.total_work();
        assert_eq!(w.flops, 50.0);
        assert_eq!(w.bytes, 32.0);
    }
}
