//! OpenMP-style runtime model.
//!
//! Mirrors the behaviour of a libgomp-class CPU runtime as it matters to
//! noise resilience: near-zero dispatch cost, `schedule(static)` by
//! default (one contiguous block per thread — a single delayed thread
//! stalls the whole team at the implicit region barrier), cheap fork/
//! join between regions, and aggressive active spinning at barriers
//! (`OMP_WAIT_POLICY` unset behaviour).
//!
//! ```
//! use noiselab_kernel::{Kernel, KernelConfig};
//! use noiselab_machine::{Machine, WorkUnit};
//! use noiselab_runtime::omp::{launch, OmpLaunch, OmpProgram, OmpSchedule};
//! use noiselab_sim::SimTime;
//! use std::rc::Rc;
//!
//! let machine = Machine::intel_9700kf();
//! let mut kernel = Kernel::new(machine.clone(), KernelConfig::default(), 7);
//! let mut program = OmpProgram::new();
//! program.parallel_for(
//!     "saxpy",
//!     1 << 20,
//!     Some(OmpSchedule::Static { chunk: None }),
//!     Rc::new(|_, n| WorkUnit::new(n as f64 * 2.0, n as f64 * 12.0)),
//! );
//! let team = launch(
//!     &mut kernel,
//!     program.build(),
//!     OmpLaunch::new(8, machine.all_cpus()),
//! );
//! let end = kernel.run_until_exit(team.main(), SimTime::from_secs_f64(1.0)).unwrap();
//! assert!(end.as_secs_f64() < 0.01);
//! ```

use crate::program::{ChunkPolicy, Phase, Program, RuntimeParams, WorkFn};
use crate::team::{spawn_team, TeamHandle, TeamOptions};
use noiselab_kernel::{BarrierId, Kernel};
use noiselab_machine::CpuSet;
use noiselab_sim::{SimDuration, SimTime};

/// OpenMP `schedule(...)` clause.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub enum OmpSchedule {
    /// `schedule(static)` / `schedule(static, chunk)`.
    Static { chunk: Option<usize> },
    /// `schedule(dynamic, chunk)`.
    Dynamic { chunk: usize },
    /// `schedule(guided, min_chunk)`.
    Guided { min_chunk: usize },
}

impl Default for OmpSchedule {
    fn default() -> Self {
        OmpSchedule::Static { chunk: None }
    }
}

impl OmpSchedule {
    fn to_policy(self) -> ChunkPolicy {
        match self {
            OmpSchedule::Static { chunk } => ChunkPolicy::Static { chunk },
            OmpSchedule::Dynamic { chunk } => ChunkPolicy::Dynamic { chunk },
            OmpSchedule::Guided { min_chunk } => ChunkPolicy::Guided { min_chunk },
        }
    }
}

/// Runtime overheads of the modelled OpenMP implementation (GCC libgomp
/// on the paper's platforms).
pub fn default_params() -> RuntimeParams {
    RuntimeParams {
        // Dynamic-schedule bookkeeping per chunk; static pays it too but
        // with one chunk per region it is negligible.
        chunk_overhead: SimDuration::from_nanos(120),
        // Fork/join of a parallel region with a warm thread pool.
        phase_gap: SimDuration::from_micros(2),
        // libgomp busy-waits substantially before sleeping.
        barrier_spin: SimDuration::from_micros(300),
        startup: SimDuration::from_micros(30),
    }
}

/// Builder assembling an OpenMP program as a sequence of
/// `#pragma omp parallel for` regions.
#[derive(Default)]
pub struct OmpProgram {
    program: Program,
    default_schedule: OmpSchedule,
}

impl OmpProgram {
    pub fn new() -> Self {
        Self::default()
    }

    /// Set the schedule used when a region does not specify one
    /// (`OMP_SCHEDULE`).
    pub fn with_default_schedule(mut self, s: OmpSchedule) -> Self {
        self.default_schedule = s;
        self
    }

    /// Append a `parallel for` region over `items` iterations.
    pub fn parallel_for(
        &mut self,
        name: impl Into<String>,
        items: usize,
        schedule: Option<OmpSchedule>,
        work: WorkFn,
    ) -> &mut Self {
        let schedule = schedule.unwrap_or(self.default_schedule);
        self.program.push(Phase {
            name: name.into(),
            items,
            policy: schedule.to_policy(),
            work,
        });
        self
    }

    pub fn build(self) -> Program {
        self.program
    }
}

/// Launch options for an OpenMP execution.
#[derive(Clone)]
pub struct OmpLaunch {
    /// `OMP_NUM_THREADS`.
    pub num_threads: usize,
    /// Affinity: one mask for the whole team (roaming within the mask)
    /// or one mask per thread (`OMP_PROC_BIND=true` pinning).
    pub affinities: Vec<CpuSet>,
    pub params: RuntimeParams,
    pub start_barrier: Option<BarrierId>,
    pub start: SimTime,
}

impl OmpLaunch {
    pub fn new(num_threads: usize, mask: CpuSet) -> Self {
        OmpLaunch {
            num_threads,
            affinities: vec![mask],
            params: default_params(),
            start_barrier: None,
            start: SimTime::ZERO,
        }
    }

    /// Pin thread `i` to `masks[i]` (thread-pinning mitigation).
    pub fn pinned(num_threads: usize, masks: Vec<CpuSet>) -> Self {
        assert_eq!(masks.len(), num_threads);
        OmpLaunch {
            num_threads,
            affinities: masks,
            params: default_params(),
            start_barrier: None,
            start: SimTime::ZERO,
        }
    }
}

/// Run an OpenMP program: spawn the team on `kernel`.
pub fn launch(kernel: &mut Kernel, program: Program, opts: OmpLaunch) -> TeamHandle {
    spawn_team(
        kernel,
        program,
        TeamOptions {
            nthreads: opts.num_threads,
            affinities: opts.affinities,
            params: opts.params,
            start_barrier: opts.start_barrier,
            name_prefix: "omp".into(),
            start: opts.start,
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use noiselab_machine::WorkUnit;
    use std::rc::Rc;

    #[test]
    fn builder_accumulates_regions() {
        let mut b = OmpProgram::new();
        b.parallel_for("a", 100, None, Rc::new(|_, n| WorkUnit::compute(n as f64)));
        b.parallel_for(
            "b",
            200,
            Some(OmpSchedule::Dynamic { chunk: 8 }),
            Rc::new(|_, n| WorkUnit::stream(n as f64)),
        );
        let p = b.build();
        assert_eq!(p.phases.len(), 2);
        assert_eq!(p.phases[0].policy, ChunkPolicy::Static { chunk: None });
        assert_eq!(p.phases[1].policy, ChunkPolicy::Dynamic { chunk: 8 });
    }

    #[test]
    fn default_schedule_applies() {
        let mut b = OmpProgram::new().with_default_schedule(OmpSchedule::Guided { min_chunk: 4 });
        b.parallel_for("a", 100, None, Rc::new(|_, n| WorkUnit::compute(n as f64)));
        let p = b.build();
        assert_eq!(p.phases[0].policy, ChunkPolicy::Guided { min_chunk: 4 });
    }
}
