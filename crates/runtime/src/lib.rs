//! # noiselab-runtime
//!
//! Models of the two parallel programming systems the paper compares,
//! built on the simulated kernel:
//!
//! * [`omp`] — OpenMP-style fork-join regions with static / dynamic /
//!   guided schedules, near-zero dispatch cost and long barrier spins;
//! * [`sycl`] — SYCL-style in-order queues whose kernels decompose into
//!   dynamically dispatched work-groups, with per-kernel submission
//!   latency and per-work-group overhead.
//!
//! Both are thin front ends over the shared SPMD [`team`] engine; the
//! difference in noise resilience the paper measures falls out of the
//! chunking policy and overhead parameters, not from special-casing.

pub mod omp;
pub mod program;
pub mod sycl;
pub mod team;

pub use program::{ChunkPolicy, Phase, Program, RuntimeParams, WorkFn};
pub use team::{spawn_team, TeamHandle, TeamOptions};
