//! Replication accuracy of the injector (paper Table 7).
//!
//! Accuracy is the relative difference between the mean execution time
//! under injection and the execution time of the recorded anomaly the
//! configuration was built from: `Avg_exec / Anomaly_exec - 1`. The
//! paper reports the signed value per trace and the absolute value when
//! averaging.

use noiselab_sim::SimDuration;

/// Signed replication error: positive means injection ran slower than
/// the anomaly it replays.
pub fn replication_error(avg_exec: SimDuration, anomaly_exec: SimDuration) -> f64 {
    assert!(
        anomaly_exec > SimDuration::ZERO,
        "anomaly exec time must be positive"
    );
    avg_exec.nanos() as f64 / anomaly_exec.nanos() as f64 - 1.0
}

/// Absolute replication accuracy, the `|Avg/Anomaly - 1|` of the paper.
pub fn replication_accuracy(avg_exec: SimDuration, anomaly_exec: SimDuration) -> f64 {
    replication_error(avg_exec, anomaly_exec).abs()
}

/// Mean absolute accuracy across several (avg, anomaly) pairs.
pub fn mean_accuracy(pairs: &[(SimDuration, SimDuration)]) -> f64 {
    if pairs.is_empty() {
        return 0.0;
    }
    pairs
        .iter()
        .map(|&(a, b)| replication_accuracy(a, b))
        .sum::<f64>()
        / pairs.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_replication_is_zero() {
        assert_eq!(replication_error(SimDuration(100), SimDuration(100)), 0.0);
    }

    #[test]
    fn signed_error_direction() {
        assert!(replication_error(SimDuration(110), SimDuration(100)) > 0.0);
        assert!(replication_error(SimDuration(90), SimDuration(100)) < 0.0);
    }

    #[test]
    fn accuracy_is_absolute() {
        let e = replication_accuracy(SimDuration(90), SimDuration(100));
        assert!((e - 0.1).abs() < 1e-12);
    }

    #[test]
    fn mean_over_pairs() {
        let pairs = [
            (SimDuration(110), SimDuration(100)), // 0.10
            (SimDuration(95), SimDuration(100)),  // 0.05
        ];
        assert!((mean_accuracy(&pairs) - 0.075).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_anomaly_panics() {
        replication_error(SimDuration(1), SimDuration(0));
    }
}
