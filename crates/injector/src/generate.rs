//! Noise configuration generation (paper §4.2).
//!
//! From the set of baseline traces this module:
//!
//! 1. computes the *average system noise*: per-source average event
//!    frequency (events per run) and average duration — the inherent
//!    noise floor that will still be present during injection;
//! 2. takes the worst-case trace (longest execution) and subtracts the
//!    inherent noise from it: for each expected occurrence of a source,
//!    the event whose duration is closest to the source's average is
//!    reduced by the average duration (removed if nothing remains) —
//!    leaving only the residual "delta" noise to inject;
//! 3. maps each remaining event to a replay policy (`thread_noise` →
//!    `SCHED_OTHER`, `irq/softirq_noise` → `SCHED_FIFO`);
//! 4. merges events that overlap on the same CPU. Two strategies are
//!    implemented, mirroring the paper's §5.2 finding: the original
//!    *pessimistic* merge collapses everything that overlaps into one
//!    segment replayed under FIFO (which the paper found compromised a
//!    trace, 25.74 % accuracy error), and the *improved* merge keeps
//!    interrupt-based and thread-based noise separate and boosts the
//!    priority of thread-based noise (restoring accuracy to 5.70 %).

use crate::config::{
    policy_for_class, CpuNoiseList, InjectPolicy, InjectionConfig, NoiseEventSpec,
};
use noiselab_kernel::NoiseClass;
use noiselab_machine::CpuId;
use noiselab_noise::{RunTrace, TraceEvent, TraceSet};
use noiselab_sim::SimDuration;
use std::collections::BTreeMap;

/// Per-source inherent-noise statistics across the baseline runs.
#[derive(Debug, Clone, PartialEq)]
pub struct SourceStats {
    /// Average number of occurrences per run.
    pub avg_count: f64,
    /// Average event duration.
    pub avg_duration: SimDuration,
    /// Total events observed over all runs.
    pub total_count: usize,
}

/// Average frequency and duration of every noise source across all runs
/// (step 1). Deterministic ordering via `BTreeMap`.
pub fn source_statistics(traces: &TraceSet) -> BTreeMap<String, SourceStats> {
    let mut sums: BTreeMap<String, (usize, u128)> = BTreeMap::new();
    for run in &traces.runs {
        for e in &run.events {
            let entry = sums.entry(e.source.clone()).or_insert((0, 0));
            entry.0 += 1;
            entry.1 += e.duration.nanos() as u128;
        }
    }
    let n_runs = traces.runs.len().max(1);
    sums.into_iter()
        .map(|(src, (count, dur))| {
            let stats = SourceStats {
                avg_count: count as f64 / n_runs as f64,
                avg_duration: SimDuration((dur / count.max(1) as u128) as u64),
                total_count: count,
            };
            (src, stats)
        })
        .collect()
}

/// Merge strategy for overlapping events on one CPU (paper §5.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum MergeStrategy {
    /// Original behaviour: merge *all* overlapping events into a single
    /// segment and pessimistically replay it under `SCHED_FIFO` if any
    /// constituent was FIFO. Produces long RT segments from diverse
    /// noise and compromised one of the paper's traces.
    NaivePessimistic,
    /// Improved behaviour: never merge interrupt-based with thread-based
    /// noise; boost the initial priority of thread-based noise (nice −5)
    /// so the scheduler replays it aggressively enough.
    Improved,
}

use serde::{Deserialize, Serialize};

/// Knobs for configuration generation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GeneratorOptions {
    pub merge: MergeStrategy,
    /// Drop residual events shorter than this after delta subtraction
    /// (they are indistinguishable from inherent noise).
    pub min_residual: SimDuration,
    /// Gap-bridging threshold of the naive merge: events on one CPU
    /// separated by less than this are glued into one segment. This is
    /// the pessimistic part — on a contended CPU, noise fragments from
    /// different sources alternate with the workload's own timeslices,
    /// and bridging injects those workload turns as noise too.
    pub naive_gap_bridge: SimDuration,
}

impl Default for GeneratorOptions {
    fn default() -> Self {
        GeneratorOptions {
            merge: MergeStrategy::Improved,
            min_residual: SimDuration::from_nanos(500),
            naive_gap_bridge: SimDuration::from_millis(5),
        }
    }
}

impl GeneratorOptions {
    fn thread_nice(&self) -> i8 {
        match self.merge {
            MergeStrategy::NaivePessimistic => 0,
            MergeStrategy::Improved => -5,
        }
    }
}

/// Step 2: subtract the inherent (average) noise from the worst-case
/// trace. Returns the surviving residual events.
///
/// For each source, `round(avg_count)` occurrences are expected to recur
/// naturally during injection; for each expected occurrence, the event
/// with duration closest to the source average is reduced by the average
/// duration (dropped if nothing meaningful remains).
pub fn subtract_average(
    worst: &RunTrace,
    stats: &BTreeMap<String, SourceStats>,
    min_residual: SimDuration,
) -> Vec<TraceEvent> {
    let mut events: Vec<TraceEvent> = worst.events.clone();
    let mut alive: Vec<bool> = vec![true; events.len()];

    for (source, s) in stats {
        let expected = s.avg_count.round() as usize;
        for _ in 0..expected {
            // Closest-to-average live event of this source.
            let mut best: Option<(usize, u64)> = None;
            for (i, e) in events.iter().enumerate() {
                if !alive[i] || e.source != *source {
                    continue;
                }
                let diff = e.duration.nanos().abs_diff(s.avg_duration.nanos());
                if best.is_none_or(|(_, d)| diff < d) {
                    best = Some((i, diff));
                }
            }
            let Some((i, _)) = best else { break };
            if events[i].duration > s.avg_duration {
                events[i].duration -= s.avg_duration;
                if events[i].duration < min_residual {
                    alive[i] = false;
                }
            } else {
                alive[i] = false;
            }
        }
    }

    events
        .into_iter()
        .zip(alive)
        .filter_map(|(e, a)| (a && e.duration >= min_residual).then_some(e))
        .collect()
}

/// Steps 3–4: assign policies and merge per-CPU overlaps, producing the
/// final configuration.
pub fn build_config(
    origin: impl Into<String>,
    anomaly_exec: SimDuration,
    residual: Vec<TraceEvent>,
    opts: &GeneratorOptions,
) -> InjectionConfig {
    // Group events per CPU.
    let mut per_cpu: BTreeMap<u32, Vec<TraceEvent>> = BTreeMap::new();
    for e in residual {
        per_cpu.entry(e.cpu.0).or_default().push(e);
    }

    let mut lists = Vec::new();
    for (cpu, mut events) in per_cpu {
        events.sort_by_key(|e| (e.start, e.duration));
        let merged = match opts.merge {
            MergeStrategy::NaivePessimistic => {
                merge_all_pessimistic(&events, opts.naive_gap_bridge)
            }
            MergeStrategy::Improved => merge_by_category(&events, opts.thread_nice()),
        };
        if !merged.is_empty() {
            lists.push(CpuNoiseList {
                cpu: CpuId(cpu),
                events: merged,
            });
        }
    }
    InjectionConfig {
        origin: origin.into(),
        anomaly_exec,
        lists,
    }
}

/// The complete pipeline: statistics → worst-case selection → delta
/// subtraction → policy mapping and merging.
pub fn generate(
    origin: impl Into<String>,
    traces: &TraceSet,
    opts: &GeneratorOptions,
) -> Option<InjectionConfig> {
    let worst = traces.worst()?;
    let stats = source_statistics(traces);
    let residual = subtract_average(worst, &stats, opts.min_residual);
    Some(build_config(origin, worst.exec_time, residual, opts))
}

fn is_rt_class(class: NoiseClass) -> bool {
    matches!(class, NoiseClass::Irq | NoiseClass::Softirq)
}

/// Naive merge: any chain of overlapping (or nearly adjacent, within
/// `bridge`) events becomes one segment spanning first start to last
/// end; if any member was IRQ-based the whole segment replays under
/// FIFO. This reproduces the paper's original compromised behaviour.
fn merge_all_pessimistic(events: &[TraceEvent], bridge: SimDuration) -> Vec<NoiseEventSpec> {
    let mut out: Vec<NoiseEventSpec> = Vec::new();
    for e in events {
        let policy = policy_for_class(e.class, 0);
        match out.last_mut() {
            Some(last) if e.start < last.end() + bridge => {
                // Extend the segment; escalate to FIFO if needed.
                let new_end = last.end().max(e.end());
                last.duration = new_end - last.start;
                if policy == InjectPolicy::Fifo {
                    last.policy = InjectPolicy::Fifo;
                }
                if !last.source.contains(&e.source) {
                    last.source.push('+');
                    last.source.push_str(&e.source);
                }
            }
            _ => out.push(NoiseEventSpec {
                start: e.start,
                duration: e.duration,
                policy,
                source: e.source.clone(),
            }),
        }
    }
    out
}

/// Improved merge: interrupt-based and thread-based noise are merged
/// independently (so thread noise is never escalated to FIFO), and
/// thread noise gets a boosted priority.
fn merge_by_category(events: &[TraceEvent], thread_nice: i8) -> Vec<NoiseEventSpec> {
    let (rt, fair): (Vec<&TraceEvent>, Vec<&TraceEvent>) =
        events.iter().partition(|e| is_rt_class(e.class));

    let merge_one = |subset: &[&TraceEvent], policy: InjectPolicy| -> Vec<NoiseEventSpec> {
        let mut out: Vec<NoiseEventSpec> = Vec::new();
        for e in subset {
            match out.last_mut() {
                Some(last) if e.start < last.end() => {
                    let new_end = last.end().max(e.end());
                    last.duration = new_end - last.start;
                    if !last.source.contains(&e.source) {
                        last.source.push('+');
                        last.source.push_str(&e.source);
                    }
                }
                _ => out.push(NoiseEventSpec {
                    start: e.start,
                    duration: e.duration,
                    policy,
                    source: e.source.clone(),
                }),
            }
        }
        out
    };

    let mut merged = merge_one(&rt, InjectPolicy::Fifo);
    merged.extend(merge_one(&fair, InjectPolicy::Other { nice: thread_nice }));
    merged.sort_by_key(|e| (e.start, e.duration));
    merged
}

#[cfg(test)]
mod tests {
    use super::*;
    use noiselab_sim::SimTime;

    fn ev(cpu: u32, class: NoiseClass, source: &str, start: u64, dur: u64) -> TraceEvent {
        TraceEvent {
            cpu: CpuId(cpu),
            class,
            source: source.into(),
            start: SimTime(start),
            duration: SimDuration(dur),
        }
    }

    fn run(idx: usize, exec_ns: u64, events: Vec<TraceEvent>) -> RunTrace {
        RunTrace::new(idx, SimDuration(exec_ns), events)
    }

    #[test]
    fn statistics_average_counts_and_durations() {
        let set = TraceSet {
            runs: vec![
                run(0, 100, vec![ev(0, NoiseClass::Thread, "kworker", 0, 100)]),
                run(
                    1,
                    120,
                    vec![
                        ev(0, NoiseClass::Thread, "kworker", 0, 300),
                        ev(1, NoiseClass::Irq, "timer", 5, 50),
                    ],
                ),
            ],
        };
        let stats = source_statistics(&set);
        assert_eq!(stats["kworker"].avg_count, 1.0);
        assert_eq!(stats["kworker"].avg_duration, SimDuration(200));
        assert_eq!(stats["timer"].avg_count, 0.5);
        assert_eq!(stats["timer"].total_count, 1);
    }

    #[test]
    fn subtract_removes_expected_occurrences() {
        // Average: 1 kworker event of 200ns per run. Worst trace has two
        // kworker events (150ns, 5000ns): the one closest to 200ns is
        // reduced (150-200 <= 0 -> removed); the outlier survives.
        let mut stats = BTreeMap::new();
        stats.insert(
            "kworker".to_string(),
            SourceStats {
                avg_count: 1.0,
                avg_duration: SimDuration(200),
                total_count: 2,
            },
        );
        let worst = run(
            0,
            1000,
            vec![
                ev(0, NoiseClass::Thread, "kworker", 0, 150),
                ev(0, NoiseClass::Thread, "kworker", 500, 5000),
            ],
        );
        let res = subtract_average(&worst, &stats, SimDuration(100));
        assert_eq!(res.len(), 1);
        assert_eq!(res[0].duration, SimDuration(5000));
    }

    #[test]
    fn subtract_reduces_durations() {
        let mut stats = BTreeMap::new();
        stats.insert(
            "kworker".to_string(),
            SourceStats {
                avg_count: 1.0,
                avg_duration: SimDuration(1000),
                total_count: 1,
            },
        );
        let worst = run(0, 1000, vec![ev(0, NoiseClass::Thread, "kworker", 0, 4000)]);
        let res = subtract_average(&worst, &stats, SimDuration(100));
        assert_eq!(res.len(), 1);
        assert_eq!(res[0].duration, SimDuration(3000));
    }

    #[test]
    fn subtract_conserves_noise_mass() {
        // Total residual == total worst - subtracted amounts (within the
        // dropped small events).
        let mut stats = BTreeMap::new();
        stats.insert(
            "a".to_string(),
            SourceStats {
                avg_count: 2.0,
                avg_duration: SimDuration(100),
                total_count: 4,
            },
        );
        let worst = run(
            0,
            1000,
            vec![
                ev(0, NoiseClass::Thread, "a", 0, 500),
                ev(0, NoiseClass::Thread, "a", 600, 90),
                ev(0, NoiseClass::Thread, "a", 800, 700),
            ],
        );
        let res = subtract_average(&worst, &stats, SimDuration(1));
        // Events closest to 100: the 90 (removed), then the 500 -> 400.
        let total: u64 = res.iter().map(|e| e.duration.nanos()).sum();
        assert_eq!(total, 400 + 700);
    }

    #[test]
    fn pessimistic_merge_escalates_to_fifo() {
        let events = vec![
            ev(0, NoiseClass::Thread, "kworker", 0, 1000),
            ev(0, NoiseClass::Irq, "timer", 500, 100),
            ev(0, NoiseClass::Thread, "kworker2", 550, 2000),
        ];
        let merged = merge_all_pessimistic(&events, SimDuration::ZERO);
        assert_eq!(merged.len(), 1);
        assert_eq!(merged[0].policy, InjectPolicy::Fifo);
        assert_eq!(merged[0].start, SimTime(0));
        assert_eq!(merged[0].duration, SimDuration(2550));
    }

    #[test]
    fn improved_merge_keeps_thread_noise_fair() {
        let events = vec![
            ev(0, NoiseClass::Thread, "kworker", 0, 1000),
            ev(0, NoiseClass::Irq, "timer", 500, 100),
            ev(0, NoiseClass::Thread, "kworker2", 550, 2000),
        ];
        let merged = merge_by_category(&events, -5);
        // Thread chain merged (0..2550 overlap), IRQ separate.
        assert_eq!(merged.len(), 2);
        let fair: Vec<_> = merged
            .iter()
            .filter(|e| matches!(e.policy, InjectPolicy::Other { .. }))
            .collect();
        let rt: Vec<_> = merged
            .iter()
            .filter(|e| e.policy == InjectPolicy::Fifo)
            .collect();
        assert_eq!(fair.len(), 1);
        assert_eq!(fair[0].policy, InjectPolicy::Other { nice: -5 });
        assert_eq!(fair[0].duration, SimDuration(2550));
        assert_eq!(rt.len(), 1);
        assert_eq!(rt[0].duration, SimDuration(100));
    }

    #[test]
    fn non_overlapping_events_not_merged() {
        let events = vec![
            ev(0, NoiseClass::Thread, "a", 0, 100),
            ev(0, NoiseClass::Thread, "b", 200, 100),
        ];
        assert_eq!(merge_all_pessimistic(&events, SimDuration::ZERO).len(), 2);
        // With a bridge wider than the gap, the naive merge glues them.
        assert_eq!(merge_all_pessimistic(&events, SimDuration(150)).len(), 1);
        assert_eq!(merge_by_category(&events, 0).len(), 2);
    }

    #[test]
    fn full_pipeline_produces_sorted_valid_config() {
        // Four runs so the anomaly-only sources (storm, nvme) have an
        // average frequency that rounds to zero and survive subtraction.
        let set = TraceSet {
            runs: vec![
                run(
                    0,
                    1_000,
                    vec![ev(0, NoiseClass::Thread, "kworker", 10, 200)],
                ),
                run(
                    1,
                    1_010,
                    vec![ev(0, NoiseClass::Thread, "kworker", 12, 190)],
                ),
                run(2, 990, vec![ev(0, NoiseClass::Thread, "kworker", 9, 205)]),
                run(
                    3,
                    5_000,
                    vec![
                        ev(0, NoiseClass::Thread, "kworker", 10, 210),
                        ev(0, NoiseClass::Thread, "storm", 100, 4_000),
                        ev(1, NoiseClass::Irq, "nvme:64", 50, 900),
                    ],
                ),
            ],
        };
        let cfg = generate("test", &set, &GeneratorOptions::default()).unwrap();
        cfg.validate().unwrap();
        assert_eq!(cfg.anomaly_exec, SimDuration(5_000));
        // The average kworker event is subtracted; storm + irq survive.
        assert_eq!(cfg.event_count(), 2);
        let sources: Vec<_> = cfg
            .lists
            .iter()
            .flat_map(|l| l.events.iter().map(|e| e.source.clone()))
            .collect();
        assert!(sources.contains(&"storm".to_string()));
        assert!(sources.contains(&"nvme:64".to_string()));
    }

    #[test]
    fn empty_traceset_yields_none() {
        assert!(generate("x", &TraceSet::default(), &GeneratorOptions::default()).is_none());
    }
}
