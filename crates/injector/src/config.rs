//! The noise-injection configuration file (paper Fig. 5).
//!
//! Each logical CPU present in the refined worst-case trace maps to a
//! list of noise events annotated with start time (relative to the
//! synchronised start), duration, and the scheduling policy to replay
//! under. The file serialises to JSON, as in the paper.

use noiselab_kernel::NoiseClass;
use noiselab_machine::CpuId;
use noiselab_sim::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};

/// Scheduling policy assigned to a replayed noise event.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum InjectPolicy {
    /// `SCHED_FIFO` — used for events that were IRQ or softirq noise.
    Fifo,
    /// `SCHED_OTHER` with the given nice value — used for thread noise.
    Other { nice: i8 },
}

impl InjectPolicy {
    pub fn to_kernel(self) -> noiselab_kernel::Policy {
        match self {
            InjectPolicy::Fifo => noiselab_kernel::Policy::Fifo { prio: 50 },
            InjectPolicy::Other { nice } => noiselab_kernel::Policy::Other { nice },
        }
    }
}

/// One noise event to inject.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NoiseEventSpec {
    /// Start relative to the synchronised start barrier.
    pub start: SimTime,
    pub duration: SimDuration,
    pub policy: InjectPolicy,
    /// Originating source, kept for inspection/debugging.
    pub source: String,
}

impl NoiseEventSpec {
    pub fn end(&self) -> SimTime {
        self.start + self.duration
    }
}

/// The event list for one injector process.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CpuNoiseList {
    /// The logical CPU the events were observed on. Informational: the
    /// injector processes deliberately carry *no* affinity (paper §4.3),
    /// so replay may land elsewhere.
    pub cpu: CpuId,
    /// Events sorted by start time.
    pub events: Vec<NoiseEventSpec>,
}

/// A complete injection configuration.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct InjectionConfig {
    /// Free-form description of the origin (workload, config, run index).
    pub origin: String,
    /// Execution time of the anomalous run this config was derived from;
    /// the denominator of the accuracy metric (paper Table 7).
    pub anomaly_exec: SimDuration,
    pub lists: Vec<CpuNoiseList>,
}

impl InjectionConfig {
    /// Total noise duration in the configuration.
    pub fn total_noise(&self) -> SimDuration {
        let ns = self
            .lists
            .iter()
            .flat_map(|l| l.events.iter())
            .map(|e| e.duration.nanos())
            .sum();
        SimDuration(ns)
    }

    /// Number of events across all CPUs.
    pub fn event_count(&self) -> usize {
        self.lists.iter().map(|l| l.events.len()).sum()
    }

    /// Fraction of total noise that replays under `SCHED_FIFO`.
    pub fn fifo_fraction(&self) -> f64 {
        let total = self.total_noise().nanos() as f64;
        if total == 0.0 {
            return 0.0;
        }
        let fifo: u64 = self
            .lists
            .iter()
            .flat_map(|l| l.events.iter())
            .filter(|e| e.policy == InjectPolicy::Fifo)
            .map(|e| e.duration.nanos())
            .sum();
        fifo as f64 / total
    }

    /// Serialise to the JSON configuration file format.
    pub fn to_json(&self) -> Result<String, serde_json::Error> {
        serde_json::to_string_pretty(self)
    }

    pub fn from_json(s: &str) -> Result<Self, serde_json::Error> {
        serde_json::from_str(s)
    }

    /// Sanity invariants: events sorted, no zero durations.
    pub fn validate(&self) -> Result<(), String> {
        for l in &self.lists {
            let mut prev = SimTime::ZERO;
            for e in &l.events {
                if e.duration == SimDuration::ZERO {
                    return Err(format!("zero-duration event on {}", l.cpu));
                }
                if e.start < prev {
                    return Err(format!("unsorted events on {}", l.cpu));
                }
                prev = e.start;
            }
        }
        Ok(())
    }
}

/// Map an osnoise event class to its replay policy (paper §4.2): thread
/// noise replays under the default policy; IRQ and softirq noise replay
/// under real-time FIFO so they preempt the workload as hardware would.
pub fn policy_for_class(class: NoiseClass, thread_nice: i8) -> InjectPolicy {
    match class {
        NoiseClass::Irq | NoiseClass::Softirq => InjectPolicy::Fifo,
        NoiseClass::Thread => InjectPolicy::Other { nice: thread_nice },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(start: u64, dur: u64, policy: InjectPolicy) -> NoiseEventSpec {
        NoiseEventSpec {
            start: SimTime(start),
            duration: SimDuration(dur),
            policy,
            source: "s".into(),
        }
    }

    #[test]
    fn totals_and_fifo_fraction() {
        let cfg = InjectionConfig {
            origin: "test".into(),
            anomaly_exec: SimDuration(100),
            lists: vec![CpuNoiseList {
                cpu: CpuId(0),
                events: vec![
                    ev(0, 300, InjectPolicy::Fifo),
                    ev(500, 700, InjectPolicy::Other { nice: 0 }),
                ],
            }],
        };
        assert_eq!(cfg.total_noise(), SimDuration(1000));
        assert_eq!(cfg.event_count(), 2);
        assert!((cfg.fifo_fraction() - 0.3).abs() < 1e-12);
        cfg.validate().unwrap();
    }

    #[test]
    fn validate_rejects_unsorted() {
        let cfg = InjectionConfig {
            origin: String::new(),
            anomaly_exec: SimDuration(0),
            lists: vec![CpuNoiseList {
                cpu: CpuId(0),
                events: vec![
                    ev(500, 10, InjectPolicy::Fifo),
                    ev(100, 10, InjectPolicy::Fifo),
                ],
            }],
        };
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn validate_rejects_zero_duration() {
        let cfg = InjectionConfig {
            origin: String::new(),
            anomaly_exec: SimDuration(0),
            lists: vec![CpuNoiseList {
                cpu: CpuId(0),
                events: vec![ev(0, 0, InjectPolicy::Fifo)],
            }],
        };
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn json_roundtrip() {
        let cfg = InjectionConfig {
            origin: "nbody/intel/Rm-OMP#1".into(),
            anomaly_exec: SimDuration(123_456_789),
            lists: vec![CpuNoiseList {
                cpu: CpuId(3),
                events: vec![ev(10, 20, InjectPolicy::Other { nice: -5 })],
            }],
        };
        let s = cfg.to_json().unwrap();
        let back = InjectionConfig::from_json(&s).unwrap();
        assert_eq!(cfg, back);
    }

    #[test]
    fn class_policy_mapping() {
        assert_eq!(policy_for_class(NoiseClass::Irq, 0), InjectPolicy::Fifo);
        assert_eq!(policy_for_class(NoiseClass::Softirq, 0), InjectPolicy::Fifo);
        assert_eq!(
            policy_for_class(NoiseClass::Thread, -5),
            InjectPolicy::Other { nice: -5 }
        );
    }
}
