//! Noise replay during workload execution (paper §4.3, Listing 1).
//!
//! One injector process is spawned per CPU list in the configuration.
//! The processes carry **no CPU affinity** — if the workload does not
//! run on the exact cores of the recorded worst case, the injected noise
//! still lands wherever the scheduler puts it, which is what lets
//! housekeeping cores absorb it.
//!
//! Every injector and the workload synchronise on a shared start
//! barrier; after release each injector walks its event list: switch
//! policy if needed, sleep until the event's start time, then occupy the
//! CPU for the event's duration.

use crate::config::{CpuNoiseList, InjectPolicy, InjectionConfig};
use noiselab_kernel::{
    Action, BarrierId, Behavior, Ctx, Kernel, Policy, ThreadId, ThreadKind, ThreadSpec,
};
use noiselab_sim::{SimDuration, SimTime};

/// How long injectors spin at the start barrier before blocking. Short:
/// the workload may take a while to initialise.
const START_SPIN: SimDuration = SimDuration(100_000);

enum Phase {
    /// Raise to real-time priority so the post-barrier start is prompt
    /// even on a saturated machine.
    RaisePriority,
    /// Waiting to synchronise with peers and the workload.
    AwaitBarrier,
    /// Walking the event list; `origin` is the barrier release time.
    Run {
        origin: Option<SimTime>,
        idx: usize,
        policy_set: bool,
    },
}

/// The behavior of one injector process (paper Listing 1).
pub struct InjectorProcess {
    list: CpuNoiseList,
    start_barrier: BarrierId,
    phase: Phase,
    current_policy: InjectPolicy,
}

impl InjectorProcess {
    pub fn new(list: CpuNoiseList, start_barrier: BarrierId) -> Self {
        InjectorProcess {
            list,
            start_barrier,
            phase: Phase::RaisePriority,
            current_policy: InjectPolicy::Fifo,
        }
    }
}

impl Behavior for InjectorProcess {
    fn next(&mut self, ctx: &mut Ctx<'_>) -> Action {
        match &mut self.phase {
            Phase::RaisePriority => {
                self.phase = Phase::AwaitBarrier;
                Action::SetPolicy(InjectPolicy::Fifo.to_kernel())
            }
            Phase::AwaitBarrier => {
                self.phase = Phase::Run {
                    origin: None,
                    idx: 0,
                    policy_set: false,
                };
                Action::Barrier {
                    id: self.start_barrier,
                    spin: START_SPIN,
                }
            }
            Phase::Run {
                origin,
                idx,
                policy_set,
            } => {
                // First step after barrier release: anchor the timeline.
                let origin = *origin.get_or_insert(ctx.now);
                let Some(event) = self.list.events.get(*idx) else {
                    return Action::Exit;
                };
                // 1. Match the event's scheduling policy.
                if !*policy_set && self.current_policy != event.policy {
                    self.current_policy = event.policy;
                    *policy_set = true;
                    return Action::SetPolicy(event.policy.to_kernel());
                }
                // 2. Sleep until the event's start time.
                let at = origin + (event.start - SimTime::ZERO);
                if ctx.now < at {
                    *policy_set = true;
                    return Action::SleepUntil(at);
                }
                // 3. Occupy the CPU for the duration (wall occupancy, as
                // recorded by the tracer), then advance.
                let dur = event.duration;
                *idx += 1;
                *policy_set = false;
                Action::BurnWall(dur)
            }
        }
    }

    fn label(&self) -> &str {
        "injector"
    }
}

/// Spawn the injector processes for `config` into `kernel`, synchronised
/// on `start_barrier`. Returns their thread ids.
///
/// `start_barrier` must have been created with
/// `config.lists.len() + <number of workload parties>` parties.
pub fn spawn_injectors(
    kernel: &mut Kernel,
    config: &InjectionConfig,
    start_barrier: BarrierId,
) -> Vec<ThreadId> {
    config
        .lists
        .iter()
        .map(|list| {
            let spec = ThreadSpec::new(format!("injector/{}", list.cpu.0), ThreadKind::Injector)
                // No affinity (paper §4.3): the injector may run anywhere.
                .policy(Policy::NORMAL);
            kernel.spawn(
                spec,
                Box::new(InjectorProcess::new(list.clone(), start_barrier)),
            )
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::NoiseEventSpec;
    use noiselab_kernel::{KernelConfig, ScriptBehavior};
    use noiselab_machine::{CpuId, CpuSet, Machine, PerfModel, WorkUnit};

    fn machine(cores: usize) -> Machine {
        Machine {
            name: "t".into(),
            cores,
            smt: 1,
            perf: PerfModel {
                flops_per_ns: 1.0,
                smt_factor: 1.0,
                per_core_bw: 10.0,
                socket_bw: 40.0,
            },
            migration_cost: SimDuration::ZERO,
            ctx_switch: SimDuration::ZERO,
            wake_latency: SimDuration::ZERO,
            tick_period: SimDuration::from_millis(4),
            reserved_cpus: CpuSet::EMPTY,
            numa_domains: 1,
            dvfs: Default::default(),
        }
    }

    fn quiet_cfg() -> KernelConfig {
        KernelConfig {
            timer_irq_mean: SimDuration::from_nanos(200),
            timer_irq_sd: SimDuration::ZERO,
            softirq_prob: 0.0,
            ..KernelConfig::default()
        }
    }

    fn fifo_event(start_ms: u64, dur_ms: u64) -> NoiseEventSpec {
        NoiseEventSpec {
            start: SimTime(start_ms * 1_000_000),
            duration: SimDuration::from_millis(dur_ms),
            policy: InjectPolicy::Fifo,
            source: "test".into(),
        }
    }

    /// A 1-CPU machine: a FIFO event injected at +2ms for 3ms must delay
    /// a 10ms workload to ~13ms.
    #[test]
    fn injected_fifo_noise_delays_workload() {
        let mut k = Kernel::new(machine(1), quiet_cfg(), 1);
        let bar = k.new_barrier(2); // 1 injector + workload
        let cfg = InjectionConfig {
            origin: "t".into(),
            anomaly_exec: SimDuration::from_millis(13),
            lists: vec![CpuNoiseList {
                cpu: CpuId(0),
                events: vec![fifo_event(2, 3)],
            }],
        };
        let injectors = spawn_injectors(&mut k, &cfg, bar);
        assert_eq!(injectors.len(), 1);
        let w = k.spawn(
            ThreadSpec::new("workload", ThreadKind::Workload),
            Box::new(ScriptBehavior::new(vec![
                Action::Barrier {
                    id: bar,
                    spin: SimDuration::from_micros(100),
                },
                Action::Compute(WorkUnit::compute(10_000_000.0)),
            ])),
        );
        let end = k
            .run_until_exit(w, SimTime::from_secs_f64(1.0))
            .unwrap()
            .as_secs_f64();
        assert!((0.0129..0.0133).contains(&end), "end={end}");
    }

    /// Multiple events replay in order with correct gaps.
    #[test]
    fn replays_event_sequence() {
        let mut k = Kernel::new(machine(1), quiet_cfg(), 1);
        let bar = k.new_barrier(2);
        let cfg = InjectionConfig {
            origin: "t".into(),
            anomaly_exec: SimDuration::ZERO,
            lists: vec![CpuNoiseList {
                cpu: CpuId(0),
                events: vec![fifo_event(1, 1), fifo_event(4, 2)],
            }],
        };
        let inj = spawn_injectors(&mut k, &cfg, bar);
        let w = k.spawn(
            ThreadSpec::new("workload", ThreadKind::Workload),
            Box::new(ScriptBehavior::new(vec![
                Action::Barrier {
                    id: bar,
                    spin: SimDuration::from_micros(100),
                },
                Action::Compute(WorkUnit::compute(10_000_000.0)),
            ])),
        );
        let e_inj = k
            .run_until_exit(inj[0], SimTime::from_secs_f64(1.0))
            .unwrap()
            .as_secs_f64();
        // Last event ends at 4+2 = 6 ms after origin.
        assert!((0.0059..0.0063).contains(&e_inj), "e_inj={e_inj}");
        let e_w = k
            .run_until_exit(w, SimTime::from_secs_f64(1.0))
            .unwrap()
            .as_secs_f64();
        // 10 ms work + 3 ms stolen.
        assert!((0.0129..0.0133).contains(&e_w), "e_w={e_w}");
    }

    /// Injectors with no affinity prefer idle CPUs: on a 2-CPU machine
    /// with the workload pinned to cpu0, other-policy noise should land
    /// on cpu1 and barely disturb the workload.
    #[test]
    fn unpinned_noise_prefers_idle_cpu() {
        let mut k = Kernel::new(machine(2), quiet_cfg(), 1);
        let bar = k.new_barrier(2);
        let cfg = InjectionConfig {
            origin: "t".into(),
            anomaly_exec: SimDuration::ZERO,
            lists: vec![CpuNoiseList {
                cpu: CpuId(0),
                events: vec![NoiseEventSpec {
                    start: SimTime(2_000_000),
                    duration: SimDuration::from_millis(5),
                    policy: InjectPolicy::Other { nice: 0 },
                    source: "kworker".into(),
                }],
            }],
        };
        spawn_injectors(&mut k, &cfg, bar);
        let w = k.spawn(
            ThreadSpec::new("workload", ThreadKind::Workload).affinity(CpuSet::single(CpuId(0))),
            Box::new(ScriptBehavior::new(vec![
                Action::Barrier {
                    id: bar,
                    spin: SimDuration::from_micros(100),
                },
                Action::Compute(WorkUnit::compute(10_000_000.0)),
            ])),
        );
        let e = k
            .run_until_exit(w, SimTime::from_secs_f64(1.0))
            .unwrap()
            .as_secs_f64();
        assert!(
            e < 0.0105,
            "noise should have landed on the idle cpu: e={e}"
        );
    }
}
