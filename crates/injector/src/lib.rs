//! # noiselab-injector
//!
//! The paper's noise injector, end to end:
//!
//! 1. **System trace collection** is done by running workloads with the
//!    tracer of `noiselab-noise` attached (driven by the harness in
//!    `noiselab-core`);
//! 2. **Noise configuration generation** ([`generate`]) turns a
//!    [`noiselab_noise::TraceSet`] into an [`InjectionConfig`]: average
//!    inherent noise is computed per source, subtracted from the
//!    worst-case trace (the "delta" refinement of paper Fig. 4), events
//!    are mapped to replay policies and merged per CPU — with both the
//!    original pessimistic and the improved merge strategy of §5.2;
//! 3. **Noise injection** ([`replay`]) spawns one affinity-free process
//!    per configured CPU that synchronises with the workload on a start
//!    barrier and replays its event list under the configured policies
//!    (paper Listing 1);
//! 4. **Accuracy** ([`accuracy`]) computes the replication error metric
//!    of paper Table 7.
//!
//! ```
//! use noiselab_injector::{generate, GeneratorOptions};
//! use noiselab_kernel::NoiseClass;
//! use noiselab_machine::CpuId;
//! use noiselab_noise::{RunTrace, TraceEvent, TraceSet};
//! use noiselab_sim::{SimDuration, SimTime};
//!
//! // Four quiet traced runs plus one carrying a 5 ms anomaly burst.
//! let event = |source: &str, start: u64, dur: u64| TraceEvent {
//!     cpu: CpuId(0),
//!     class: NoiseClass::Thread,
//!     source: source.into(),
//!     start: SimTime(start),
//!     duration: SimDuration(dur),
//! };
//! let quiet = |i: usize| RunTrace::new(
//!     i,
//!     SimDuration(1_000_000),
//!     vec![event("kworker/0:1", 10_000, 20_000)],
//! );
//! let worst = RunTrace::new(
//!     4,
//!     SimDuration(6_000_000),
//!     vec![
//!         event("kworker/0:1", 10_000, 20_000),
//!         event("update-storm", 50_000, 5_000_000),
//!     ],
//! );
//! let traces = TraceSet { runs: vec![quiet(0), quiet(1), quiet(2), quiet(3), worst] };
//! let config = generate("doc", &traces, &GeneratorOptions::default()).unwrap();
//! // The recurring kworker noise is subtracted as inherent (it will
//! // reoccur naturally during injection); only the anomaly delta stays.
//! assert_eq!(config.event_count(), 1);
//! assert_eq!(config.total_noise(), SimDuration(5_000_000));
//! assert_eq!(config.anomaly_exec, SimDuration(6_000_000));
//! ```

pub mod accuracy;
pub mod config;
pub mod generate;
pub mod replay;

pub use accuracy::{mean_accuracy, replication_accuracy, replication_error};
pub use config::{CpuNoiseList, InjectPolicy, InjectionConfig, NoiseEventSpec};
pub use generate::{
    build_config, generate, source_statistics, subtract_average, GeneratorOptions, MergeStrategy,
    SourceStats,
};
pub use replay::{spawn_injectors, InjectorProcess};
