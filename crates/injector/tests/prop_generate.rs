//! Property tests for the injector's configuration-generation pipeline:
//! delta subtraction conserves noise mass, never produces negative
//! durations, and both merge strategies preserve per-CPU noise coverage.

use noiselab_injector::{
    build_config, source_statistics, subtract_average, GeneratorOptions, MergeStrategy,
};
use noiselab_kernel::NoiseClass;
use noiselab_machine::CpuId;
use noiselab_noise::{RunTrace, TraceEvent, TraceSet};
use noiselab_sim::{SimDuration, SimTime};
use proptest::prelude::*;

fn class_strategy() -> impl Strategy<Value = NoiseClass> {
    prop_oneof![
        Just(NoiseClass::Irq),
        Just(NoiseClass::Softirq),
        Just(NoiseClass::Thread),
    ]
}

fn event_strategy() -> impl Strategy<Value = TraceEvent> {
    (
        0u32..4,
        class_strategy(),
        prop_oneof![Just("kworker"), Just("timer"), Just("storm"), Just("rcu")],
        0u64..1_000_000,
        1_000u64..5_000_000,
    )
        .prop_map(|(cpu, class, source, start, dur)| TraceEvent {
            cpu: CpuId(cpu),
            class,
            source: source.to_string(),
            start: SimTime(start),
            duration: SimDuration(dur),
        })
}

fn traceset_strategy() -> impl Strategy<Value = TraceSet> {
    proptest::collection::vec(
        (
            proptest::collection::vec(event_strategy(), 0..30),
            1_000u64..10_000_000,
        ),
        1..8,
    )
    .prop_map(|runs| TraceSet {
        runs: runs
            .into_iter()
            .enumerate()
            .map(|(i, (events, exec))| RunTrace::new(i, SimDuration(exec), events))
            .collect(),
    })
}

proptest! {
    /// Residual events never grow: every surviving event's duration is
    /// bounded by its original, and total residual mass is bounded by
    /// the worst trace's total mass.
    #[test]
    fn subtraction_never_inflates(set in traceset_strategy()) {
        let worst = set.worst().unwrap().clone();
        let stats = source_statistics(&set);
        let min_residual = SimDuration(500);
        let residual = subtract_average(&worst, &stats, min_residual);

        let orig_total: u64 = worst.events.iter().map(|e| e.duration.nanos()).sum();
        let res_total: u64 = residual.iter().map(|e| e.duration.nanos()).sum();
        prop_assert!(res_total <= orig_total);
        for e in &residual {
            prop_assert!(e.duration >= min_residual);
            // Each residual event corresponds to an original at the same
            // (cpu, start) with >= duration.
            let orig = worst
                .events
                .iter()
                .find(|o| o.cpu == e.cpu && o.start == e.start && o.source == e.source);
            prop_assert!(orig.is_some());
            prop_assert!(orig.unwrap().duration >= e.duration);
        }
    }

    /// Both merge strategies produce valid, sorted configurations whose
    /// per-CPU noise mass is at least the residual mass on that CPU
    /// (merging can only bridge gaps, never lose noise).
    #[test]
    fn merges_preserve_noise_mass(set in traceset_strategy(), improved in any::<bool>()) {
        let worst = set.worst().unwrap().clone();
        let stats = source_statistics(&set);
        let opts = GeneratorOptions {
            merge: if improved { MergeStrategy::Improved } else { MergeStrategy::NaivePessimistic },
            ..GeneratorOptions::default()
        };
        let residual = subtract_average(&worst, &stats, opts.min_residual);
        let config = build_config("prop", worst.exec_time, residual.clone(), &opts);
        prop_assert!(config.validate().is_ok());

        // Merging may collapse overlapping events (an IRQ inside a
        // thread interval) to their union, so the conserved quantity is
        // the union length of the residual intervals per CPU.
        let union_len = |mut spans: Vec<(u64, u64)>| -> u64 {
            spans.sort_unstable();
            let mut total = 0;
            let mut cur: Option<(u64, u64)> = None;
            for (s, e) in spans {
                match cur {
                    Some((cs, ce)) if s <= ce => cur = Some((cs, ce.max(e))),
                    Some((cs, ce)) => {
                        total += ce - cs;
                        cur = Some((s, e));
                        let _ = cs;
                    }
                    None => cur = Some((s, e)),
                }
            }
            if let Some((cs, ce)) = cur {
                total += ce - cs;
            }
            total
        };
        for list in &config.lists {
            let cfg_total: u64 = list.events.iter().map(|e| e.duration.nanos()).sum();
            let res_union = union_len(
                residual
                    .iter()
                    .filter(|e| e.cpu == list.cpu)
                    .map(|e| (e.start.nanos(), e.end().nanos()))
                    .collect(),
            );
            prop_assert!(
                cfg_total >= res_union,
                "cpu {}: config {} < residual union {}",
                list.cpu.0,
                cfg_total,
                res_union
            );
        }
        // Every residual CPU appears in the config.
        for e in &residual {
            prop_assert!(config.lists.iter().any(|l| l.cpu == e.cpu));
        }
    }

    /// The improved merge never replays thread noise under FIFO.
    #[test]
    fn improved_merge_keeps_thread_noise_fair(set in traceset_strategy()) {
        let worst = set.worst().unwrap().clone();
        let stats = source_statistics(&set);
        let opts = GeneratorOptions::default();
        let residual = subtract_average(&worst, &stats, opts.min_residual);
        let only_thread: Vec<_> = residual
            .into_iter()
            .filter(|e| e.class == NoiseClass::Thread)
            .collect();
        let config = build_config("prop", worst.exec_time, only_thread, &opts);
        for list in &config.lists {
            for e in &list.events {
                prop_assert!(
                    matches!(e.policy, noiselab_injector::InjectPolicy::Other { .. }),
                    "thread noise escalated to FIFO by the improved merge"
                );
            }
        }
    }

    /// Configurations round-trip through their JSON file format.
    #[test]
    fn config_json_roundtrip(set in traceset_strategy()) {
        let opts = GeneratorOptions::default();
        if let Some(config) = noiselab_injector::generate("prop", &set, &opts) {
            let json = config.to_json().unwrap();
            let back = noiselab_injector::InjectionConfig::from_json(&json).unwrap();
            prop_assert_eq!(config, back);
        }
    }
}
