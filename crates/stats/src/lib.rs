//! # noiselab-stats
//!
//! Statistics ([`Summary`]: mean, sample s.d., percentiles, relative
//! change) and plain-text table rendering used by the experiment
//! harness and benches to reproduce the paper's tables.

pub mod bootstrap;
pub mod hist;
pub mod summary;
pub mod table;

pub use bootstrap::{
    bootstrap_ci, mad, mann_whitney_u, median, normal_cdf, BootstrapCi, RankSum, SplitMix64,
};
pub use hist::{fmt_ns, Log2Hist, LOG2_BUCKETS};
pub use summary::{percentile, percentile_sorted, Summary};
pub use table::{fmt_ms, fmt_pct, fmt_secs, TextTable};
