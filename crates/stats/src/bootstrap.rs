//! Seeded bootstrap resampling and rank-based significance tests.
//!
//! The advise subsystem decides whether a cell's dispersion or a bench
//! regression is *statistically* meaningful, not merely above a raw
//! threshold. Everything here is deterministic: resampling uses a
//! hand-rolled SplitMix64 stream seeded by the caller (no entropy, no
//! platform RNG), so the same inputs always produce byte-identical
//! verdicts — a hard requirement for the advise report and the CI gate
//! built on it.

/// Deterministic 64-bit PRNG (SplitMix64). Small state, full period,
/// and — unlike `thread_rng` — seeded explicitly so every consumer is
/// reproducible by construction.
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform index in `[0, n)` via the multiply-high reduction. The
    /// residual bias at realistic `n` (sample sizes, resample counts)
    /// is far below 2^-32 and irrelevant next to bootstrap noise.
    #[inline]
    pub fn next_below(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0);
        ((u128::from(self.next_u64()) * u128::from(n)) >> 64) as u64
    }
}

/// A percentile-bootstrap confidence interval on a statistic.
#[derive(Debug, Clone, PartialEq)]
pub struct BootstrapCi {
    /// The statistic on the original sample.
    pub point: f64,
    /// Lower CI bound.
    pub lo: f64,
    /// Upper CI bound.
    pub hi: f64,
    pub resamples: usize,
    /// Two-sided confidence level, e.g. 0.95.
    pub confidence: f64,
}

/// Percentile bootstrap CI on `stat`, resampling `samples` with
/// replacement `resamples` times from a stream seeded by `seed`.
/// Deterministic for fixed inputs. Panics on an empty sample or a
/// confidence outside `(0, 1)`.
pub fn bootstrap_ci<F>(
    samples: &[f64],
    resamples: usize,
    seed: u64,
    confidence: f64,
    stat: F,
) -> BootstrapCi
where
    F: Fn(&[f64]) -> f64,
{
    assert!(!samples.is_empty(), "bootstrap of empty sample");
    assert!(
        confidence > 0.0 && confidence < 1.0,
        "confidence must be in (0, 1)"
    );
    let point = stat(samples);
    if samples.len() == 1 {
        // Resampling a singleton only ever reproduces it; skip the work.
        return BootstrapCi {
            point,
            lo: point,
            hi: point,
            resamples,
            confidence,
        };
    }
    let mut rng = SplitMix64::new(seed);
    let n = samples.len();
    let mut scratch = vec![0.0f64; n];
    let mut stats = Vec::with_capacity(resamples);
    for _ in 0..resamples {
        for slot in scratch.iter_mut() {
            *slot = samples[rng.next_below(n as u64) as usize];
        }
        stats.push(stat(&scratch));
    }
    stats.sort_by(|a, b| a.partial_cmp(b).expect("NaN in bootstrap statistic"));
    let alpha = 1.0 - confidence;
    BootstrapCi {
        point,
        lo: crate::percentile_sorted(&stats, alpha / 2.0 * 100.0),
        hi: crate::percentile_sorted(&stats, (1.0 - alpha / 2.0) * 100.0),
        resamples,
        confidence,
    }
}

/// Result of a two-sided Mann-Whitney U (Wilcoxon rank-sum) test.
#[derive(Debug, Clone, PartialEq)]
pub struct RankSum {
    /// U statistic for the first sample.
    pub u: f64,
    /// Tie-corrected normal-approximation z score (0 when the combined
    /// sample is constant).
    pub z: f64,
    /// Two-sided p-value under the normal approximation.
    pub p: f64,
    pub n_a: usize,
    pub n_b: usize,
}

impl RankSum {
    /// Is the difference significant at level `alpha`?
    pub fn significant(&self, alpha: f64) -> bool {
        self.p < alpha
    }
}

/// Two-sided Mann-Whitney U test: are `a` and `b` drawn from the same
/// distribution? Uses midranks for ties and the tie-corrected normal
/// approximation with continuity correction — adequate for the rep
/// counts campaigns use (>= ~5 per side) and, crucially,
/// deterministic. Panics if either sample is empty.
pub fn mann_whitney_u(a: &[f64], b: &[f64]) -> RankSum {
    assert!(!a.is_empty() && !b.is_empty(), "rank-sum of empty sample");
    let n_a = a.len();
    let n_b = b.len();
    let n = n_a + n_b;
    // (value, belongs_to_a)
    let mut all: Vec<(f64, bool)> = a
        .iter()
        .map(|&x| (x, true))
        .chain(b.iter().map(|&x| (x, false)))
        .collect();
    all.sort_by(|x, y| x.0.partial_cmp(&y.0).expect("NaN in rank-sum sample"));
    // Midrank assignment and tie-correction accumulator sum(t^3 - t).
    let mut rank_sum_a = 0.0f64;
    let mut tie_term = 0.0f64;
    let mut i = 0usize;
    while i < n {
        let mut j = i + 1;
        while j < n && all[j].0 == all[i].0 {
            j += 1;
        }
        let t = (j - i) as f64;
        // Ranks are 1-based: positions i..j share the average rank.
        let midrank = (i + 1 + j) as f64 / 2.0;
        for item in &all[i..j] {
            if item.1 {
                rank_sum_a += midrank;
            }
        }
        tie_term += t * t * t - t;
        i = j;
    }
    let u = rank_sum_a - (n_a * (n_a + 1)) as f64 / 2.0;
    let mean_u = (n_a * n_b) as f64 / 2.0;
    let nf = n as f64;
    let var_u = (n_a * n_b) as f64 / 12.0 * ((nf + 1.0) - tie_term / (nf * (nf - 1.0)).max(1.0));
    if var_u <= 0.0 {
        // Entirely tied data: no evidence of any difference.
        return RankSum {
            u,
            z: 0.0,
            p: 1.0,
            n_a,
            n_b,
        };
    }
    let diff = u - mean_u;
    // Continuity correction toward the mean.
    let corrected = if diff > 0.5 {
        diff - 0.5
    } else if diff < -0.5 {
        diff + 0.5
    } else {
        0.0
    };
    let z = corrected / var_u.sqrt();
    RankSum {
        u,
        z,
        p: (2.0 * normal_cdf(-z.abs())).min(1.0),
        n_a,
        n_b,
    }
}

/// Standard normal CDF via the Abramowitz-Stegun 7.1.26 erf
/// approximation (|error| < 1.5e-7 — far tighter than anything the
/// advise thresholds can resolve).
pub fn normal_cdf(x: f64) -> f64 {
    let t = x / std::f64::consts::SQRT_2;
    0.5 * (1.0 + erf(t))
}

fn erf(x: f64) -> f64 {
    let sign = if x < 0.0 { -1.0 } else { 1.0 };
    let x = x.abs();
    let t = 1.0 / (1.0 + 0.327_591_1 * x);
    let poly = t
        * (0.254_829_592
            + t * (-0.284_496_736
                + t * (1.421_413_741 + t * (-1.453_152_027 + t * 1.061_405_429))));
    sign * (1.0 - poly * (-x * x).exp())
}

/// Median of a sample (midpoint of the two central order statistics
/// for even n). Panics on an empty sample.
pub fn median(samples: &[f64]) -> f64 {
    assert!(!samples.is_empty(), "median of empty sample");
    let mut sorted = samples.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaN in sample"));
    let n = sorted.len();
    if n % 2 == 1 {
        sorted[n / 2]
    } else {
        (sorted[n / 2 - 1] + sorted[n / 2]) / 2.0
    }
}

/// Median absolute deviation (unscaled). Robust spread estimate used
/// by the regression watch so one historical outlier cannot widen the
/// acceptance band. Panics on an empty sample.
pub fn mad(samples: &[f64]) -> f64 {
    let m = median(samples);
    let deviations: Vec<f64> = samples.iter().map(|x| (x - m).abs()).collect();
    median(&deviations)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_is_deterministic_and_spreads() {
        let mut a = SplitMix64::new(42);
        let mut b = SplitMix64::new(42);
        let xs: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        assert_eq!(xs, ys);
        let mut seen = std::collections::BTreeSet::new();
        for x in xs {
            seen.insert(x);
        }
        assert_eq!(seen.len(), 8, "outputs must not repeat immediately");
    }

    #[test]
    fn next_below_stays_in_range() {
        let mut rng = SplitMix64::new(7);
        for _ in 0..1000 {
            assert!(rng.next_below(13) < 13);
        }
    }

    #[test]
    fn bootstrap_ci_brackets_the_mean() {
        let samples: Vec<f64> = (0..40).map(|i| 10.0 + (i % 7) as f64).collect();
        let ci = bootstrap_ci(&samples, 500, 1, 0.95, |xs| {
            xs.iter().sum::<f64>() / xs.len() as f64
        });
        assert!(ci.lo <= ci.point && ci.point <= ci.hi);
        assert!(ci.lo > 9.0 && ci.hi < 17.0);
    }

    #[test]
    fn bootstrap_is_seed_deterministic() {
        let samples = [1.0, 5.0, 2.0, 8.0, 3.0, 9.0, 4.0];
        let stat = |xs: &[f64]| xs.iter().sum::<f64>() / xs.len() as f64;
        let a = bootstrap_ci(&samples, 200, 99, 0.9, stat);
        let b = bootstrap_ci(&samples, 200, 99, 0.9, stat);
        assert_eq!(a, b);
        assert!(
            a.lo < a.hi,
            "dispersed sample must give a non-degenerate CI"
        );
    }

    #[test]
    fn bootstrap_singleton_collapses() {
        let ci = bootstrap_ci(&[4.0], 100, 0, 0.95, |xs| xs[0]);
        assert_eq!((ci.point, ci.lo, ci.hi), (4.0, 4.0, 4.0));
    }

    #[test]
    fn rank_sum_separated_samples_are_significant() {
        let a: Vec<f64> = (0..12).map(|i| 1.0 + i as f64 * 0.01).collect();
        let b: Vec<f64> = (0..12).map(|i| 2.0 + i as f64 * 0.01).collect();
        let r = mann_whitney_u(&a, &b);
        assert!(r.p < 0.001, "p={}", r.p);
        assert!(r.significant(0.05));
    }

    #[test]
    fn rank_sum_identical_samples_are_not_significant() {
        let a = [3.0, 3.0, 3.0, 3.0];
        let r = mann_whitney_u(&a, &a);
        assert_eq!(r.p, 1.0);
        assert_eq!(r.z, 0.0);
        let b: Vec<f64> = (0..10).map(|i| i as f64).collect();
        let r2 = mann_whitney_u(&b, &b);
        assert!(r2.p > 0.9, "same data must not be significant, p={}", r2.p);
    }

    #[test]
    fn rank_sum_handles_ties_without_blowing_up() {
        let a = [1.0, 2.0, 2.0, 2.0, 3.0];
        let b = [2.0, 2.0, 4.0, 4.0, 4.0];
        let r = mann_whitney_u(&a, &b);
        assert!(r.p > 0.0 && r.p <= 1.0);
    }

    #[test]
    fn normal_cdf_reference_points() {
        assert!((normal_cdf(0.0) - 0.5).abs() < 1e-7);
        assert!((normal_cdf(1.959_964) - 0.975).abs() < 1e-4);
        assert!((normal_cdf(-1.959_964) - 0.025).abs() < 1e-4);
    }

    #[test]
    fn median_and_mad() {
        assert_eq!(median(&[3.0]), 3.0);
        assert_eq!(median(&[1.0, 3.0]), 2.0);
        assert_eq!(median(&[5.0, 1.0, 3.0]), 3.0);
        assert_eq!(mad(&[1.0, 1.0, 1.0]), 0.0);
        // median 3, deviations [2,1,0,1,2] -> mad 1.
        assert_eq!(mad(&[1.0, 2.0, 3.0, 4.0, 5.0]), 1.0);
    }
}
