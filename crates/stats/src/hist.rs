//! Log2-bucketed histograms.
//!
//! The telemetry layer records heavy-tailed quantities (preemption
//! latencies, IRQ service times, runqueue depths) into fixed-size
//! histograms whose bucket `b` covers values with bit length `b`, i.e.
//! `[2^(b-1), 2^b)` for `b >= 1` and exactly `{0}` for `b = 0`. That
//! gives 65 buckets for the full `u64` range, constant-time recording,
//! exact merging across runs (bucket-wise addition — the property that
//! makes per-cell campaign aggregation lossless), and quantile
//! estimates within a factor of two, which is all a dashboard needs.

use serde::{Deserialize, Serialize};

/// Number of buckets: bit lengths 0..=64.
pub const LOG2_BUCKETS: usize = 65;

/// A log2-bucketed histogram over `u64` samples.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Log2Hist {
    /// `counts[b]` = samples with bit length `b`.
    pub counts: Vec<u64>,
    pub count: u64,
    /// Exact running sum (not bucket-approximated).
    pub sum: u64,
    pub min: u64,
    pub max: u64,
}

impl Default for Log2Hist {
    fn default() -> Self {
        Log2Hist::new()
    }
}

impl Log2Hist {
    pub fn new() -> Self {
        Log2Hist {
            counts: vec![0; LOG2_BUCKETS],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    /// Bucket index of a value: its bit length.
    #[inline]
    pub fn bucket_of(v: u64) -> usize {
        (u64::BITS - v.leading_zeros()) as usize
    }

    /// Lower edge of bucket `b` (inclusive).
    pub fn bucket_lo(b: usize) -> u64 {
        if b == 0 {
            0
        } else {
            1u64 << (b - 1)
        }
    }

    /// Upper edge of bucket `b` (inclusive).
    pub fn bucket_hi(b: usize) -> u64 {
        if b == 0 {
            0
        } else if b >= 64 {
            u64::MAX
        } else {
            (1u64 << b) - 1
        }
    }

    #[inline]
    pub fn record(&mut self, v: u64) {
        self.counts[Self::bucket_of(v)] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(v);
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Bucket-wise merge; exact (merging run histograms equals the
    /// histogram of the concatenated runs).
    pub fn merge(&mut self, other: &Log2Hist) {
        for (a, b) in self.counts.iter_mut().zip(other.counts.iter()) {
            *a += b;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Quantile estimate in `[0, 1]`: the geometric midpoint of the
    /// bucket holding the q-th sample, clamped to the observed
    /// min/max. Within a factor of two of the true quantile.
    pub fn quantile(&self, q: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        if rank >= self.count {
            return self.max as f64;
        }
        let mut seen = 0u64;
        for (b, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                let lo = Self::bucket_lo(b) as f64;
                let hi = Self::bucket_hi(b) as f64;
                let mid = if b == 0 { 0.0 } else { (lo * hi).sqrt() };
                return mid.clamp(self.min as f64, self.max as f64);
            }
        }
        self.max as f64
    }

    /// One-line rendering: `n=1234 mean=5.1us p50=4.2us p99=33us`.
    pub fn render_ns(&self) -> String {
        if self.count == 0 {
            return "n=0".to_string();
        }
        format!(
            "n={} mean={} p50={} p99={} max={}",
            self.count,
            fmt_ns(self.mean()),
            fmt_ns(self.quantile(0.50)),
            fmt_ns(self.quantile(0.99)),
            fmt_ns(self.max as f64),
        )
    }
}

/// Format a nanosecond quantity with an adaptive unit.
pub fn fmt_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.2}s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.2}ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.2}us", ns / 1e3)
    } else {
        format!("{ns:.0}ns")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_cover_the_u64_range() {
        assert_eq!(Log2Hist::bucket_of(0), 0);
        assert_eq!(Log2Hist::bucket_of(1), 1);
        assert_eq!(Log2Hist::bucket_of(2), 2);
        assert_eq!(Log2Hist::bucket_of(3), 2);
        assert_eq!(Log2Hist::bucket_of(4), 3);
        assert_eq!(Log2Hist::bucket_of(u64::MAX), 64);
        for b in 0..LOG2_BUCKETS {
            let lo = Log2Hist::bucket_lo(b);
            let hi = Log2Hist::bucket_hi(b);
            assert!(lo <= hi);
            assert_eq!(Log2Hist::bucket_of(lo), b);
            assert_eq!(Log2Hist::bucket_of(hi), b);
        }
    }

    #[test]
    fn record_tracks_exact_moments() {
        let mut h = Log2Hist::new();
        for v in [0u64, 1, 5, 1000, 7] {
            h.record(v);
        }
        assert_eq!(h.count, 5);
        assert_eq!(h.sum, 1013);
        assert_eq!(h.min, 0);
        assert_eq!(h.max, 1000);
        assert!((h.mean() - 202.6).abs() < 1e-9);
    }

    #[test]
    fn merge_equals_concatenation() {
        let mut a = Log2Hist::new();
        let mut b = Log2Hist::new();
        let mut both = Log2Hist::new();
        for v in [3u64, 70, 900] {
            a.record(v);
            both.record(v);
        }
        for v in [1u64, 1_000_000] {
            b.record(v);
            both.record(v);
        }
        a.merge(&b);
        assert_eq!(a, both);
    }

    #[test]
    fn quantiles_stay_within_a_factor_of_two() {
        let mut h = Log2Hist::new();
        for v in 1..=1000u64 {
            h.record(v);
        }
        let p50 = h.quantile(0.50);
        assert!((250.0..=1000.0).contains(&p50), "p50={p50}");
        let p99 = h.quantile(0.99);
        assert!((495.0..=1000.0).contains(&p99), "p99={p99}");
        assert_eq!(h.quantile(1.0), 1000.0);
    }

    #[test]
    fn empty_hist_is_harmless() {
        let h = Log2Hist::new();
        assert_eq!(h.quantile(0.5), 0.0);
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.render_ns(), "n=0");
    }

    #[test]
    fn empty_hist_quantile_boundaries() {
        let h = Log2Hist::new();
        assert_eq!(h.quantile(0.0), 0.0);
        assert_eq!(h.quantile(1.0), 0.0);
        // Out-of-range q is clamped, never panics or goes negative.
        assert_eq!(h.quantile(-3.0), 0.0);
        assert_eq!(h.quantile(7.0), 0.0);
    }

    #[test]
    fn single_bucket_quantiles_collapse_to_the_sample() {
        // Every sample in one bucket: all quantiles clamp to the
        // observed [min, max] regardless of q.
        let mut h = Log2Hist::new();
        for _ in 0..5 {
            h.record(9); // bucket 4 covers [8, 15]
        }
        for q in [0.0, 0.25, 0.5, 0.99, 1.0] {
            assert_eq!(h.quantile(q), 9.0, "q={q}");
        }
        // Single sample, q extremes.
        let mut one = Log2Hist::new();
        one.record(1000);
        assert_eq!(one.quantile(0.0), 1000.0);
        assert_eq!(one.quantile(1.0), 1000.0);
        // q=0 still means "the first sample", not "below the data".
        let mut two = Log2Hist::new();
        two.record(1);
        two.record(1 << 20);
        assert_eq!(two.quantile(0.0), 1.0);
        assert_eq!(two.quantile(1.0), (1u64 << 20) as f64);
        // Clamped out-of-range q behaves like the endpoints.
        assert_eq!(two.quantile(-1.0), two.quantile(0.0));
        assert_eq!(two.quantile(2.0), two.quantile(1.0));
    }

    #[test]
    fn serde_round_trip() {
        let mut h = Log2Hist::new();
        h.record(42);
        h.record(7);
        let json = serde_json::to_string(&h).expect("serialize");
        let back: Log2Hist = serde_json::from_str(&json).expect("parse");
        assert_eq!(h, back);
    }
}
