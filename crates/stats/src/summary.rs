//! Summary statistics over run samples.

use serde::{Deserialize, Serialize};

/// Summary of a sample of measurements (execution times in seconds, or
/// any other scalar).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Summary {
    pub n: usize,
    pub mean: f64,
    /// Sample standard deviation (n-1 denominator).
    pub sd: f64,
    pub min: f64,
    pub max: f64,
    pub median: f64,
    pub p95: f64,
    pub p99: f64,
}

impl Summary {
    /// Compute a summary; panics on an empty sample.
    pub fn of(samples: &[f64]) -> Summary {
        assert!(!samples.is_empty(), "summary of empty sample");
        let n = samples.len();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = if n > 1 {
            samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (n - 1) as f64
        } else {
            0.0
        };
        let mut sorted = samples.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaN in sample"));
        Summary {
            n,
            mean,
            sd: var.sqrt(),
            min: sorted[0],
            max: sorted[n - 1],
            median: percentile_sorted(&sorted, 50.0),
            p95: percentile_sorted(&sorted, 95.0),
            p99: percentile_sorted(&sorted, 99.0),
        }
    }

    /// Compute a summary, or `None` for an empty sample — the shape
    /// campaign cells need when every run of a cell failed.
    pub fn try_of(samples: &[f64]) -> Option<Summary> {
        if samples.is_empty() {
            None
        } else {
            Some(Summary::of(samples))
        }
    }

    /// Coefficient of variation (sd / mean).
    pub fn cv(&self) -> f64 {
        if self.mean == 0.0 {
            0.0
        } else {
            self.sd / self.mean
        }
    }

    /// Relative change of this summary's mean vs a baseline mean, as a
    /// fraction (0.25 = +25 %) — the metric of paper Tables 3-6.
    pub fn relative_change(&self, baseline_mean: f64) -> f64 {
        assert!(baseline_mean > 0.0);
        self.mean / baseline_mean - 1.0
    }
}

/// Linear-interpolated percentile of a pre-sorted slice.
pub fn percentile_sorted(sorted: &[f64], p: f64) -> f64 {
    assert!(!sorted.is_empty());
    assert!((0.0..=100.0).contains(&p));
    if sorted.len() == 1 {
        return sorted[0];
    }
    let rank = p / 100.0 * (sorted.len() - 1) as f64;
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    let frac = rank - lo as f64;
    sorted[lo] * (1.0 - frac) + sorted[hi] * frac
}

/// Percentile of an unsorted slice.
pub fn percentile(samples: &[f64], p: f64) -> f64 {
    let mut sorted = samples.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaN in sample"));
    percentile_sorted(&sorted, p)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_basics() {
        let s = Summary::of(&[1.0, 2.0, 3.0, 4.0, 5.0]);
        assert_eq!(s.n, 5);
        assert_eq!(s.mean, 3.0);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 5.0);
        assert_eq!(s.median, 3.0);
        assert!((s.sd - 1.5811388).abs() < 1e-6);
    }

    #[test]
    fn single_sample_sd_zero() {
        let s = Summary::of(&[7.0]);
        assert_eq!(s.sd, 0.0);
        assert_eq!(s.median, 7.0);
        assert_eq!(s.p99, 7.0);
    }

    #[test]
    fn percentile_interpolates() {
        let sorted = [0.0, 10.0];
        assert_eq!(percentile_sorted(&sorted, 50.0), 5.0);
        assert_eq!(percentile_sorted(&sorted, 0.0), 0.0);
        assert_eq!(percentile_sorted(&sorted, 100.0), 10.0);
    }

    #[test]
    fn percentile_unsorted_entry_point() {
        assert_eq!(percentile(&[3.0, 1.0, 2.0], 50.0), 2.0);
    }

    #[test]
    fn cv_and_relative_change() {
        let s = Summary::of(&[2.0, 2.0, 2.0, 2.0]);
        assert_eq!(s.cv(), 0.0);
        assert!((s.relative_change(1.6) - 0.25).abs() < 1e-12);
        assert!(s.relative_change(2.5) < 0.0);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn empty_sample_panics() {
        Summary::of(&[]);
    }

    #[test]
    fn try_of_handles_empty() {
        assert!(Summary::try_of(&[]).is_none());
        assert_eq!(Summary::try_of(&[7.0]).unwrap().mean, 7.0);
    }

    // Boundary behaviour the advise CI math leans on: cv() must not
    // divide by a zero mean, and a 1-element percentile query must
    // return that element at every p (the bootstrap can draw
    // degenerate resamples).

    #[test]
    fn cv_at_zero_mean_is_zero_not_nan() {
        let s = Summary::of(&[-1.0, 1.0]);
        assert_eq!(s.mean, 0.0);
        assert_eq!(s.cv(), 0.0);
        assert!(!s.cv().is_nan());
        let all_zero = Summary::of(&[0.0, 0.0, 0.0]);
        assert_eq!(all_zero.cv(), 0.0);
    }

    #[test]
    fn percentile_sorted_singleton_every_p() {
        for p in [0.0, 1.0, 37.5, 50.0, 99.9, 100.0] {
            assert_eq!(percentile_sorted(&[42.0], p), 42.0, "p={p}");
        }
    }

    #[test]
    #[should_panic]
    fn percentile_sorted_empty_panics() {
        percentile_sorted(&[], 50.0);
    }
}
