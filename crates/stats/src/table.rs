//! Plain-text table rendering for the experiment reports.
//!
//! The benches print tables in the same row/column layout as the paper's
//! Tables 1-7 so the two can be compared side by side in
//! `EXPERIMENTS.md`.

/// A simple column-aligned text table.
#[derive(Debug, Clone, Default)]
pub struct TextTable {
    title: String,
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    pub fn new(title: impl Into<String>) -> Self {
        TextTable {
            title: title.into(),
            header: Vec::new(),
            rows: Vec::new(),
        }
    }

    pub fn header(mut self, cols: &[&str]) -> Self {
        self.header = cols.iter().map(|s| s.to_string()).collect();
        self
    }

    pub fn row<S: ToString>(&mut self, cells: &[S]) -> &mut Self {
        self.rows
            .push(cells.iter().map(|c| c.to_string()).collect());
        self
    }

    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    pub fn render(&self) -> String {
        let ncols = self
            .rows
            .iter()
            .map(|r| r.len())
            .chain(std::iter::once(self.header.len()))
            .max()
            .unwrap_or(0);
        let mut widths = vec![0usize; ncols];
        for (i, h) in self.header.iter().enumerate() {
            widths[i] = widths[i].max(h.len());
        }
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = String::new();
        if !self.title.is_empty() {
            out.push_str(&format!("== {} ==\n", self.title));
        }
        let fmt_row = |cells: &[String]| -> String {
            let mut line = String::new();
            for (i, w) in widths.iter().enumerate() {
                let cell = cells.get(i).map(String::as_str).unwrap_or("");
                if i == 0 {
                    line.push_str(&format!("{cell:<w$}"));
                } else {
                    line.push_str(&format!("  {cell:>w$}"));
                }
            }
            line.trim_end().to_string()
        };
        if !self.header.is_empty() {
            out.push_str(&fmt_row(&self.header));
            out.push('\n');
            let total: usize = widths.iter().sum::<usize>() + 2 * (ncols.saturating_sub(1));
            out.push_str(&"-".repeat(total));
            out.push('\n');
        }
        for row in &self.rows {
            out.push_str(&fmt_row(row));
            out.push('\n');
        }
        out
    }
}

/// Format seconds with 3 decimals, like the paper's tables.
pub fn fmt_secs(s: f64) -> String {
    format!("{s:.3}")
}

/// Format a fraction as a signed percentage with one decimal, like the
/// paper's "percentage increase" rows.
pub fn fmt_pct(frac: f64) -> String {
    format!("{:+.1}%", frac * 100.0)
}

/// Format milliseconds with 2 decimals.
pub fn fmt_ms(s: f64) -> String {
    format!("{:.2}", s * 1e3)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = TextTable::new("demo").header(&["cfg", "mean", "sd"]);
        t.row(&["Rm", "1.234", "0.01"]);
        t.row(&["RmHK2", "1.3", "0.002"]);
        let s = t.render();
        assert!(s.contains("== demo =="));
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 5);
        // Header and rows share column positions for the 2nd column.
        let pos_mean = lines[1].find("mean").unwrap();
        assert!(lines[3].len() >= pos_mean);
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(fmt_secs(1.23456), "1.235");
        assert_eq!(fmt_pct(0.454), "+45.4%");
        assert_eq!(fmt_pct(-0.017), "-1.7%");
        assert_eq!(fmt_ms(0.00777), "7.77");
    }

    #[test]
    fn empty_table_is_empty() {
        let t = TextTable::new("x");
        assert!(t.is_empty());
        assert!(t.render().contains("== x =="));
    }
}
