//! Property tests for the statistics module.

use noiselab_stats::{percentile, Summary};
use proptest::prelude::*;

fn samples() -> impl Strategy<Value = Vec<f64>> {
    proptest::collection::vec(0.0f64..1e6, 1..200)
}

proptest! {
    #[test]
    fn summary_bounds(xs in samples()) {
        let s = Summary::of(&xs);
        prop_assert!(s.min <= s.mean + 1e-9);
        prop_assert!(s.mean <= s.max + 1e-9);
        prop_assert!(s.min <= s.median && s.median <= s.max);
        prop_assert!(s.median <= s.p95 + 1e-9);
        prop_assert!(s.p95 <= s.p99 + 1e-9);
        prop_assert!(s.sd >= 0.0);
        prop_assert_eq!(s.n, xs.len());
    }

    #[test]
    fn constant_sample_has_zero_sd(x in 0.0f64..1e6, n in 1usize..50) {
        let xs = vec![x; n];
        let s = Summary::of(&xs);
        // Relative tolerance: the mean of n identical doubles is not
        // bit-identical to x, so sd is ~ulp-sized rather than zero.
        prop_assert!(s.sd.abs() < 1e-9 * (1.0 + x.abs()));
        prop_assert!((s.mean - x).abs() < 1e-9 * (1.0 + x.abs()));
        prop_assert!((s.median - x).abs() < 1e-9 * (1.0 + x.abs()));
    }

    /// Shifting every sample shifts the mean and leaves sd unchanged.
    #[test]
    fn summary_shift_invariance(xs in samples(), shift in 0.0f64..1e5) {
        let s1 = Summary::of(&xs);
        let shifted: Vec<f64> = xs.iter().map(|x| x + shift).collect();
        let s2 = Summary::of(&shifted);
        prop_assert!((s2.mean - s1.mean - shift).abs() < 1e-6 * (1.0 + s1.mean.abs()));
        prop_assert!((s2.sd - s1.sd).abs() < 1e-6 * (1.0 + s1.sd));
    }

    /// Percentiles are monotone in p and bounded by the extremes.
    #[test]
    fn percentile_monotone(xs in samples(), p1 in 0.0f64..100.0, p2 in 0.0f64..100.0) {
        let (lo, hi) = if p1 <= p2 { (p1, p2) } else { (p2, p1) };
        let a = percentile(&xs, lo);
        let b = percentile(&xs, hi);
        prop_assert!(a <= b + 1e-9);
        let s = Summary::of(&xs);
        prop_assert!(a >= s.min - 1e-9 && b <= s.max + 1e-9);
    }
}
