//! Shared scenario and harness builders for the noiselab test suites.
//!
//! Every integration suite in `crates/kernel/tests` and
//! `crates/core/tests` used to carry its own copy of the same handful
//! of helpers — a quiet 4-core machine, a costed machine with realistic
//! switch/migration/wake latencies, a full-tuple trace recorder, the
//! scaled-down paper workloads and the platform matrix. This crate is
//! the single home for those builders; the suites (and the conformance
//! suite in `noiselab-conform`) depend on it as a dev-dependency.
//!
//! The builders are intentionally *exact* copies of what the suites
//! used inline: several gates assert bit-identical behaviour across
//! runs, so the helpers must not drift per-suite.

use noiselab_core::{ExecConfig, Mitigation, Model, Platform};
use noiselab_kernel::{
    Action, FaultPlan, Kernel, KernelConfig, NoiseClass, Policy, ScriptBehavior, ThreadId,
    ThreadKind, ThreadSpec, TraceSink,
};
use noiselab_machine::{CpuId, CpuSet, Machine, PerfModel, WorkUnit};
use noiselab_sim::{SimDuration, SimTime};
use noiselab_workloads::{Babelstream, MiniFE, NBody, Workload};
use std::cell::RefCell;
use std::rc::Rc;

// ---------------------------------------------------------------------
// Machines and kernel configs
// ---------------------------------------------------------------------

/// A quiet test machine: zero switch/migration/wake overheads, fast
/// ticks kept but with negligible IRQ cost so timing maths stays exact.
pub fn quiet_machine(cores: usize, smt: usize) -> Machine {
    Machine {
        name: "test".into(),
        cores,
        smt,
        perf: PerfModel {
            flops_per_ns: 1.0,
            smt_factor: 0.5,
            per_core_bw: 10.0,
            socket_bw: 20.0,
        },
        migration_cost: SimDuration::ZERO,
        ctx_switch: SimDuration::ZERO,
        wake_latency: SimDuration::ZERO,
        tick_period: SimDuration::from_millis(4),
        reserved_cpus: CpuSet::EMPTY,
        numa_domains: 1,
        dvfs: noiselab_machine::DvfsConfig::default(),
    }
}

/// Kernel config to pair with [`quiet_machine`]: tiny fixed-cost timer
/// IRQs and no softirqs, so per-thread timing is analytically checkable.
pub fn quiet_config() -> KernelConfig {
    KernelConfig {
        timer_irq_mean: SimDuration::from_nanos(200),
        timer_irq_sd: SimDuration::ZERO,
        softirq_prob: 0.0,
        ..KernelConfig::default()
    }
}

/// A quiet kernel at seed 1 — the scheduler behavioural suite's fixture.
pub fn quiet_kernel(cores: usize, smt: usize) -> Kernel {
    Kernel::new(quiet_machine(cores, smt), quiet_config(), 1)
}

/// A costed test machine: realistic migration/context-switch/wake
/// latencies, used by the tickless-equivalence and fault suites.
pub fn costed_machine(cores: usize, smt: usize) -> Machine {
    Machine {
        name: "t".into(),
        cores,
        smt,
        perf: PerfModel {
            flops_per_ns: 1.0,
            smt_factor: 0.5,
            per_core_bw: 10.0,
            socket_bw: 20.0,
        },
        migration_cost: SimDuration::from_nanos(500),
        ctx_switch: SimDuration::from_nanos(300),
        wake_latency: SimDuration::from_nanos(700),
        tick_period: SimDuration::from_millis(4),
        reserved_cpus: CpuSet::EMPTY,
        numa_domains: 1,
        dvfs: noiselab_machine::DvfsConfig::default(),
    }
}

/// Default kernel config with the tickless mode forced to `tickless`.
pub fn tickless_config(tickless: bool) -> KernelConfig {
    KernelConfig {
        tickless,
        ..KernelConfig::default()
    }
}

/// The common far-future run horizon.
pub fn horizon() -> SimTime {
    SimTime::from_secs_f64(100.0)
}

/// Spawn a thread that computes `flops` then exits.
pub fn spawn_compute(k: &mut Kernel, name: &str, flops: f64, policy: Policy) -> ThreadId {
    k.spawn(
        ThreadSpec::new(name, ThreadKind::Workload).policy(policy),
        Box::new(ScriptBehavior::new(vec![Action::Compute(
            WorkUnit::compute(flops),
        )])),
    )
}

// ---------------------------------------------------------------------
// Trace recording
// ---------------------------------------------------------------------

/// One recorded trace event: (cpu, class, source, start, duration).
pub type TraceTuple = (u32, NoiseClass, String, u64, u64);

/// A trace sink recording full event tuples for comparison across runs.
#[derive(Default)]
pub struct Recorder(pub Rc<RefCell<Vec<TraceTuple>>>);

impl TraceSink for Recorder {
    fn record(
        &mut self,
        cpu: CpuId,
        class: NoiseClass,
        source: &str,
        _tid: Option<ThreadId>,
        start: SimTime,
        duration: SimDuration,
    ) {
        self.0
            .borrow_mut()
            .push((cpu.0, class, source.to_string(), start.0, duration.nanos()));
    }
}

/// A fresh recorder plus the shared store it writes into, for
/// `kernel.attach_tracer(Box::new(recorder))` + later inspection.
pub fn recorder() -> (Recorder, Rc<RefCell<Vec<TraceTuple>>>) {
    let store = Rc::new(RefCell::new(Vec::new()));
    (Recorder(store.clone()), store)
}

// ---------------------------------------------------------------------
// Scripts
// ---------------------------------------------------------------------

/// The canonical two-phase barrier worker: compute, meet `bar`, compute
/// again. Used by the fault and tickless scenarios.
pub fn barrier_worker(
    bar: noiselab_kernel::BarrierId,
    pre: WorkUnit,
    post: WorkUnit,
) -> ScriptBehavior {
    ScriptBehavior::new(vec![
        Action::Compute(pre),
        Action::Barrier {
            id: bar,
            spin: SimDuration::from_micros(50),
        },
        Action::Compute(post),
    ])
}

// ---------------------------------------------------------------------
// Platforms, workloads and exec configs (full-stack suites)
// ---------------------------------------------------------------------

/// The paper's three platforms, labelled.
pub fn platforms() -> Vec<(&'static str, Platform)> {
    vec![
        ("intel", Platform::intel()),
        ("amd", Platform::amd()),
        ("a64fx", Platform::a64fx(false)),
    ]
}

/// Small-but-realistic N-body instance: long enough to span several
/// timer ticks, noise activations and migrations.
pub fn tiny_nbody(steps: usize) -> NBody {
    NBody {
        bodies: 4_096,
        steps,
        sycl_kernel_efficiency: 1.3,
    }
}

/// The equivalence-matrix N-body cell (smaller than [`tiny_nbody`]).
pub fn scaled_nbody() -> NBody {
    NBody {
        bodies: 2_048,
        steps: 2,
        sycl_kernel_efficiency: 1.3,
    }
}

/// Scaled-down instances of the paper's three core workloads — small
/// enough for a test matrix, long enough to span many timer ticks.
pub fn scaled_workloads() -> Vec<(&'static str, Box<dyn Workload + Sync>)> {
    vec![
        ("nbody", Box::new(scaled_nbody())),
        (
            "babelstream",
            Box::new(Babelstream {
                elements: 200_000,
                iterations: 3,
                ..Babelstream::default()
            }),
        ),
        (
            "minife",
            Box::new(MiniFE {
                nx: 16,
                cg_iterations: 6,
                ..MiniFE::default()
            }),
        ),
    ]
}

/// The default full-stack exec config: OpenMP under the RM mitigation.
pub fn omp_rm() -> ExecConfig {
    ExecConfig::new(Model::Omp, Mitigation::Rm)
}

/// ~5 % of runs lose one workload thread inside the first 2 ms — the
/// resilience gate's crash plan.
pub fn crashy_plan() -> FaultPlan {
    FaultPlan::crashy(0xC0FFEE, 0.05, 2)
}

/// A scratch file under the OS temp dir, namespaced per suite.
pub fn tmp_path(suite: &str, name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(suite);
    // audit:allow(panic-path): test-support helper — a failed tmp-dir creation should abort the suite loudly
    std::fs::create_dir_all(&dir).expect("create tmp dir");
    dir.join(name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quiet_and_costed_machines_have_expected_shape() {
        let q = quiet_machine(4, 1);
        assert_eq!((q.cores, q.smt), (4, 1));
        assert_eq!(q.ctx_switch, SimDuration::ZERO);
        let c = costed_machine(4, 2);
        assert_eq!(c.ctx_switch, SimDuration::from_nanos(300));
        assert_eq!(c.migration_cost, SimDuration::from_nanos(500));
    }

    #[test]
    fn recorder_captures_tuples() {
        let (mut rec, store) = recorder();
        rec.record(
            CpuId(2),
            NoiseClass::Irq,
            "nic:1",
            None,
            SimTime(5),
            SimDuration::from_nanos(7),
        );
        assert_eq!(
            store.borrow().as_slice(),
            &[(2, NoiseClass::Irq, "nic:1".to_string(), 5, 7)]
        );
    }

    #[test]
    fn workload_matrix_is_complete() {
        assert_eq!(platforms().len(), 3);
        assert_eq!(scaled_workloads().len(), 3);
        assert!(crashy_plan().abort.is_some());
    }
}
