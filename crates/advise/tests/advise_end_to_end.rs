//! End-to-end acceptance tests for the advisor: a seeded campaign with
//! one injected high-variance cell must be diagnosed by name, blamed
//! on the right noise source and CPU, and rendered byte-identically
//! regardless of input order; the bench watch must flag a synthetic 2x
//! regression and accept honest history.

use noiselab_advise::input::{HotpathCell, HotpathHistory, HotpathSnapshot, TelemetryBench};
use noiselab_advise::{
    advise, hotpath_checks, telemetry_cross_check, AdviseConfig, AdviseInputs, Severity, SmellKind,
    Verdict,
};
use noiselab_core::{CampaignState, CellKey, CellRecord, QuarantineRecord};
use noiselab_kernel::NoiseClass;
use noiselab_machine::CpuId;
use noiselab_noise::{RunTrace, TraceEvent, TraceSet};
use noiselab_sim::{SimDuration, SimTime};
use noiselab_telemetry::{CounterEntry, MetricsSnapshot};

fn cell(label: &str, seed: u64, samples: &[f64]) -> CellRecord {
    CellRecord {
        key: CellKey {
            label: label.to_string(),
            seed,
        },
        samples: samples.to_vec(),
        failures: Vec::new(),
        attempts: samples.len() as u64,
        stream_hash: 0xC0FFEE ^ seed,
        metrics: MetricsSnapshot::default(),
    }
}

/// Four-cell campaign: three tight cells and one injected
/// high-variance cell (`TP-SYCL`).
fn seeded_state() -> CampaignState {
    let mut state =
        CampaignState::new("v2|intel|nbody|[Rm-OMP,TP-OMP,Rm-SYCL,TP-SYCL]|runs=8".to_string());
    state.cells = vec![
        cell(
            "Rm-OMP",
            1,
            &[1.000, 1.001, 0.999, 1.002, 0.998, 1.000, 1.001, 0.999],
        ),
        cell(
            "TP-OMP",
            9,
            &[0.950, 0.951, 0.949, 0.952, 0.948, 0.950, 0.951, 0.949],
        ),
        cell(
            "Rm-SYCL",
            17,
            &[1.050, 1.051, 1.049, 1.052, 1.048, 1.050, 1.051, 1.049],
        ),
        cell(
            "TP-SYCL",
            25,
            &[0.80, 1.90, 0.85, 2.40, 0.90, 1.70, 0.82, 2.10],
        ),
    ];
    state
}

fn event(cpu: u32, class: NoiseClass, source: &str, dur_us: u64) -> TraceEvent {
    TraceEvent {
        cpu: CpuId(cpu),
        class,
        source: source.to_string(),
        start: SimTime::ZERO,
        duration: SimDuration::from_micros(dur_us),
    }
}

/// Trace evidence for the volatile cell: a constant timer on CPU 0
/// (identical every run — zero excess), a barely-varying softirq on
/// CPU 1, and a kworker on CPU 3 that hammers some runs and not
/// others. The kworker owns essentially all excess osnoise.
fn volatile_traces() -> TraceSet {
    let kworker_us = [0u64, 0, 400, 0, 900, 100];
    let rcu_us = [10u64, 12, 11, 10, 13, 11];
    let runs = kworker_us
        .iter()
        .zip(rcu_us)
        .enumerate()
        .map(|(i, (&kw, rcu))| {
            let mut events = vec![
                event(0, NoiseClass::Irq, "local_timer:236", 50),
                event(1, NoiseClass::Softirq, "RCU:9", rcu),
            ];
            if kw > 0 {
                events.push(event(3, NoiseClass::Thread, "kworker/3:1", kw));
            }
            RunTrace::new(i, SimDuration::from_millis(450 + kw / 10), events)
        })
        .collect();
    TraceSet { runs }
}

fn inputs_with_traces() -> AdviseInputs {
    let mut inputs = AdviseInputs {
        checkpoint: Some(seeded_state()),
        ..Default::default()
    };
    inputs
        .traces
        .insert("TP-SYCL".to_string(), volatile_traces());
    inputs
}

#[test]
fn names_the_injected_cell_and_blames_the_right_source_and_cpu() {
    let report = advise(&inputs_with_traces(), &AdviseConfig::default());

    let variance: Vec<_> = report
        .smells
        .iter()
        .filter(|s| s.kind == SmellKind::HighVariance)
        .collect();
    assert_eq!(
        variance.len(),
        1,
        "exactly the injected cell should smell: {:#?}",
        report.smells
    );
    assert_eq!(variance[0].cell, "TP-SYCL");
    assert_eq!(variance[0].severity, Severity::Critical);

    assert_eq!(report.blames.len(), 1, "{:#?}", report.blames);
    let b = &report.blames[0];
    assert_eq!(b.cell, "TP-SYCL");
    assert_eq!(b.source, "kworker/3:1");
    assert_eq!(b.cpu, 3);
    assert_eq!(b.class, "thread");
    assert!(!b.uniform);
    assert!(
        b.share_pct > 95.0,
        "kworker owns essentially all excess, got {:.1}%",
        b.share_pct
    );
    assert!(b.summary.contains("kworker/3:1"), "{}", b.summary);
    assert!(b.summary.contains("CPU 3"), "{}", b.summary);

    // Thread-class blame maps to the paper's scheduling-policy axis.
    assert!(
        report
            .recommendations
            .iter()
            .any(|r| r.topic == "sched-policy" && r.pick == "SCHED_FIFO"),
        "{:#?}",
        report.recommendations
    );
    assert_eq!(report.workload, "nbody");
    assert!(report.has_critical());
}

#[test]
fn reports_are_byte_identical_across_runs_and_input_orders() {
    let cfg = AdviseConfig::default();
    let first = advise(&inputs_with_traces(), &cfg);
    let second = advise(&inputs_with_traces(), &cfg);
    assert_eq!(first.render_human(), second.render_human());
    assert_eq!(first.render_markdown(), second.render_markdown());
    assert_eq!(first.to_json(), second.to_json());

    // Same evidence visited in a different order: cells reversed in
    // the checkpoint, extra trace sets inserted around the real one.
    let mut shuffled = inputs_with_traces();
    shuffled.checkpoint.as_mut().unwrap().cells.reverse();
    shuffled
        .traces
        .insert("AA-first".to_string(), TraceSet::default());
    shuffled
        .traces
        .insert("zz-last".to_string(), TraceSet::default());
    let third = advise(&shuffled, &cfg);
    assert_eq!(first.render_human(), third.render_human());
    assert_eq!(first.to_json(), third.to_json());
}

#[test]
fn tight_campaign_is_trustworthy_and_recommends_with_significance() {
    let mut state = seeded_state();
    // Replace the volatile cell with a tight one so nothing smells.
    state.cells[3] = cell(
        "TP-SYCL",
        25,
        &[0.900, 0.901, 0.899, 0.902, 0.898, 0.900, 0.901, 0.899],
    );
    let inputs = AdviseInputs {
        checkpoint: Some(state),
        ..Default::default()
    };
    let report = advise(&inputs, &AdviseConfig::default());
    assert!(report.smells.is_empty(), "{:#?}", report.smells);
    assert!(!report.check_failed());
    // TP-SYCL (0.9) beats every OMP cell with non-overlapping samples:
    // the runtime row must be significant and pick the SYCL side.
    let runtime = report
        .recommendations
        .iter()
        .find(|r| r.topic == "runtime")
        .expect("runtime row");
    assert!(runtime.significant, "{runtime:#?}");
    assert_eq!(runtime.pick, "TP-SYCL");
    assert!(runtime.p < 0.01);
}

/// The DVFS mitigation matrix: governor cells rank within their
/// (mitigation, model) family, pinned-vs-roaming is re-asked per
/// governor, throttling blame lands on `dvfs:throttle` by (source,
/// CPU), and governor cells never shadow the frequency-free cells of
/// the same mitigation.
#[test]
fn dvfs_matrix_ranks_governors_and_blames_throttling() {
    let mut state = CampaignState::new(
        "v2|intel-dvfs|nbody|[Rm-OMP,TP-OMP,TP-OMP-PERF,TP-OMP-SAVE,Rm-OMP-PERF,\
         Rm-OMP-SAVE,Rm-OMP-UTIL]|runs=8"
            .to_string(),
    );
    state.cells = vec![
        // Frequency-free reference cells keep the classic topics alive.
        cell(
            "Rm-OMP",
            1,
            &[1.000, 1.001, 0.999, 1.002, 0.998, 1.000, 1.001, 0.999],
        ),
        cell(
            "TP-OMP",
            9,
            &[0.950, 0.951, 0.949, 0.952, 0.948, 0.950, 0.951, 0.949],
        ),
        // The governor matrix: pinned and roaming under PERF and SAVE
        // (tight samples, PERF clearly faster), plus a throttling
        // roaming UTIL cell whose runs swing wildly.
        cell(
            "TP-OMP-PERF",
            33,
            &[0.900, 0.901, 0.899, 0.902, 0.898, 0.900, 0.901, 0.899],
        ),
        cell(
            "TP-OMP-SAVE",
            41,
            &[1.400, 1.401, 1.399, 1.402, 1.398, 1.400, 1.401, 1.399],
        ),
        cell(
            "Rm-OMP-PERF",
            49,
            &[0.970, 0.971, 0.969, 0.972, 0.968, 0.970, 0.971, 0.969],
        ),
        cell(
            "Rm-OMP-SAVE",
            57,
            &[1.480, 1.481, 1.479, 1.482, 1.478, 1.480, 1.481, 1.479],
        ),
        cell(
            "Rm-OMP-UTIL",
            65,
            &[0.80, 1.90, 0.85, 2.40, 0.90, 1.70, 0.82, 2.10],
        ),
    ];
    // Trace evidence for the volatile UTIL cell: a constant timer
    // (zero excess) and throttle windows on CPU 2 that hit some runs
    // and spare others — `dvfs:throttle` owns the excess.
    let throttle_us = [0u64, 600, 0, 1_100, 0, 500];
    let runs = throttle_us
        .iter()
        .enumerate()
        .map(|(i, &th)| {
            let mut events = vec![event(0, NoiseClass::Irq, "local_timer:236", 50)];
            if th > 0 {
                events.push(event(2, NoiseClass::Thread, "dvfs:throttle", th));
            }
            RunTrace::new(i, SimDuration::from_millis(450 + th / 10), events)
        })
        .collect();
    let mut inputs = AdviseInputs {
        checkpoint: Some(state),
        ..Default::default()
    };
    inputs
        .traces
        .insert("Rm-OMP-UTIL".to_string(), TraceSet { runs });

    let report = advise(&inputs, &AdviseConfig::default());

    // Governor ranking within each family, with rank-sum significance.
    let tp_row = report
        .recommendations
        .iter()
        .find(|r| r.topic == "governor" && r.pick == "TP-OMP-PERF")
        .unwrap_or_else(|| panic!("TP governor row missing: {:#?}", report.recommendations));
    assert_eq!(tp_row.against, "TP-OMP-SAVE");
    assert!(tp_row.significant, "{tp_row:#?}");
    assert!(tp_row.delta_pct < -0.3, "{tp_row:#?}");
    assert!(report
        .recommendations
        .iter()
        .any(|r| r.topic == "governor" && r.pick == "Rm-OMP-PERF"));

    // Placement re-asked per governor: pinning wins under PERF here.
    let placement = report
        .recommendations
        .iter()
        .find(|r| r.topic == "governor-placement" && r.pick == "TP-OMP-PERF")
        .expect("governor-placement row");
    assert_eq!(placement.against, "Rm-OMP-PERF");
    assert!(placement.rationale.contains("PERF"), "{placement:#?}");

    // Governor cells must not shadow the frequency-free matrix: the
    // classic placement row still compares TP-OMP against Rm-OMP.
    let classic = report
        .recommendations
        .iter()
        .find(|r| r.topic == "placement")
        .expect("classic placement row");
    assert_eq!(classic.pick, "TP-OMP");
    assert_eq!(classic.against, "Rm-OMP");

    // The volatile cell smells, and its blame names dvfs:throttle on
    // the CPU that throttled.
    let b = report
        .blames
        .iter()
        .find(|b| b.cell == "Rm-OMP-UTIL")
        .unwrap_or_else(|| panic!("throttle blame missing: {:#?}", report.blames));
    assert_eq!(b.source, "dvfs:throttle");
    assert_eq!(b.cpu, 2);
    assert_eq!(b.class, "thread");
    assert!(b.share_pct > 90.0, "{:.1}%", b.share_pct);
    assert!(b.summary.contains("dvfs:throttle"), "{}", b.summary);
}

fn snapshot(label: &str, bare: f64, telemetry: f64) -> HotpathSnapshot {
    HotpathSnapshot {
        label: label.to_string(),
        reps: 5,
        cells: vec![HotpathCell {
            workload: "nbody".to_string(),
            config: "Rm-OMP".to_string(),
            events_per_run: 2131,
            bare_ns_per_event: bare,
            telemetry_ns_per_event: telemetry,
            telemetry_overhead_pct: (telemetry / bare - 1.0) * 100.0,
            tracer_overhead_pct: 20.0,
            both_overhead_pct: 40.0,
        }],
    }
}

fn history(last_bare: f64) -> HotpathHistory {
    HotpathHistory {
        bench: "hotpath".to_string(),
        baseline: snapshot("baseline", 200.0, 250.0),
        steps: vec![
            snapshot("step1", 204.0, 251.0),
            snapshot("step2", 198.0, 249.0),
            snapshot("step3", last_bare, 250.0),
        ],
    }
}

#[test]
fn synthetic_2x_regression_is_flagged_and_honest_history_passes() {
    let cfg = AdviseConfig::default();
    let checks = hotpath_checks("BENCH_hotpath.json", &history(396.0), &cfg);
    let bare = checks
        .iter()
        .find(|c| c.metric == "bare_ns_per_event")
        .expect("bare row");
    assert_eq!(bare.verdict, Verdict::Regression, "{bare:#?}");
    assert!(bare.change > 0.9, "{:.3}", bare.change);
    assert!(bare.z > cfg.z_threshold, "{:.1}", bare.z);

    let honest = hotpath_checks("BENCH_hotpath.json", &history(201.0), &cfg);
    assert!(
        honest.iter().all(|c| c.verdict != Verdict::Regression),
        "{honest:#?}"
    );
}

#[test]
fn stale_telemetry_bench_is_cross_checked_against_hotpath() {
    let cfg = AdviseConfig::default();
    let telem = |bare_off: f64| TelemetryBench {
        bench: "telemetry_overhead".to_string(),
        workload: "nbody".to_string(),
        config: "Rm-OMP".to_string(),
        seed: 1,
        reps: 5,
        events_per_run: 2131,
        host_ns_per_event_off: bare_off,
        host_ns_per_event_on: bare_off * 1.22,
        telemetry_overhead_pct: 22.0,
        tracer_overhead_pct: 22.0,
        both_overhead_pct: 40.0,
    };
    // Stale file: claims 320 ns/event bare where the trajectory's
    // latest honest measurement is ~201.
    let (check, smell) =
        telemetry_cross_check("BENCH_telemetry.json", &telem(320.0), &history(201.0), &cfg);
    assert_eq!(check.verdict, Verdict::Regression);
    let smell = smell.expect("stale file must smell");
    assert_eq!(smell.kind, SmellKind::BenchMismatch);
    assert_eq!(smell.severity, Severity::Critical);
    assert!(smell.summary.contains("stale"), "{}", smell.summary);

    // Honest regeneration agrees and raises nothing.
    let (check, smell) =
        telemetry_cross_check("BENCH_telemetry.json", &telem(199.0), &history(201.0), &cfg);
    assert_eq!(check.verdict, Verdict::Ok);
    assert!(smell.is_none());
}

#[test]
fn supervisor_health_and_quarantine_surface_as_smells() {
    let mut state = seeded_state();
    state.cells.truncate(3); // keep it otherwise clean
    state.supervisor = MetricsSnapshot {
        runs: 0,
        counters: vec![
            CounterEntry {
                name: "campaignd.worker_crashes".to_string(),
                value: 2,
            },
            CounterEntry {
                name: "campaignd.workers_spawned".to_string(),
                value: 5,
            },
        ],
        gauges: Vec::new(),
        histograms: Vec::new(),
    };
    state.quarantined = vec![QuarantineRecord {
        shard: 7,
        cells: vec![CellKey {
            label: "TPHK2-SYCL".to_string(),
            seed: 33,
        }],
        crashes: 3,
        reason: "exit status 9".to_string(),
    }];
    let inputs = AdviseInputs {
        checkpoint: Some(state),
        ..Default::default()
    };
    let report = advise(&inputs, &AdviseConfig::default());

    let lost = report
        .smells
        .iter()
        .find(|s| s.kind == SmellKind::LostCells)
        .expect("lost-cells smell");
    assert_eq!(lost.severity, Severity::Critical);
    assert_eq!(lost.cell, "shard 7");
    assert!(lost.summary.contains("TPHK2-SYCL"), "{}", lost.summary);

    let sup = report
        .smells
        .iter()
        .find(|s| s.kind == SmellKind::SupervisorInstability)
        .expect("supervisor smell");
    assert_eq!(sup.severity, Severity::Warning);
    assert!(sup.summary.contains("2 unplanned worker crash(es)"));
    assert!(report.check_failed());
}
