//! Rendering: the same [`AdviseReport`] as a terminal report and as a
//! markdown document (the CI artifact). Both are pure functions of the
//! report struct — byte-identical output for identical inputs.

use crate::regress::Verdict;
use crate::AdviseReport;

fn header_line(r: &AdviseReport) -> String {
    let mut s = String::from("noiselab advise");
    if !r.workload.is_empty() {
        s.push_str(&format!(" \u{2014} workload {}", r.workload));
    }
    s.push('\n');
    if !r.fingerprint.is_empty() {
        s.push_str(&format!("campaign {}\n", r.fingerprint));
    }
    s
}

fn verdict_counts(r: &AdviseReport) -> String {
    let crit = r
        .smells
        .iter()
        .filter(|s| s.severity == crate::Severity::Critical)
        .count();
    let warn = r
        .smells
        .iter()
        .filter(|s| s.severity == crate::Severity::Warning)
        .count();
    let reg = r
        .bench
        .iter()
        .filter(|b| b.verdict == Verdict::Regression)
        .count();
    format!(
        "verdict: {} critical smell(s), {} warning(s), {} bench regression(s) \u{2014} {}",
        crit,
        warn,
        reg,
        if r.check_failed() {
            "NOT trustworthy as-is"
        } else {
            "measurements look trustworthy"
        }
    )
}

/// Plain-text report for the terminal.
pub fn render_human(r: &AdviseReport) -> String {
    let mut out = header_line(r);
    out.push_str(&verdict_counts(r));
    out.push('\n');

    out.push_str(&format!("\nsmells ({}):\n", r.smells.len()));
    if r.smells.is_empty() {
        out.push_str("  none \u{2014} no cell crossed a trust threshold\n");
    }
    for s in &r.smells {
        out.push_str(&format!(
            "  [{}] {:<22} {:<16} {}\n",
            s.severity.label(),
            s.kind.label(),
            s.cell,
            s.summary
        ));
    }

    if !r.blames.is_empty() {
        out.push_str(&format!("\nblame ({}):\n", r.blames.len()));
        for b in &r.blames {
            out.push_str(&format!("  {:<16} {}\n", b.cell, b.summary));
        }
    }

    if !r.bench.is_empty() {
        out.push_str(&format!("\nbench watch ({}):\n", r.bench.len()));
        for b in &r.bench {
            out.push_str(&format!(
                "  [{}] {:<22} {:<24} {}\n",
                b.verdict.label(),
                b.cell,
                b.metric,
                b.summary
            ));
        }
    }

    if !r.recommendations.is_empty() {
        out.push_str(&format!(
            "\nmitigation recommendations ({}):\n",
            r.recommendations.len()
        ));
        for rec in &r.recommendations {
            let evidence = if rec.p < 1.0 {
                format!("p={:.4}", rec.p)
            } else {
                "heuristic".to_string()
            };
            out.push_str(&format!(
                "  {:<13} {:<14} vs {:<14} {:<9} {}\n",
                rec.topic, rec.pick, rec.against, evidence, rec.rationale
            ));
        }
    }
    out
}

/// Markdown report (the CI artifact).
pub fn render_markdown(r: &AdviseReport) -> String {
    let mut out = String::from("# noiselab advise report\n\n");
    if !r.workload.is_empty() {
        out.push_str(&format!("**Workload:** `{}`  \n", r.workload));
    }
    if !r.fingerprint.is_empty() {
        out.push_str(&format!("**Campaign:** `{}`  \n", r.fingerprint));
    }
    out.push_str(&format!("**{}**\n", verdict_counts(r)));

    out.push_str("\n## Measurement smells\n\n");
    if r.smells.is_empty() {
        out.push_str("None — no cell crossed a trust threshold.\n");
    } else {
        out.push_str("| severity | kind | cell | finding |\n|---|---|---|---|\n");
        for s in &r.smells {
            out.push_str(&format!(
                "| {} | {} | `{}` | {} |\n",
                s.severity.label(),
                s.kind.label(),
                s.cell,
                s.summary
            ));
        }
    }

    if !r.blames.is_empty() {
        out.push_str("\n## Blame attribution\n\n");
        out.push_str("| cell | source | CPU | class | share of excess | finding |\n|---|---|---|---|---|---|\n");
        for b in &r.blames {
            out.push_str(&format!(
                "| `{}` | `{}` | {} | {} | {:.1}% | {} |\n",
                b.cell, b.source, b.cpu, b.class, b.share_pct, b.summary
            ));
        }
    }

    if !r.bench.is_empty() {
        out.push_str("\n## Bench regression watch\n\n");
        out.push_str("| verdict | file | cell | metric | previous | latest | change | z |\n|---|---|---|---|---|---|---|---|\n");
        for b in &r.bench {
            out.push_str(&format!(
                "| {} | `{}` | `{}` | {} | {:.1} | {:.1} | {:+.1}% | {:+.1} |\n",
                b.verdict.label(),
                b.file,
                b.cell,
                b.metric,
                b.previous,
                b.latest,
                b.change * 100.0,
                b.z
            ));
        }
    }

    if !r.recommendations.is_empty() {
        out.push_str("\n## Mitigation recommendations\n\n");
        out.push_str("| topic | pick | against | median delta | p | rationale |\n|---|---|---|---|---|---|\n");
        for rec in &r.recommendations {
            let evidence = if rec.p < 1.0 {
                format!("{:.4}", rec.p)
            } else {
                "—".to_string()
            };
            out.push_str(&format!(
                "| {} | `{}` | `{}` | {:+.1}% | {} | {} |\n",
                rec.topic,
                rec.pick,
                rec.against,
                rec.delta_pct * 100.0,
                evidence,
                rec.rationale
            ));
        }
    }
    out
}
