//! Pass 1: measurement-smell detection over a campaign checkpoint.
//!
//! A *smell* is evidence that a cell's numbers should not be trusted
//! as-is: dispersion that is statistically too high (bootstrap CI on
//! the CV, not a point estimate), runs that needed retries or were
//! lost outright, traces the ring buffer truncated, cells a
//! quarantined shard never delivered, and supervisor instability.

use crate::AdviseConfig;
use noiselab_core::{CampaignState, CellRecord};
use noiselab_stats::{bootstrap_ci, Summary};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// How bad a smell is. `Critical` fails `advise --check`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Severity {
    Info,
    Warning,
    Critical,
}

impl Severity {
    pub fn label(self) -> &'static str {
        match self {
            Severity::Info => "info",
            Severity::Warning => "WARN",
            Severity::Critical => "CRIT",
        }
    }
}

/// What kind of evidence the smell is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub enum SmellKind {
    /// Bootstrap CI lower bound of the CV exceeds the trust threshold.
    HighVariance,
    /// Retries were consumed and/or runs failed outright.
    RetryCluster,
    /// The tracer ring buffer truncated some of the cell's traces.
    DegradedTraces,
    /// A quarantined shard lost these cells entirely.
    LostCells,
    /// The cell produced no usable measurement at all.
    EmptyCell,
    /// Worker crashes / heartbeat timeouts during the campaign.
    SupervisorInstability,
    /// Two committed bench files disagree about the same quantity.
    BenchMismatch,
}

impl SmellKind {
    pub fn label(self) -> &'static str {
        match self {
            SmellKind::HighVariance => "high-variance",
            SmellKind::RetryCluster => "retry-cluster",
            SmellKind::DegradedTraces => "degraded-traces",
            SmellKind::LostCells => "lost-cells",
            SmellKind::EmptyCell => "empty-cell",
            SmellKind::SupervisorInstability => "supervisor-instability",
            SmellKind::BenchMismatch => "bench-mismatch",
        }
    }
}

/// One ranked finding.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Smell {
    pub severity: Severity,
    pub kind: SmellKind,
    /// The cell label (or `campaignd` / a shard name for
    /// campaign-level smells).
    pub cell: String,
    /// Ranking score within a severity band; larger is worse. Unitless
    /// and kind-specific (CV for variance, loss fractions otherwise).
    pub score: f64,
    pub summary: String,
}

/// FNV-1a over a label: mixed into the bootstrap seed so every cell
/// gets its own resampling stream regardless of checkpoint order.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x1_0000_01b3);
    }
    h
}

fn pct(x: f64) -> String {
    format!("{:.1}%", x * 100.0)
}

fn variance_smell(cell: &CellRecord, cfg: &AdviseConfig) -> Option<Smell> {
    if cell.samples.len() < 2 {
        return None;
    }
    let seed = cfg.seed ^ fnv1a(cell.key.label.as_bytes()) ^ cell.key.seed;
    let ci = bootstrap_ci(&cell.samples, cfg.resamples, seed, cfg.confidence, |xs| {
        Summary::of(xs).cv()
    });
    if ci.lo <= cfg.cv_threshold {
        return None;
    }
    let severity = if ci.lo > 2.0 * cfg.cv_threshold {
        Severity::Critical
    } else {
        Severity::Warning
    };
    Some(Smell {
        severity,
        kind: SmellKind::HighVariance,
        cell: cell.key.label.clone(),
        score: ci.point,
        summary: format!(
            "CV {} ({:.0}% CI {}\u{2013}{}) over {} runs exceeds the {} trust threshold",
            pct(ci.point),
            cfg.confidence * 100.0,
            pct(ci.lo),
            pct(ci.hi),
            cell.samples.len(),
            pct(cfg.cv_threshold),
        ),
    })
}

fn retry_smell(cell: &CellRecord) -> Option<Smell> {
    let succeeded = cell.samples.len() as u64;
    let excess = cell.attempts.saturating_sub(succeeded);
    if excess == 0 && cell.failures.is_empty() {
        return None;
    }
    let mut causes: BTreeMap<&str, usize> = BTreeMap::new();
    for f in &cell.failures {
        *causes.entry(f.cause.cause()).or_insert(0) += 1;
    }
    let cause_list = causes
        .iter()
        .map(|(c, n)| format!("{c}\u{00d7}{n}"))
        .collect::<Vec<_>>()
        .join(", ");
    let (severity, tail) = if cell.failures.is_empty() {
        (
            Severity::Warning,
            "all runs eventually succeeded, but retried runs re-roll their \
             seed and may hide load-sensitive behaviour"
                .to_string(),
        )
    } else {
        (
            Severity::Critical,
            format!("{} run(s) lost ({cause_list})", cell.failures.len()),
        )
    };
    Some(Smell {
        severity,
        kind: SmellKind::RetryCluster,
        cell: cell.key.label.clone(),
        score: excess as f64 / cell.attempts.max(1) as f64,
        summary: format!("{excess} extra attempt(s) beyond {succeeded} successful run(s); {tail}"),
    })
}

fn degraded_smell(cell: &CellRecord) -> Option<Smell> {
    let degraded = cell.metrics.counter("trace.degraded_runs");
    if degraded == 0 {
        return None;
    }
    let runs = cell.metrics.runs.max(1);
    Some(Smell {
        severity: Severity::Warning,
        kind: SmellKind::DegradedTraces,
        cell: cell.key.label.clone(),
        score: degraded as f64 / runs as f64,
        summary: format!(
            "{degraded} of {runs} run(s) recorded truncated traces \
             ({} events dropped); noise budgets under-report interference",
            cell.metrics.counter("trace.dropped"),
        ),
    })
}

fn empty_smell(cell: &CellRecord) -> Option<Smell> {
    if !cell.samples.is_empty() || cell.attempts == 0 {
        return None;
    }
    Some(Smell {
        severity: Severity::Critical,
        kind: SmellKind::EmptyCell,
        cell: cell.key.label.clone(),
        score: 1.0,
        summary: format!(
            "no usable measurement after {} attempt(s); the cell is a hole \
             in every table built from this campaign",
            cell.attempts
        ),
    })
}

fn supervisor_smells(state: &CampaignState) -> Vec<Smell> {
    let s = &state.supervisor;
    let crashes = s.counter("campaignd.worker_crashes");
    let timeouts = s.counter("campaignd.heartbeat_timeouts");
    let chaos = s.counter("campaignd.chaos_kills");
    let spawned = s.counter("campaignd.workers_spawned");
    let mut out = Vec::new();
    if crashes > 0 || timeouts > 0 {
        out.push(Smell {
            severity: Severity::Warning,
            kind: SmellKind::SupervisorInstability,
            cell: "campaignd".to_string(),
            score: crashes as f64 / spawned.max(1) as f64,
            summary: format!(
                "{crashes} unplanned worker crash(es) ({timeouts} from \
                 heartbeat/shard timeouts) across {spawned} spawn(s); \
                 results merged bit-identically, but the host was unhealthy"
            ),
        });
    } else if chaos > 0 {
        out.push(Smell {
            severity: Severity::Info,
            kind: SmellKind::SupervisorInstability,
            cell: "campaignd".to_string(),
            score: 0.0,
            summary: format!(
                "{chaos} planned chaos kill(s) absorbed with no unplanned \
                 crashes; crash recovery is exercised and healthy"
            ),
        });
    }
    out
}

/// Detect every smell in a checkpoint. Output order is fully
/// determined by ([`Severity`] desc, score desc, cell, kind).
pub fn detect_smells(state: &CampaignState, cfg: &AdviseConfig) -> Vec<Smell> {
    let mut out = Vec::new();
    for cell in &state.cells {
        out.extend(variance_smell(cell, cfg));
        out.extend(retry_smell(cell));
        out.extend(degraded_smell(cell));
        out.extend(empty_smell(cell));
    }
    for q in &state.quarantined {
        let labels = q
            .cells
            .iter()
            .map(|k| k.label.as_str())
            .collect::<Vec<_>>()
            .join(", ");
        out.push(Smell {
            severity: Severity::Critical,
            kind: SmellKind::LostCells,
            cell: format!("shard {}", q.shard),
            score: q.cells.len() as f64,
            summary: format!(
                "quarantined after {} crash(es) ({}); lost cells: {labels}",
                q.crashes, q.reason
            ),
        });
    }
    out.extend(supervisor_smells(state));
    sort_smells(&mut out);
    out
}

/// The one canonical smell ordering (worst first, then stable
/// tie-breaks) — shared by every pass that appends smells.
pub fn sort_smells(smells: &mut [Smell]) {
    smells.sort_by(|a, b| {
        b.severity
            .cmp(&a.severity)
            .then_with(|| b.score.total_cmp(&a.score))
            .then_with(|| a.cell.cmp(&b.cell))
            .then_with(|| a.kind.cmp(&b.kind))
    });
}
