//! Artifact loaders: bench histories (with schema refusal) and trace
//! sets (file or directory, visit-order independent).

use noiselab_noise::TraceSet;
use serde::Deserialize;
use std::collections::BTreeMap;
use std::fmt;
use std::path::{Path, PathBuf};

/// Why an advise input could not be used. Every variant names the
/// offending path; `BenchSchema` is the "refuse mismatched bench
/// files" contract — a clear sentence, not a parse backtrace.
#[derive(Debug)]
pub enum AdviseError {
    Io { path: PathBuf, detail: String },
    BenchSchema { path: PathBuf, detail: String },
    Traces { path: PathBuf, detail: String },
}

impl fmt::Display for AdviseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AdviseError::Io { path, detail } => {
                write!(f, "cannot read {}: {detail}", path.display())
            }
            AdviseError::BenchSchema { path, detail } => {
                write!(f, "refusing bench file {}: {detail}", path.display())
            }
            AdviseError::Traces { path, detail } => {
                write!(f, "cannot load traces from {}: {detail}", path.display())
            }
        }
    }
}

impl std::error::Error for AdviseError {}

/// Mirror of one `BENCH_hotpath.json` cell.
#[derive(Debug, Clone, PartialEq, serde::Serialize, Deserialize)]
pub struct HotpathCell {
    pub workload: String,
    pub config: String,
    pub events_per_run: u64,
    pub bare_ns_per_event: f64,
    pub telemetry_ns_per_event: f64,
    pub telemetry_overhead_pct: f64,
    pub tracer_overhead_pct: f64,
    pub both_overhead_pct: f64,
}

/// One labelled snapshot of the hotpath sweep.
#[derive(Debug, Clone, PartialEq, serde::Serialize, Deserialize)]
pub struct HotpathSnapshot {
    pub label: String,
    pub reps: u32,
    pub cells: Vec<HotpathCell>,
}

/// The committed `BENCH_hotpath.json` trajectory.
#[derive(Debug, Clone, PartialEq, serde::Serialize, Deserialize)]
pub struct HotpathHistory {
    pub bench: String,
    pub baseline: HotpathSnapshot,
    pub steps: Vec<HotpathSnapshot>,
}

impl HotpathHistory {
    pub fn latest(&self) -> &HotpathSnapshot {
        self.steps.last().unwrap_or(&self.baseline)
    }

    /// All snapshots oldest-first (baseline, then each step).
    pub fn snapshots(&self) -> Vec<&HotpathSnapshot> {
        std::iter::once(&self.baseline)
            .chain(self.steps.iter())
            .collect()
    }

    /// The `(workload, config)` keys present in any snapshot, sorted.
    pub fn cell_keys(&self) -> Vec<(String, String)> {
        let mut keys: Vec<(String, String)> = Vec::new();
        for snap in self.snapshots() {
            for c in &snap.cells {
                let key = (c.workload.clone(), c.config.clone());
                if !keys.contains(&key) {
                    keys.push(key);
                }
            }
        }
        keys.sort();
        keys
    }

    /// The metric's series for one cell, oldest-first; snapshots
    /// missing the cell are skipped.
    pub fn series<F>(&self, workload: &str, config: &str, metric: F) -> Vec<f64>
    where
        F: Fn(&HotpathCell) -> f64,
    {
        self.snapshots()
            .iter()
            .filter_map(|snap| {
                snap.cells
                    .iter()
                    .find(|c| c.workload == workload && c.config == config)
                    .map(&metric)
            })
            .collect()
    }
}

/// Mirror of `BENCH_telemetry.json` (the nested full `report` is
/// ignored; the summary fields are what the cross-check needs).
#[derive(Debug, Clone, PartialEq, serde::Serialize, Deserialize)]
pub struct TelemetryBench {
    pub bench: String,
    pub workload: String,
    pub config: String,
    pub seed: u64,
    pub reps: u32,
    pub events_per_run: u64,
    pub host_ns_per_event_off: f64,
    pub host_ns_per_event_on: f64,
    pub telemetry_overhead_pct: f64,
    pub tracer_overhead_pct: f64,
    pub both_overhead_pct: f64,
}

/// Read a bench file, insisting on `"bench": "<expected>"` before any
/// shape parsing — a file from the wrong emitter (or from before the
/// tag existed) is refused with a sentence naming both schemas.
fn load_bench_value(path: &Path, expected: &str) -> Result<serde::Value, AdviseError> {
    let text = std::fs::read_to_string(path).map_err(|e| AdviseError::Io {
        path: path.to_path_buf(),
        detail: e.to_string(),
    })?;
    let value = serde::parse_json(&text).map_err(|e| AdviseError::BenchSchema {
        path: path.to_path_buf(),
        detail: format!("not valid JSON ({e})"),
    })?;
    let obj = value.as_object().ok_or_else(|| AdviseError::BenchSchema {
        path: path.to_path_buf(),
        detail: "not a JSON object".to_string(),
    })?;
    match serde::__field(obj, "bench").and_then(|v| v.as_str()) {
        None => Err(AdviseError::BenchSchema {
            path: path.to_path_buf(),
            detail: format!(
                "no `bench` schema tag; expected a `{expected}` bench file \
                 (regenerate it with `cargo bench -p noiselab-bench`)"
            ),
        }),
        Some(tag) if tag != expected => Err(AdviseError::BenchSchema {
            path: path.to_path_buf(),
            detail: format!("schema mismatch: this is a `{tag}` bench file, expected `{expected}`"),
        }),
        Some(_) => Ok(value),
    }
}

/// Load and validate `BENCH_hotpath.json`.
pub fn load_hotpath(path: &Path) -> Result<HotpathHistory, AdviseError> {
    let value = load_bench_value(path, "hotpath")?;
    HotpathHistory::from_value(&value).map_err(|e| AdviseError::BenchSchema {
        path: path.to_path_buf(),
        detail: format!("malformed hotpath history: {e}"),
    })
}

/// Load and validate `BENCH_telemetry.json`.
pub fn load_telemetry(path: &Path) -> Result<TelemetryBench, AdviseError> {
    let value = load_bench_value(path, "telemetry_overhead")?;
    TelemetryBench::from_value(&value).map_err(|e| AdviseError::BenchSchema {
        path: path.to_path_buf(),
        detail: format!("malformed telemetry bench summary: {e}"),
    })
}

/// Load trace evidence for blame attribution. A file is one
/// [`TraceSet`] applied to any flagged cell (key `"*"`); a directory
/// contributes one set per `<cell-label>.json`, iterated in sorted
/// filename order so the report never depends on readdir order.
pub fn load_traces(path: &Path) -> Result<BTreeMap<String, TraceSet>, AdviseError> {
    let mut out = BTreeMap::new();
    let meta = std::fs::metadata(path).map_err(|e| AdviseError::Io {
        path: path.to_path_buf(),
        detail: e.to_string(),
    })?;
    if meta.is_file() {
        out.insert("*".to_string(), load_trace_file(path)?);
        return Ok(out);
    }
    let mut files: Vec<PathBuf> = std::fs::read_dir(path)
        .map_err(|e| AdviseError::Io {
            path: path.to_path_buf(),
            detail: e.to_string(),
        })?
        .filter_map(|entry| entry.ok().map(|e| e.path()))
        .filter(|p| p.extension().is_some_and(|ext| ext == "json"))
        .collect();
    files.sort();
    for file in files {
        let label = file
            .file_stem()
            .and_then(|s| s.to_str())
            .unwrap_or_default()
            .to_string();
        if label.is_empty() {
            continue;
        }
        out.insert(label, load_trace_file(&file)?);
    }
    if out.is_empty() {
        return Err(AdviseError::Traces {
            path: path.to_path_buf(),
            detail: "directory holds no *.json trace sets".to_string(),
        });
    }
    Ok(out)
}

fn load_trace_file(path: &Path) -> Result<TraceSet, AdviseError> {
    let text = std::fs::read_to_string(path).map_err(|e| AdviseError::Io {
        path: path.to_path_buf(),
        detail: e.to_string(),
    })?;
    serde_json::from_str(&text).map_err(|e| AdviseError::Traces {
        path: path.to_path_buf(),
        detail: format!("not a TraceSet: {e}"),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpdir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("nl-advise-input-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("create tmpdir");
        dir
    }

    #[test]
    fn refuses_untagged_and_mistagged_bench_files() {
        let dir = tmpdir("schema");
        let untagged = dir.join("old.json");
        std::fs::write(&untagged, "{\"workload\": \"nbody\"}").unwrap();
        let err = load_hotpath(&untagged).unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("refusing bench file"), "{msg}");
        assert!(msg.contains("no `bench` schema tag"), "{msg}");

        let mistagged = dir.join("telem.json");
        std::fs::write(&mistagged, "{\"bench\": \"telemetry_overhead\"}").unwrap();
        let err = load_hotpath(&mistagged).unwrap_err();
        let msg = err.to_string();
        assert!(
            msg.contains("this is a `telemetry_overhead` bench file, expected `hotpath`"),
            "{msg}"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn refuses_malformed_body_with_path() {
        let dir = tmpdir("body");
        let bad = dir.join("bad.json");
        std::fs::write(&bad, "{\"bench\": \"hotpath\", \"baseline\": 3}").unwrap();
        let err = load_hotpath(&bad).unwrap_err();
        assert!(matches!(err, AdviseError::BenchSchema { .. }), "{err}");
        assert!(err.to_string().contains("malformed hotpath history"));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn trace_dir_is_sorted_by_filename() {
        let dir = tmpdir("traces");
        let empty = TraceSet::default();
        let json = serde_json::to_string(&empty).unwrap();
        for name in ["b-cell.json", "a-cell.json", "ignore.txt"] {
            std::fs::write(dir.join(name), &json).unwrap();
        }
        let sets = load_traces(&dir).unwrap();
        let keys: Vec<&String> = sets.keys().collect();
        assert_eq!(keys, ["a-cell", "b-cell"]);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
