//! # noiselab-advise
//!
//! The measurement-quality advisor: turns the artifacts every other
//! subsystem already produces — campaign checkpoints (ledger stream
//! hashes, failure taxonomy, per-cell metrics), OsNoiseTracer trace
//! sets, supervisor health counters, and the committed `BENCH_*.json`
//! history — into a ranked, deterministic diagnosis. Three passes:
//!
//! 1. **Smell detection** ([`smell`]): high-CV cells via a seeded
//!    bootstrap CI on the coefficient of variation, retry and failure
//!    clusters, degraded-trace clusters, quarantined/lost cells, and
//!    supervisor instability.
//! 2. **Blame attribution** ([`blame`]): for flagged cells with trace
//!    data, name the dominant noise source *and* CPU by its share of
//!    excess osnoise over the per-run median.
//! 3. **Regression watch** ([`regress`]): judge the latest bench
//!    snapshot against the trajectory's own step-to-step variability
//!    (robust z over historical changes — statistics, not raw
//!    thresholds), and cross-check `BENCH_telemetry.json` against
//!    `BENCH_hotpath.json` so a stale file cannot lie unnoticed.
//!
//! Plus a mitigation recommendation table ([`recommend`]) re-deriving
//! the paper's Table-2-style judgment (pin vs roam, housekeeping
//! width, OMP vs SYCL) with rank-sum significance.
//!
//! Everything is read-only over run artifacts and deterministic: the
//! same inputs produce byte-identical human, JSON and markdown reports
//! regardless of file-visit order (all maps are BTree, all ranking
//! keys are total orders, the bootstrap is seeded).

pub mod blame;
pub mod input;
pub mod recommend;
pub mod regress;
pub mod report;
pub mod smell;

pub use blame::{attribute_set, Blame};
pub use input::{
    load_hotpath, load_telemetry, load_traces, AdviseError, HotpathCell, HotpathHistory,
    HotpathSnapshot, TelemetryBench,
};
pub use recommend::{recommend, Recommendation};
pub use regress::{hotpath_checks, telemetry_cross_check, BenchCheck, Verdict};
pub use smell::{detect_smells, Severity, Smell, SmellKind};

use noiselab_core::CampaignState;
use noiselab_noise::TraceSet;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Tunables for the three passes. The defaults are what the CLI and CI
/// gate use; tests tighten or loosen them explicitly.
#[derive(Debug, Clone)]
pub struct AdviseConfig {
    /// Seed for the bootstrap resampler (combined per cell with the
    /// cell's own identity so cell order cannot matter).
    pub seed: u64,
    /// Bootstrap resamples per cell.
    pub resamples: usize,
    /// Two-sided bootstrap confidence level.
    pub confidence: f64,
    /// A cell smells when the CI *lower* bound of its CV exceeds this.
    pub cv_threshold: f64,
    /// Significance level for rank-sum comparisons.
    pub alpha: f64,
    /// Robust-z threshold for the bench regression watch.
    pub z_threshold: f64,
    /// Minimum relative change the watch will ever call a regression,
    /// whatever the z-score says (guards against a near-zero noise
    /// scale inflating trivia). The default sits just under the
    /// hotpath bench's own ±25% self-gate: steps that bench already
    /// accepts as machine noise are not re-litigated here.
    pub change_floor: f64,
    /// Floor and cap on the step-change noise scale. The floor absorbs
    /// short histories; the cap keeps genuine past *optimization*
    /// jumps from widening the tolerance for future regressions.
    pub scale_floor: f64,
    pub scale_cap: f64,
    /// Tolerated relative disagreement between the telemetry bench's
    /// bare ns/event and the hotpath trajectory's latest snapshot.
    pub cross_check_tolerance: f64,
}

impl Default for AdviseConfig {
    fn default() -> Self {
        AdviseConfig {
            seed: 0xAD_715E,
            resamples: 800,
            confidence: 0.95,
            cv_threshold: 0.05,
            alpha: 0.01,
            z_threshold: 3.0,
            change_floor: 0.20,
            scale_floor: 0.03,
            scale_cap: 0.15,
            cross_check_tolerance: 0.25,
        }
    }
}

/// Everything advise can consume. All fields optional: the report
/// covers whatever evidence exists.
#[derive(Debug, Default)]
pub struct AdviseInputs {
    pub checkpoint: Option<CampaignState>,
    /// Trace sets keyed by cell label; the `"*"` key applies to any
    /// flagged cell that has no labelled set of its own.
    pub traces: BTreeMap<String, TraceSet>,
    /// `(display name, parsed history)` of `BENCH_hotpath.json`.
    pub hotpath: Option<(String, HotpathHistory)>,
    /// `(display name, parsed summary)` of `BENCH_telemetry.json`.
    pub telemetry: Option<(String, TelemetryBench)>,
}

/// The assembled diagnosis. Serializes to the JSON report form.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AdviseReport {
    pub schema: u32,
    /// Campaign fingerprint, or empty when no checkpoint was given.
    pub fingerprint: String,
    /// Workload name parsed from the fingerprint (empty if unknown).
    pub workload: String,
    pub smells: Vec<Smell>,
    pub blames: Vec<Blame>,
    pub bench: Vec<BenchCheck>,
    pub recommendations: Vec<Recommendation>,
}

pub const REPORT_SCHEMA: u32 = 1;

impl AdviseReport {
    pub fn has_critical(&self) -> bool {
        self.smells.iter().any(|s| s.severity == Severity::Critical)
    }

    pub fn has_regression(&self) -> bool {
        self.bench.iter().any(|b| b.verdict == Verdict::Regression)
    }

    /// Should `advise --check` fail the build?
    pub fn check_failed(&self) -> bool {
        self.has_regression() || self.has_critical()
    }

    pub fn render_human(&self) -> String {
        report::render_human(self)
    }

    pub fn render_markdown(&self) -> String {
        report::render_markdown(self)
    }

    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).unwrap_or_else(|e| format!("{{\"error\":\"{e}\"}}"))
    }
}

/// Workload field of a `v2|platform|workload|...` campaign
/// fingerprint.
fn workload_of_fingerprint(fp: &str) -> String {
    fp.split('|').nth(2).unwrap_or("").to_string()
}

/// Run all passes over the available inputs.
pub fn advise(inputs: &AdviseInputs, cfg: &AdviseConfig) -> AdviseReport {
    let mut smells = Vec::new();
    let mut blames = Vec::new();
    let mut recommendations = Vec::new();
    let mut bench = Vec::new();
    let (fingerprint, workload) = match &inputs.checkpoint {
        Some(state) => (
            state.fingerprint.clone(),
            workload_of_fingerprint(&state.fingerprint),
        ),
        None => (String::new(), String::new()),
    };

    if let Some(state) = &inputs.checkpoint {
        smells.extend(detect_smells(state, cfg));
        recommendations.extend(recommend(state, cfg));
    }

    // Blame every flagged cell that has trace evidence; with no
    // checkpoint at all, blame each provided set directly so advise
    // still works over raw `noiselab trace` output.
    if inputs.checkpoint.is_some() {
        let flagged: Vec<String> = smells
            .iter()
            .filter(|s| {
                matches!(
                    s.kind,
                    SmellKind::HighVariance | SmellKind::RetryCluster | SmellKind::DegradedTraces
                )
            })
            .map(|s| s.cell.clone())
            .collect();
        let mut done: std::collections::BTreeSet<String> = std::collections::BTreeSet::new();
        for cell in flagged {
            if !done.insert(cell.clone()) {
                continue;
            }
            let set = inputs.traces.get(&cell).or_else(|| inputs.traces.get("*"));
            if let Some(set) = set {
                if let Some(b) = attribute_set(&cell, set) {
                    blames.push(b);
                }
            }
        }
    } else {
        for (label, set) in &inputs.traces {
            if let Some(b) = attribute_set(label, set) {
                blames.push(b);
            }
        }
    }
    blames.sort_by(|a, b| {
        b.share_pct
            .total_cmp(&a.share_pct)
            .then_with(|| a.cell.cmp(&b.cell))
    });

    // Thread-class blame maps onto the paper's scheduling-policy axis:
    // FIFO workload threads cannot be preempted by OTHER-class noise.
    for b in &blames {
        if b.class == "thread" {
            recommendations.push(Recommendation {
                topic: "sched-policy".into(),
                pick: "SCHED_FIFO".into(),
                against: "SCHED_OTHER".into(),
                delta_pct: 0.0,
                p: 1.0,
                significant: false,
                rationale: format!(
                    "thread-class noise ({}) dominates blame for cell {}; \
                     FIFO workload threads would preempt it instead of \
                     queueing behind it",
                    b.source, b.cell
                ),
            });
        }
    }

    if let Some((name, history)) = &inputs.hotpath {
        bench.extend(hotpath_checks(name, history, cfg));
        if let Some((tname, telem)) = &inputs.telemetry {
            let (check, smell) = telemetry_cross_check(tname, telem, history, cfg);
            bench.push(check);
            if let Some(s) = smell {
                smells.push(s);
            }
        }
    }
    smell::sort_smells(&mut smells);

    AdviseReport {
        schema: REPORT_SCHEMA,
        fingerprint,
        workload,
        smells,
        blames,
        bench,
        recommendations,
    }
}
