//! The mitigation recommendation table: the paper's Table-2 judgment
//! (which placement, how much housekeeping, which runtime) re-derived
//! from the campaign's own samples with rank-sum significance.
//!
//! Every comparison is a two-sided Mann-Whitney test between the
//! sample vectors of two cells; a recommendation is only *significant*
//! when p < alpha, and the table says "either" rather than inventing a
//! preference from noise.

use crate::AdviseConfig;
use noiselab_core::{CampaignState, CellRecord};
use noiselab_stats::{mann_whitney_u, median};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// One row of the recommendation table.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Recommendation {
    /// `placement`, `housekeeping`, `runtime`, or `sched-policy`.
    pub topic: String,
    pub pick: String,
    pub against: String,
    /// Median exec-time change of pick vs against, as a fraction
    /// (negative = pick is faster).
    pub delta_pct: f64,
    /// Rank-sum p-value (1.0 for heuristic rows).
    pub p: f64,
    pub significant: bool,
    pub rationale: String,
}

/// The governor tags `ExecConfig::label()` appends to DVFS cells.
const GOVERNOR_TAGS: [&str; 3] = ["PERF", "SAVE", "UTIL"];

/// `(mitigation, model, governor)` parsed from a `ExecConfig::label()`
/// string like `TPHK2-SYCL-SMT` or `TP-OMP-UTIL`.
fn parse_label(label: &str) -> Option<(String, String, Option<String>)> {
    let mut parts = label.split('-');
    let mitigation = parts.next()?.to_string();
    let model = parts.next()?.to_string();
    let governor = parts
        .find(|p| GOVERNOR_TAGS.contains(p))
        .map(str::to_string);
    Some((mitigation, model, governor))
}

fn is_pinned(mitigation: &str) -> bool {
    mitigation.starts_with("TP")
}

/// Median of a cell's samples (cells with no samples are excluded
/// before this is called).
fn cell_median(cell: &CellRecord) -> f64 {
    median(&cell.samples)
}

fn compare(
    topic: &str,
    a: (&str, &CellRecord),
    b: (&str, &CellRecord),
    cfg: &AdviseConfig,
    rationale_for: impl Fn(&str, &str, f64, bool) -> String,
) -> Recommendation {
    let (med_a, med_b) = (cell_median(a.1), cell_median(b.1));
    let r = mann_whitney_u(&a.1.samples, &b.1.samples);
    let significant = r.significant(cfg.alpha);
    // Pick the faster side; without significance, report "either" and
    // keep the simpler/default side (b) as the nominal pick.
    let (pick, against, delta) = if significant && med_a < med_b {
        (a.0, b.0, med_a / med_b - 1.0)
    } else if significant {
        (b.0, a.0, med_b / med_a - 1.0)
    } else {
        ("either", if med_a < med_b { a.0 } else { b.0 }, 0.0)
    };
    Recommendation {
        topic: topic.to_string(),
        pick: pick.to_string(),
        against: against.to_string(),
        delta_pct: delta,
        p: r.p,
        significant,
        rationale: rationale_for(pick, against, delta, significant),
    }
}

/// Build the table from a checkpoint. Rows are ordered by
/// (topic, pick) via a final sort.
pub fn recommend(state: &CampaignState, cfg: &AdviseConfig) -> Vec<Recommendation> {
    // model -> mitigation -> cell (only cells with enough samples to
    // test; label collisions keep the first occurrence).
    let mut by_model: BTreeMap<String, BTreeMap<String, &CellRecord>> = BTreeMap::new();
    // DVFS governor cells form their own matrix, keyed
    // (model, mitigation) -> governor tag; they must not shadow the
    // frequency-free cells of the same mitigation in `by_model`.
    let mut by_gov: BTreeMap<(String, String), BTreeMap<String, &CellRecord>> = BTreeMap::new();
    for cell in &state.cells {
        if cell.samples.len() < 2 {
            continue;
        }
        match parse_label(&cell.key.label) {
            Some((mitigation, model, None)) => {
                by_model
                    .entry(model)
                    .or_default()
                    .entry(mitigation)
                    .or_insert(cell);
            }
            Some((mitigation, model, Some(tag))) => {
                by_gov
                    .entry((model, mitigation))
                    .or_default()
                    .entry(tag)
                    .or_insert(cell);
            }
            None => {}
        }
    }
    let mut out = Vec::new();
    let mut best_per_model: BTreeMap<String, (String, &CellRecord)> = BTreeMap::new();
    for (model, cells) in &by_model {
        // Fastest pinned vs fastest roaming variant.
        let best_of = |pinned: bool| -> Option<(&String, &&CellRecord)> {
            cells
                .iter()
                .filter(|(m, _)| is_pinned(m) == pinned)
                .min_by(|a, b| {
                    cell_median(a.1)
                        .total_cmp(&cell_median(b.1))
                        .then_with(|| a.0.cmp(b.0))
                })
        };
        if let (Some((pin_label, pin)), Some((roam_label, roam))) = (best_of(true), best_of(false))
        {
            let a = (format!("{pin_label}-{model}"), *pin);
            let b = (format!("{roam_label}-{model}"), *roam);
            out.push(compare(
                "placement",
                (&a.0, a.1),
                (&b.0, b.1),
                cfg,
                |pick, against, delta, sig| {
                    if sig {
                        format!(
                            "{pick} beats {against} by {:.1}% median exec time",
                            -delta * 100.0
                        )
                    } else {
                        format!(
                            "no significant placement effect for {model}; \
                             pinning is not buying anything here"
                        )
                    }
                },
            ));
        }
        // Housekeeping width within the base placement families.
        for (base, hks) in [("Rm", ["RmHK", "RmHK2"]), ("TP", ["TPHK", "TPHK2"])] {
            let Some(base_cell) = cells.get(base) else {
                continue;
            };
            let best_hk = hks
                .iter()
                .filter_map(|m| cells.get(*m).map(|c| (*m, *c)))
                .min_by(|a, b| cell_median(a.1).total_cmp(&cell_median(b.1)));
            if let Some((hk_label, hk_cell)) = best_hk {
                let a = (format!("{hk_label}-{model}"), hk_cell);
                let b = (format!("{base}-{model}"), *base_cell);
                out.push(compare(
                    "housekeeping",
                    (&a.0, a.1),
                    (&b.0, b.1),
                    cfg,
                    |_pick, _against, delta, sig| {
                        if sig && delta < 0.0 {
                            format!(
                                "reserving housekeeping CPUs pays for itself \
                                 ({:.1}% median)",
                                -delta * 100.0
                            )
                        } else if sig {
                            format!(
                                "housekeeping reservation costs more than the noise \
                                 it deflects ({:.1}% median)",
                                -delta * 100.0
                            )
                        } else {
                            "housekeeping width makes no significant difference".to_string()
                        }
                    },
                ));
            }
        }
        // Remember the model's fastest cell for the runtime comparison.
        if let Some((label, cell)) = cells.iter().min_by(|a, b| {
            cell_median(a.1)
                .total_cmp(&cell_median(b.1))
                .then_with(|| a.0.cmp(b.0))
        }) {
            best_per_model.insert(model.clone(), (format!("{label}-{model}"), *cell));
        }
    }
    if let (Some((omp_label, omp)), Some((sycl_label, sycl))) =
        (best_per_model.get("OMP"), best_per_model.get("SYCL"))
    {
        out.push(compare(
            "runtime",
            (omp_label, omp),
            (sycl_label, sycl),
            cfg,
            |pick, against, delta, sig| {
                if sig {
                    format!(
                        "{pick} beats {against} by {:.1}% median exec time at \
                         each runtime's best mitigation",
                        -delta * 100.0
                    )
                } else {
                    "runtime choice makes no significant difference at best \
                     mitigations"
                        .to_string()
                }
            },
        ));
    }
    // The DVFS mitigation matrix. Within each (mitigation, model)
    // family, rank the governors; across families, compare the best
    // pinned against the best roaming cell per governor — does pinning
    // still pay once threads also fight over a shared turbo budget and
    // thermal headroom?
    for ((model, mitigation), govs) in &by_gov {
        if govs.len() < 2 {
            continue;
        }
        let mut ranked: Vec<(&String, &&CellRecord)> = govs.iter().collect();
        ranked.sort_by(|a, b| {
            cell_median(a.1)
                .total_cmp(&cell_median(b.1))
                .then_with(|| a.0.cmp(b.0))
        });
        let (fast_tag, fast) = ranked[0];
        let (slow_tag, slow) = ranked[ranked.len() - 1];
        let a = (format!("{mitigation}-{model}-{fast_tag}"), *fast);
        let b = (format!("{mitigation}-{model}-{slow_tag}"), *slow);
        out.push(compare(
            "governor",
            (&a.0, a.1),
            (&b.0, b.1),
            cfg,
            |pick, against, delta, sig| {
                if sig {
                    format!(
                        "{pick} beats {against} by {:.1}% median exec time \
                         under frequency/thermal noise",
                        -delta * 100.0
                    )
                } else {
                    format!(
                        "governor choice makes no significant difference \
                         for {mitigation}-{model}"
                    )
                }
            },
        ));
    }
    let mut per_tag: BTreeMap<&String, Vec<(&String, &String, &CellRecord)>> = BTreeMap::new();
    for ((model, mitigation), govs) in &by_gov {
        for (tag, cell) in govs {
            per_tag
                .entry(tag)
                .or_default()
                .push((mitigation, model, cell));
        }
    }
    for (tag, cells) in &per_tag {
        let best_of = |pinned: bool| {
            cells
                .iter()
                .filter(|(m, _, _)| is_pinned(m) == pinned)
                .min_by(|a, b| {
                    cell_median(a.2)
                        .total_cmp(&cell_median(b.2))
                        .then_with(|| (a.0, a.1).cmp(&(b.0, b.1)))
                })
        };
        if let (Some((pm, pmod, pin)), Some((rm, rmod, roam))) = (best_of(true), best_of(false)) {
            let a = (format!("{pm}-{pmod}-{tag}"), *pin);
            let b = (format!("{rm}-{rmod}-{tag}"), *roam);
            out.push(compare(
                "governor-placement",
                (&a.0, a.1),
                (&b.0, b.1),
                cfg,
                |pick, against, delta, sig| {
                    if sig {
                        format!(
                            "{pick} beats {against} by {:.1}% median under the \
                             {tag} governor; placement still matters when CPUs \
                             share turbo slots and thermal headroom",
                            -delta * 100.0
                        )
                    } else {
                        format!(
                            "no significant placement effect under the {tag} \
                             governor"
                        )
                    }
                },
            ));
        }
    }
    out.sort_by(|a, b| a.topic.cmp(&b.topic).then_with(|| a.pick.cmp(&b.pick)));
    out
}
