//! Pass 2: blame attribution — name the dominant noise source *and*
//! CPU behind a flagged cell's variance.
//!
//! The question a flagged cell raises is not "was there noise" (there
//! always is) but "what made some runs slower than others". So blame
//! is computed over *excess* osnoise: for every (source, CPU) pair,
//! each run's contribution above that pair's cross-run median is
//! excess; the pair owning the largest share of total excess is the
//! culprit. A source that hammers every run identically (constant
//! background) produces no excess and correctly escapes blame; only
//! when nothing varies at all do we fall back to the largest absolute
//! budget.

use noiselab_kernel::NoiseClass;
use noiselab_noise::analysis::source_cpu_budgets;
use noiselab_noise::TraceSet;
use noiselab_stats::{fmt_ns, median};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// The attribution for one cell.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Blame {
    pub cell: String,
    pub source: String,
    pub cpu: u32,
    /// Dominant noise class of the blamed pair: `irq`, `softirq`,
    /// `thread`.
    pub class: String,
    /// Share of the set's excess osnoise owned by this (source, CPU),
    /// in percent.
    pub share_pct: f64,
    /// Nanoseconds of excess attributed to this pair.
    pub excess_ns: u64,
    /// Total excess nanoseconds across all pairs.
    pub total_excess_ns: u64,
    /// True when no run-to-run excess existed and the blame fell back
    /// to absolute totals.
    pub uniform: bool,
    pub summary: String,
}

fn class_label(c: NoiseClass) -> &'static str {
    match c {
        NoiseClass::Irq => "irq",
        NoiseClass::Softirq => "softirq",
        NoiseClass::Thread => "thread",
    }
}

/// Attribute a cell's trace set. Returns `None` for an empty set.
pub fn attribute_set(cell: &str, set: &TraceSet) -> Option<Blame> {
    if set.runs.is_empty() {
        return None;
    }
    let n_runs = set.runs.len();
    // Per-(source, cpu): that pair's total in each run (0 when absent).
    let mut per_key: BTreeMap<(String, u32), Vec<f64>> = BTreeMap::new();
    let mut class_ns: BTreeMap<(String, u32), [u64; 3]> = BTreeMap::new();
    for (i, run) in set.runs.iter().enumerate() {
        for (key, budget) in source_cpu_budgets(run) {
            let series = per_key.entry(key).or_insert_with(|| vec![0.0; n_runs]);
            series[i] = budget.total.nanos() as f64;
        }
        for e in &run.events {
            let idx = match e.class {
                NoiseClass::Irq => 0,
                NoiseClass::Softirq => 1,
                NoiseClass::Thread => 2,
            };
            class_ns
                .entry((e.source.clone(), e.cpu.0))
                .or_insert([0; 3])[idx] += e.duration.nanos();
        }
    }
    if per_key.is_empty() {
        return None;
    }
    // Excess per pair: contribution above the pair's cross-run median.
    let mut excess: BTreeMap<&(String, u32), f64> = BTreeMap::new();
    let mut total_excess = 0.0f64;
    for (key, series) in &per_key {
        let med = median(series);
        let e: f64 = series.iter().map(|&x| (x - med).max(0.0)).sum();
        excess.insert(key, e);
        total_excess += e;
    }
    let (key, owned, uniform) = if total_excess > 0.0 {
        // Largest excess; BTreeMap order breaks exact ties by key.
        let (key, owned) = excess
            .iter()
            .max_by(|a, b| a.1.total_cmp(b.1).then_with(|| b.0.cmp(a.0)))
            .map(|(k, v)| (*k, *v))
            .expect("non-empty excess map");
        (key, owned, false)
    } else {
        // Perfectly uniform noise: blame the largest absolute budget.
        let totals: BTreeMap<&(String, u32), f64> = per_key
            .iter()
            .map(|(k, series)| (k, series.iter().sum::<f64>()))
            .collect();
        total_excess = totals.values().sum();
        let (key, owned) = totals
            .iter()
            .max_by(|a, b| a.1.total_cmp(b.1).then_with(|| b.0.cmp(a.0)))
            .map(|(k, v)| (*k, *v))
            .expect("non-empty totals map");
        (key, owned, true)
    };
    let share_pct = if total_excess > 0.0 {
        owned / total_excess * 100.0
    } else {
        0.0
    };
    let classes = class_ns.get(key).copied().unwrap_or([0; 3]);
    let class_idx = (0..3).max_by_key(|&i| (classes[i], std::cmp::Reverse(i)))?;
    let class = class_label(match class_idx {
        0 => NoiseClass::Irq,
        1 => NoiseClass::Softirq,
        _ => NoiseClass::Thread,
    });
    let summary = if uniform {
        format!(
            "{} ({class}) on CPU {} carries {:.1}% of total osnoise \
             ({} of {}); noise is uniform across runs, so it inflates the \
             mean but not the variance",
            key.0,
            key.1,
            share_pct,
            fmt_ns(owned),
            fmt_ns(total_excess),
        )
    } else {
        format!(
            "{} ({class}) on CPU {} accounts for {:.1}% of excess osnoise \
             ({} of {} excess over {} run(s))",
            key.0,
            key.1,
            share_pct,
            fmt_ns(owned),
            fmt_ns(total_excess),
            n_runs,
        )
    };
    Some(Blame {
        cell: cell.to_string(),
        source: key.0.clone(),
        cpu: key.1,
        class: class.to_string(),
        share_pct,
        excess_ns: owned as u64,
        total_excess_ns: total_excess as u64,
        uniform,
        summary,
    })
}
