//! Pass 3: the regression watch over committed `BENCH_*.json`
//! trajectories.
//!
//! Raw thresholds ("fail above +25%") treat a historically jittery
//! cell and a rock-stable one identically. The watch instead scores
//! the latest step's relative change against the trajectory's *own*
//! step-to-step variability: a robust z (median/MAD of historical
//! changes, floored so two-snapshot histories aren't oversensitive and
//! capped so past optimization jumps don't widen the tolerance), plus
//! an absolute change floor so statistically-loud trivia is ignored.

use crate::input::{HotpathHistory, TelemetryBench};
use crate::smell::{Severity, Smell, SmellKind};
use crate::AdviseConfig;
use noiselab_stats::{mad, median};
use serde::{Deserialize, Serialize};

/// Outcome of one watched metric.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Verdict {
    /// Within the trajectory's own noise.
    Ok,
    /// Significantly better than the trajectory predicts.
    Improvement,
    /// Significantly worse — fails `advise --check`.
    Regression,
    /// Not enough history to judge.
    Inconclusive,
}

impl Verdict {
    pub fn label(self) -> &'static str {
        match self {
            Verdict::Ok => "ok",
            Verdict::Improvement => "improvement",
            Verdict::Regression => "REGRESSION",
            Verdict::Inconclusive => "inconclusive",
        }
    }
}

/// One watched (cell, metric) row.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BenchCheck {
    /// Display name of the bench file the row came from.
    pub file: String,
    /// `workload/config` cell, or a cross-check description.
    pub cell: String,
    pub metric: String,
    /// Value at the previous snapshot (or the comparison reference).
    pub previous: f64,
    pub latest: f64,
    /// Relative change latest vs previous, as a fraction.
    pub change: f64,
    /// Robust z of the change against historical step changes (0 for
    /// cross-checks and inconclusive rows).
    pub z: f64,
    pub verdict: Verdict,
    pub summary: String,
}

/// Judge one series (oldest-first) of a metric.
fn judge_series(series: &[f64], cfg: &AdviseConfig) -> Option<(f64, f64, f64, Verdict)> {
    if series.len() < 2 {
        return None;
    }
    let latest = *series.last().expect("non-empty series");
    let previous = series[series.len() - 2];
    if previous <= 0.0 {
        return None;
    }
    let change = latest / previous - 1.0;
    // Historical step-to-step changes, excluding the step under test.
    let history: Vec<f64> = series[..series.len() - 1]
        .windows(2)
        .filter(|w| w[0] > 0.0)
        .map(|w| w[1] / w[0] - 1.0)
        .collect();
    let center = if history.is_empty() {
        0.0
    } else {
        median(&history)
    };
    let scale = if history.is_empty() {
        cfg.scale_floor
    } else {
        (1.4826 * mad(&history)).clamp(cfg.scale_floor, cfg.scale_cap)
    };
    let z = (change - center) / scale;
    let verdict = if z > cfg.z_threshold && change > cfg.change_floor {
        Verdict::Regression
    } else if z < -cfg.z_threshold && change < -cfg.change_floor {
        Verdict::Improvement
    } else {
        Verdict::Ok
    };
    Some((previous, change, z, verdict))
}

/// Watch every cell of the hotpath trajectory on its two host-cost
/// metrics. Rows are ordered by (workload, config, metric).
pub fn hotpath_checks(file: &str, h: &HotpathHistory, cfg: &AdviseConfig) -> Vec<BenchCheck> {
    type Getter = fn(&crate::input::HotpathCell) -> f64;
    let metrics: [(&str, Getter); 2] = [
        ("bare_ns_per_event", |c| c.bare_ns_per_event),
        ("telemetry_ns_per_event", |c| c.telemetry_ns_per_event),
    ];
    let mut out = Vec::new();
    for (workload, config) in h.cell_keys() {
        for (metric, get) in metrics {
            let series = h.series(&workload, &config, get);
            let cell = format!("{workload}/{config}");
            match judge_series(&series, cfg) {
                None => out.push(BenchCheck {
                    file: file.to_string(),
                    cell,
                    metric: metric.to_string(),
                    previous: 0.0,
                    latest: series.last().copied().unwrap_or(0.0),
                    change: 0.0,
                    z: 0.0,
                    verdict: Verdict::Inconclusive,
                    summary: format!(
                        "only {} snapshot(s) carry this cell; need at least 2 to judge",
                        series.len()
                    ),
                }),
                Some((previous, change, z, verdict)) => {
                    let latest = *series.last().expect("non-empty series");
                    out.push(BenchCheck {
                        file: file.to_string(),
                        cell,
                        metric: metric.to_string(),
                        previous,
                        latest,
                        change,
                        z,
                        verdict,
                        summary: format!(
                            "{:.1} \u{2192} {:.1} ns/event ({:+.1}%, robust z {:+.1} over {} snapshot(s)): {}",
                            previous,
                            latest,
                            change * 100.0,
                            z,
                            series.len(),
                            verdict.label(),
                        ),
                    });
                }
            }
        }
    }
    out
}

/// Cross-check `BENCH_telemetry.json` against the hotpath trajectory:
/// both claim a bare ns/event for the same (workload, config) cell,
/// and a stale file shows up as a disagreement no honest re-run can
/// produce. Returns the check row plus a critical smell when the
/// files disagree.
pub fn telemetry_cross_check(
    file: &str,
    t: &TelemetryBench,
    h: &HotpathHistory,
    cfg: &AdviseConfig,
) -> (BenchCheck, Option<Smell>) {
    let cell = format!("{}/{}", t.workload, t.config);
    let hot = h
        .latest()
        .cells
        .iter()
        .find(|c| c.workload == t.workload && c.config == t.config);
    let Some(hot) = hot else {
        return (
            BenchCheck {
                file: file.to_string(),
                cell: cell.clone(),
                metric: "bare ns/event cross-check".to_string(),
                previous: 0.0,
                latest: t.host_ns_per_event_off,
                change: 0.0,
                z: 0.0,
                verdict: Verdict::Inconclusive,
                summary: format!("hotpath history has no {cell} cell to compare against"),
            },
            None,
        );
    };
    let change = t.host_ns_per_event_off / hot.bare_ns_per_event - 1.0;
    let agree = change.abs() <= cfg.cross_check_tolerance;
    let summary = format!(
        "telemetry bench says {:.1} ns/event bare, hotpath '{}' says {:.1} ({:+.1}%): {}",
        t.host_ns_per_event_off,
        h.latest().label,
        hot.bare_ns_per_event,
        change * 100.0,
        if agree {
            "trajectories agree"
        } else {
            "one of the two files is stale"
        },
    );
    let check = BenchCheck {
        file: file.to_string(),
        cell,
        metric: "bare ns/event cross-check".to_string(),
        previous: hot.bare_ns_per_event,
        latest: t.host_ns_per_event_off,
        change,
        z: 0.0,
        verdict: if agree {
            Verdict::Ok
        } else {
            Verdict::Regression
        },
        summary: summary.clone(),
    };
    let smell = (!agree).then(|| Smell {
        severity: Severity::Critical,
        kind: SmellKind::BenchMismatch,
        cell: file.to_string(),
        score: change.abs(),
        summary,
    });
    (check, smell)
}
