//! Golden test for the Chrome trace-event exporter: the JSON emitted
//! for the shared fixture report is pinned byte-for-byte in
//! `tests/fixtures/golden_trace.json`, and every event is validated
//! against the trace-event schema Perfetto expects. Regenerate with
//! `UPDATE_GOLDEN=1 cargo test -p noiselab-telemetry` after a
//! deliberate format change.

mod common;

use noiselab_telemetry::chrome_trace;
use serde::Value;

const FIXTURE: &str = "golden_trace.json";

fn golden() -> String {
    let json = chrome_trace(&common::fixture_report(), "golden fixture");
    let path = common::fixture_path(FIXTURE);
    if common::update_golden() {
        std::fs::create_dir_all(path.parent().expect("fixture dir")).expect("mkdir fixtures");
        std::fs::write(&path, &json).expect("write fixture");
    }
    json
}

#[test]
fn chrome_export_matches_golden_fixture() {
    let json = golden();
    let want = std::fs::read_to_string(common::fixture_path(FIXTURE))
        .expect("fixture missing — regenerate with UPDATE_GOLDEN=1 cargo test");
    assert_eq!(
        json, want,
        "Chrome trace output drifted from the golden fixture; if the \
         change is deliberate, regenerate with UPDATE_GOLDEN=1"
    );
}

#[test]
fn chrome_export_satisfies_trace_event_schema() {
    let json = golden();
    let doc = serde::parse_json(&json).expect("exporter emits valid JSON");
    assert_eq!(
        doc.get("displayTimeUnit").and_then(|v| v.as_str()),
        Some("ns")
    );
    let events = doc
        .get("traceEvents")
        .and_then(|v| v.as_array())
        .expect("traceEvents array");
    assert!(!events.is_empty());

    let mut phases = std::collections::BTreeMap::new();
    for ev in events {
        let ph = ev
            .get("ph")
            .and_then(|v| v.as_str())
            .expect("every event has a ph");
        *phases.entry(ph.to_string()).or_insert(0u32) += 1;
        // Required by the trace-event format for every phase we emit.
        assert!(ev.get("pid").is_some(), "missing pid: {ev:?}");
        assert!(ev.get("name").is_some(), "missing name: {ev:?}");
        match ph {
            "M" => assert!(ev.get("args").is_some(), "metadata needs args: {ev:?}"),
            "X" => {
                assert!(ev.get("ts").is_some() && ev.get("dur").is_some());
                assert!(ev.get("tid").is_some());
                let cat = ev.get("cat").and_then(|v| v.as_str()).expect("span cat");
                assert!(["run", "noise", "irq", "softirq"].contains(&cat));
            }
            "i" => {
                assert!(ev.get("ts").is_some());
                assert_eq!(ev.get("s").and_then(|v| v.as_str()), Some("t"));
            }
            "C" => assert!(ev.get("ts").is_some() && ev.get("args").is_some()),
            other => panic!("unexpected phase {other:?}"),
        }
    }

    // The fixture report spans 2 CPUs: a named, sorted thread track per
    // CPU plus the process-name track.
    let track_names: Vec<&str> = events
        .iter()
        .filter(|e| {
            e.get("ph").and_then(|v| v.as_str()) == Some("M")
                && e.get("name").and_then(|v| v.as_str()) == Some("thread_name")
        })
        .filter_map(|e| e.get("args")?.get("name")?.as_str())
        .collect();
    assert_eq!(track_names, ["cpu0", "cpu1"]);
    assert_eq!(phases.get("X"), Some(&4), "2 run/noise + 2 irq spans");
    assert_eq!(phases.get("i"), Some(&3), "preempt + migrate + policy");
    assert_eq!(phases.get("C"), Some(&1), "one runq-depth sample");

    // Instant marks carry the interned names the recorder assigns.
    let instant_names: Vec<&str> = events
        .iter()
        .filter(|e| e.get("ph").and_then(|v| v.as_str()) == Some("i"))
        .filter_map(|e| e.get("name")?.as_str())
        .collect();
    assert_eq!(instant_names, ["preempt", "migrate-numa", "policy-switch"]);

    // Span tracks: fixture puts the workload span on cpu0 (tid 0) and
    // the noise span on cpu1 (tid 1).
    let span_on = |name: &str| {
        events
            .iter()
            .find(|e| {
                e.get("ph").and_then(|v| v.as_str()) == Some("X")
                    && e.get("name").and_then(|v| v.as_str()) == Some(name)
            })
            .unwrap_or_else(|| panic!("span {name} missing"))
    };
    match span_on("omp-worker-1").get("tid") {
        Some(Value::UInt(0)) => {}
        other => panic!("workload span on wrong track: {other:?}"),
    }
    match span_on("osnoise/5").get("tid") {
        Some(Value::UInt(1)) => {}
        other => panic!("noise span on wrong track: {other:?}"),
    }
}
