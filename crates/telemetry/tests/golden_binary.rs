//! Golden test for the NLTB binary exporter: the encoding of the
//! shared fixture report is pinned byte-for-byte in
//! `tests/fixtures/golden_trace.nltb`. Any change to the wire format
//! fails here and must both regenerate the fixture
//! (`UPDATE_GOLDEN=1 cargo test -p noiselab-telemetry`) and bump
//! [`noiselab_telemetry::binary::VERSION`].

mod common;

use noiselab_telemetry::binary::{decode, encode, MAGIC, SCHEMA, VERSION};

const FIXTURE: &str = "golden_trace.nltb";

fn golden() -> Vec<u8> {
    let bytes = encode(&common::fixture_report());
    let path = common::fixture_path(FIXTURE);
    if common::update_golden() {
        std::fs::create_dir_all(path.parent().expect("fixture dir")).expect("mkdir fixtures");
        std::fs::write(&path, &bytes).expect("write fixture");
    }
    bytes
}

#[test]
fn binary_encoding_matches_golden_fixture() {
    let bytes = golden();
    let want = std::fs::read(common::fixture_path(FIXTURE))
        .expect("fixture missing — regenerate with UPDATE_GOLDEN=1 cargo test");
    assert_eq!(
        bytes, want,
        "NLTB encoding drifted from the golden fixture; a deliberate \
         format change must regenerate the fixture AND bump VERSION"
    );
    assert_eq!(&bytes[0..4], MAGIC);
    assert_eq!(bytes[4], VERSION);
}

#[test]
fn golden_fixture_decodes_back_to_the_report() {
    let report = common::fixture_report();
    let trace = decode(&golden()).expect("golden bytes decode");
    assert_eq!(trace.schema, SCHEMA);
    assert_eq!(trace.strings, report.strings);
    assert_eq!(trace.spans, report.spans);
    assert_eq!(trace.instants, report.instants);
    assert_eq!(trace.counters, report.counters);
    // Fixture coverage: both span flavours with and without a thread.
    assert!(trace.spans.iter().any(|s| s.thread.is_some()));
    assert!(trace.spans.iter().any(|s| s.thread.is_none()));
    assert_eq!(trace.instants.len(), 3);
    assert_eq!(trace.counters.len(), 1);
}
