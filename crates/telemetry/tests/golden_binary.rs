//! Golden tests for the NLTB binary exporter.
//!
//! * The **v2** encoding of the shared fixture report is pinned
//!   byte-for-byte in `tests/fixtures/golden_trace.nltb`. Any change to
//!   the wire format fails here and must both regenerate the fixture
//!   (`UPDATE_GOLDEN=1 cargo test -p noiselab-telemetry`) and bump
//!   [`noiselab_telemetry::binary::VERSION`].
//! * The **v1** bytes of the same report are frozen in
//!   `tests/fixtures/golden_trace_v1.nltb` (written by the v1 encoder
//!   before the v2 migration, never regenerated): [`decode`] must keep
//!   reading them through the same entry point.

mod common;

use noiselab_telemetry::binary::{decode, encode, MAGIC, SCHEMA, SCHEMA_V1, VERSION, VERSION_V1};

const FIXTURE: &str = "golden_trace.nltb";
const FIXTURE_V1: &str = "golden_trace_v1.nltb";

fn golden() -> Vec<u8> {
    let bytes = encode(&common::fixture_report());
    let path = common::fixture_path(FIXTURE);
    if common::update_golden() {
        std::fs::create_dir_all(path.parent().expect("fixture dir")).expect("mkdir fixtures");
        std::fs::write(&path, &bytes).expect("write fixture");
    }
    bytes
}

#[test]
fn binary_encoding_matches_golden_fixture() {
    let bytes = golden();
    let want = std::fs::read(common::fixture_path(FIXTURE))
        .expect("fixture missing — regenerate with UPDATE_GOLDEN=1 cargo test");
    assert_eq!(
        bytes, want,
        "NLTB encoding drifted from the golden fixture; a deliberate \
         format change must regenerate the fixture AND bump VERSION"
    );
    assert_eq!(&bytes[0..4], MAGIC);
    assert_eq!(bytes[4], VERSION);
}

#[test]
fn golden_fixture_decodes_back_to_the_report() {
    let report = common::fixture_report();
    let trace = decode(&golden()).expect("golden bytes decode");
    assert_eq!(trace.schema, SCHEMA);
    assert_eq!(trace.strings, report.strings);
    assert_eq!(trace.spans, report.spans);
    assert_eq!(trace.instants, report.instants);
    assert_eq!(trace.counters, report.counters);
    // Fixture coverage: both span flavours with and without a thread.
    assert!(trace.spans.iter().any(|s| s.thread.is_some()));
    assert!(trace.spans.iter().any(|s| s.thread.is_none()));
    assert_eq!(trace.instants.len(), 3);
    assert_eq!(trace.counters.len(), 1);
}

#[test]
fn frozen_v1_fixture_still_decodes() {
    let bytes = std::fs::read(common::fixture_path(FIXTURE_V1))
        .expect("v1 compat fixture missing — it is frozen and must never be regenerated");
    assert_eq!(&bytes[0..4], MAGIC);
    assert_eq!(bytes[4], VERSION_V1, "compat fixture must stay v1");
    let trace = decode(&bytes).expect("v1 bytes decode through the current entry point");
    assert_eq!(trace.schema, SCHEMA_V1);
    // Same report content as the v2 golden — only the wire layout differs.
    let report = common::fixture_report();
    assert_eq!(trace.strings, report.strings);
    assert_eq!(trace.spans, report.spans);
    assert_eq!(trace.instants, report.instants);
    assert_eq!(trace.counters, report.counters);
}
