//! Shared fixture for the golden exporter tests: a small, fully
//! deterministic telemetry report exercising every record kind (run
//! and noise spans, hard and soft IRQ spans, preemption / migration /
//! policy-switch instants, runqueue counter samples) across two CPUs.
//!
//! Both golden tests regenerate their fixture from this report when
//! run with `UPDATE_GOLDEN=1`, so the fixture and the builder can
//! never drift apart silently.

use noiselab_kernel::{SchedRecord, ThreadKind, ThreadState};
use noiselab_sim::SimTime;
use noiselab_telemetry::{Telemetry, TelemetryConfig, TelemetryReport};
use std::path::PathBuf;

#[allow(dead_code)] // each test binary compiles its own copy of this module
pub fn fixture_report() -> TelemetryReport {
    let tele = Telemetry::new(TelemetryConfig::default());
    {
        let mut obs = tele.observer();
        for rec in [
            SchedRecord::Enqueue {
                cpu: 0,
                thread: 1,
                time: SimTime(100),
                depth: 1,
            },
            SchedRecord::SwitchIn {
                cpu: 0,
                thread: 1,
                name: "omp-worker-1",
                kind: ThreadKind::Workload,
                time: SimTime(250),
                runq_depth: 1,
            },
            SchedRecord::IrqSpan {
                cpu: 0,
                time: SimTime(1_000),
                duration_ns: 300,
                source: "local_timer:236",
                softirq: false,
            },
            SchedRecord::Preempt {
                cpu: 0,
                thread: 1,
                time: SimTime(2_000),
            },
            SchedRecord::SwitchOut {
                cpu: 0,
                thread: 1,
                time: SimTime(2_000),
                state: ThreadState::Ready,
            },
            SchedRecord::SwitchIn {
                cpu: 1,
                thread: 5,
                name: "osnoise/5",
                kind: ThreadKind::Noise,
                time: SimTime(500),
                runq_depth: 0,
            },
            SchedRecord::IrqSpan {
                cpu: 1,
                time: SimTime(900),
                duration_ns: 150,
                source: "RCU:9",
                softirq: true,
            },
            SchedRecord::Migrate {
                thread: 1,
                to_cpu: 1,
                time: SimTime(2_100),
                cross_numa: true,
            },
            SchedRecord::SwitchOut {
                cpu: 1,
                thread: 5,
                time: SimTime(2_500),
                state: ThreadState::Blocked,
            },
            SchedRecord::PolicySwitch {
                thread: 5,
                time: SimTime(2_600),
                rt: true,
            },
        ] {
            obs.sched(&rec);
        }
    }
    tele.take_report(SimTime(3_000))
}

/// Path of a fixture file under this crate's `tests/fixtures/`.
pub fn fixture_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name)
}

/// True when the caller asked to rewrite fixtures
/// (`UPDATE_GOLDEN=1 cargo test -p noiselab-telemetry`).
pub fn update_golden() -> bool {
    std::env::var_os("UPDATE_GOLDEN").is_some()
}

/// A second fixture with the DVFS axis hot: boost, throttle-drop and
/// recovery transitions plus throttle enter/exit events on two CPUs,
/// alongside an ordinary workload span. Non-empty frequency samples
/// make [`noiselab_telemetry::binary::encode`] emit NLTB **v3**, and
/// the Chrome exporter grow per-CPU `freq_mhz` counter tracks — both
/// pinned by `golden_dvfs.rs`.
#[allow(dead_code)] // each test binary compiles its own copy of this module
pub fn dvfs_fixture_report() -> TelemetryReport {
    let tele = Telemetry::new(TelemetryConfig::default());
    {
        let mut obs = tele.observer();
        for rec in [
            SchedRecord::SwitchIn {
                cpu: 0,
                thread: 1,
                name: "omp-worker-0",
                kind: ThreadKind::Workload,
                time: SimTime(100),
                runq_depth: 0,
            },
            // Boost both CPUs out of the boot floor.
            SchedRecord::FreqTransition {
                cpu: 0,
                time: SimTime(150),
                from_khz: 800_000,
                to_khz: 5_200_000,
            },
            SchedRecord::FreqTransition {
                cpu: 1,
                time: SimTime(200),
                from_khz: 800_000,
                to_khz: 3_600_000,
            },
            // CPU 0 overheats: throttle entry pins it to the floor.
            SchedRecord::Throttle {
                cpu: 0,
                time: SimTime(1_000),
                heat_milli: 2_600_000,
                entered: true,
            },
            SchedRecord::FreqTransition {
                cpu: 0,
                time: SimTime(1_000),
                from_khz: 5_200_000,
                to_khz: 800_000,
            },
            // ... cools past the release point and recovers to base.
            SchedRecord::Throttle {
                cpu: 0,
                time: SimTime(1_800),
                heat_milli: 1_900_000,
                entered: false,
            },
            SchedRecord::FreqTransition {
                cpu: 0,
                time: SimTime(1_850),
                from_khz: 800_000,
                to_khz: 3_600_000,
            },
            SchedRecord::SwitchOut {
                cpu: 0,
                thread: 1,
                time: SimTime(2_000),
                state: ThreadState::Ready,
            },
        ] {
            obs.sched(&rec);
        }
    }
    tele.take_report(SimTime(2_500))
}
