//! Golden tests for the DVFS wire surface: the NLTB **v3** encoding
//! (v2 plus a trailing frequency section) and the Chrome export (per-CPU
//! `freq_mhz` counter tracks, throttle instant marks) of the DVFS
//! fixture report are pinned byte-for-byte. Regenerate after a
//! deliberate format change with
//! `UPDATE_GOLDEN=1 cargo test -p noiselab-telemetry`.
//!
//! The companion property — a report with *no* frequency samples still
//! encodes as plain v2, so every pre-DVFS golden stays byte-identical —
//! is pinned by `golden_binary.rs` against the original fixture.

mod common;

use noiselab_telemetry::binary::{decode, encode, MAGIC, SCHEMA_V3, VERSION_V3};
use noiselab_telemetry::chrome_trace;

const FIXTURE_NLTB: &str = "golden_trace_dvfs.nltb";
const FIXTURE_JSON: &str = "golden_trace_dvfs.json";

fn golden_nltb() -> Vec<u8> {
    let bytes = encode(&common::dvfs_fixture_report());
    let path = common::fixture_path(FIXTURE_NLTB);
    if common::update_golden() {
        std::fs::create_dir_all(path.parent().expect("fixture dir")).expect("mkdir fixtures");
        std::fs::write(&path, &bytes).expect("write fixture");
    }
    bytes
}

fn golden_json() -> String {
    let json = chrome_trace(&common::dvfs_fixture_report(), "dvfs golden fixture");
    let path = common::fixture_path(FIXTURE_JSON);
    if common::update_golden() {
        std::fs::create_dir_all(path.parent().expect("fixture dir")).expect("mkdir fixtures");
        std::fs::write(&path, &json).expect("write fixture");
    }
    json
}

#[test]
fn dvfs_encoding_matches_golden_fixture_and_is_v3() {
    let bytes = golden_nltb();
    let want = std::fs::read(common::fixture_path(FIXTURE_NLTB))
        .expect("fixture missing — regenerate with UPDATE_GOLDEN=1 cargo test");
    assert_eq!(
        bytes, want,
        "NLTB v3 encoding drifted from the golden fixture; a deliberate \
         format change must regenerate the fixture AND bump the version"
    );
    assert_eq!(&bytes[0..4], MAGIC);
    assert_eq!(
        bytes[4], VERSION_V3,
        "a report with frequency samples must encode as v3"
    );
}

#[test]
fn dvfs_golden_decodes_back_to_the_report() {
    let report = common::dvfs_fixture_report();
    let trace = decode(&golden_nltb()).expect("golden v3 bytes decode");
    assert_eq!(trace.schema, SCHEMA_V3);
    assert_eq!(trace.freq, report.freq, "frequency samples round-trip");
    // Fixture coverage: boost on both CPUs, throttle drop, recovery.
    assert_eq!(trace.freq.len(), 4);
    assert_eq!(trace.freq[0].khz, 5_200_000);
    assert_eq!(trace.freq[1].cpu, 1);
    // Throttle enter/exit travel as interned instant marks.
    assert_eq!(trace.instants, report.instants);
    let names: Vec<&str> = trace
        .instants
        .iter()
        .map(|i| trace.strings[i.name as usize].as_str())
        .collect();
    assert_eq!(names, ["throttle-enter", "throttle-exit"]);
}

#[test]
fn dvfs_chrome_export_matches_golden_and_has_freq_tracks() {
    let json = golden_json();
    let want = std::fs::read_to_string(common::fixture_path(FIXTURE_JSON))
        .expect("fixture missing — regenerate with UPDATE_GOLDEN=1 cargo test");
    assert_eq!(
        json, want,
        "Chrome DVFS trace drifted from the golden fixture; if the \
         change is deliberate, regenerate with UPDATE_GOLDEN=1"
    );

    let doc = serde::parse_json(&json).expect("exporter emits valid JSON");
    let events = doc
        .get("traceEvents")
        .and_then(|v| v.as_array())
        .expect("traceEvents array");
    // One counter sample per frequency transition, on a per-CPU
    // `freq_mhz` track, reported in MHz.
    let freq_counters: Vec<(&str, u128)> = events
        .iter()
        .filter(|e| e.get("ph").and_then(|v| v.as_str()) == Some("C"))
        .filter_map(|e| {
            let name = e.get("name")?.as_str()?;
            if !name.starts_with("freq_mhz.cpu") {
                return None;
            }
            match e.get("args")?.get("mhz")? {
                serde::Value::UInt(v) => Some((name, *v)),
                _ => None,
            }
        })
        .collect();
    assert_eq!(
        freq_counters,
        [
            ("freq_mhz.cpu0", 5_200),
            ("freq_mhz.cpu1", 3_600),
            ("freq_mhz.cpu0", 800),
            ("freq_mhz.cpu0", 3_600),
        ]
    );
    // Throttle windows stay visible as instant marks.
    let instants: Vec<&str> = events
        .iter()
        .filter(|e| e.get("ph").and_then(|v| v.as_str()) == Some("i"))
        .filter_map(|e| e.get("name")?.as_str())
        .collect();
    assert_eq!(instants, ["throttle-enter", "throttle-exit"]);
}
