//! # noiselab-telemetry
//!
//! The observability subsystem: deterministic virtual-time telemetry
//! with zero overhead when disabled.
//!
//! * [`Telemetry`] / [`recorder`] — a pure
//!   [`noiselab_kernel::KernelObserver`] that turns scheduling records
//!   into structured spans (one timeline track per logical CPU),
//!   instants and runqueue-depth counter samples. Attaching it never
//!   changes the simulation; the purity property test in
//!   `noiselab-core` proves bit-identical `stream_hash` with telemetry
//!   on vs. off.
//! * [`metrics`] — a registry of named counters, gauges and
//!   log2-bucketed histograms, snapshotted per run into `RunOutput`
//!   and merged exactly per campaign cell.
//! * [`chrome`] — Chrome trace-event JSON export, loadable in Perfetto
//!   (ui.perfetto.dev) and chrome://tracing.
//! * [`binary`] — a compact self-describing binary timeline format
//!   with a golden-fixture-tested decoder.
//! * [`profile`] — host-time phase profiling of the simulator itself,
//!   routed through the workspace's single audited [`wall_clock`]
//!   site.

pub mod binary;
pub mod chrome;
pub mod metrics;
pub mod profile;
pub mod recorder;

pub use binary::{decode, encode, BinaryTrace, DecodeError};
pub use chrome::chrome_trace;
pub use metrics::{CounterEntry, GaugeEntry, HistEntry, MetricsRegistry, MetricsSnapshot};
pub use profile::{wall_clock, PhaseProfiler, PhaseReport, PhaseRow};
pub use recorder::{
    CounterSample, FreqSample, InstantMark, Span, SpanCat, Telemetry, TelemetryConfig,
    TelemetryReport,
};
