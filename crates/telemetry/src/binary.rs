//! Compact self-describing binary timeline format ("NLTB").
//!
//! Layout (all integers LEB128 varints unless noted):
//!
//! ```text
//! magic   4 bytes  b"NLTB"
//! version 1 byte   (currently 1)
//! schema  varint len + UTF-8 bytes — a human-readable field map, so a
//!         decoder (or a person with xxd) can recover the layout from
//!         the file alone
//! strings varint count, then per string: varint len + UTF-8 bytes
//! spans   varint count, then per span:
//!           varint cpu, varint thread+1 (0 = none), varint name index,
//!           1 byte category tag, varint start ns, varint duration ns
//! instants varint count, then per mark:
//!           varint cpu, varint name index, varint time ns
//! counters varint count, then per sample:
//!           varint cpu, varint time ns, varint depth
//! ```
//!
//! Varints make quiet timelines a few bytes per event; the golden
//! fixture test in `tests/golden_binary.rs` pins the exact encoding so
//! a format change must update the fixture (and bump the version).

use crate::recorder::{CounterSample, InstantMark, Span, SpanCat, TelemetryReport};
use noiselab_sim::SimTime;

pub const MAGIC: &[u8; 4] = b"NLTB";
pub const VERSION: u8 = 1;

/// The schema string embedded in every file.
pub const SCHEMA: &str = "strings[len,bytes];spans[cpu,thread+1,name,cat:u8,start,dur];\
                          instants[cpu,name,time];counters[cpu,time,depth]";

fn put_varint(out: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

fn put_str(out: &mut Vec<u8>, s: &str) {
    put_varint(out, s.len() as u64);
    out.extend_from_slice(s.as_bytes());
}

/// Encode the timeline sections of a report.
pub fn encode(report: &TelemetryReport) -> Vec<u8> {
    let mut out = Vec::new();
    out.extend_from_slice(MAGIC);
    out.push(VERSION);
    put_str(&mut out, SCHEMA);
    put_varint(&mut out, report.strings.len() as u64);
    for s in &report.strings {
        put_str(&mut out, s);
    }
    put_varint(&mut out, report.spans.len() as u64);
    for sp in &report.spans {
        put_varint(&mut out, sp.cpu as u64);
        put_varint(&mut out, sp.thread.map(|t| t as u64 + 1).unwrap_or(0));
        put_varint(&mut out, sp.name as u64);
        out.push(sp.cat.tag());
        put_varint(&mut out, sp.start.0);
        put_varint(&mut out, sp.dur_ns);
    }
    put_varint(&mut out, report.instants.len() as u64);
    for m in &report.instants {
        put_varint(&mut out, m.cpu as u64);
        put_varint(&mut out, m.name as u64);
        put_varint(&mut out, m.time.0);
    }
    put_varint(&mut out, report.counters.len() as u64);
    for c in &report.counters {
        put_varint(&mut out, c.cpu as u64);
        put_varint(&mut out, c.time.0);
        put_varint(&mut out, c.depth as u64);
    }
    out
}

/// A decoded timeline (the binary format carries no metrics).
#[derive(Debug, Clone, PartialEq)]
pub struct BinaryTrace {
    pub schema: String,
    pub strings: Vec<String>,
    pub spans: Vec<Span>,
    pub instants: Vec<InstantMark>,
    pub counters: Vec<CounterSample>,
}

/// Decode error with byte offset context.
#[derive(Debug, Clone, PartialEq)]
pub struct DecodeError {
    pub offset: usize,
    pub message: String,
}

impl std::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for DecodeError {}

struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn err<T>(&self, message: impl Into<String>) -> Result<T, DecodeError> {
        Err(DecodeError {
            offset: self.pos,
            message: message.into(),
        })
    }

    fn byte(&mut self) -> Result<u8, DecodeError> {
        let Some(&b) = self.buf.get(self.pos) else {
            return self.err("unexpected end of input");
        };
        self.pos += 1;
        Ok(b)
    }

    fn varint(&mut self) -> Result<u64, DecodeError> {
        let mut v = 0u64;
        let mut shift = 0u32;
        loop {
            let b = self.byte()?;
            if shift >= 64 {
                return self.err("varint overflows u64");
            }
            v |= ((b & 0x7f) as u64) << shift;
            if b & 0x80 == 0 {
                return Ok(v);
            }
            shift += 7;
        }
    }

    fn string(&mut self) -> Result<String, DecodeError> {
        let len = self.varint()? as usize;
        if self.pos + len > self.buf.len() {
            return self.err(format!("string of {len} bytes overruns input"));
        }
        let bytes = &self.buf[self.pos..self.pos + len];
        self.pos += len;
        match std::str::from_utf8(bytes) {
            Ok(s) => Ok(s.to_string()),
            Err(_) => self.err("string is not valid UTF-8"),
        }
    }
}

/// Decode an NLTB buffer.
pub fn decode(buf: &[u8]) -> Result<BinaryTrace, DecodeError> {
    let mut r = Reader { buf, pos: 0 };
    if buf.len() < 5 || &buf[0..4] != MAGIC {
        return r.err("missing NLTB magic");
    }
    r.pos = 4;
    let version = r.byte()?;
    if version != VERSION {
        return r.err(format!(
            "unsupported version {version} (expected {VERSION})"
        ));
    }
    let schema = r.string()?;
    let n_strings = r.varint()? as usize;
    let mut strings = Vec::with_capacity(n_strings.min(1 << 16));
    for _ in 0..n_strings {
        strings.push(r.string()?);
    }
    let n_spans = r.varint()? as usize;
    let mut spans = Vec::with_capacity(n_spans.min(1 << 16));
    for _ in 0..n_spans {
        let cpu = r.varint()? as u32;
        let thread = match r.varint()? {
            0 => None,
            t => Some((t - 1) as u32),
        };
        let name = r.varint()? as u32;
        let tag = r.byte()?;
        let Some(cat) = SpanCat::from_tag(tag) else {
            return r.err(format!("unknown span category tag {tag}"));
        };
        let start = SimTime(r.varint()?);
        let dur_ns = r.varint()?;
        if name as usize >= strings.len() {
            return r.err(format!("span name index {name} out of range"));
        }
        spans.push(Span {
            cpu,
            thread,
            name,
            cat,
            start,
            dur_ns,
        });
    }
    let n_instants = r.varint()? as usize;
    let mut instants = Vec::with_capacity(n_instants.min(1 << 16));
    for _ in 0..n_instants {
        let cpu = r.varint()? as u32;
        let name = r.varint()? as u32;
        let time = SimTime(r.varint()?);
        if name as usize >= strings.len() {
            return r.err(format!("instant name index {name} out of range"));
        }
        instants.push(InstantMark { cpu, name, time });
    }
    let n_counters = r.varint()? as usize;
    let mut counters = Vec::with_capacity(n_counters.min(1 << 16));
    for _ in 0..n_counters {
        let cpu = r.varint()? as u32;
        let time = SimTime(r.varint()?);
        let depth = r.varint()? as u32;
        counters.push(CounterSample { cpu, time, depth });
    }
    if r.pos != buf.len() {
        return r.err(format!("{} trailing bytes", buf.len() - r.pos));
    }
    Ok(BinaryTrace {
        schema,
        strings,
        spans,
        instants,
        counters,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn varints_round_trip() {
        for v in [0u64, 1, 127, 128, 300, u32::MAX as u64, u64::MAX] {
            let mut buf = Vec::new();
            put_varint(&mut buf, v);
            let mut r = Reader { buf: &buf, pos: 0 };
            assert_eq!(r.varint().expect("decode"), v);
            assert_eq!(r.pos, buf.len());
        }
    }

    #[test]
    fn truncated_input_errors_with_offset() {
        let report = TelemetryReport {
            spans: vec![Span {
                cpu: 0,
                thread: Some(1),
                name: 0,
                cat: SpanCat::Run,
                start: SimTime(100),
                dur_ns: 50,
            }],
            instants: Vec::new(),
            counters: Vec::new(),
            strings: vec!["w".to_string()],
            n_cpus: 1,
            end: SimTime(200),
            dropped: 0,
            metrics: crate::metrics::MetricsSnapshot::default(),
        };
        let bytes = encode(&report);
        assert!(decode(&bytes).is_ok());
        let err = decode(&bytes[..bytes.len() - 3]).expect_err("truncated");
        assert!(err.offset > 0);
    }

    #[test]
    fn bad_magic_is_rejected() {
        assert!(decode(b"NOPE\x01").is_err());
        assert!(decode(&[]).is_err());
    }
}
