//! Compact self-describing binary timeline format ("NLTB").
//!
//! Schema v2 layout (header integers LEB128 varints, records fixed
//! width):
//!
//! ```text
//! magic   4 bytes  b"NLTB"
//! version 1 byte   (currently 2)
//! schema  varint len + UTF-8 bytes — a human-readable field map, so a
//!         decoder (or a person with xxd) can recover the layout from
//!         the file alone
//! strings varint count, then per string: varint len + UTF-8 bytes
//! spans   varint count, then per span one 29-byte wire record:
//!           u64 start, u64 dur, u32 cpu, u32 thread (MAX = none),
//!           u32 name index, u8 category tag — all little-endian
//! instants varint count, then per mark one wire record:
//!           start = time, dur = 0, thread = MAX, tag = 0
//! counters varint count, then per sample one wire record:
//!           start = time, dur = depth, thread = MAX, name = MAX, tag = 0
//! ```
//!
//! The record layout is [`noiselab_kernel::wire::WireRecord`] — the
//! same fixed-width encoding the tracer ring buffer and the kernel's
//! batched observer dispatch use, so a timeline serializes with one
//! `extend`-style cursor bump per record instead of per-field varint
//! branching.
//!
//! Schema **v3** appends one section to the v2 layout:
//!
//! ```text
//! freq    varint count, then per sample one wire record:
//!           start = time, dur = khz, thread = MAX, name = MAX, tag = 0
//! ```
//!
//! [`encode`] writes v3 *only when the report carries frequency
//! samples* (a DVFS-enabled run); any report without them — every run
//! on a machine with the DVFS axis disabled — encodes to exactly the
//! v2 bytes it always did, which is what keeps the pre-DVFS golden
//! fixtures byte-identical.
//!
//! [`decode`] also still reads schema **v1** (the all-varint layout
//! this module shipped with); `tests/golden_binary.rs` pins a v1
//! fixture byte-for-byte to keep that promise, and pins the v2
//! encoding of the same report so a format change must update the
//! fixture (and bump the version).

use crate::recorder::{CounterSample, FreqSample, InstantMark, Span, SpanCat, TelemetryReport};
use noiselab_kernel::{WireRecord, WIRE_NO_THREAD, WIRE_RECORD_BYTES};
use noiselab_sim::SimTime;

pub const MAGIC: &[u8; 4] = b"NLTB";
/// The schema version [`encode`] writes for reports without frequency
/// samples (every DVFS-disabled run).
pub const VERSION: u8 = 2;
/// The legacy all-varint schema [`decode`] still accepts.
pub const VERSION_V1: u8 = 1;
/// The v2-plus-freq-section schema [`encode`] writes when the report
/// carries DVFS frequency samples.
pub const VERSION_V3: u8 = 3;

/// The schema string embedded in every v2 file.
pub const SCHEMA: &str = "strings[len,bytes];wire:29B-le[start:u64,dur:u64,cpu:u32,\
                          thread:u32(MAX=none),name:u32,tag:u8];spans[wire,tag=cat];\
                          instants[wire,dur=0];counters[wire,dur=depth,name=MAX]";

/// The schema string embedded in every v3 file.
pub const SCHEMA_V3: &str = "strings[len,bytes];wire:29B-le[start:u64,dur:u64,cpu:u32,\
                          thread:u32(MAX=none),name:u32,tag:u8];spans[wire,tag=cat];\
                          instants[wire,dur=0];counters[wire,dur=depth,name=MAX];\
                          freq[wire,dur=khz,name=MAX]";

/// The schema string v1 files carry (kept for the decode-compat test).
pub const SCHEMA_V1: &str = "strings[len,bytes];spans[cpu,thread+1,name,cat:u8,start,dur];\
                          instants[cpu,name,time];counters[cpu,time,depth]";

fn put_varint(out: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

fn put_str(out: &mut Vec<u8>, s: &str) {
    put_varint(out, s.len() as u64);
    out.extend_from_slice(s.as_bytes());
}

/// Encode the timeline sections of a report: schema v2, or v3 when the
/// report carries DVFS frequency samples.
pub fn encode(report: &TelemetryReport) -> Vec<u8> {
    let v3 = !report.freq.is_empty();
    let mut out = Vec::with_capacity(
        64 + (report.spans.len()
            + report.instants.len()
            + report.counters.len()
            + report.freq.len())
            * WIRE_RECORD_BYTES,
    );
    out.extend_from_slice(MAGIC);
    out.push(if v3 { VERSION_V3 } else { VERSION });
    put_str(&mut out, if v3 { SCHEMA_V3 } else { SCHEMA });
    put_varint(&mut out, report.strings.len() as u64);
    for s in &report.strings {
        put_str(&mut out, s);
    }
    put_varint(&mut out, report.spans.len() as u64);
    for sp in &report.spans {
        WireRecord {
            start: sp.start.0,
            dur_ns: sp.dur_ns,
            cpu: sp.cpu,
            thread: sp.thread.unwrap_or(WIRE_NO_THREAD),
            name: sp.name,
            tag: sp.cat.tag(),
        }
        .encode_into(&mut out);
    }
    put_varint(&mut out, report.instants.len() as u64);
    for m in &report.instants {
        WireRecord {
            start: m.time.0,
            dur_ns: 0,
            cpu: m.cpu,
            thread: WIRE_NO_THREAD,
            name: m.name,
            tag: 0,
        }
        .encode_into(&mut out);
    }
    put_varint(&mut out, report.counters.len() as u64);
    for c in &report.counters {
        WireRecord {
            start: c.time.0,
            dur_ns: c.depth as u64,
            cpu: c.cpu,
            thread: WIRE_NO_THREAD,
            name: u32::MAX,
            tag: 0,
        }
        .encode_into(&mut out);
    }
    if v3 {
        put_varint(&mut out, report.freq.len() as u64);
        for f in &report.freq {
            WireRecord {
                start: f.time.0,
                dur_ns: f.khz as u64,
                cpu: f.cpu,
                thread: WIRE_NO_THREAD,
                name: u32::MAX,
                tag: 0,
            }
            .encode_into(&mut out);
        }
    }
    out
}

/// A decoded timeline (the binary format carries no metrics).
#[derive(Debug, Clone, PartialEq)]
pub struct BinaryTrace {
    pub schema: String,
    pub strings: Vec<String>,
    pub spans: Vec<Span>,
    pub instants: Vec<InstantMark>,
    pub counters: Vec<CounterSample>,
    /// DVFS frequency samples; empty for v1/v2 files.
    pub freq: Vec<FreqSample>,
}

/// Decode error with byte offset context and, once the header has been
/// read, the schema version of the file being decoded.
#[derive(Debug, Clone, PartialEq)]
pub struct DecodeError {
    pub offset: usize,
    /// Schema version claimed by the input, `None` if the error struck
    /// before the version byte (missing magic, empty input).
    pub version: Option<u8>,
    pub message: String,
}

impl std::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.version {
            Some(v) => write!(
                f,
                "at byte {} (schema v{}): {}",
                self.offset, v, self.message
            ),
            None => write!(f, "at byte {}: {}", self.offset, self.message),
        }
    }
}

impl std::error::Error for DecodeError {}

struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
    version: Option<u8>,
}

impl<'a> Reader<'a> {
    fn err<T>(&self, message: impl Into<String>) -> Result<T, DecodeError> {
        Err(DecodeError {
            offset: self.pos,
            version: self.version,
            message: message.into(),
        })
    }

    fn byte(&mut self) -> Result<u8, DecodeError> {
        let Some(&b) = self.buf.get(self.pos) else {
            return self.err("unexpected end of input");
        };
        self.pos += 1;
        Ok(b)
    }

    fn varint(&mut self) -> Result<u64, DecodeError> {
        let mut v = 0u64;
        let mut shift = 0u32;
        loop {
            let b = self.byte()?;
            if shift >= 64 {
                return self.err("varint overflows u64");
            }
            v |= ((b & 0x7f) as u64) << shift;
            if b & 0x80 == 0 {
                return Ok(v);
            }
            shift += 7;
        }
    }

    fn string(&mut self) -> Result<String, DecodeError> {
        let len = self.varint()? as usize;
        if self.pos + len > self.buf.len() {
            return self.err(format!("string of {len} bytes overruns input"));
        }
        let bytes = &self.buf[self.pos..self.pos + len];
        self.pos += len;
        match std::str::from_utf8(bytes) {
            Ok(s) => Ok(s.to_string()),
            Err(_) => self.err("string is not valid UTF-8"),
        }
    }

    /// One fixed-width wire record (v2 sections).
    fn wire(&mut self, what: &str) -> Result<WireRecord, DecodeError> {
        let Some(w) = WireRecord::decode_from(self.buf, self.pos) else {
            return self.err(format!("truncated {what} record"));
        };
        self.pos += WIRE_RECORD_BYTES;
        Ok(w)
    }
}

/// Decode an NLTB buffer of any supported schema version (v1 or v2).
pub fn decode(buf: &[u8]) -> Result<BinaryTrace, DecodeError> {
    let mut r = Reader {
        buf,
        pos: 0,
        version: None,
    };
    if buf.len() < 5 || &buf[0..4] != MAGIC {
        return r.err("missing NLTB magic");
    }
    r.pos = 4;
    let version = r.byte()?;
    r.version = Some(version);
    match version {
        VERSION_V1 => decode_v1(&mut r),
        VERSION => decode_v2(&mut r, false),
        VERSION_V3 => decode_v2(&mut r, true),
        v => r.err(format!(
            "unsupported schema version {v} (supported: {VERSION_V1}, {VERSION}, {VERSION_V3})"
        )),
    }
}

/// Shared header tail: schema string + string table.
fn decode_strings(r: &mut Reader) -> Result<(String, Vec<String>), DecodeError> {
    let schema = r.string()?;
    let n_strings = r.varint()? as usize;
    let mut strings = Vec::with_capacity(n_strings.min(1 << 16));
    for _ in 0..n_strings {
        strings.push(r.string()?);
    }
    Ok((schema, strings))
}

/// The original all-varint layout.
fn decode_v1(r: &mut Reader) -> Result<BinaryTrace, DecodeError> {
    let (schema, strings) = decode_strings(r)?;
    let n_spans = r.varint()? as usize;
    let mut spans = Vec::with_capacity(n_spans.min(1 << 16));
    for _ in 0..n_spans {
        let cpu = r.varint()? as u32;
        let thread = match r.varint()? {
            0 => None,
            t => Some((t - 1) as u32),
        };
        let name = r.varint()? as u32;
        let tag = r.byte()?;
        let Some(cat) = SpanCat::from_tag(tag) else {
            return r.err(format!("unknown span category tag {tag}"));
        };
        let start = SimTime(r.varint()?);
        let dur_ns = r.varint()?;
        if name as usize >= strings.len() {
            return r.err(format!("span name index {name} out of range"));
        }
        spans.push(Span {
            cpu,
            thread,
            name,
            cat,
            start,
            dur_ns,
        });
    }
    let n_instants = r.varint()? as usize;
    let mut instants = Vec::with_capacity(n_instants.min(1 << 16));
    for _ in 0..n_instants {
        let cpu = r.varint()? as u32;
        let name = r.varint()? as u32;
        let time = SimTime(r.varint()?);
        if name as usize >= strings.len() {
            return r.err(format!("instant name index {name} out of range"));
        }
        instants.push(InstantMark { cpu, name, time });
    }
    let n_counters = r.varint()? as usize;
    let mut counters = Vec::with_capacity(n_counters.min(1 << 16));
    for _ in 0..n_counters {
        let cpu = r.varint()? as u32;
        let time = SimTime(r.varint()?);
        let depth = r.varint()? as u32;
        counters.push(CounterSample { cpu, time, depth });
    }
    finish(r, schema, strings, spans, instants, counters, Vec::new())
}

/// The fixed-width wire-record layout (v2, and v3 with `with_freq`).
fn decode_v2(r: &mut Reader, with_freq: bool) -> Result<BinaryTrace, DecodeError> {
    let (schema, strings) = decode_strings(r)?;
    let n_spans = r.varint()? as usize;
    let mut spans = Vec::with_capacity(n_spans.min(1 << 16));
    for _ in 0..n_spans {
        let w = r.wire("span")?;
        let Some(cat) = SpanCat::from_tag(w.tag) else {
            return r.err(format!("unknown span category tag {}", w.tag));
        };
        if w.name as usize >= strings.len() {
            return r.err(format!("span name index {} out of range", w.name));
        }
        spans.push(Span {
            cpu: w.cpu,
            thread: (w.thread != WIRE_NO_THREAD).then_some(w.thread),
            name: w.name,
            cat,
            start: SimTime(w.start),
            dur_ns: w.dur_ns,
        });
    }
    let n_instants = r.varint()? as usize;
    let mut instants = Vec::with_capacity(n_instants.min(1 << 16));
    for _ in 0..n_instants {
        let w = r.wire("instant")?;
        if w.name as usize >= strings.len() {
            return r.err(format!("instant name index {} out of range", w.name));
        }
        instants.push(InstantMark {
            cpu: w.cpu,
            name: w.name,
            time: SimTime(w.start),
        });
    }
    let n_counters = r.varint()? as usize;
    let mut counters = Vec::with_capacity(n_counters.min(1 << 16));
    for _ in 0..n_counters {
        let w = r.wire("counter")?;
        if w.dur_ns > u32::MAX as u64 {
            return r.err(format!("counter depth {} overflows u32", w.dur_ns));
        }
        counters.push(CounterSample {
            cpu: w.cpu,
            time: SimTime(w.start),
            depth: w.dur_ns as u32,
        });
    }
    let mut freq = Vec::new();
    if with_freq {
        let n_freq = r.varint()? as usize;
        freq.reserve(n_freq.min(1 << 16));
        for _ in 0..n_freq {
            let w = r.wire("freq")?;
            if w.dur_ns > u32::MAX as u64 {
                return r.err(format!("frequency {} kHz overflows u32", w.dur_ns));
            }
            freq.push(FreqSample {
                cpu: w.cpu,
                time: SimTime(w.start),
                khz: w.dur_ns as u32,
            });
        }
    }
    finish(r, schema, strings, spans, instants, counters, freq)
}

#[allow(clippy::too_many_arguments)]
fn finish(
    r: &mut Reader,
    schema: String,
    strings: Vec<String>,
    spans: Vec<Span>,
    instants: Vec<InstantMark>,
    counters: Vec<CounterSample>,
    freq: Vec<FreqSample>,
) -> Result<BinaryTrace, DecodeError> {
    if r.pos != r.buf.len() {
        return r.err(format!("{} trailing bytes", r.buf.len() - r.pos));
    }
    Ok(BinaryTrace {
        schema,
        strings,
        spans,
        instants,
        counters,
        freq,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_report() -> TelemetryReport {
        TelemetryReport {
            spans: vec![Span {
                cpu: 0,
                thread: Some(1),
                name: 0,
                cat: SpanCat::Run,
                start: SimTime(100),
                dur_ns: 50,
            }],
            instants: vec![InstantMark {
                cpu: 0,
                name: 0,
                time: SimTime(120),
            }],
            counters: vec![CounterSample {
                cpu: 0,
                time: SimTime(130),
                depth: 2,
            }],
            freq: vec![],
            strings: vec!["w".to_string()],
            n_cpus: 1,
            end: SimTime(200),
            dropped: 0,
            metrics: crate::metrics::MetricsSnapshot::default(),
        }
    }

    /// Hand-rolled v1 encoder so the legacy decode path keeps corrupt-
    /// input coverage without keeping a public v1 writer around.
    fn encode_v1(report: &TelemetryReport) -> Vec<u8> {
        let mut out = Vec::new();
        out.extend_from_slice(MAGIC);
        out.push(VERSION_V1);
        put_str(&mut out, SCHEMA_V1);
        put_varint(&mut out, report.strings.len() as u64);
        for s in &report.strings {
            put_str(&mut out, s);
        }
        put_varint(&mut out, report.spans.len() as u64);
        for sp in &report.spans {
            put_varint(&mut out, sp.cpu as u64);
            put_varint(&mut out, sp.thread.map(|t| t as u64 + 1).unwrap_or(0));
            put_varint(&mut out, sp.name as u64);
            out.push(sp.cat.tag());
            put_varint(&mut out, sp.start.0);
            put_varint(&mut out, sp.dur_ns);
        }
        put_varint(&mut out, report.instants.len() as u64);
        for m in &report.instants {
            put_varint(&mut out, m.cpu as u64);
            put_varint(&mut out, m.name as u64);
            put_varint(&mut out, m.time.0);
        }
        put_varint(&mut out, report.counters.len() as u64);
        for c in &report.counters {
            put_varint(&mut out, c.cpu as u64);
            put_varint(&mut out, c.time.0);
            put_varint(&mut out, c.depth as u64);
        }
        out
    }

    #[test]
    fn varints_round_trip() {
        for v in [0u64, 1, 127, 128, 300, u32::MAX as u64, u64::MAX] {
            let mut buf = Vec::new();
            put_varint(&mut buf, v);
            let mut r = Reader {
                buf: &buf,
                pos: 0,
                version: None,
            };
            assert_eq!(r.varint().expect("decode"), v);
            assert_eq!(r.pos, buf.len());
        }
    }

    #[test]
    fn v2_round_trips_every_section() {
        let report = small_report();
        let bytes = encode(&report);
        assert_eq!(bytes[4], VERSION);
        let trace = decode(&bytes).expect("decode v2");
        assert_eq!(trace.schema, SCHEMA);
        assert_eq!(trace.spans, report.spans);
        assert_eq!(trace.instants, report.instants);
        assert_eq!(trace.counters, report.counters);
        assert_eq!(trace.strings, report.strings);
    }

    #[test]
    fn v1_decodes_through_the_same_entry_point() {
        let report = small_report();
        let bytes = encode_v1(&report);
        assert_eq!(bytes[4], VERSION_V1);
        let trace = decode(&bytes).expect("decode v1");
        assert_eq!(trace.schema, SCHEMA_V1);
        assert_eq!(trace.spans, report.spans);
        assert_eq!(trace.instants, report.instants);
        assert_eq!(trace.counters, report.counters);
    }

    #[test]
    fn unknown_version_reports_found_and_supported() {
        let mut bytes = encode(&small_report());
        bytes[4] = 9;
        let err = decode(&bytes).expect_err("version 9 rejected");
        assert_eq!(err.version, Some(9));
        let msg = err.to_string();
        assert!(msg.contains("unsupported schema version 9"), "{msg}");
        assert!(msg.contains("supported: 1, 2, 3"), "{msg}");
    }

    #[test]
    fn freq_samples_promote_to_v3_and_round_trip() {
        let mut report = small_report();
        report.freq = vec![
            FreqSample {
                cpu: 0,
                time: SimTime(110),
                khz: 5_200_000,
            },
            FreqSample {
                cpu: 1,
                time: SimTime(140),
                khz: 800_000,
            },
        ];
        let bytes = encode(&report);
        assert_eq!(bytes[4], VERSION_V3);
        let trace = decode(&bytes).expect("decode v3");
        assert_eq!(trace.schema, SCHEMA_V3);
        assert_eq!(trace.freq, report.freq);
        assert_eq!(trace.spans, report.spans);
        // A freq-free report stays on v2, byte for byte.
        report.freq.clear();
        assert_eq!(encode(&report)[4], VERSION);
    }

    #[test]
    fn truncated_input_errors_with_offset_both_versions() {
        let report = small_report();
        for bytes in [encode(&report), encode_v1(&report)] {
            let expect_version = bytes[4];
            assert!(decode(&bytes).is_ok());
            let err = decode(&bytes[..bytes.len() - 3]).expect_err("truncated");
            assert!(err.offset > 0);
            assert_eq!(err.version, Some(expect_version));
        }
    }

    #[test]
    fn bad_string_index_rejected_both_versions() {
        let mut report = small_report();
        report.spans[0].name = 7; // only 1 string in the table
        for (bytes, v) in [(encode(&report), VERSION), (encode_v1(&report), VERSION_V1)] {
            let err = decode(&bytes).expect_err("bad name index");
            assert_eq!(err.version, Some(v));
            assert!(
                err.message.contains("name index 7 out of range"),
                "{}",
                err.message
            );
        }
    }

    #[test]
    fn v1_overflowed_varint_rejected() {
        let mut bytes = vec![];
        bytes.extend_from_slice(MAGIC);
        bytes.push(VERSION_V1);
        // Schema length as an 11-byte varint: overflows the u64 shift.
        bytes.extend_from_slice(&[0x80; 10]);
        bytes.push(0x01);
        let err = decode(&bytes).expect_err("overflowing varint");
        assert!(
            err.message.contains("varint overflows u64"),
            "{}",
            err.message
        );
        assert_eq!(err.version, Some(VERSION_V1));
    }

    #[test]
    fn v2_record_count_overrunning_input_rejected() {
        let report = small_report();
        let mut bytes = encode(&report);
        // Find the span-count varint (count 1) right after the string
        // table and inflate it: claims more records than bytes remain.
        let tail = report.spans.len() * WIRE_RECORD_BYTES
            + (report.instants.len() + report.counters.len()) * (WIRE_RECORD_BYTES + 1) // + their counts
            + 1; // span count byte itself
        let span_count_at = bytes.len() - tail;
        assert_eq!(bytes[span_count_at], 1);
        bytes[span_count_at] = 100;
        // The decoder walks into the following sections reinterpreted as
        // span records; whichever check fires first, the overrun must be
        // rejected with v2 context.
        let err = decode(&bytes).expect_err("overflowed record count");
        assert_eq!(err.version, Some(VERSION));

        // Count intact but the final record's bytes missing: the
        // fixed-width reader reports the truncation directly.
        let whole = encode(&small_report());
        let err = decode(&whole[..whole.len() - 1]).expect_err("truncated record");
        assert!(
            err.message.contains("truncated counter record"),
            "{}",
            err.message
        );
        assert_eq!(err.version, Some(VERSION));
    }

    #[test]
    fn v2_counter_depth_overflow_rejected() {
        let report = small_report();
        let mut bytes = encode(&report);
        // The counter record is the last 29 bytes; dur_ns occupies bytes
        // 8..16 of it. Set it past u32::MAX.
        let rec = bytes.len() - WIRE_RECORD_BYTES;
        bytes[rec + 8..rec + 16].copy_from_slice(&(u64::MAX).to_le_bytes());
        let err = decode(&bytes).expect_err("depth overflow");
        assert!(err.message.contains("overflows u32"), "{}", err.message);
    }

    #[test]
    fn bad_magic_is_rejected() {
        let err = decode(b"NOPE\x01").expect_err("bad magic");
        assert_eq!(err.version, None, "failed before the version byte");
        assert!(decode(&[]).is_err());
    }
}
