//! The span recorder: a pure [`KernelObserver`] that turns scheduling
//! records into virtual-time spans, instants and counter samples, and
//! feeds the metrics registry.
//!
//! Because [`noiselab_kernel::Kernel::attach_observer`] takes a boxed
//! trait object, the recorder shares its state through an
//! `Rc<RefCell<..>>` handle (the same pattern as the noise tracer's
//! `TraceBuffer`), so the harness can snapshot metrics and take the
//! timeline after the run without downcasting.
//!
//! Spans are keyed by logical CPU (one timeline track per CPU) and
//! carry the occupying thread where applicable. Span and instant names
//! are interned into a string table so the recording path allocates
//! only the first time a name is seen.

use crate::metrics::{MetricsRegistry, MetricsSnapshot};
use noiselab_kernel::{EventRecord, KernelObserver, SchedRecord, ThreadKind, ThreadState};
use noiselab_sim::SimTime;
use std::cell::RefCell;
use std::collections::BTreeMap;
use std::rc::Rc;

/// Default cap on stored spans/instants/samples per collection. Far
/// above what paper-scale runs emit; hitting it increments a drop
/// counter instead of growing without bound (mirroring the tracer's
/// bounded ring buffer).
pub const DEFAULT_MAX_EVENTS: usize = 1 << 20;

/// Telemetry configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TelemetryConfig {
    /// Cap on stored spans, instants and counter samples (each).
    pub max_events: usize,
    /// Record the timeline (spans/instants/counter samples). Metrics
    /// are always on; campaigns disable the timeline to keep memory
    /// flat while still aggregating metrics.
    pub timeline: bool,
}

impl Default for TelemetryConfig {
    fn default() -> Self {
        TelemetryConfig {
            max_events: DEFAULT_MAX_EVENTS,
            timeline: true,
        }
    }
}

impl TelemetryConfig {
    /// Metrics only — the campaign-aggregation mode.
    pub fn metrics_only() -> Self {
        TelemetryConfig {
            max_events: DEFAULT_MAX_EVENTS,
            timeline: false,
        }
    }
}

/// Span category; doubles as the Chrome trace-event `cat` field.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SpanCat {
    /// A workload thread on-CPU.
    Run,
    /// A noise/injector thread on-CPU.
    Noise,
    /// Hardware interrupt service.
    Irq,
    /// Softirq service.
    Softirq,
}

impl SpanCat {
    pub fn name(self) -> &'static str {
        match self {
            SpanCat::Run => "run",
            SpanCat::Noise => "noise",
            SpanCat::Irq => "irq",
            SpanCat::Softirq => "softirq",
        }
    }

    pub fn tag(self) -> u8 {
        match self {
            SpanCat::Run => 0,
            SpanCat::Noise => 1,
            SpanCat::Irq => 2,
            SpanCat::Softirq => 3,
        }
    }

    pub fn from_tag(t: u8) -> Option<SpanCat> {
        match t {
            0 => Some(SpanCat::Run),
            1 => Some(SpanCat::Noise),
            2 => Some(SpanCat::Irq),
            3 => Some(SpanCat::Softirq),
            _ => None,
        }
    }
}

/// A closed virtual-time span on one CPU track.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Span {
    pub cpu: u32,
    /// Occupying thread for run/noise spans.
    pub thread: Option<u32>,
    /// Index into the report's string table.
    pub name: u32,
    pub cat: SpanCat,
    pub start: SimTime,
    pub dur_ns: u64,
}

/// A point event (migration, preemption, policy switch).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InstantMark {
    pub cpu: u32,
    pub name: u32,
    pub time: SimTime,
}

/// One runqueue-depth sample on a CPU's counter track.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CounterSample {
    pub cpu: u32,
    pub time: SimTime,
    pub depth: u32,
}

/// Everything a finished recorder hands back.
#[derive(Debug, Clone, PartialEq)]
pub struct TelemetryReport {
    pub spans: Vec<Span>,
    pub instants: Vec<InstantMark>,
    pub counters: Vec<CounterSample>,
    /// Interned span/instant names; `Span::name` indexes this.
    pub strings: Vec<String>,
    /// Highest CPU index seen, plus one.
    pub n_cpus: u32,
    /// End of the observed window (run exit time).
    pub end: SimTime,
    /// Events not stored because a collection hit its cap.
    pub dropped: u64,
    pub metrics: MetricsSnapshot,
}

struct OpenSpan {
    thread: u32,
    name: u32,
    cat: SpanCat,
    start: SimTime,
}

struct Inner {
    cfg: TelemetryConfig,
    spans: Vec<Span>,
    instants: Vec<InstantMark>,
    counters: Vec<CounterSample>,
    strings: Vec<String>,
    intern: BTreeMap<String, u32>,
    /// Per-CPU currently-open run/noise span.
    open: Vec<Option<OpenSpan>>,
    /// Per-CPU on-CPU nanoseconds (run + noise spans), kept outside the
    /// span store so utilization survives metrics-only mode and caps.
    busy: Vec<u64>,
    /// Enqueue time per thread, consumed at switch-in for the
    /// scheduling-latency histogram.
    enqueued_at: BTreeMap<u32, SimTime>,
    n_cpus: u32,
    dropped: u64,
    metrics: MetricsRegistry,
}

impl Inner {
    fn intern(&mut self, s: &str) -> u32 {
        if let Some(&i) = self.intern.get(s) {
            return i;
        }
        let i = self.strings.len() as u32;
        self.strings.push(s.to_string());
        self.intern.insert(s.to_string(), i);
        i
    }

    fn saw_cpu(&mut self, cpu: u32) {
        self.n_cpus = self.n_cpus.max(cpu + 1);
        if self.open.len() <= cpu as usize {
            self.open.resize_with(cpu as usize + 1, || None);
            self.busy.resize(cpu as usize + 1, 0);
        }
    }

    fn push_span(&mut self, s: Span) {
        if !self.cfg.timeline {
            return;
        }
        if self.spans.len() >= self.cfg.max_events {
            self.dropped += 1;
        } else {
            self.spans.push(s);
        }
    }

    fn push_instant(&mut self, cpu: u32, name: &'static str, time: SimTime) {
        if !self.cfg.timeline {
            return;
        }
        if self.instants.len() >= self.cfg.max_events {
            self.dropped += 1;
        } else {
            let name = self.intern(name);
            self.instants.push(InstantMark { cpu, name, time });
        }
    }

    fn close_open(&mut self, cpu: u32, end: SimTime) {
        let Some(open) = self.open[cpu as usize].take() else {
            return;
        };
        let dur_ns = end.since(open.start).nanos();
        let hist = match open.cat {
            SpanCat::Run => "run.span_ns",
            _ => "noise.span_ns",
        };
        self.metrics.hist_record(hist, dur_ns);
        self.busy[cpu as usize] += dur_ns;
        self.push_span(Span {
            cpu,
            thread: Some(open.thread),
            name: open.name,
            cat: open.cat,
            start: open.start,
            dur_ns,
        });
    }

    fn sched(&mut self, rec: &SchedRecord<'_>) {
        match *rec {
            SchedRecord::SwitchIn {
                cpu,
                thread,
                name,
                kind,
                time,
                runq_depth,
            } => {
                self.saw_cpu(cpu);
                // Defensive: a switch-in over a still-open span closes it.
                self.close_open(cpu, time);
                self.metrics.counter_add("sched.context_switches", 1);
                self.metrics
                    .hist_record("sched.runq_depth", runq_depth as u64);
                if let Some(enq) = self.enqueued_at.remove(&thread) {
                    self.metrics
                        .hist_record("sched.latency_ns", time.since(enq).nanos());
                }
                let cat = if kind == ThreadKind::Workload {
                    SpanCat::Run
                } else {
                    SpanCat::Noise
                };
                let name = self.intern(name);
                self.open[cpu as usize] = Some(OpenSpan {
                    thread,
                    name,
                    cat,
                    start: time,
                });
            }
            SchedRecord::SwitchOut {
                cpu, time, state, ..
            } => {
                self.saw_cpu(cpu);
                self.close_open(cpu, time);
                if state == ThreadState::Blocked {
                    self.metrics.counter_add("sched.blocks", 1);
                }
            }
            SchedRecord::Preempt { cpu, time, .. } => {
                self.saw_cpu(cpu);
                self.metrics.counter_add("sched.preemptions", 1);
                self.push_instant(cpu, "preempt", time);
            }
            SchedRecord::Enqueue {
                cpu,
                thread,
                time,
                depth,
            } => {
                self.saw_cpu(cpu);
                self.metrics.counter_add("sched.enqueues", 1);
                self.enqueued_at.insert(thread, time);
                if self.cfg.timeline {
                    if self.counters.len() >= self.cfg.max_events {
                        self.dropped += 1;
                    } else {
                        self.counters.push(CounterSample { cpu, time, depth });
                    }
                }
            }
            SchedRecord::Migrate {
                to_cpu,
                time,
                cross_numa,
                ..
            } => {
                self.saw_cpu(to_cpu);
                self.metrics.counter_add("sched.migrations", 1);
                if cross_numa {
                    self.metrics.counter_add("sched.numa_migrations", 1);
                    self.push_instant(to_cpu, "migrate-numa", time);
                } else {
                    self.push_instant(to_cpu, "migrate", time);
                }
            }
            SchedRecord::IrqSpan {
                cpu,
                time,
                duration_ns,
                source,
                softirq,
            } => {
                self.saw_cpu(cpu);
                let counter = if softirq {
                    "irq.softirq"
                } else if source == "local_timer:236" {
                    "irq.timer"
                } else {
                    "irq.device"
                };
                self.metrics.counter_add(counter, 1);
                self.metrics.hist_record("irq.service_ns", duration_ns);
                let cat = if softirq {
                    SpanCat::Softirq
                } else {
                    SpanCat::Irq
                };
                let name = self.intern(source);
                self.push_span(Span {
                    cpu,
                    thread: None,
                    name,
                    cat,
                    start: time,
                    dur_ns: duration_ns,
                });
            }
            SchedRecord::PolicySwitch { time, .. } => {
                self.metrics.counter_add("sched.policy_switches", 1);
                self.push_instant(0, "policy-switch", time);
            }
            // Decision points are high-frequency conformance breadcrumbs;
            // count them, but emit no timeline events (a span per pick
            // would swamp the Perfetto track).
            SchedRecord::Decision { .. } => {
                self.metrics.counter_add("sched.decisions", 1);
            }
            SchedRecord::Dequeue { .. } => {
                self.metrics.counter_add("sched.dequeues", 1);
            }
        }
    }

    fn finish(&mut self, end: SimTime) -> TelemetryReport {
        for cpu in 0..self.open.len() as u32 {
            self.close_open(cpu, end);
        }
        // Per-CPU utilization: busy (run + noise span) time over the
        // observed window.
        let window = end.0.max(1) as f64;
        if self.n_cpus > 0 {
            let utils: Vec<f64> = self.busy.iter().map(|&b| b as f64 / window).collect();
            let mean = utils.iter().sum::<f64>() / utils.len() as f64;
            let max = utils.iter().cloned().fold(0.0, f64::max);
            self.metrics.gauge_set("cpu.util.mean", mean);
            self.metrics.gauge_set("cpu.util.max", max);
        }
        if self.dropped > 0 {
            self.metrics.counter_add("telemetry.dropped", self.dropped);
        }
        TelemetryReport {
            spans: std::mem::take(&mut self.spans),
            instants: std::mem::take(&mut self.instants),
            counters: std::mem::take(&mut self.counters),
            strings: self.strings.clone(),
            n_cpus: self.n_cpus,
            end,
            dropped: self.dropped,
            metrics: self.metrics.snapshot(),
        }
    }
}

/// Shared telemetry pipeline handle for one run. Hand
/// [`Telemetry::observer`] to the kernel, run, then call
/// [`Telemetry::take_report`].
#[derive(Clone)]
pub struct Telemetry {
    inner: Rc<RefCell<Inner>>,
}

impl Default for Telemetry {
    fn default() -> Self {
        Self::new(TelemetryConfig::default())
    }
}

impl Telemetry {
    pub fn new(cfg: TelemetryConfig) -> Self {
        Telemetry {
            inner: Rc::new(RefCell::new(Inner {
                cfg,
                spans: Vec::new(),
                instants: Vec::new(),
                counters: Vec::new(),
                strings: Vec::new(),
                intern: BTreeMap::new(),
                open: Vec::new(),
                enqueued_at: BTreeMap::new(),
                busy: Vec::new(),
                n_cpus: 0,
                dropped: 0,
                metrics: MetricsRegistry::new(),
            })),
        }
    }

    /// The boxed observer to attach to a kernel. Cloning the handle
    /// first keeps this end readable after the kernel takes the box.
    pub fn observer(&self) -> Box<dyn KernelObserver> {
        Box::new(Recorder {
            inner: Rc::clone(&self.inner),
        })
    }

    /// Add to a counter from outside the kernel (e.g. the harness
    /// surfacing tracer ring-buffer drops).
    pub fn counter_add(&self, name: &'static str, n: u64) {
        self.inner.borrow_mut().metrics.counter_add(name, n);
    }

    pub fn gauge_set(&self, name: &'static str, v: f64) {
        self.inner.borrow_mut().metrics.gauge_set(name, v);
    }

    /// Close open spans at `end`, compute utilization gauges, and take
    /// the report. The handle is spent afterwards (collections empty).
    pub fn take_report(&self, end: SimTime) -> TelemetryReport {
        self.inner.borrow_mut().finish(end)
    }
}

/// The boxed observer end of a [`Telemetry`] handle.
struct Recorder {
    inner: Rc<RefCell<Inner>>,
}

impl KernelObserver for Recorder {
    fn event(&mut self, _rec: &EventRecord<'_>) {
        self.inner
            .borrow_mut()
            .metrics
            .counter_add("kernel.events", 1);
    }

    fn sched(&mut self, rec: &SchedRecord<'_>) {
        self.inner.borrow_mut().sched(rec);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn feed(tele: &Telemetry, recs: &[SchedRecord<'_>]) {
        let mut obs = tele.observer();
        for r in recs {
            obs.sched(r);
        }
    }

    #[test]
    fn switch_pairs_become_spans_with_latency() {
        let tele = Telemetry::new(TelemetryConfig::default());
        feed(
            &tele,
            &[
                SchedRecord::Enqueue {
                    cpu: 0,
                    thread: 3,
                    time: SimTime(100),
                    depth: 1,
                },
                SchedRecord::SwitchIn {
                    cpu: 0,
                    thread: 3,
                    name: "worker-3",
                    kind: ThreadKind::Workload,
                    time: SimTime(400),
                    runq_depth: 0,
                },
                SchedRecord::SwitchOut {
                    cpu: 0,
                    thread: 3,
                    time: SimTime(1400),
                    state: ThreadState::Sleeping,
                },
            ],
        );
        let rep = tele.take_report(SimTime(2000));
        assert_eq!(rep.spans.len(), 1);
        let s = &rep.spans[0];
        assert_eq!(s.cpu, 0);
        assert_eq!(s.thread, Some(3));
        assert_eq!(s.cat, SpanCat::Run);
        assert_eq!(s.dur_ns, 1000);
        assert_eq!(rep.strings[s.name as usize], "worker-3");
        let lat = rep.metrics.hist("sched.latency_ns").expect("latency hist");
        assert_eq!(lat.count, 1);
        assert_eq!(lat.min, 300);
        assert_eq!(rep.metrics.counter("sched.context_switches"), 1);
        assert_eq!(rep.counters.len(), 1);
        assert_eq!(rep.n_cpus, 1);
    }

    #[test]
    fn noise_and_irq_spans_are_classified() {
        let tele = Telemetry::new(TelemetryConfig::default());
        feed(
            &tele,
            &[
                SchedRecord::SwitchIn {
                    cpu: 1,
                    thread: 9,
                    name: "kworker/1:1",
                    kind: ThreadKind::Noise,
                    time: SimTime(0),
                    runq_depth: 2,
                },
                SchedRecord::IrqSpan {
                    cpu: 1,
                    time: SimTime(500),
                    duration_ns: 2400,
                    source: "local_timer:236",
                    softirq: false,
                },
                SchedRecord::IrqSpan {
                    cpu: 1,
                    time: SimTime(2900),
                    duration_ns: 800,
                    source: "RCU:9",
                    softirq: true,
                },
                SchedRecord::SwitchOut {
                    cpu: 1,
                    thread: 9,
                    time: SimTime(5000),
                    state: ThreadState::Ready,
                },
            ],
        );
        let rep = tele.take_report(SimTime(10_000));
        assert_eq!(rep.spans.len(), 3);
        assert_eq!(rep.metrics.counter("irq.timer"), 1);
        assert_eq!(rep.metrics.counter("irq.softirq"), 1);
        let cats: Vec<SpanCat> = rep.spans.iter().map(|s| s.cat).collect();
        assert!(cats.contains(&SpanCat::Noise));
        assert!(cats.contains(&SpanCat::Irq));
        assert!(cats.contains(&SpanCat::Softirq));
        assert_eq!(rep.n_cpus, 2);
    }

    #[test]
    fn open_span_is_closed_at_report_end() {
        let tele = Telemetry::new(TelemetryConfig::default());
        feed(
            &tele,
            &[SchedRecord::SwitchIn {
                cpu: 0,
                thread: 0,
                name: "main",
                kind: ThreadKind::Workload,
                time: SimTime(100),
                runq_depth: 0,
            }],
        );
        let rep = tele.take_report(SimTime(600));
        assert_eq!(rep.spans.len(), 1);
        assert_eq!(rep.spans[0].dur_ns, 500);
        let util = rep.metrics.gauge("cpu.util.mean").expect("util gauge");
        assert!(util > 0.8, "util={util}");
    }

    #[test]
    fn event_cap_counts_drops_instead_of_growing() {
        let tele = Telemetry::new(TelemetryConfig {
            max_events: 2,
            timeline: true,
        });
        for i in 0..5u64 {
            feed(
                &tele,
                &[SchedRecord::IrqSpan {
                    cpu: 0,
                    time: SimTime(i * 100),
                    duration_ns: 10,
                    source: "nvme0q7:130",
                    softirq: false,
                }],
            );
        }
        let rep = tele.take_report(SimTime(1000));
        assert_eq!(rep.spans.len(), 2);
        assert_eq!(rep.dropped, 3);
        assert_eq!(rep.metrics.counter("telemetry.dropped"), 3);
        // Metrics keep counting past the cap.
        assert_eq!(rep.metrics.counter("irq.device"), 5);
    }

    #[test]
    fn metrics_only_mode_stores_no_timeline() {
        let tele = Telemetry::new(TelemetryConfig::metrics_only());
        feed(
            &tele,
            &[
                SchedRecord::SwitchIn {
                    cpu: 0,
                    thread: 1,
                    name: "w",
                    kind: ThreadKind::Workload,
                    time: SimTime(0),
                    runq_depth: 0,
                },
                SchedRecord::SwitchOut {
                    cpu: 0,
                    thread: 1,
                    time: SimTime(100),
                    state: ThreadState::Exited,
                },
            ],
        );
        let rep = tele.take_report(SimTime(100));
        assert!(rep.spans.is_empty());
        assert_eq!(rep.metrics.counter("sched.context_switches"), 1);
        assert_eq!(rep.metrics.hist("run.span_ns").map(|h| h.count), Some(1));
    }
}
