//! The span recorder: a pure [`KernelObserver`] that turns scheduling
//! records into virtual-time spans, instants and counter samples, and
//! feeds the metrics registry.
//!
//! Because [`noiselab_kernel::Kernel::attach_observer`] takes a boxed
//! trait object, the recorder shares its state through an
//! `Rc<RefCell<..>>` handle (the same pattern as the noise tracer's
//! `TraceBuffer`), so the harness can snapshot metrics and take the
//! timeline after the run without downcasting.
//!
//! Spans are keyed by logical CPU (one timeline track per CPU) and
//! carry the occupying thread where applicable. Span and instant names
//! are interned into a string table so the recording path allocates
//! only the first time a name is seen.

use crate::metrics::{MetricsRegistry, MetricsSnapshot};
use noiselab_kernel::{
    EventRecord, InternTable, KernelObserver, SchedRecord, ThreadKind, ThreadState, WireRecord,
};
use noiselab_sim::SimTime;
use noiselab_stats::Log2Hist;
use std::cell::RefCell;
use std::collections::BTreeMap;
use std::rc::Rc;

/// Default cap on stored spans/instants/samples per collection. Far
/// above what paper-scale runs emit; hitting it increments a drop
/// counter instead of growing without bound (mirroring the tracer's
/// bounded ring buffer).
pub const DEFAULT_MAX_EVENTS: usize = 1 << 20;

/// Telemetry configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TelemetryConfig {
    /// Cap on stored spans, instants and counter samples (each).
    pub max_events: usize,
    /// Record the timeline (spans/instants/counter samples). Metrics
    /// are always on; campaigns disable the timeline to keep memory
    /// flat while still aggregating metrics.
    pub timeline: bool,
}

impl Default for TelemetryConfig {
    fn default() -> Self {
        TelemetryConfig {
            max_events: DEFAULT_MAX_EVENTS,
            timeline: true,
        }
    }
}

impl TelemetryConfig {
    /// Metrics only — the campaign-aggregation mode.
    pub fn metrics_only() -> Self {
        TelemetryConfig {
            max_events: DEFAULT_MAX_EVENTS,
            timeline: false,
        }
    }
}

/// Span category; doubles as the Chrome trace-event `cat` field.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SpanCat {
    /// A workload thread on-CPU.
    Run,
    /// A noise/injector thread on-CPU.
    Noise,
    /// Hardware interrupt service.
    Irq,
    /// Softirq service.
    Softirq,
}

impl SpanCat {
    pub fn name(self) -> &'static str {
        match self {
            SpanCat::Run => "run",
            SpanCat::Noise => "noise",
            SpanCat::Irq => "irq",
            SpanCat::Softirq => "softirq",
        }
    }

    pub fn tag(self) -> u8 {
        match self {
            SpanCat::Run => 0,
            SpanCat::Noise => 1,
            SpanCat::Irq => 2,
            SpanCat::Softirq => 3,
        }
    }

    pub fn from_tag(t: u8) -> Option<SpanCat> {
        match t {
            0 => Some(SpanCat::Run),
            1 => Some(SpanCat::Noise),
            2 => Some(SpanCat::Irq),
            3 => Some(SpanCat::Softirq),
            _ => None,
        }
    }
}

/// A closed virtual-time span on one CPU track.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Span {
    pub cpu: u32,
    /// Occupying thread for run/noise spans.
    pub thread: Option<u32>,
    /// Index into the report's string table.
    pub name: u32,
    pub cat: SpanCat,
    pub start: SimTime,
    pub dur_ns: u64,
}

/// A point event (migration, preemption, policy switch).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InstantMark {
    pub cpu: u32,
    pub name: u32,
    pub time: SimTime,
}

/// One runqueue-depth sample on a CPU's counter track.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CounterSample {
    pub cpu: u32,
    pub time: SimTime,
    pub depth: u32,
}

/// One frequency sample on a CPU's DVFS counter track, emitted at each
/// `FreqTransition` record. Empty (and absent from the binary
/// encoding) unless the machine's DVFS axis is enabled.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FreqSample {
    pub cpu: u32,
    pub time: SimTime,
    pub khz: u32,
}

/// Everything a finished recorder hands back.
#[derive(Debug, Clone, PartialEq)]
pub struct TelemetryReport {
    pub spans: Vec<Span>,
    pub instants: Vec<InstantMark>,
    pub counters: Vec<CounterSample>,
    /// Per-CPU frequency samples (DVFS runs only; otherwise empty).
    pub freq: Vec<FreqSample>,
    /// Interned span/instant names; `Span::name` indexes this.
    pub strings: Vec<String>,
    /// Highest CPU index seen, plus one.
    pub n_cpus: u32,
    /// End of the observed window (run exit time).
    pub end: SimTime,
    /// Events not stored because a collection hit its cap.
    pub dropped: u64,
    pub metrics: MetricsSnapshot,
}

struct OpenSpan {
    thread: u32,
    name: u32,
    cat: SpanCat,
    start: SimTime,
}

/// Counters and histograms touched on every event or scheduling record,
/// kept as plain fields instead of registry entries: the recording path
/// is a field increment, and the names are resolved once at
/// [`HotMetrics::flush`] time. Flushing only materializes metrics that
/// actually fired, matching the registry's create-on-first-add behavior.
#[derive(Default)]
struct HotMetrics {
    kernel_events: u64,
    context_switches: u64,
    blocks: u64,
    preemptions: u64,
    enqueues: u64,
    dequeues: u64,
    decisions: u64,
    migrations: u64,
    numa_migrations: u64,
    policy_switches: u64,
    irq_timer: u64,
    irq_device: u64,
    irq_softirq: u64,
    freq_transitions: u64,
    throttle_enters: u64,
    throttle_exits: u64,
    runq_depth: Log2Hist,
    latency_ns: Log2Hist,
    irq_service_ns: Log2Hist,
    run_span_ns: Log2Hist,
    noise_span_ns: Log2Hist,
}

impl HotMetrics {
    fn flush(&self, m: &mut MetricsRegistry) {
        let counters = [
            ("kernel.events", self.kernel_events),
            ("sched.context_switches", self.context_switches),
            ("sched.blocks", self.blocks),
            ("sched.preemptions", self.preemptions),
            ("sched.enqueues", self.enqueues),
            ("sched.dequeues", self.dequeues),
            ("sched.decisions", self.decisions),
            ("sched.migrations", self.migrations),
            ("sched.numa_migrations", self.numa_migrations),
            ("sched.policy_switches", self.policy_switches),
            ("irq.timer", self.irq_timer),
            ("irq.device", self.irq_device),
            ("irq.softirq", self.irq_softirq),
            ("dvfs.freq_transitions", self.freq_transitions),
            ("dvfs.throttle_enters", self.throttle_enters),
            ("dvfs.throttle_exits", self.throttle_exits),
        ];
        for (name, v) in counters {
            if v > 0 {
                m.counter_add(name, v);
            }
        }
        let hists = [
            ("sched.runq_depth", &self.runq_depth),
            ("sched.latency_ns", &self.latency_ns),
            ("irq.service_ns", &self.irq_service_ns),
            ("run.span_ns", &self.run_span_ns),
            ("noise.span_ns", &self.noise_span_ns),
        ];
        for (name, h) in hists {
            if h.count > 0 {
                m.hist_merge(name, h);
            }
        }
    }
}

struct Inner {
    cfg: TelemetryConfig,
    spans: Vec<Span>,
    instants: Vec<InstantMark>,
    counters: Vec<CounterSample>,
    freq: Vec<FreqSample>,
    strings: Vec<String>,
    intern: BTreeMap<String, u32>,
    /// Per-CPU currently-open run/noise span.
    open: Vec<Option<OpenSpan>>,
    /// Per-CPU on-CPU nanoseconds (run + noise spans), kept outside the
    /// span store so utilization survives metrics-only mode and caps.
    busy: Vec<u64>,
    /// Enqueue time per thread (dense, grown on demand), consumed at
    /// switch-in for the scheduling-latency histogram.
    enqueued_at: Vec<Option<SimTime>>,
    /// Interned name id per thread, so repeat switch-ins of the same
    /// thread skip the intern-table walk. Valid because a thread's name
    /// never changes after spawn (debug-checked below).
    name_of_thread: Vec<u32>,
    /// Hot-path counters/histograms, folded into `metrics` at finish.
    hot: HotMetrics,
    n_cpus: u32,
    dropped: u64,
    metrics: MetricsRegistry,
}

impl Inner {
    fn intern(&mut self, s: &str) -> u32 {
        if let Some(&i) = self.intern.get(s) {
            return i;
        }
        let i = self.strings.len() as u32;
        self.strings.push(s.to_string());
        self.intern.insert(s.to_string(), i);
        i
    }

    fn saw_cpu(&mut self, cpu: u32) {
        self.n_cpus = self.n_cpus.max(cpu + 1);
        if self.open.len() <= cpu as usize {
            self.open.resize_with(cpu as usize + 1, || None);
            self.busy.resize(cpu as usize + 1, 0);
        }
    }

    fn push_span(&mut self, s: Span) {
        if !self.cfg.timeline {
            return;
        }
        if self.spans.len() >= self.cfg.max_events {
            self.dropped += 1;
        } else {
            self.spans.push(s);
        }
    }

    fn push_instant(&mut self, cpu: u32, name: &'static str, time: SimTime) {
        if !self.cfg.timeline {
            return;
        }
        if self.instants.len() >= self.cfg.max_events {
            self.dropped += 1;
        } else {
            let name = self.intern(name);
            self.instants.push(InstantMark { cpu, name, time });
        }
    }

    fn close_open(&mut self, cpu: u32, end: SimTime) {
        let Some(open) = self.open[cpu as usize].take() else {
            return;
        };
        let dur_ns = end.since(open.start).nanos();
        match open.cat {
            SpanCat::Run => self.hot.run_span_ns.record(dur_ns),
            _ => self.hot.noise_span_ns.record(dur_ns),
        }
        self.busy[cpu as usize] += dur_ns;
        self.push_span(Span {
            cpu,
            thread: Some(open.thread),
            name: open.name,
            cat: open.cat,
            start: open.start,
            dur_ns,
        });
    }

    fn sched(&mut self, rec: &SchedRecord<'_>) {
        match *rec {
            SchedRecord::SwitchIn {
                cpu,
                thread,
                name,
                kind,
                time,
                runq_depth,
            } => {
                self.saw_cpu(cpu);
                // Defensive: a switch-in over a still-open span closes it.
                self.close_open(cpu, time);
                self.hot.context_switches += 1;
                self.hot.runq_depth.record(runq_depth as u64);
                if let Some(enq) = self
                    .enqueued_at
                    .get_mut(thread as usize)
                    .and_then(Option::take)
                {
                    self.hot.latency_ns.record(time.since(enq).nanos());
                }
                let cat = if kind == ThreadKind::Workload {
                    SpanCat::Run
                } else {
                    SpanCat::Noise
                };
                let ti = thread as usize;
                if self.name_of_thread.len() <= ti {
                    self.name_of_thread.resize(ti + 1, u32::MAX);
                }
                let name = if self.name_of_thread[ti] != u32::MAX {
                    let id = self.name_of_thread[ti];
                    debug_assert_eq!(self.strings[id as usize], name, "thread renamed mid-run");
                    id
                } else {
                    let id = self.intern(name);
                    self.name_of_thread[ti] = id;
                    id
                };
                self.open[cpu as usize] = Some(OpenSpan {
                    thread,
                    name,
                    cat,
                    start: time,
                });
            }
            SchedRecord::SwitchOut {
                cpu, time, state, ..
            } => {
                self.saw_cpu(cpu);
                self.close_open(cpu, time);
                if state == ThreadState::Blocked {
                    self.hot.blocks += 1;
                }
            }
            SchedRecord::Preempt { cpu, time, .. } => {
                self.saw_cpu(cpu);
                self.hot.preemptions += 1;
                self.push_instant(cpu, "preempt", time);
            }
            SchedRecord::Enqueue {
                cpu,
                thread,
                time,
                depth,
            } => {
                self.saw_cpu(cpu);
                self.hot.enqueues += 1;
                let ti = thread as usize;
                if self.enqueued_at.len() <= ti {
                    self.enqueued_at.resize(ti + 1, None);
                }
                self.enqueued_at[ti] = Some(time);
                if self.cfg.timeline {
                    if self.counters.len() >= self.cfg.max_events {
                        self.dropped += 1;
                    } else {
                        self.counters.push(CounterSample { cpu, time, depth });
                    }
                }
            }
            SchedRecord::Migrate {
                to_cpu,
                time,
                cross_numa,
                ..
            } => {
                self.saw_cpu(to_cpu);
                self.hot.migrations += 1;
                if cross_numa {
                    self.hot.numa_migrations += 1;
                    self.push_instant(to_cpu, "migrate-numa", time);
                } else {
                    self.push_instant(to_cpu, "migrate", time);
                }
            }
            SchedRecord::IrqSpan {
                cpu,
                time,
                duration_ns,
                source,
                softirq,
            } => {
                self.saw_cpu(cpu);
                if softirq {
                    self.hot.irq_softirq += 1;
                } else if source == "local_timer:236" {
                    self.hot.irq_timer += 1;
                } else {
                    self.hot.irq_device += 1;
                }
                self.hot.irq_service_ns.record(duration_ns);
                let cat = if softirq {
                    SpanCat::Softirq
                } else {
                    SpanCat::Irq
                };
                let name = self.intern(source);
                self.push_span(Span {
                    cpu,
                    thread: None,
                    name,
                    cat,
                    start: time,
                    dur_ns: duration_ns,
                });
            }
            SchedRecord::PolicySwitch { time, .. } => {
                self.hot.policy_switches += 1;
                self.push_instant(0, "policy-switch", time);
            }
            // Decision points are high-frequency conformance breadcrumbs;
            // count them, but emit no timeline events (a span per pick
            // would swamp the Perfetto track).
            SchedRecord::Decision { .. } => {
                self.hot.decisions += 1;
            }
            SchedRecord::Dequeue { .. } => {
                self.hot.dequeues += 1;
            }
            SchedRecord::FreqTransition {
                cpu, time, to_khz, ..
            } => {
                self.saw_cpu(cpu);
                self.hot.freq_transitions += 1;
                if self.cfg.timeline {
                    if self.freq.len() >= self.cfg.max_events {
                        self.dropped += 1;
                    } else {
                        self.freq.push(FreqSample {
                            cpu,
                            time,
                            khz: to_khz,
                        });
                    }
                }
            }
            SchedRecord::Throttle {
                cpu, time, entered, ..
            } => {
                self.saw_cpu(cpu);
                if entered {
                    self.hot.throttle_enters += 1;
                    self.push_instant(cpu, "throttle-enter", time);
                } else {
                    self.hot.throttle_exits += 1;
                    self.push_instant(cpu, "throttle-exit", time);
                }
            }
        }
    }

    fn finish(&mut self, end: SimTime) -> TelemetryReport {
        for cpu in 0..self.open.len() as u32 {
            self.close_open(cpu, end);
        }
        let hot = std::mem::take(&mut self.hot);
        hot.flush(&mut self.metrics);
        // Per-CPU utilization: busy (run + noise span) time over the
        // observed window.
        let window = end.0.max(1) as f64;
        if self.n_cpus > 0 {
            let utils: Vec<f64> = self.busy.iter().map(|&b| b as f64 / window).collect();
            let mean = utils.iter().sum::<f64>() / utils.len() as f64;
            let max = utils.iter().cloned().fold(0.0, f64::max);
            self.metrics.gauge_set("cpu.util.mean", mean);
            self.metrics.gauge_set("cpu.util.max", max);
        }
        if self.dropped > 0 {
            self.metrics.counter_add("telemetry.dropped", self.dropped);
        }
        TelemetryReport {
            spans: std::mem::take(&mut self.spans),
            instants: std::mem::take(&mut self.instants),
            counters: std::mem::take(&mut self.counters),
            freq: std::mem::take(&mut self.freq),
            strings: self.strings.clone(),
            n_cpus: self.n_cpus,
            end,
            dropped: self.dropped,
            metrics: self.metrics.snapshot(),
        }
    }
}

/// Shared telemetry pipeline handle for one run. Hand
/// [`Telemetry::observer`] to the kernel, run, then call
/// [`Telemetry::take_report`].
#[derive(Clone)]
pub struct Telemetry {
    inner: Rc<RefCell<Inner>>,
}

impl Default for Telemetry {
    fn default() -> Self {
        Self::new(TelemetryConfig::default())
    }
}

impl Telemetry {
    pub fn new(cfg: TelemetryConfig) -> Self {
        Telemetry {
            inner: Rc::new(RefCell::new(Inner {
                cfg,
                spans: Vec::new(),
                instants: Vec::new(),
                counters: Vec::new(),
                freq: Vec::new(),
                strings: Vec::new(),
                intern: BTreeMap::new(),
                open: Vec::new(),
                enqueued_at: Vec::new(),
                name_of_thread: Vec::new(),
                hot: HotMetrics::default(),
                busy: Vec::new(),
                n_cpus: 0,
                dropped: 0,
                metrics: MetricsRegistry::new(),
            })),
        }
    }

    /// Return the pipeline to its just-constructed state under `cfg`,
    /// keeping every collection's allocation — the arena-reuse hook for
    /// repetition loops. Observationally equivalent to replacing the
    /// handle with `Telemetry::new(cfg)`; the arena conformance suite
    /// asserts reports from a reused pipeline match a fresh one's.
    pub fn reset(&self, cfg: TelemetryConfig) {
        let mut i = self.inner.borrow_mut();
        i.cfg = cfg;
        i.spans.clear();
        i.instants.clear();
        i.counters.clear();
        i.freq.clear();
        i.strings.clear();
        i.intern.clear();
        i.open.clear();
        i.busy.clear();
        i.enqueued_at.clear();
        i.name_of_thread.clear();
        i.hot = HotMetrics::default();
        i.n_cpus = 0;
        i.dropped = 0;
        i.metrics = MetricsRegistry::new();
    }

    /// The boxed observer to attach to a kernel. Cloning the handle
    /// first keeps this end readable after the kernel takes the box.
    pub fn observer(&self) -> Box<dyn KernelObserver> {
        Box::new(Recorder {
            inner: Rc::clone(&self.inner),
        })
    }

    /// Add to a counter from outside the kernel (e.g. the harness
    /// surfacing tracer ring-buffer drops).
    pub fn counter_add(&self, name: &'static str, n: u64) {
        self.inner.borrow_mut().metrics.counter_add(name, n);
    }

    pub fn gauge_set(&self, name: &'static str, v: f64) {
        self.inner.borrow_mut().metrics.gauge_set(name, v);
    }

    /// Close open spans at `end`, compute utilization gauges, and take
    /// the report. The handle is spent afterwards (collections empty).
    pub fn take_report(&self, end: SimTime) -> TelemetryReport {
        self.inner.borrow_mut().finish(end)
    }
}

/// The boxed observer end of a [`Telemetry`] handle.
struct Recorder {
    inner: Rc<RefCell<Inner>>,
}

impl KernelObserver for Recorder {
    fn event(&mut self, _rec: &EventRecord<'_>) {
        self.inner.borrow_mut().hot.kernel_events += 1;
    }

    fn events(&mut self, batch: &[WireRecord], _intern: &InternTable) {
        // The recorder only counts dispatched events, so a batch is one
        // borrow and one add instead of a fan-out.
        self.inner.borrow_mut().hot.kernel_events += batch.len() as u64;
    }

    fn sched(&mut self, rec: &SchedRecord<'_>) {
        self.inner.borrow_mut().sched(rec);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn feed(tele: &Telemetry, recs: &[SchedRecord<'_>]) {
        let mut obs = tele.observer();
        for r in recs {
            obs.sched(r);
        }
    }

    #[test]
    fn switch_pairs_become_spans_with_latency() {
        let tele = Telemetry::new(TelemetryConfig::default());
        feed(
            &tele,
            &[
                SchedRecord::Enqueue {
                    cpu: 0,
                    thread: 3,
                    time: SimTime(100),
                    depth: 1,
                },
                SchedRecord::SwitchIn {
                    cpu: 0,
                    thread: 3,
                    name: "worker-3",
                    kind: ThreadKind::Workload,
                    time: SimTime(400),
                    runq_depth: 0,
                },
                SchedRecord::SwitchOut {
                    cpu: 0,
                    thread: 3,
                    time: SimTime(1400),
                    state: ThreadState::Sleeping,
                },
            ],
        );
        let rep = tele.take_report(SimTime(2000));
        assert_eq!(rep.spans.len(), 1);
        let s = &rep.spans[0];
        assert_eq!(s.cpu, 0);
        assert_eq!(s.thread, Some(3));
        assert_eq!(s.cat, SpanCat::Run);
        assert_eq!(s.dur_ns, 1000);
        assert_eq!(rep.strings[s.name as usize], "worker-3");
        let lat = rep.metrics.hist("sched.latency_ns").expect("latency hist");
        assert_eq!(lat.count, 1);
        assert_eq!(lat.min, 300);
        assert_eq!(rep.metrics.counter("sched.context_switches"), 1);
        assert_eq!(rep.counters.len(), 1);
        assert_eq!(rep.n_cpus, 1);
    }

    #[test]
    fn noise_and_irq_spans_are_classified() {
        let tele = Telemetry::new(TelemetryConfig::default());
        feed(
            &tele,
            &[
                SchedRecord::SwitchIn {
                    cpu: 1,
                    thread: 9,
                    name: "kworker/1:1",
                    kind: ThreadKind::Noise,
                    time: SimTime(0),
                    runq_depth: 2,
                },
                SchedRecord::IrqSpan {
                    cpu: 1,
                    time: SimTime(500),
                    duration_ns: 2400,
                    source: "local_timer:236",
                    softirq: false,
                },
                SchedRecord::IrqSpan {
                    cpu: 1,
                    time: SimTime(2900),
                    duration_ns: 800,
                    source: "RCU:9",
                    softirq: true,
                },
                SchedRecord::SwitchOut {
                    cpu: 1,
                    thread: 9,
                    time: SimTime(5000),
                    state: ThreadState::Ready,
                },
            ],
        );
        let rep = tele.take_report(SimTime(10_000));
        assert_eq!(rep.spans.len(), 3);
        assert_eq!(rep.metrics.counter("irq.timer"), 1);
        assert_eq!(rep.metrics.counter("irq.softirq"), 1);
        let cats: Vec<SpanCat> = rep.spans.iter().map(|s| s.cat).collect();
        assert!(cats.contains(&SpanCat::Noise));
        assert!(cats.contains(&SpanCat::Irq));
        assert!(cats.contains(&SpanCat::Softirq));
        assert_eq!(rep.n_cpus, 2);
    }

    #[test]
    fn open_span_is_closed_at_report_end() {
        let tele = Telemetry::new(TelemetryConfig::default());
        feed(
            &tele,
            &[SchedRecord::SwitchIn {
                cpu: 0,
                thread: 0,
                name: "main",
                kind: ThreadKind::Workload,
                time: SimTime(100),
                runq_depth: 0,
            }],
        );
        let rep = tele.take_report(SimTime(600));
        assert_eq!(rep.spans.len(), 1);
        assert_eq!(rep.spans[0].dur_ns, 500);
        let util = rep.metrics.gauge("cpu.util.mean").expect("util gauge");
        assert!(util > 0.8, "util={util}");
    }

    #[test]
    fn event_cap_counts_drops_instead_of_growing() {
        let tele = Telemetry::new(TelemetryConfig {
            max_events: 2,
            timeline: true,
        });
        for i in 0..5u64 {
            feed(
                &tele,
                &[SchedRecord::IrqSpan {
                    cpu: 0,
                    time: SimTime(i * 100),
                    duration_ns: 10,
                    source: "nvme0q7:130",
                    softirq: false,
                }],
            );
        }
        let rep = tele.take_report(SimTime(1000));
        assert_eq!(rep.spans.len(), 2);
        assert_eq!(rep.dropped, 3);
        assert_eq!(rep.metrics.counter("telemetry.dropped"), 3);
        // Metrics keep counting past the cap.
        assert_eq!(rep.metrics.counter("irq.device"), 5);
    }

    #[test]
    fn metrics_only_mode_stores_no_timeline() {
        let tele = Telemetry::new(TelemetryConfig::metrics_only());
        feed(
            &tele,
            &[
                SchedRecord::SwitchIn {
                    cpu: 0,
                    thread: 1,
                    name: "w",
                    kind: ThreadKind::Workload,
                    time: SimTime(0),
                    runq_depth: 0,
                },
                SchedRecord::SwitchOut {
                    cpu: 0,
                    thread: 1,
                    time: SimTime(100),
                    state: ThreadState::Exited,
                },
            ],
        );
        let rep = tele.take_report(SimTime(100));
        assert!(rep.spans.is_empty());
        assert_eq!(rep.metrics.counter("sched.context_switches"), 1);
        assert_eq!(rep.metrics.hist("run.span_ns").map(|h| h.count), Some(1));
    }
}
