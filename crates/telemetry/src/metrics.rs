//! The metrics registry: named counters, gauges and log2-bucketed
//! histograms, snapshotted per run and merged per campaign cell.
//!
//! Registry keys are `&'static str` so the hot recording path never
//! allocates; storage is `BTreeMap` (never `HashMap` — hash iteration
//! order is a nondeterminism hazard the audit crate bans), so snapshots
//! enumerate metrics in a stable order and two identical runs produce
//! byte-identical snapshot JSON.

use noiselab_stats::Log2Hist;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Live registry owned by a run's telemetry pipeline.
#[derive(Debug, Clone, Default)]
pub struct MetricsRegistry {
    counters: BTreeMap<&'static str, u64>,
    gauges: BTreeMap<&'static str, f64>,
    hists: BTreeMap<&'static str, Log2Hist>,
}

impl MetricsRegistry {
    pub fn new() -> Self {
        Self::default()
    }

    #[inline]
    pub fn counter_add(&mut self, name: &'static str, n: u64) {
        *self.counters.entry(name).or_insert(0) += n;
    }

    #[inline]
    pub fn gauge_set(&mut self, name: &'static str, v: f64) {
        self.gauges.insert(name, v);
    }

    #[inline]
    pub fn hist_record(&mut self, name: &'static str, v: u64) {
        self.hists.entry(name).or_default().record(v);
    }

    /// Merge a pre-accumulated histogram in (exact, bucket-wise) — the
    /// flush path for recorders that batch hot-path samples locally.
    pub fn hist_merge(&mut self, name: &'static str, h: &Log2Hist) {
        self.hists.entry(name).or_default().merge(h);
    }

    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Freeze the registry into a serializable snapshot.
    pub fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            runs: 1,
            counters: self
                .counters
                .iter()
                .map(|(k, v)| CounterEntry {
                    name: k.to_string(),
                    value: *v,
                })
                .collect(),
            gauges: self
                .gauges
                .iter()
                .map(|(k, v)| GaugeEntry {
                    name: k.to_string(),
                    value: *v,
                })
                .collect(),
            histograms: self
                .hists
                .iter()
                .map(|(k, v)| HistEntry {
                    name: k.to_string(),
                    hist: v.clone(),
                })
                .collect(),
        }
    }
}

#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CounterEntry {
    pub name: String,
    pub value: u64,
}

#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GaugeEntry {
    pub name: String,
    pub value: f64,
}

#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HistEntry {
    pub name: String,
    pub hist: Log2Hist,
}

/// A frozen, serializable view of a registry. `runs` counts how many
/// per-run snapshots were merged in (1 for a single run); counters and
/// histograms merge exactly, gauges merge as the runs-weighted mean.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct MetricsSnapshot {
    pub runs: u64,
    pub counters: Vec<CounterEntry>,
    pub gauges: Vec<GaugeEntry>,
    pub histograms: Vec<HistEntry>,
}

impl MetricsSnapshot {
    pub fn counter(&self, name: &str) -> u64 {
        self.counters
            .iter()
            .find(|c| c.name == name)
            .map(|c| c.value)
            .unwrap_or(0)
    }

    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.gauges.iter().find(|g| g.name == name).map(|g| g.value)
    }

    pub fn hist(&self, name: &str) -> Option<&Log2Hist> {
        self.histograms
            .iter()
            .find(|h| h.name == name)
            .map(|h| &h.hist)
    }

    /// Number of distinct metrics in the snapshot.
    pub fn len(&self) -> usize {
        self.counters.len() + self.gauges.len() + self.histograms.len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Merge another snapshot in: counters sum, histograms merge
    /// bucket-wise (both exact), gauges combine as the runs-weighted
    /// mean. Metric names present in only one side are kept.
    pub fn merge(&mut self, other: &MetricsSnapshot) {
        for c in &other.counters {
            match self.counters.iter_mut().find(|e| e.name == c.name) {
                Some(e) => e.value += c.value,
                None => self.counters.push(c.clone()),
            }
        }
        let (a, b) = (self.runs as f64, other.runs as f64);
        for g in &other.gauges {
            match self.gauges.iter_mut().find(|e| e.name == g.name) {
                Some(e) => {
                    if a + b > 0.0 {
                        e.value = (e.value * a + g.value * b) / (a + b);
                    }
                }
                None => self.gauges.push(g.clone()),
            }
        }
        for h in &other.histograms {
            match self.histograms.iter_mut().find(|e| e.name == h.name) {
                Some(e) => e.hist.merge(&h.hist),
                None => self.histograms.push(h.clone()),
            }
        }
        self.runs += other.runs;
        self.counters.sort_by(|x, y| x.name.cmp(&y.name));
        self.gauges.sort_by(|x, y| x.name.cmp(&y.name));
        self.histograms.sort_by(|x, y| x.name.cmp(&y.name));
    }

    /// Human rendering for `noiselab metrics`, one metric per line.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("metrics over {} run(s)\n", self.runs));
        for c in &self.counters {
            out.push_str(&format!("  {:<28} {}\n", c.name, c.value));
        }
        for g in &self.gauges {
            out.push_str(&format!("  {:<28} {:.4}\n", g.name, g.value));
        }
        for h in &self.histograms {
            out.push_str(&format!("  {:<28} {}\n", h.name, h.hist.render_ns()));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_snapshot_is_sorted_and_complete() {
        let mut r = MetricsRegistry::new();
        r.counter_add("z.last", 2);
        r.counter_add("a.first", 1);
        r.counter_add("z.last", 3);
        r.gauge_set("util", 0.5);
        r.hist_record("lat", 100);
        let s = r.snapshot();
        assert_eq!(s.runs, 1);
        assert_eq!(s.counters[0].name, "a.first");
        assert_eq!(s.counters[1].value, 5);
        assert_eq!(s.gauge("util"), Some(0.5));
        assert_eq!(s.hist("lat").map(|h| h.count), Some(1));
        assert_eq!(s.len(), 4);
    }

    #[test]
    fn merge_sums_counters_and_averages_gauges() {
        let mut a = MetricsRegistry::new();
        a.counter_add("n", 10);
        a.gauge_set("util", 0.2);
        a.hist_record("lat", 8);
        let mut sa = a.snapshot();

        let mut b = MetricsRegistry::new();
        b.counter_add("n", 5);
        b.counter_add("only_b", 1);
        b.gauge_set("util", 0.6);
        b.hist_record("lat", 64);
        let sb = b.snapshot();

        sa.merge(&sb);
        assert_eq!(sa.runs, 2);
        assert_eq!(sa.counter("n"), 15);
        assert_eq!(sa.counter("only_b"), 1);
        let util = sa.gauge("util").expect("gauge kept");
        assert!((util - 0.4).abs() < 1e-12);
        assert_eq!(sa.hist("lat").map(|h| h.count), Some(2));
    }

    #[test]
    fn snapshot_serde_round_trip() {
        let mut r = MetricsRegistry::new();
        r.counter_add("events", 123);
        r.gauge_set("util", 0.75);
        r.hist_record("lat", 4096);
        let s = r.snapshot();
        let json = serde_json::to_string(&s).expect("serialize");
        let back: MetricsSnapshot = serde_json::from_str(&json).expect("parse");
        assert_eq!(s, back);
    }

    #[test]
    fn merge_into_default_is_identity() {
        let mut r = MetricsRegistry::new();
        r.counter_add("events", 7);
        r.gauge_set("util", 0.9);
        let s = r.snapshot();
        let mut acc = MetricsSnapshot::default();
        acc.merge(&s);
        assert_eq!(acc.runs, 1);
        assert_eq!(acc.counter("events"), 7);
        assert_eq!(acc.gauge("util"), Some(0.9));
    }
}
