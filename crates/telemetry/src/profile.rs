//! Host-time self-profiling: where does the simulator spend *host*
//! time while producing its virtual-time results?
//!
//! The kernel announces phase boundaries (event dispatch, scheduler,
//! tracer) through [`noiselab_kernel::HostProfiler`]; the harness
//! announces its stats phase the same way. This module owns the only
//! place in the workspace where host time is actually read — the
//! audited [`wall_clock`] below — and attributes *self time* per phase
//! with a frame stack, so nested phases (dispatch contains scheduler
//! contains tracer) do not double-count.
//!
//! Host time never feeds back into the simulation: the profiler's
//! observations are write-only from the kernel's point of view, so a
//! profiled run is bit-identical to an unprofiled one.

use noiselab_kernel::{HostProfiler, Phase};
use serde::{Deserialize, Serialize};
use std::cell::RefCell;
use std::rc::Rc;
use std::time::Instant;

/// The single audited host-clock read. Everything host-timed in the
/// workspace (this profiler, the bench harness banner) routes through
/// here, so the determinism auditor has exactly one wall-clock site to
/// approve.
pub fn wall_clock() -> Instant {
    Instant::now() // audit:allow(wall-clock): the one approved host-timing site; simulated results never read it
}

const N_PHASES: usize = Phase::ALL.len();

struct Frame {
    phase: Phase,
    start: Instant,
    /// Host ns spent in nested phases, to subtract for self time.
    child_ns: u64,
}

struct ProfInner {
    stack: Vec<Frame>,
    self_ns: [u64; N_PHASES],
    calls: [u64; N_PHASES],
    /// Enter/exit mismatches observed (should stay 0).
    unbalanced: u64,
}

/// Shared phase-profiler handle: hand [`PhaseProfiler::hook`] to the
/// kernel, optionally bracket harness work with
/// [`PhaseProfiler::enter`]/[`PhaseProfiler::exit`], then take the
/// [`PhaseReport`].
#[derive(Clone)]
pub struct PhaseProfiler {
    inner: Rc<RefCell<ProfInner>>,
}

impl Default for PhaseProfiler {
    fn default() -> Self {
        Self::new()
    }
}

impl PhaseProfiler {
    pub fn new() -> Self {
        PhaseProfiler {
            inner: Rc::new(RefCell::new(ProfInner {
                stack: Vec::new(),
                self_ns: [0; N_PHASES],
                calls: [0; N_PHASES],
                unbalanced: 0,
            })),
        }
    }

    /// The boxed profiler end to attach to a kernel.
    pub fn hook(&self) -> Box<dyn HostProfiler> {
        Box::new(ProfilerHook {
            inner: Rc::clone(&self.inner),
        })
    }

    pub fn enter(&self, phase: Phase) {
        self.inner.borrow_mut().enter(phase);
    }

    pub fn exit(&self, phase: Phase) {
        self.inner.borrow_mut().exit(phase);
    }

    pub fn report(&self) -> PhaseReport {
        let inner = self.inner.borrow();
        let phases = Phase::ALL
            .iter()
            .map(|&p| PhaseRow {
                phase: p.name().to_string(),
                calls: inner.calls[p.index()],
                self_ns: inner.self_ns[p.index()],
            })
            .collect();
        PhaseReport {
            phases,
            unbalanced: inner.unbalanced,
        }
    }
}

impl ProfInner {
    fn enter(&mut self, phase: Phase) {
        self.stack.push(Frame {
            phase,
            start: wall_clock(),
            child_ns: 0,
        });
    }

    fn exit(&mut self, phase: Phase) {
        let Some(frame) = self.stack.pop() else {
            self.unbalanced += 1;
            return;
        };
        if frame.phase != phase {
            self.unbalanced += 1;
        }
        let total = wall_clock().duration_since(frame.start).as_nanos() as u64;
        let own = total.saturating_sub(frame.child_ns);
        self.self_ns[frame.phase.index()] += own;
        self.calls[frame.phase.index()] += 1;
        if let Some(parent) = self.stack.last_mut() {
            parent.child_ns += total;
        }
    }
}

struct ProfilerHook {
    inner: Rc<RefCell<ProfInner>>,
}

impl HostProfiler for ProfilerHook {
    fn enter(&mut self, phase: Phase) {
        self.inner.borrow_mut().enter(phase);
    }

    fn exit(&mut self, phase: Phase) {
        self.inner.borrow_mut().exit(phase);
    }
}

/// Host self-time per phase for one run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PhaseRow {
    pub phase: String,
    pub calls: u64,
    pub self_ns: u64,
}

#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PhaseReport {
    pub phases: Vec<PhaseRow>,
    /// Enter/exit mismatches (0 on a correct run).
    pub unbalanced: u64,
}

impl PhaseReport {
    pub fn total_ns(&self) -> u64 {
        self.phases.iter().map(|p| p.self_ns).sum()
    }

    /// Human rendering, one phase per line with its share of profiled
    /// host time.
    pub fn render(&self) -> String {
        let total = self.total_ns().max(1) as f64;
        let mut out = String::from("host-time phase profile (self time)\n");
        for p in &self.phases {
            out.push_str(&format!(
                "  {:<10} calls={:<9} self={:<10} ({:4.1}%)\n",
                p.phase,
                p.calls,
                noiselab_stats::fmt_ns(p.self_ns as f64),
                p.self_ns as f64 / total * 100.0,
            ));
        }
        if self.unbalanced > 0 {
            out.push_str(&format!(
                "  WARNING: {} unbalanced phases\n",
                self.unbalanced
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nested_phases_attribute_self_time() {
        let prof = PhaseProfiler::new();
        prof.enter(Phase::Dispatch);
        prof.enter(Phase::Scheduler);
        std::hint::black_box((0..10_000).sum::<u64>());
        prof.exit(Phase::Scheduler);
        prof.exit(Phase::Dispatch);
        let rep = prof.report();
        assert_eq!(rep.unbalanced, 0);
        let sched = rep.phases.iter().find(|p| p.phase == "scheduler").unwrap();
        let disp = rep.phases.iter().find(|p| p.phase == "dispatch").unwrap();
        assert_eq!(sched.calls, 1);
        assert_eq!(disp.calls, 1);
        // Dispatch self-time excludes the nested scheduler time, so the
        // sum of self times cannot exceed any one wall measurement by
        // double counting; both are recorded independently.
        assert!(rep.total_ns() > 0);
        assert!(rep.render().contains("scheduler"));
    }

    #[test]
    fn unbalanced_exits_are_counted_not_fatal() {
        let prof = PhaseProfiler::new();
        prof.exit(Phase::Tracer);
        prof.enter(Phase::Dispatch);
        prof.exit(Phase::Scheduler);
        let rep = prof.report();
        assert_eq!(rep.unbalanced, 2);
    }

    #[test]
    fn hook_and_handle_share_state() {
        let prof = PhaseProfiler::new();
        let mut hook = prof.hook();
        hook.enter(Phase::Tracer);
        hook.exit(Phase::Tracer);
        prof.enter(Phase::Stats);
        prof.exit(Phase::Stats);
        let rep = prof.report();
        let tracer = rep.phases.iter().find(|p| p.phase == "tracer").unwrap();
        let stats = rep.phases.iter().find(|p| p.phase == "stats").unwrap();
        assert_eq!(tracer.calls, 1);
        assert_eq!(stats.calls, 1);
    }
}
