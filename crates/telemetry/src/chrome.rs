//! Chrome trace-event JSON exporter.
//!
//! Emits the "JSON Array Format" of the Trace Event specification,
//! which Perfetto (ui.perfetto.dev) and chrome://tracing load
//! directly: one named thread track per logical CPU under a single
//! process, `X` (complete) events for spans, `i` (instant) events for
//! migrations/preemptions, and `C` (counter) events for runqueue
//! depth. Timestamps are microseconds; virtual nanoseconds map to
//! fractional `ts` values, which both viewers accept.
//!
//! The document is assembled as a `serde::Value` tree and written by
//! the same JSON writer every other artifact in the workspace uses, so
//! output is valid JSON by construction and byte-stable across runs.

use crate::recorder::TelemetryReport;
use serde::Value;

/// Microseconds from virtual nanoseconds.
fn us(ns: u64) -> Value {
    Value::Float(ns as f64 / 1_000.0)
}

fn obj(fields: Vec<(&str, Value)>) -> Value {
    Value::Object(
        fields
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect(),
    )
}

fn s(v: &str) -> Value {
    Value::Str(v.to_string())
}

/// Render a report as Chrome trace-event JSON. `label` names the
/// process track (platform/workload/seed description).
pub fn chrome_trace(report: &TelemetryReport, label: &str) -> String {
    let mut events: Vec<Value> = Vec::new();

    events.push(obj(vec![
        ("ph", s("M")),
        ("pid", Value::UInt(0)),
        ("tid", Value::UInt(0)),
        ("name", s("process_name")),
        ("args", obj(vec![("name", s(label))])),
    ]));
    for cpu in 0..report.n_cpus {
        events.push(obj(vec![
            ("ph", s("M")),
            ("pid", Value::UInt(0)),
            ("tid", Value::UInt(cpu as u128)),
            ("name", s("thread_name")),
            ("args", obj(vec![("name", s(&format!("cpu{cpu}")))])),
        ]));
        events.push(obj(vec![
            ("ph", s("M")),
            ("pid", Value::UInt(0)),
            ("tid", Value::UInt(cpu as u128)),
            ("name", s("thread_sort_index")),
            ("args", obj(vec![("sort_index", Value::UInt(cpu as u128))])),
        ]));
    }

    for sp in &report.spans {
        let name = report
            .strings
            .get(sp.name as usize)
            .map(String::as_str)
            .unwrap_or("?");
        let mut args = vec![("cat", s(sp.cat.name()))];
        if let Some(tid) = sp.thread {
            args.push(("thread", Value::UInt(tid as u128)));
        }
        events.push(obj(vec![
            ("ph", s("X")),
            ("pid", Value::UInt(0)),
            ("tid", Value::UInt(sp.cpu as u128)),
            ("ts", us(sp.start.0)),
            ("dur", us(sp.dur_ns)),
            ("name", s(name)),
            ("cat", s(sp.cat.name())),
            ("args", obj(args)),
        ]));
    }

    for m in &report.instants {
        let name = report
            .strings
            .get(m.name as usize)
            .map(String::as_str)
            .unwrap_or("?");
        events.push(obj(vec![
            ("ph", s("i")),
            ("pid", Value::UInt(0)),
            ("tid", Value::UInt(m.cpu as u128)),
            ("ts", us(m.time.0)),
            ("name", s(name)),
            ("cat", s("sched")),
            ("s", s("t")),
        ]));
    }

    for c in &report.counters {
        events.push(obj(vec![
            ("ph", s("C")),
            ("pid", Value::UInt(0)),
            ("ts", us(c.time.0)),
            ("name", s(&format!("runq_depth.cpu{}", c.cpu))),
            ("args", obj(vec![("depth", Value::UInt(c.depth as u128))])),
        ]));
    }

    // Per-CPU frequency counter tracks (DVFS runs only). Reported in
    // MHz so the Perfetto axis stays readable next to depth counters.
    for f in &report.freq {
        events.push(obj(vec![
            ("ph", s("C")),
            ("pid", Value::UInt(0)),
            ("ts", us(f.time.0)),
            ("name", s(&format!("freq_mhz.cpu{}", f.cpu))),
            (
                "args",
                obj(vec![("mhz", Value::UInt(f.khz as u128 / 1000))]),
            ),
        ]));
    }

    let doc = obj(vec![
        ("traceEvents", Value::Array(events)),
        ("displayTimeUnit", s("ns")),
    ]);
    serde::write_json(&doc, true)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::recorder::{Telemetry, TelemetryConfig};
    use noiselab_kernel::{SchedRecord, ThreadKind, ThreadState};
    use noiselab_sim::SimTime;

    #[test]
    fn exported_json_parses_and_has_cpu_tracks() {
        let tele = Telemetry::new(TelemetryConfig::default());
        {
            let mut obs = tele.observer();
            obs.sched(&SchedRecord::SwitchIn {
                cpu: 2,
                thread: 7,
                name: "worker-7",
                kind: ThreadKind::Workload,
                time: SimTime(1_500),
                runq_depth: 0,
            });
            obs.sched(&SchedRecord::SwitchOut {
                cpu: 2,
                thread: 7,
                time: SimTime(4_500),
                state: ThreadState::Exited,
            });
        }
        let rep = tele.take_report(SimTime(5_000));
        let json = chrome_trace(&rep, "test run");
        let v = serde::parse_json(&json).expect("valid JSON");
        let evs = v
            .get("traceEvents")
            .and_then(|e| e.as_array())
            .expect("array");
        // process_name + 3 cpu tracks * 2 metadata + 1 span.
        assert!(evs.len() >= 8, "{} events", evs.len());
        let span = evs
            .iter()
            .find(|e| e.get("ph").and_then(|p| p.as_str()) == Some("X"))
            .expect("one X event");
        assert_eq!(span.get("name").and_then(|n| n.as_str()), Some("worker-7"));
        match span.get("ts") {
            Some(Value::Float(ts)) => assert!((ts - 1.5).abs() < 1e-9),
            other => panic!("ts not a float: {other:?}"),
        }
    }
}
