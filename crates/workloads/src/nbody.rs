//! N-body benchmark (HeCBench `nbody`): the compute-bound workload.
//!
//! Two layers:
//! * [`reference`] — a real all-pairs leapfrog integrator used to verify
//!   the physics (energy/momentum conservation) at small scale;
//! * the cost model — per-body force computation is `~20 * n` flops with
//!   cache-resident position data, which is what makes N-body respond to
//!   housekeeping cores with a real throughput loss (paper §5.1) and to
//!   SMT with sub-linear gains.

use crate::Workload;
use noiselab_machine::WorkUnit;
use noiselab_runtime::omp::{OmpProgram, OmpSchedule};
use noiselab_runtime::sycl::SyclQueue;
use noiselab_runtime::Program;
use std::rc::Rc;

/// Flops per body-body interaction (3 sub, 3 mul-add for r², rsqrt ~4,
/// scale + 6 mul-add).
const FLOPS_PER_INTERACTION: f64 = 20.0;
/// Integration flops per body (leapfrog update of vel + pos).
const FLOPS_INTEGRATE: f64 = 12.0;
/// Bytes streamed per body in integration (pos + vel read/write).
const BYTES_INTEGRATE: f64 = 96.0;
/// Bytes per body touched in the force phase — positions are re-read
/// from cache, so only first-touch traffic counts.
const BYTES_FORCE: f64 = 8.0;

/// Problem parameters. Defaults are calibrated so the OpenMP baseline on
/// the Intel platform lands near the paper's ~0.45 s (Table 1).
#[derive(Debug, Clone, PartialEq)]
pub struct NBody {
    pub bodies: usize,
    pub steps: usize,
    /// SYCL code-generation efficiency factor (paper observes ~1.3x
    /// longer raw SYCL runtimes on this benchmark).
    pub sycl_kernel_efficiency: f64,
}

impl Default for NBody {
    fn default() -> Self {
        NBody {
            bodies: 32_768,
            steps: 5,
            sycl_kernel_efficiency: 1.30,
        }
    }
}

impl NBody {
    /// A reduced-size instance for fast tests.
    pub fn small() -> Self {
        NBody {
            bodies: 2_048,
            steps: 3,
            sycl_kernel_efficiency: 1.30,
        }
    }

    fn force_work(&self) -> impl Fn(usize, usize) -> WorkUnit + 'static {
        let n = self.bodies as f64;
        move |_start, len| {
            WorkUnit::new(
                len as f64 * n * FLOPS_PER_INTERACTION,
                len as f64 * BYTES_FORCE,
            )
        }
    }

    fn integrate_work(&self) -> impl Fn(usize, usize) -> WorkUnit + 'static {
        move |_start, len| WorkUnit::new(len as f64 * FLOPS_INTEGRATE, len as f64 * BYTES_INTEGRATE)
    }
}

impl Workload for NBody {
    fn name(&self) -> &'static str {
        "nbody"
    }

    fn omp_program(&self, _nthreads: usize, schedule: Option<OmpSchedule>) -> Program {
        let mut b = OmpProgram::new();
        for s in 0..self.steps {
            b.parallel_for(
                format!("force[{s}]"),
                self.bodies,
                schedule,
                Rc::new(self.force_work()),
            );
            b.parallel_for(
                format!("integrate[{s}]"),
                self.bodies,
                schedule,
                Rc::new(self.integrate_work()),
            );
        }
        b.build()
    }

    fn sycl_program(&self, nthreads: usize) -> Program {
        let mut q = SyclQueue::new(nthreads, self.sycl_kernel_efficiency);
        for s in 0..self.steps {
            q.submit(
                format!("force[{s}]"),
                self.bodies,
                256,
                Rc::new(self.force_work()),
            );
            q.submit(
                format!("integrate[{s}]"),
                self.bodies,
                256,
                Rc::new(self.integrate_work()),
            );
        }
        q.finish()
    }
}

/// Real all-pairs N-body integrator for verification.
#[allow(clippy::needless_range_loop)] // index math mirrors the C kernels
pub mod reference {
    /// Plain array-of-structs body state.
    #[derive(Debug, Clone, Copy, PartialEq)]
    pub struct Body {
        pub pos: [f64; 3],
        pub vel: [f64; 3],
        pub mass: f64,
    }

    const SOFTENING: f64 = 1e-3;
    const G: f64 = 1.0;

    /// Deterministic initial condition: bodies on a perturbed lattice
    /// with small velocities.
    pub fn init(n: usize, seed: u64) -> Vec<Body> {
        let mut rng = noiselab_sim::Rng::new(seed);
        (0..n)
            .map(|_| Body {
                pos: [
                    rng.range_f64(-1.0, 1.0),
                    rng.range_f64(-1.0, 1.0),
                    rng.range_f64(-1.0, 1.0),
                ],
                vel: [
                    rng.range_f64(-0.01, 0.01),
                    rng.range_f64(-0.01, 0.01),
                    rng.range_f64(-0.01, 0.01),
                ],
                mass: 1.0 / n as f64,
            })
            .collect()
    }

    /// All-pairs accelerations.
    pub fn accelerations(bodies: &[Body]) -> Vec<[f64; 3]> {
        let n = bodies.len();
        let mut acc = vec![[0.0; 3]; n];
        for i in 0..n {
            for j in 0..n {
                if i == j {
                    continue;
                }
                let dx = bodies[j].pos[0] - bodies[i].pos[0];
                let dy = bodies[j].pos[1] - bodies[i].pos[1];
                let dz = bodies[j].pos[2] - bodies[i].pos[2];
                let r2 = dx * dx + dy * dy + dz * dz + SOFTENING;
                let inv_r3 = 1.0 / (r2 * r2.sqrt());
                let s = G * bodies[j].mass * inv_r3;
                acc[i][0] += s * dx;
                acc[i][1] += s * dy;
                acc[i][2] += s * dz;
            }
        }
        acc
    }

    /// One leapfrog (kick-drift-kick) step.
    pub fn step(bodies: &mut [Body], dt: f64) {
        let acc = accelerations(bodies);
        for (b, a) in bodies.iter_mut().zip(&acc) {
            for k in 0..3 {
                b.vel[k] += 0.5 * dt * a[k];
                b.pos[k] += dt * b.vel[k];
            }
        }
        let acc2 = accelerations(bodies);
        for (b, a) in bodies.iter_mut().zip(&acc2) {
            for k in 0..3 {
                b.vel[k] += 0.5 * dt * a[k];
            }
        }
    }

    /// Total energy (kinetic + softened potential).
    pub fn total_energy(bodies: &[Body]) -> f64 {
        let n = bodies.len();
        let mut e = 0.0;
        for i in 0..n {
            let v2: f64 = bodies[i].vel.iter().map(|v| v * v).sum();
            e += 0.5 * bodies[i].mass * v2;
            for j in (i + 1)..n {
                let dx = bodies[j].pos[0] - bodies[i].pos[0];
                let dy = bodies[j].pos[1] - bodies[i].pos[1];
                let dz = bodies[j].pos[2] - bodies[i].pos[2];
                let r = (dx * dx + dy * dy + dz * dz + SOFTENING).sqrt();
                e -= G * bodies[i].mass * bodies[j].mass / r;
            }
        }
        e
    }

    /// Total momentum.
    pub fn momentum(bodies: &[Body]) -> [f64; 3] {
        let mut p = [0.0; 3];
        for b in bodies {
            for k in 0..3 {
                p[k] += b.mass * b.vel[k];
            }
        }
        p
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use noiselab_runtime::ChunkPolicy;

    #[test]
    fn omp_program_has_two_phases_per_step() {
        let nb = NBody::small();
        let p = nb.omp_program(8, None);
        assert_eq!(p.phases.len(), nb.steps * 2);
        assert_eq!(p.phases[0].policy, ChunkPolicy::Static { chunk: None });
    }

    #[test]
    fn sycl_program_uses_dynamic_workgroups() {
        let nb = NBody::small();
        let p = nb.sycl_program(8);
        assert_eq!(p.phases.len(), nb.steps * 2);
        assert!(matches!(p.phases[0].policy, ChunkPolicy::Dynamic { .. }));
    }

    #[test]
    fn force_dominates_cost_model() {
        let nb = NBody::default();
        let force = (nb.omp_program(8, None).phases[0].work)(0, nb.bodies);
        let integrate = (nb.omp_program(8, None).phases[1].work)(0, nb.bodies);
        assert!(force.flops > 100.0 * integrate.flops);
        assert!(
            force.intensity() > 100.0,
            "force phase must be compute-bound"
        );
    }

    #[test]
    fn sycl_cost_exceeds_omp_cost() {
        let nb = NBody::default();
        let omp = (nb.omp_program(8, None).phases[0].work)(0, nb.bodies);
        let sycl = (nb.sycl_program(8).phases[0].work)(0, nb.bodies);
        assert!(sycl.flops > omp.flops * 1.2);
    }

    // --- reference physics ------------------------------------------------

    #[test]
    fn reference_conserves_energy() {
        let mut bodies = reference::init(128, 7);
        let e0 = reference::total_energy(&bodies);
        for _ in 0..20 {
            reference::step(&mut bodies, 1e-3);
        }
        let e1 = reference::total_energy(&bodies);
        let drift = ((e1 - e0) / e0).abs();
        assert!(drift < 1e-4, "energy drift {drift}");
    }

    #[test]
    fn reference_conserves_momentum() {
        let mut bodies = reference::init(64, 3);
        let p0 = reference::momentum(&bodies);
        for _ in 0..10 {
            reference::step(&mut bodies, 1e-3);
        }
        let p1 = reference::momentum(&bodies);
        for k in 0..3 {
            assert!((p1[k] - p0[k]).abs() < 1e-12, "momentum drift axis {k}");
        }
    }

    #[test]
    fn reference_accelerations_antisymmetric_for_pair() {
        let bodies = reference::init(2, 1);
        let acc = reference::accelerations(&bodies);
        // Equal masses: a_i = -a_j.
        for (a0, a1) in acc[0].iter().zip(&acc[1]) {
            assert!((a0 + a1).abs() < 1e-12);
        }
    }
}
