//! FWQ — the fixed-work-quantum OS-jitter microbenchmark (referenced by
//! the paper's related work as the traditional way to *measure* noise).
//!
//! One thread per CPU repeatedly executes a fixed quantum of work and
//! records each quantum's wall time; anything above the minimum is
//! interference. Unlike the paper's workloads, FWQ is not lowered
//! through a runtime model — it is a raw per-CPU probe, implemented
//! directly as kernel behaviors — and it provides an *independent*
//! measurement path for validating the noise model: the noise FWQ
//! detects should account for what the osnoise tracer records.

use noiselab_kernel::{Action, Behavior, Ctx, Kernel, Policy, ThreadId, ThreadKind, ThreadSpec};
use noiselab_machine::{CpuSet, WorkUnit};
use noiselab_sim::{SimDuration, SimTime};
use std::cell::RefCell;
use std::rc::Rc;

/// Per-CPU sample log: wall time of each quantum.
pub type QuantumLog = Rc<RefCell<Vec<Vec<SimDuration>>>>;

/// FWQ parameters.
#[derive(Debug, Clone, PartialEq)]
pub struct Fwq {
    /// Work per quantum, in flops (quantum wall time = flops /
    /// flops_per_ns when undisturbed).
    pub quantum_flops: f64,
    /// Quanta per thread.
    pub samples: usize,
}

impl Default for Fwq {
    fn default() -> Self {
        // ~100 us quanta on the Intel preset, 2000 samples ~ 0.2 s.
        Fwq {
            quantum_flops: 3_000_000.0,
            samples: 2_000,
        }
    }
}

struct FwqThread {
    log: QuantumLog,
    slot: usize,
    samples_left: usize,
    quantum: WorkUnit,
    started_at: Option<SimTime>,
}

impl Behavior for FwqThread {
    fn next(&mut self, ctx: &mut Ctx<'_>) -> Action {
        if let Some(start) = self.started_at.take() {
            self.log.borrow_mut()[self.slot].push(ctx.now.since(start));
        }
        if self.samples_left == 0 {
            return Action::Exit;
        }
        self.samples_left -= 1;
        self.started_at = Some(ctx.now);
        Action::Compute(self.quantum)
    }

    fn label(&self) -> &str {
        "fwq"
    }
}

/// Handle to a running FWQ measurement.
pub struct FwqRun {
    pub threads: Vec<ThreadId>,
    pub log: QuantumLog,
}

impl Fwq {
    /// Spawn one pinned FWQ thread per CPU in `cpus`.
    pub fn spawn(&self, kernel: &mut Kernel, cpus: CpuSet) -> FwqRun {
        let log: QuantumLog = Rc::new(RefCell::new(vec![Vec::new(); cpus.len()]));
        let mut threads = Vec::new();
        for (slot, cpu) in cpus.iter().enumerate() {
            let b = FwqThread {
                log: log.clone(),
                slot,
                samples_left: self.samples,
                quantum: WorkUnit::compute(self.quantum_flops),
                started_at: None,
            };
            let spec = ThreadSpec::new(format!("fwq/{}", cpu.0), ThreadKind::Workload)
                .policy(Policy::NORMAL)
                .affinity(CpuSet::single(cpu));
            threads.push(kernel.spawn(spec, Box::new(b)));
        }
        FwqRun { log, threads }
    }
}

/// Analysis of an FWQ sample log.
#[derive(Debug, Clone, PartialEq)]
pub struct FwqReport {
    /// Undisturbed quantum estimate (global minimum).
    pub min_quantum: SimDuration,
    /// Total detected noise: sum over samples of (sample - min).
    pub total_noise: SimDuration,
    /// Largest single detention.
    pub max_detention: SimDuration,
    /// Samples disturbed by more than 1 % of the quantum.
    pub disturbed_samples: usize,
    pub total_samples: usize,
}

/// Reduce the per-CPU logs to a noise report.
pub fn analyze(log: &QuantumLog) -> FwqReport {
    let log = log.borrow();
    let all: Vec<SimDuration> = log.iter().flatten().copied().collect();
    assert!(!all.is_empty(), "no FWQ samples collected");
    let min = all.iter().copied().min().unwrap();
    let mut total = SimDuration::ZERO;
    let mut max_det = SimDuration::ZERO;
    let mut disturbed = 0;
    let threshold = SimDuration(min.nanos() + min.nanos() / 100);
    for &s in &all {
        let det = s.saturating_sub(min);
        total += det;
        max_det = max_det.max(det);
        if s > threshold {
            disturbed += 1;
        }
    }
    FwqReport {
        min_quantum: min,
        total_noise: total,
        max_detention: max_det,
        disturbed_samples: disturbed,
        total_samples: all.len(),
    }
}

/// Convenience: run FWQ on every CPU of `kernel`'s machine and analyze.
pub fn measure(kernel: &mut Kernel, fwq: &Fwq) -> FwqReport {
    let cpus = kernel.machine.user_cpus();
    let run = fwq.spawn(kernel, cpus);
    for t in &run.threads {
        kernel
            .run_until_exit(*t, SimTime::from_secs_f64(600.0))
            .expect("fwq run exceeded horizon");
    }
    analyze(&run.log)
}

#[cfg(test)]
mod tests {
    use super::*;
    use noiselab_kernel::KernelConfig;
    use noiselab_machine::{CpuId, Machine};

    fn quiet_kernel(seed: u64) -> Kernel {
        let cfg = KernelConfig {
            timer_irq_mean: SimDuration::from_nanos(200),
            timer_irq_sd: SimDuration::ZERO,
            softirq_prob: 0.0,
            ..KernelConfig::default()
        };
        Kernel::new(Machine::intel_9700kf(), cfg, seed)
    }

    #[test]
    fn quiet_system_shows_little_noise() {
        let mut k = quiet_kernel(1);
        let fwq = Fwq {
            quantum_flops: 3_000_000.0,
            samples: 200,
        };
        let report = measure(&mut k, &fwq);
        assert_eq!(report.total_samples, 200 * 8);
        // ~100 us quanta.
        assert!((90_000..120_000).contains(&report.min_quantum.nanos()));
        // Only tick IRQs disturb; total noise well under 1 % of runtime.
        let runtime = report.min_quantum.nanos() * report.total_samples as u64;
        assert!(
            report.total_noise.nanos() < runtime / 100,
            "too much noise on a quiet system: {}",
            report.total_noise
        );
    }

    #[test]
    fn fwq_detects_injected_noise() {
        use noiselab_kernel::ScriptBehavior;
        let mut k = quiet_kernel(2);
        // A FIFO hog pinned to cpu3 for 5 ms, 10 ms in.
        k.spawn(
            ThreadSpec::new("hog", ThreadKind::Noise)
                .policy(Policy::Fifo { prio: 50 })
                .affinity(CpuSet::single(CpuId(3)))
                .start_at(SimTime::from_secs_f64(0.010)),
            Box::new(ScriptBehavior::new(vec![Action::Burn(
                SimDuration::from_millis(5),
            )])),
        );
        let fwq = Fwq {
            quantum_flops: 3_000_000.0,
            samples: 300,
        };
        let report = measure(&mut k, &fwq);
        // The 5 ms detention must be visible.
        assert!(
            report.max_detention.nanos() > 4_500_000,
            "missed the hog: max detention {}",
            report.max_detention
        );
        assert!(report.disturbed_samples >= 1);
    }

    /// Cross-validation: the noise FWQ detects on a noisy system should
    /// be comparable to what the osnoise tracer records (FWQ sees only
    /// noise that lands on its busy CPUs, so tracer >= FWQ-ish; both
    /// must be nonzero and within an order of magnitude).
    #[test]
    fn fwq_cross_validates_tracer() {
        use noiselab_noise::{install, NoiseProfile, OsNoiseTracer};
        use noiselab_sim::Rng;

        let mut k = Kernel::new(Machine::intel_9700kf(), KernelConfig::default(), 5);
        let mut rng = Rng::new(55);
        let mut profile = NoiseProfile::desktop();
        profile.anomaly_prob = 1.0;
        install(&mut k, &profile, &mut rng);
        let (tracer, buffer) = OsNoiseTracer::new();
        k.attach_tracer(Box::new(tracer));

        let fwq = Fwq {
            quantum_flops: 3_000_000.0,
            samples: 1_000,
        };
        let report = measure(&mut k, &fwq);
        let trace = buffer.take_trace(0, SimDuration::ZERO);
        let traced_total: u64 = trace.events.iter().map(|e| e.duration.nanos()).sum();

        assert!(report.total_noise.nanos() > 0);
        assert!(traced_total > 0);
        let ratio = traced_total as f64 / report.total_noise.nanos() as f64;
        assert!(
            (0.2..20.0).contains(&ratio),
            "tracer and FWQ disagree wildly: traced {traced_total} vs fwq {}",
            report.total_noise.nanos()
        );
    }
}
