//! schedbench: the schedule-sensitivity microbenchmark of motivation
//! Fig. 1.
//!
//! A parallel loop whose per-iteration cost is deliberately irregular,
//! executed under every combination of OpenMP schedule (static, dynamic,
//! guided) and chunk size. On a system without reserved OS cores its
//! run-to-run execution time fluctuates strongly; with firmware-reserved
//! cores it is stable — the paper's motivating observation.

use crate::Workload;
use noiselab_machine::WorkUnit;
use noiselab_runtime::omp::{OmpProgram, OmpSchedule};
use noiselab_runtime::sycl::SyclQueue;
use noiselab_runtime::Program;
use std::rc::Rc;

/// Deterministic irregular cost pattern: a cheap integer hash of the
/// item index picks one of several work levels, giving a rough 1:8
/// imbalance like schedbench's triangular/random loops.
fn cost_of(i: usize, base_flops: f64) -> f64 {
    let h = (i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 61; // 0..7
    base_flops * (1.0 + h as f64)
}

/// Parameters for the schedbench loop.
#[derive(Debug, Clone, PartialEq)]
pub struct SchedBench {
    /// Loop iterations per region.
    pub items: usize,
    /// Region repetitions per run.
    pub repeats: usize,
    /// Base cost per item in flops.
    pub base_flops: f64,
    /// Schedule under test.
    pub schedule: OmpSchedule,
}

impl Default for SchedBench {
    fn default() -> Self {
        SchedBench {
            items: 8_192,
            repeats: 50,
            base_flops: 40_000.0,
            schedule: OmpSchedule::Static { chunk: None },
        }
    }
}

impl SchedBench {
    pub fn with_schedule(schedule: OmpSchedule) -> Self {
        SchedBench {
            schedule,
            ..Default::default()
        }
    }

    /// The x-axis labels of Fig. 1: `st`, `dy`, `gd` with chunk sizes.
    pub fn figure1_configs() -> Vec<(String, OmpSchedule)> {
        let mut v = Vec::new();
        for &chunk in &[1usize, 8, 64] {
            v.push((
                format!("st:{chunk}"),
                OmpSchedule::Static { chunk: Some(chunk) },
            ));
        }
        for &chunk in &[1usize, 8, 64] {
            v.push((format!("dy:{chunk}"), OmpSchedule::Dynamic { chunk }));
        }
        for &chunk in &[1usize, 8, 64] {
            v.push((
                format!("gd:{chunk}"),
                OmpSchedule::Guided { min_chunk: chunk },
            ));
        }
        v
    }

    fn work(&self) -> impl Fn(usize, usize) -> WorkUnit + 'static {
        let base = self.base_flops;
        move |start, len| {
            let mut f = 0.0;
            // Aggregate cost over the range; exact per-item irregularity.
            for i in start..start + len {
                f += cost_of(i, base);
            }
            WorkUnit::new(f, len as f64 * 16.0)
        }
    }
}

impl Workload for SchedBench {
    fn name(&self) -> &'static str {
        "schedbench"
    }

    fn omp_program(&self, _nthreads: usize, schedule: Option<OmpSchedule>) -> Program {
        let schedule = schedule.or(Some(self.schedule));
        let mut b = OmpProgram::new();
        for r in 0..self.repeats {
            b.parallel_for(
                format!("loop[{r}]"),
                self.items,
                schedule,
                Rc::new(self.work()),
            );
        }
        b.build()
    }

    fn sycl_program(&self, nthreads: usize) -> Program {
        let mut q = SyclQueue::new(nthreads, 1.2);
        for r in 0..self.repeats {
            q.submit(format!("loop[{r}]"), self.items, 64, Rc::new(self.work()));
        }
        q.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cost_pattern_is_irregular_and_deterministic() {
        let costs: Vec<f64> = (0..64).map(|i| cost_of(i, 1.0)).collect();
        let min = costs.iter().cloned().fold(f64::MAX, f64::min);
        let max = costs.iter().cloned().fold(f64::MIN, f64::max);
        assert_eq!(min, 1.0);
        assert_eq!(max, 8.0);
        let again: Vec<f64> = (0..64).map(|i| cost_of(i, 1.0)).collect();
        assert_eq!(costs, again);
    }

    #[test]
    fn work_aggregates_range() {
        let sb = SchedBench::default();
        let w_all = (sb.work())(0, 100);
        let w_a = (sb.work())(0, 50);
        let w_b = (sb.work())(50, 50);
        assert!((w_all.flops - (w_a.flops + w_b.flops)).abs() < 1e-6);
    }

    #[test]
    fn figure1_has_nine_configs() {
        let cfgs = SchedBench::figure1_configs();
        assert_eq!(cfgs.len(), 9);
        assert_eq!(cfgs[0].0, "st:1");
        assert_eq!(cfgs[8].0, "gd:64");
    }

    #[test]
    fn program_respects_schedule_override() {
        use noiselab_runtime::ChunkPolicy;
        let sb = SchedBench::with_schedule(OmpSchedule::Dynamic { chunk: 4 });
        let p = sb.omp_program(4, None);
        assert_eq!(p.phases.len(), sb.repeats);
        assert_eq!(p.phases[0].policy, ChunkPolicy::Dynamic { chunk: 4 });
    }
}
