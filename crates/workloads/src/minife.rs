//! MiniFE: the mixed compute/memory mini-application.
//!
//! MiniFE assembles a 27-point finite-element stiffness matrix on a 3-D
//! brick mesh and solves it with unpreconditioned conjugate gradients.
//! Per CG iteration: one SpMV (bandwidth-heavy, irregular), two dot
//! products (reductions — barrier-sensitive) and three AXPYs
//! (streaming). The dot-product barriers every few hundred
//! microseconds are why MiniFE shows the largest noise amplification of
//! the three workloads in the paper (Table 5, up to +118 %).
//!
//! [`reference`] is a real sparse CG solver on the same operator, used
//! to verify convergence behaviour.

use crate::Workload;
use noiselab_machine::WorkUnit;
use noiselab_runtime::omp::{OmpProgram, OmpSchedule};
use noiselab_runtime::sycl::SyclQueue;
use noiselab_runtime::Program;
use std::rc::Rc;

/// Cost constants per matrix row / vector element.
const NNZ_PER_ROW: f64 = 27.0;
/// SpMV: value (8 B) + column index (4 B) per nonzero, plus x gather
/// (cache-mixed, ~60 % effective) and y write.
const SPMV_BYTES_PER_ROW: f64 = NNZ_PER_ROW * (8.0 + 4.0) + 0.6 * NNZ_PER_ROW * 8.0 + 8.0;
const SPMV_FLOPS_PER_ROW: f64 = 2.0 * NNZ_PER_ROW;
const DOT_BYTES: f64 = 16.0;
const DOT_FLOPS: f64 = 2.0;
const AXPY_BYTES: f64 = 24.0;
const AXPY_FLOPS: f64 = 2.0;
/// Assembly: element stiffness computation, compute-heavy.
const ASSEMBLY_FLOPS_PER_ROW: f64 = 220.0;
const ASSEMBLY_BYTES_PER_ROW: f64 = 60.0;

/// Problem parameters. Defaults calibrated so the Intel OpenMP baseline
/// lands near the paper's ~1.06 s (Table 1).
#[derive(Debug, Clone, PartialEq)]
pub struct MiniFE {
    /// Grid dimension (rows = nx^3).
    pub nx: usize,
    /// CG iterations (MiniFE's default max is 200).
    pub cg_iterations: usize,
    pub sycl_kernel_efficiency: f64,
    pub sycl_bandwidth_efficiency: f64,
}

impl Default for MiniFE {
    fn default() -> Self {
        MiniFE {
            nx: 72,
            cg_iterations: 200,
            sycl_kernel_efficiency: 1.35,
            sycl_bandwidth_efficiency: 0.55,
        }
    }
}

impl MiniFE {
    pub fn small() -> Self {
        MiniFE {
            nx: 24,
            cg_iterations: 20,
            ..Default::default()
        }
    }

    pub fn rows(&self) -> usize {
        self.nx * self.nx * self.nx
    }

    fn spmv(_s: usize, len: usize) -> WorkUnit {
        WorkUnit::new(
            len as f64 * SPMV_FLOPS_PER_ROW,
            len as f64 * SPMV_BYTES_PER_ROW,
        )
    }

    fn dot(_s: usize, len: usize) -> WorkUnit {
        WorkUnit::new(len as f64 * DOT_FLOPS, len as f64 * DOT_BYTES)
    }

    fn axpy(_s: usize, len: usize) -> WorkUnit {
        WorkUnit::new(len as f64 * AXPY_FLOPS, len as f64 * AXPY_BYTES)
    }

    fn assembly(_s: usize, len: usize) -> WorkUnit {
        WorkUnit::new(
            len as f64 * ASSEMBLY_FLOPS_PER_ROW,
            len as f64 * ASSEMBLY_BYTES_PER_ROW,
        )
    }
}

impl Workload for MiniFE {
    fn name(&self) -> &'static str {
        "minife"
    }

    fn omp_program(&self, _nthreads: usize, schedule: Option<OmpSchedule>) -> Program {
        let rows = self.rows();
        let mut b = OmpProgram::new();
        b.parallel_for("assembly", rows, schedule, Rc::new(Self::assembly));
        for it in 0..self.cg_iterations {
            b.parallel_for(format!("spmv[{it}]"), rows, schedule, Rc::new(Self::spmv));
            b.parallel_for(format!("dot-pAp[{it}]"), rows, schedule, Rc::new(Self::dot));
            b.parallel_for(format!("axpy-x[{it}]"), rows, schedule, Rc::new(Self::axpy));
            b.parallel_for(format!("axpy-r[{it}]"), rows, schedule, Rc::new(Self::axpy));
            b.parallel_for(format!("dot-rr[{it}]"), rows, schedule, Rc::new(Self::dot));
            b.parallel_for(format!("axpy-p[{it}]"), rows, schedule, Rc::new(Self::axpy));
        }
        b.build()
    }

    fn sycl_program(&self, nthreads: usize) -> Program {
        let rows = self.rows();
        let mut q = SyclQueue::new(nthreads, self.sycl_kernel_efficiency)
            .with_bandwidth_efficiency(self.sycl_bandwidth_efficiency);
        q.submit("assembly", rows, 256, Rc::new(Self::assembly));
        for it in 0..self.cg_iterations {
            q.submit(format!("spmv[{it}]"), rows, 256, Rc::new(Self::spmv));
            q.submit(format!("dot-pAp[{it}]"), rows, 256, Rc::new(Self::dot));
            q.submit(format!("axpy-x[{it}]"), rows, 256, Rc::new(Self::axpy));
            q.submit(format!("axpy-r[{it}]"), rows, 256, Rc::new(Self::axpy));
            q.submit(format!("dot-rr[{it}]"), rows, 256, Rc::new(Self::dot));
            q.submit(format!("axpy-p[{it}]"), rows, 256, Rc::new(Self::axpy));
        }
        q.finish()
    }
}

/// A real CG solver on the 27-point operator, for verification.
#[allow(clippy::needless_range_loop)] // index math mirrors the C kernels
pub mod reference {
    /// Compressed sparse row matrix.
    pub struct Csr {
        pub n: usize,
        pub row_ptr: Vec<usize>,
        pub cols: Vec<u32>,
        pub vals: Vec<f64>,
    }

    impl Csr {
        /// 27-point stencil on an nx^3 grid: diagonal 26, neighbours -1
        /// (a strictly diagonally dominant M-matrix, so CG converges).
        pub fn stencil27(nx: usize) -> Csr {
            let n = nx * nx * nx;
            let idx = |x: usize, y: usize, z: usize| (z * nx + y) * nx + x;
            let mut row_ptr = Vec::with_capacity(n + 1);
            let mut cols = Vec::new();
            let mut vals = Vec::new();
            row_ptr.push(0);
            for z in 0..nx {
                for y in 0..nx {
                    for x in 0..nx {
                        let mut neighbours = 0;
                        for dz in -1i64..=1 {
                            for dy in -1i64..=1 {
                                for dx in -1i64..=1 {
                                    if dx == 0 && dy == 0 && dz == 0 {
                                        continue;
                                    }
                                    let (xx, yy, zz) =
                                        (x as i64 + dx, y as i64 + dy, z as i64 + dz);
                                    if xx < 0
                                        || yy < 0
                                        || zz < 0
                                        || xx >= nx as i64
                                        || yy >= nx as i64
                                        || zz >= nx as i64
                                    {
                                        continue;
                                    }
                                    cols.push(idx(xx as usize, yy as usize, zz as usize) as u32);
                                    vals.push(-1.0);
                                    neighbours += 1;
                                }
                            }
                        }
                        cols.push(idx(x, y, z) as u32);
                        vals.push(neighbours as f64 + 1.0); // strictly dominant
                        row_ptr.push(cols.len());
                    }
                }
            }
            // Sort each row by column for a canonical layout.
            let mut m = Csr {
                n,
                row_ptr,
                cols,
                vals,
            };
            m.sort_rows();
            m
        }

        fn sort_rows(&mut self) {
            for r in 0..self.n {
                let (s, e) = (self.row_ptr[r], self.row_ptr[r + 1]);
                let mut pairs: Vec<(u32, f64)> = self.cols[s..e]
                    .iter()
                    .copied()
                    .zip(self.vals[s..e].iter().copied())
                    .collect();
                pairs.sort_by_key(|&(c, _)| c);
                for (k, (c, v)) in pairs.into_iter().enumerate() {
                    self.cols[s + k] = c;
                    self.vals[s + k] = v;
                }
            }
        }

        pub fn spmv(&self, x: &[f64], y: &mut [f64]) {
            for r in 0..self.n {
                let mut acc = 0.0;
                for k in self.row_ptr[r]..self.row_ptr[r + 1] {
                    acc += self.vals[k] * x[self.cols[k] as usize];
                }
                y[r] = acc;
            }
        }

        /// Is the matrix symmetric? (CG requirement.)
        pub fn is_symmetric(&self) -> bool {
            for r in 0..self.n {
                for k in self.row_ptr[r]..self.row_ptr[r + 1] {
                    let c = self.cols[k] as usize;
                    let v = self.vals[k];
                    // Find (c, r).
                    let (s, e) = (self.row_ptr[c], self.row_ptr[c + 1]);
                    let found = self.cols[s..e]
                        .binary_search(&(r as u32))
                        .map(|i| self.vals[s + i])
                        .unwrap_or(f64::NAN);
                    if (found - v).abs() > 1e-12 {
                        return false;
                    }
                }
            }
            true
        }
    }

    fn dot(a: &[f64], b: &[f64]) -> f64 {
        a.iter().zip(b).map(|(x, y)| x * y).sum()
    }

    /// Unpreconditioned CG; returns (iterations used, final residual
    /// norm relative to the initial one).
    pub fn cg(a: &Csr, b: &[f64], x: &mut [f64], max_iter: usize, tol: f64) -> (usize, f64) {
        let n = a.n;
        let mut r = vec![0.0; n];
        let mut p = vec![0.0; n];
        let mut ap = vec![0.0; n];
        a.spmv(x, &mut r);
        for i in 0..n {
            r[i] = b[i] - r[i];
            p[i] = r[i];
        }
        let rr0 = dot(&r, &r);
        let mut rr = rr0;
        if rr0 == 0.0 {
            return (0, 0.0);
        }
        for it in 0..max_iter {
            a.spmv(&p, &mut ap);
            let alpha = rr / dot(&p, &ap);
            for i in 0..n {
                x[i] += alpha * p[i];
                r[i] -= alpha * ap[i];
            }
            let rr_new = dot(&r, &r);
            if (rr_new / rr0).sqrt() < tol {
                return (it + 1, (rr_new / rr0).sqrt());
            }
            let beta = rr_new / rr;
            for i in 0..n {
                p[i] = r[i] + beta * p[i];
            }
            rr = rr_new;
        }
        (max_iter, (rr / rr0).sqrt())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn program_phase_count() {
        let m = MiniFE::small();
        let p = m.omp_program(8, None);
        assert_eq!(p.phases.len(), 1 + m.cg_iterations * 6);
    }

    #[test]
    fn spmv_is_memory_bound_dot_is_too() {
        let w = MiniFE::spmv(0, 1000);
        assert!(w.intensity() < 0.2);
        let d = MiniFE::dot(0, 1000);
        assert!(d.intensity() < 0.2);
    }

    #[test]
    fn assembly_is_compute_heavy() {
        let w = MiniFE::assembly(0, 1000);
        assert!(w.intensity() > 1.0);
    }

    #[test]
    fn rows_is_cubic() {
        assert_eq!(
            MiniFE {
                nx: 10,
                ..MiniFE::default()
            }
            .rows(),
            1000
        );
    }

    // --- reference solver --------------------------------------------------

    #[test]
    fn stencil_is_symmetric_dominant() {
        let m = reference::Csr::stencil27(6);
        assert_eq!(m.n, 216);
        assert!(m.is_symmetric());
        // Interior row has 27 entries.
        let interior = (3 * 6 + 3) * 6 + 3;
        assert_eq!(m.row_ptr[interior + 1] - m.row_ptr[interior], 27);
    }

    #[test]
    fn cg_converges_on_poisson_like_system() {
        let m = reference::Csr::stencil27(8);
        let b = vec![1.0; m.n];
        let mut x = vec![0.0; m.n];
        let (iters, res) = reference::cg(&m, &b, &mut x, 500, 1e-10);
        assert!(res < 1e-10, "residual {res}");
        assert!(iters < 200, "iters {iters}");
        // Verify the solution actually satisfies Ax = b.
        let mut ax = vec![0.0; m.n];
        m.spmv(&x, &mut ax);
        let err = ax
            .iter()
            .zip(&b)
            .map(|(p, q)| (p - q).abs())
            .fold(0.0f64, f64::max);
        assert!(err < 1e-7, "max |Ax-b| = {err}");
    }

    #[test]
    fn cg_zero_rhs_returns_immediately() {
        let m = reference::Csr::stencil27(4);
        let b = vec![0.0; m.n];
        let mut x = vec![0.0; m.n];
        let (iters, res) = reference::cg(&m, &b, &mut x, 100, 1e-10);
        assert_eq!(iters, 0);
        assert_eq!(res, 0.0);
    }
}
