//! Babelstream: the memory-bandwidth-bound workload.
//!
//! Five kernels per iteration — copy, mul, add, triad, dot — streaming
//! large double-precision arrays. Because the socket's bandwidth
//! saturates well below the core count, Babelstream loses almost nothing
//! to housekeeping cores (paper recommendation #2) and its `dot` kernel
//! (a reduction with a barrier) is the variability probe of Fig. 2.
//!
//! [`reference`] implements the real kernels with BabelStream's own
//! solution check.

use crate::Workload;
use noiselab_machine::WorkUnit;
use noiselab_runtime::omp::{OmpProgram, OmpSchedule};
use noiselab_runtime::sycl::SyclQueue;
use noiselab_runtime::Program;
use std::rc::Rc;

const F64_BYTES: f64 = 8.0;

/// The five STREAM-style kernels.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Kernel {
    /// `c[i] = a[i]` — 16 B/elem, 0 flops.
    Copy,
    /// `b[i] = scalar * c[i]` — 16 B/elem, 1 flop.
    Mul,
    /// `c[i] = a[i] + b[i]` — 24 B/elem, 1 flop.
    Add,
    /// `a[i] = b[i] + scalar * c[i]` — 24 B/elem, 2 flops.
    Triad,
    /// `sum += a[i] * b[i]` — 16 B/elem, 2 flops, plus a reduction.
    Dot,
}

impl Kernel {
    pub const ALL: [Kernel; 5] = [
        Kernel::Copy,
        Kernel::Mul,
        Kernel::Add,
        Kernel::Triad,
        Kernel::Dot,
    ];

    pub fn name(self) -> &'static str {
        match self {
            Kernel::Copy => "copy",
            Kernel::Mul => "mul",
            Kernel::Add => "add",
            Kernel::Triad => "triad",
            Kernel::Dot => "dot",
        }
    }

    /// (bytes, flops) per element.
    pub fn per_element(self) -> (f64, f64) {
        match self {
            Kernel::Copy => (2.0 * F64_BYTES, 0.0),
            Kernel::Mul => (2.0 * F64_BYTES, 1.0),
            Kernel::Add => (3.0 * F64_BYTES, 1.0),
            Kernel::Triad => (3.0 * F64_BYTES, 2.0),
            Kernel::Dot => (2.0 * F64_BYTES, 2.0),
        }
    }
}

/// Problem parameters. Defaults calibrated so the Intel OpenMP baseline
/// lands near the paper's ~1.92 s (Table 1).
#[derive(Debug, Clone, PartialEq)]
pub struct Babelstream {
    /// Elements per array (BabelStream's ARRAY_SIZE).
    pub elements: usize,
    /// Benchmark repetitions (each runs all five kernels).
    pub iterations: usize,
    /// Restrict to a subset of kernels (Fig. 2 uses only `dot`).
    pub kernels: Vec<Kernel>,
    pub sycl_kernel_efficiency: f64,
    /// Fraction of STREAM bandwidth the SYCL backend sustains.
    pub sycl_bandwidth_efficiency: f64,
}

impl Default for Babelstream {
    fn default() -> Self {
        Babelstream {
            elements: 1 << 23,
            iterations: 100,
            kernels: Kernel::ALL.to_vec(),
            sycl_kernel_efficiency: 1.15,
            sycl_bandwidth_efficiency: 0.90,
        }
    }
}

impl Babelstream {
    pub fn small() -> Self {
        Babelstream {
            elements: 1 << 18,
            iterations: 10,
            ..Default::default()
        }
    }

    /// Only the `dot` kernel (motivation Fig. 2).
    pub fn dot_only(elements: usize, iterations: usize) -> Self {
        Babelstream {
            elements,
            iterations,
            kernels: vec![Kernel::Dot],
            ..Default::default()
        }
    }

    fn kernel_work(k: Kernel) -> impl Fn(usize, usize) -> WorkUnit + 'static {
        let (bytes, flops) = k.per_element();
        move |_start, len| WorkUnit::new(len as f64 * flops, len as f64 * bytes)
    }
}

impl Workload for Babelstream {
    fn name(&self) -> &'static str {
        "babelstream"
    }

    fn omp_program(&self, nthreads: usize, schedule: Option<OmpSchedule>) -> Program {
        let mut b = OmpProgram::new();
        for it in 0..self.iterations {
            for &k in &self.kernels {
                b.parallel_for(
                    format!("{}[{it}]", k.name()),
                    self.elements,
                    schedule,
                    Rc::new(Self::kernel_work(k)),
                );
                if k == Kernel::Dot {
                    // Serial-ish reduction of per-thread partials.
                    b.parallel_for(
                        format!("dot-reduce[{it}]"),
                        nthreads,
                        Some(OmpSchedule::Static { chunk: None }),
                        Rc::new(|_, len| WorkUnit::compute(len as f64 * 400.0)),
                    );
                }
            }
        }
        b.build()
    }

    fn sycl_program(&self, nthreads: usize) -> Program {
        let mut q = SyclQueue::new(nthreads, self.sycl_kernel_efficiency)
            .with_bandwidth_efficiency(self.sycl_bandwidth_efficiency);
        for it in 0..self.iterations {
            for &k in &self.kernels {
                q.submit(
                    format!("{}[{it}]", k.name()),
                    self.elements,
                    1024,
                    Rc::new(Self::kernel_work(k)),
                );
                if k == Kernel::Dot {
                    q.submit(
                        format!("dot-reduce[{it}]"),
                        nthreads,
                        1,
                        Rc::new(|_, len| WorkUnit::compute(len as f64 * 400.0)),
                    );
                }
            }
        }
        q.finish()
    }
}

/// Real kernels with BabelStream's solution check.
pub mod reference {
    pub const START_A: f64 = 0.1;
    pub const START_B: f64 = 0.2;
    pub const START_C: f64 = 0.0;
    pub const SCALAR: f64 = 0.4;

    pub struct Arrays {
        pub a: Vec<f64>,
        pub b: Vec<f64>,
        pub c: Vec<f64>,
    }

    impl Arrays {
        pub fn new(n: usize) -> Self {
            Arrays {
                a: vec![START_A; n],
                b: vec![START_B; n],
                c: vec![START_C; n],
            }
        }

        pub fn copy(&mut self) {
            for i in 0..self.a.len() {
                self.c[i] = self.a[i];
            }
        }

        pub fn mul(&mut self) {
            for i in 0..self.a.len() {
                self.b[i] = SCALAR * self.c[i];
            }
        }

        pub fn add(&mut self) {
            for i in 0..self.a.len() {
                self.c[i] = self.a[i] + self.b[i];
            }
        }

        pub fn triad(&mut self) {
            for i in 0..self.a.len() {
                self.a[i] = self.b[i] + SCALAR * self.c[i];
            }
        }

        pub fn dot(&self) -> f64 {
            self.a.iter().zip(&self.b).map(|(x, y)| x * y).sum()
        }

        /// Run `iters` full iterations (copy, mul, add, triad, dot);
        /// returns the last dot value.
        pub fn run(&mut self, iters: usize) -> f64 {
            let mut sum = 0.0;
            for _ in 0..iters {
                self.copy();
                self.mul();
                self.add();
                self.triad();
                sum = self.dot();
            }
            sum
        }

        /// BabelStream's closed-form expected values after `iters`
        /// iterations: returns (gold_a, gold_b, gold_c, gold_dot).
        pub fn expected(n: usize, iters: usize) -> (f64, f64, f64, f64) {
            let (mut ga, mut gb, mut gc) = (START_A, START_B, START_C);
            for _ in 0..iters {
                gc = ga;
                gb = SCALAR * gc;
                gc = ga + gb;
                ga = gb + SCALAR * gc;
            }
            (ga, gb, gc, ga * gb * n as f64)
        }

        /// Max relative error of the arrays vs the closed form.
        pub fn check(&self, iters: usize) -> f64 {
            let n = self.a.len();
            let (ga, gb, gc, _) = Self::expected(n, iters);
            let err =
                |v: &[f64], g: f64| v.iter().map(|x| ((x - g) / g).abs()).fold(0.0f64, f64::max);
            err(&self.a, ga).max(err(&self.b, gb)).max(err(&self.c, gc))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn omp_program_phase_count() {
        let bs = Babelstream::small();
        let p = bs.omp_program(8, None);
        // 5 kernels + 1 dot-reduce per iteration.
        assert_eq!(p.phases.len(), bs.iterations * 6);
    }

    #[test]
    fn dot_only_program() {
        let bs = Babelstream::dot_only(1 << 18, 5);
        let p = bs.omp_program(4, None);
        assert_eq!(p.phases.len(), 10); // dot + reduce per iteration
        assert!(p.phases[0].name.starts_with("dot"));
    }

    #[test]
    fn kernels_are_memory_bound() {
        for k in Kernel::ALL {
            let (bytes, flops) = k.per_element();
            assert!(flops / bytes < 0.2, "{} not memory bound", k.name());
        }
    }

    #[test]
    fn sycl_traffic_exceeds_omp_traffic() {
        let bs = Babelstream::small();
        let omp = (bs.omp_program(8, None).phases[0].work)(0, 1000);
        let sycl = (bs.sycl_program(8).phases[0].work)(0, 1000);
        assert!(sycl.bytes > omp.bytes * 1.05);
    }

    // --- reference kernels -------------------------------------------------

    #[test]
    fn reference_matches_closed_form() {
        let mut arr = reference::Arrays::new(1024);
        arr.run(10);
        let err = arr.check(10);
        assert!(err < 1e-12, "max rel error {err}");
    }

    #[test]
    fn reference_dot_matches_expected() {
        let n = 512;
        let mut arr = reference::Arrays::new(n);
        let dot = arr.run(7);
        let (_, _, _, gold_dot) = reference::Arrays::expected(n, 7);
        assert!(((dot - gold_dot) / gold_dot).abs() < 1e-12);
    }

    #[test]
    fn reference_single_iteration_values() {
        let mut arr = reference::Arrays::new(4);
        arr.run(1);
        // c = a + b = 0.1 + 0.04; b = 0.4*0.1; a = b + 0.4*c
        assert!((arr.b[0] - 0.04).abs() < 1e-15);
        assert!((arr.c[0] - 0.14).abs() < 1e-15);
        assert!((arr.a[0] - (0.04 + 0.4 * 0.14)).abs() < 1e-15);
    }
}
