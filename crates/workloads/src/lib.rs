//! # noiselab-workloads
//!
//! The paper's benchmarks and mini-application, each in two layers:
//!
//! * a **cost model** that expresses the workload as a [`Program`] of
//!   parallel phases (per-item flops and memory traffic), consumed by
//!   the simulated OpenMP/SYCL runtimes;
//! * a **reference implementation** — real numerics (all-pairs N-body,
//!   STREAM kernels with BabelStream's solution check, sparse CG on a
//!   27-point operator) verifying that the modelled workloads correspond
//!   to correct programs.
//!
//! Workloads: [`NBody`] (compute-bound), [`Babelstream`]
//! (bandwidth-bound), [`MiniFE`] (mixed, reduction-heavy) and
//! [`SchedBench`] (the motivation-figure microbenchmark).

pub mod babelstream;
pub mod fwq;
pub mod minife;
pub mod nbody;
pub mod schedbench;

use noiselab_runtime::omp::OmpSchedule;
use noiselab_runtime::Program;

pub use babelstream::{Babelstream, Kernel};
pub use fwq::{Fwq, FwqReport};
pub use minife::MiniFE;
pub use nbody::NBody;
pub use schedbench::SchedBench;

/// A benchmark that can be lowered to programs for both runtime models.
pub trait Workload {
    fn name(&self) -> &'static str;

    /// Lower to an OpenMP-style program. `schedule = None` uses the
    /// workload's default (static, as in the paper's benchmarks).
    fn omp_program(&self, nthreads: usize, schedule: Option<OmpSchedule>) -> Program;

    /// Lower to a SYCL-style program for a pool of `nthreads` workers.
    fn sycl_program(&self, nthreads: usize) -> Program;
}
