//! Fault-injection semantics: installing a no-op plan changes nothing,
//! faults are deterministic in the fault seed, each fault kind is
//! observable through the ordinary event-engine paths, and an aborted
//! thread leaves its barrier peers deadlocked (the condition the
//! harness maps to a typed run failure).

use noiselab_kernel::{
    Action, CpuStallSpec, FaultPlan, Kernel, KernelConfig, ScriptBehavior, SpuriousIrqSpec,
    ThreadKind, ThreadSpec,
};
use noiselab_machine::{CpuId, CpuSet, WorkUnit};
use noiselab_sim::{Rng, SimDuration, SimTime};
use noiselab_testutil::{costed_machine as machine, horizon, recorder, TraceTuple};

/// Two workers meeting at a barrier, one pinned, plus FIFO noise — the
/// common scenario all fault tests run under.
fn run_scenario(seed: u64, plan: Option<&FaultPlan>) -> (Vec<u64>, Vec<TraceTuple>) {
    let mut k = Kernel::new(machine(4, 1), KernelConfig::default(), seed);
    if let Some(p) = plan {
        k.install_faults(p, Rng::new(p.seed ^ seed));
    }
    let (rec, store) = recorder();
    k.attach_tracer(Box::new(rec));
    let bar = k.new_barrier(2);
    let a = k.spawn(
        ThreadSpec::new("a", ThreadKind::Workload).affinity(CpuSet::single(CpuId(0))),
        Box::new(ScriptBehavior::new(vec![
            Action::Compute(WorkUnit::compute(6_000_000.0)),
            Action::Barrier {
                id: bar,
                spin: SimDuration::from_micros(50),
            },
            Action::Compute(WorkUnit::compute(2_000_000.0)),
        ])),
    );
    let b = k.spawn(
        ThreadSpec::new("b", ThreadKind::Workload),
        Box::new(ScriptBehavior::new(vec![
            Action::SleepFor(SimDuration::from_millis(2)),
            Action::Compute(WorkUnit::compute(3_000_000.0)),
            Action::Barrier {
                id: bar,
                spin: SimDuration::from_micros(50),
            },
            Action::Compute(WorkUnit::compute(1_000_000.0)),
        ])),
    );
    let ends: Vec<u64> = [a, b]
        .iter()
        .map(|&t| k.run_until_exit(t, horizon()).expect("run failed").nanos())
        .collect();
    let events = store.borrow().clone();
    (ends, events)
}

#[test]
fn noop_plan_is_bit_identical_to_no_plan() {
    for seed in [1, 7, 42] {
        let (bare_ends, bare_tr) = run_scenario(seed, None);
        let plan = FaultPlan::default();
        let (noop_ends, noop_tr) = run_scenario(seed, Some(&plan));
        assert_eq!(bare_ends, noop_ends, "exec diverged at seed {seed}");
        assert_eq!(bare_tr, noop_tr, "traces diverged at seed {seed}");
    }
}

#[test]
fn same_plan_and_seed_is_deterministic() {
    let plan = FaultPlan {
        seed: 99,
        lost_tick_prob: 0.2,
        late_tick_prob: 0.2,
        late_tick_max: SimDuration::from_micros(300),
        spurious: Some(SpuriousIrqSpec {
            rate_per_sec: 500.0,
            service_mean: SimDuration::from_micros(30),
            window: SimDuration::from_millis(20),
        }),
        ..FaultPlan::default()
    };
    let (a_ends, a_tr) = run_scenario(5, Some(&plan));
    let (b_ends, b_tr) = run_scenario(5, Some(&plan));
    assert_eq!(a_ends, b_ends);
    assert_eq!(a_tr, b_tr);
}

#[test]
fn lost_ticks_are_counted_and_survivable() {
    let plan = FaultPlan {
        seed: 3,
        lost_tick_prob: 0.5,
        ..FaultPlan::default()
    };
    let mut k = Kernel::new(machine(2, 1), KernelConfig::default(), 11);
    k.install_faults(&plan, Rng::new(plan.seed));
    let t = k.spawn(
        ThreadSpec::new("w", ThreadKind::Workload),
        Box::new(ScriptBehavior::new(vec![Action::Compute(
            WorkUnit::compute(40_000_000.0),
        )])),
    );
    k.run_until_exit(t, horizon()).expect("run failed");
    let stats = k.fault_stats().unwrap();
    assert!(stats.lost_ticks > 0, "no ticks lost at prob 0.5");
    assert_eq!(stats.aborted_threads, 0);
}

#[test]
fn late_ticks_are_counted() {
    let plan = FaultPlan {
        seed: 4,
        late_tick_prob: 1.0,
        late_tick_max: SimDuration::from_micros(500),
        ..FaultPlan::default()
    };
    let mut k = Kernel::new(machine(2, 1), KernelConfig::default(), 12);
    k.install_faults(&plan, Rng::new(plan.seed));
    let t = k.spawn(
        ThreadSpec::new("w", ThreadKind::Workload),
        Box::new(ScriptBehavior::new(vec![Action::Compute(
            WorkUnit::compute(40_000_000.0),
        )])),
    );
    k.run_until_exit(t, horizon()).expect("run failed");
    assert!(k.fault_stats().unwrap().late_ticks > 0);
}

#[test]
fn spurious_irqs_appear_in_trace_and_slow_the_run() {
    let quiet = run_scenario(21, None);
    let plan = FaultPlan {
        seed: 8,
        spurious: Some(SpuriousIrqSpec {
            rate_per_sec: 20_000.0,
            service_mean: SimDuration::from_micros(50),
            window: SimDuration::from_millis(30),
        }),
        ..FaultPlan::default()
    };
    let noisy = run_scenario(21, Some(&plan));
    assert!(
        noisy.1.iter().any(|e| e.2 == "fault:spurious-irq"),
        "spurious IRQs missing from trace"
    );
    let quiet_end: u64 = *quiet.0.iter().max().unwrap();
    let noisy_end: u64 = *noisy.0.iter().max().unwrap();
    assert!(
        noisy_end > quiet_end,
        "spurious IRQ storm did not extend execution ({noisy_end} <= {quiet_end})"
    );
}

#[test]
fn cpu_stall_blocks_progress_for_its_window() {
    // Single CPU: the stall must hit the workload.
    let plan = FaultPlan {
        seed: 2,
        stall: Some(CpuStallSpec {
            start: (SimDuration::from_millis(1), SimDuration::from_millis(2)),
            duration: (SimDuration::from_millis(10), SimDuration::from_millis(11)),
        }),
        ..FaultPlan::default()
    };
    let solo = {
        let mut k = Kernel::new(machine(1, 1), KernelConfig::default(), 30);
        let t = k.spawn(
            ThreadSpec::new("w", ThreadKind::Workload),
            Box::new(ScriptBehavior::new(vec![Action::Compute(
                WorkUnit::compute(5_000_000.0),
            )])),
        );
        k.run_until_exit(t, horizon()).unwrap().nanos()
    };
    let stalled = {
        let mut k = Kernel::new(machine(1, 1), KernelConfig::default(), 30);
        k.install_faults(&plan, Rng::new(plan.seed));
        let t = k.spawn(
            ThreadSpec::new("w", ThreadKind::Workload),
            Box::new(ScriptBehavior::new(vec![Action::Compute(
                WorkUnit::compute(5_000_000.0),
            )])),
        );
        k.run_until_exit(t, horizon()).unwrap().nanos()
    };
    assert_eq!(
        {
            let mut k = Kernel::new(machine(1, 1), KernelConfig::default(), 30);
            k.install_faults(&plan, Rng::new(plan.seed));
            k.fault_stats().unwrap().stall_windows
        },
        1
    );
    assert!(
        stalled >= solo + 9_000_000,
        "stall window not charged: stalled={stalled} solo={solo}"
    );
}

#[test]
fn aborted_thread_exits_and_peers_deadlock() {
    let mut k = Kernel::new(machine(4, 1), KernelConfig::default(), 17);
    let bar = k.new_barrier(2);
    let mk_worker = || {
        ScriptBehavior::new(vec![
            Action::Compute(WorkUnit::compute(6_000_000.0)),
            Action::Barrier {
                id: bar,
                spin: SimDuration::from_micros(50),
            },
            Action::Compute(WorkUnit::compute(2_000_000.0)),
        ])
    };
    let victim = k.spawn(
        ThreadSpec::new("victim", ThreadKind::Workload),
        Box::new(mk_worker()),
    );
    let peer = k.spawn(
        ThreadSpec::new("peer", ThreadKind::Workload),
        Box::new(mk_worker()),
    );
    // Abort the victim mid-compute, well before the barrier.
    let abort_at = SimTime(1_000_000);
    k.schedule_abort(victim, abort_at);
    let vt = k.run_until_exit(victim, horizon()).expect("victim exit");
    assert_eq!(vt, abort_at, "victim should exit exactly at the abort");
    assert_eq!(k.aborted_threads(), &[victim]);
    // The peer waits forever at the barrier: under the tickless kernel
    // the queue eventually drains.
    let err = k.run_until_exit(peer, horizon()).unwrap_err();
    assert_eq!(err, noiselab_kernel::RunError::Drained);
}

#[test]
fn abort_is_harmless_after_exit_and_while_blocked() {
    let mut k = Kernel::new(machine(2, 1), KernelConfig::default(), 23);
    let t = k.spawn(
        ThreadSpec::new("w", ThreadKind::Workload),
        Box::new(ScriptBehavior::new(vec![
            Action::SleepFor(SimDuration::from_millis(3)),
            Action::Compute(WorkUnit::compute(1_000_000.0)),
        ])),
    );
    // First abort lands while the thread sleeps; the second is a stale
    // duplicate that must be ignored.
    k.schedule_abort(t, SimTime(1_000_000));
    k.schedule_abort(t, SimTime(2_000_000));
    let end = k.run_until_exit(t, horizon()).expect("exit");
    assert_eq!(end, SimTime(1_000_000));
    assert_eq!(k.aborted_threads(), &[t]);
}

#[test]
fn crashy_plan_abort_rate_is_roughly_requested() {
    // The harness draws the abort dice per run; emulate 400 draws.
    let plan = FaultPlan::crashy(41, 0.05, 50);
    let spec = plan.abort.as_ref().unwrap();
    let hits = (0..400u64)
        .filter(|&run_seed| {
            let mut rng = Rng::new(plan.seed ^ run_seed.wrapping_mul(0x9E37_79B9_7F4A_7C15));
            rng.chance(spec.prob)
        })
        .count();
    assert!(
        (8..=35).contains(&hits),
        "abort rate wildly off: {hits}/400 at p=0.05"
    );
}
