//! Event-stream sanitizer integration: the running hash is a stable
//! fingerprint of a run (same seed → same hash, different seed →
//! different hash), attaching one is observation-free, and the chaos
//! hook verifiably forks the stream.

use noiselab_kernel::{
    Action, Kernel, KernelConfig, SanitizerConfig, SanitizerReport, ScriptBehavior, ThreadKind,
    ThreadSpec,
};
use noiselab_machine::{Machine, WorkUnit};
use noiselab_sim::{SimDuration, SimTime};

/// Barrier-synchronised iteration script: `rounds` rounds of compute +
/// sleep with a barrier each round, so the event stream interleaves
/// wakes, compute completions, spins, ticks and barrier releases.
fn script(bar: noiselab_kernel::BarrierId, rounds: usize, flops: f64) -> Vec<Action> {
    let mut v = Vec::new();
    for _ in 0..rounds {
        v.push(Action::Compute(WorkUnit::compute(flops)));
        v.push(Action::SleepFor(SimDuration::from_micros(150)));
        v.push(Action::Barrier {
            id: bar,
            spin: SimDuration::from_micros(50),
        });
    }
    v
}

/// A two-thread scenario run to completion with the given sanitizer
/// config. Returns the exit time and the sanitizer report.
fn run(seed: u64, config: SanitizerConfig) -> (SimTime, SanitizerReport) {
    let mut k = Kernel::new(Machine::intel_9700kf(), KernelConfig::default(), seed);
    k.attach_sanitizer(config);
    let bar = k.new_barrier(2);
    let _helper = k.spawn(
        ThreadSpec::new("helper", ThreadKind::Workload),
        Box::new(ScriptBehavior::new(script(bar, 20, 2.0e7))),
    );
    let main = k.spawn(
        ThreadSpec::new("main", ThreadKind::Workload),
        Box::new(ScriptBehavior::new(script(bar, 20, 3.0e7))),
    );
    let end = k
        .run_until_exit(main, SimTime::from_secs_f64(1.0))
        .expect("scenario must finish");
    let report = k.take_sanitizer_report().expect("sanitizer was attached");
    (end, report)
}

#[test]
fn same_seed_same_hash_different_seed_different_hash() {
    let (end_a, rep_a) = run(7, SanitizerConfig::hash_only());
    let (end_b, rep_b) = run(7, SanitizerConfig::hash_only());
    let (_, rep_c) = run(8, SanitizerConfig::hash_only());
    assert_eq!(end_a, end_b);
    assert_eq!(rep_a.hash, rep_b.hash);
    assert_eq!(rep_a.events, rep_b.events);
    assert!(
        rep_a.events > 10,
        "scenario dispatched {} events",
        rep_a.events
    );
    assert_ne!(rep_a.hash, rep_c.hash, "seeds 7 and 8 collided");
}

#[test]
fn sanitizer_is_a_pure_observer() {
    // Same run without any sanitizer: identical exit time.
    let mut k = Kernel::new(Machine::intel_9700kf(), KernelConfig::default(), 7);
    let bar = k.new_barrier(2);
    k.spawn(
        ThreadSpec::new("helper", ThreadKind::Workload),
        Box::new(ScriptBehavior::new(script(bar, 20, 2.0e7))),
    );
    let main = k.spawn(
        ThreadSpec::new("main", ThreadKind::Workload),
        Box::new(ScriptBehavior::new(script(bar, 20, 3.0e7))),
    );
    let bare = k.run_until_exit(main, SimTime::from_secs_f64(1.0)).unwrap();
    let (sanitized, _) = run(7, SanitizerConfig::hash_only());
    assert_eq!(bare, sanitized);
}

#[test]
fn checkpoints_prefix_match_between_identical_runs() {
    let (_, a) = run(7, SanitizerConfig::with_cadence(16));
    let (_, b) = run(7, SanitizerConfig::with_cadence(16));
    assert!(!a.checkpoints.is_empty());
    assert_eq!(a.checkpoints, b.checkpoints);
}

#[test]
fn perturbation_forks_the_stream_at_its_index() {
    let cadence = 8u64;
    let (_, clean) = run(7, SanitizerConfig::with_cadence(cadence));
    let perturb_at = 20u64;
    let (_, forked) = run(
        7,
        SanitizerConfig {
            cadence,
            window: None,
            perturb_at: Some(perturb_at),
        },
    );
    assert_ne!(
        clean.hash, forked.hash,
        "perturbation did not change the stream"
    );
    // Checkpoints up to and including the perturbation index still
    // match (the synthetic IRQ is scheduled *after* event #20 is
    // folded); some later checkpoint must diverge.
    let mut diverged = None;
    for (i, (c, f)) in clean
        .checkpoints
        .iter()
        .zip(&forked.checkpoints)
        .enumerate()
    {
        if c.index <= perturb_at {
            assert_eq!(c, f, "checkpoint {i} diverged before the perturbation");
        } else if c.hash != f.hash {
            diverged = Some(c.index);
            break;
        }
    }
    let first_bad = diverged.expect("no checkpoint diverged after the perturbation");
    assert!(first_bad > perturb_at);
}

#[test]
fn window_log_names_the_injected_event() {
    // Log a window around the perturbation; the synthetic IRQ must
    // appear in it with its marker source.
    let perturb_at = 20u64;
    let (_, rep) = run(
        7,
        SanitizerConfig {
            cadence: 0,
            window: Some((perturb_at, perturb_at + 16)),
            perturb_at: Some(perturb_at),
        },
    );
    assert!(
        rep.log.iter().any(|e| e.kind.contains("sanitizer:perturb")),
        "window log does not contain the injected IRQ: {:?}",
        rep.log.iter().map(|e| e.render()).collect::<Vec<_>>()
    );
}
