//! Behavioural tests for the simulated kernel: scheduling classes,
//! preemption, barriers, wait queues, SMT and bandwidth contention,
//! migration and determinism.

use noiselab_kernel::{
    Action, Kernel, KernelConfig, Policy, ScriptBehavior, ThreadKind, ThreadSpec,
};
use noiselab_machine::{CpuId, CpuSet, WorkUnit};
use noiselab_sim::{SimDuration, SimTime};
use noiselab_testutil::{
    horizon, quiet_config, quiet_kernel as kernel, quiet_machine, spawn_compute,
};

#[test]
fn single_compute_takes_solo_time() {
    let mut k = kernel(4, 1);
    // 1 Mflop at 1 flop/ns = 1 ms, plus tiny tick IRQ stalls.
    let tid = spawn_compute(&mut k, "w", 1_000_000.0, Policy::NORMAL);
    let end = k.run_until_exit(tid, horizon()).unwrap();
    let t = end.as_secs_f64();
    assert!((0.001..0.00102).contains(&t), "t={t}");
}

#[test]
fn two_threads_two_cpus_run_in_parallel() {
    let mut k = kernel(4, 1);
    let a = spawn_compute(&mut k, "a", 1_000_000.0, Policy::NORMAL);
    let b = spawn_compute(&mut k, "b", 1_000_000.0, Policy::NORMAL);
    let ea = k.run_until_exit(a, horizon()).unwrap();
    let eb = k.run_until_exit(b, horizon()).unwrap();
    assert!(ea.as_secs_f64() < 0.00102);
    assert!(eb.as_secs_f64() < 0.00102);
}

#[test]
fn two_fair_threads_one_cpu_share_equally() {
    let mut k = kernel(1, 1);
    let a = spawn_compute(&mut k, "a", 10_000_000.0, Policy::NORMAL);
    let b = spawn_compute(&mut k, "b", 10_000_000.0, Policy::NORMAL);
    let ea = k.run_until_exit(a, horizon()).unwrap().as_secs_f64();
    let eb = k.run_until_exit(b, horizon()).unwrap().as_secs_f64();
    // Each is 10 ms of work; sharing one CPU both finish ~20 ms.
    let last = ea.max(eb);
    assert!((0.0195..0.0215).contains(&last), "last={last}");
    // Fair sharing: both finish within a few timeslices of each other.
    assert!((ea - eb).abs() < 0.009, "ea={ea} eb={eb}");
}

#[test]
fn fifo_preempts_fair_immediately_and_runs_to_completion() {
    let mut k = kernel(1, 1);
    let w = spawn_compute(&mut k, "w", 10_000_000.0, Policy::NORMAL); // 10 ms
                                                                      // FIFO noise arrives at t=2ms, burns 5 ms of CPU.
    let n = k.spawn(
        ThreadSpec::new("noise", ThreadKind::Noise)
            .policy(Policy::Fifo { prio: 50 })
            .start_at(SimTime::from_secs_f64(0.002)),
        Box::new(ScriptBehavior::new(vec![Action::Burn(
            SimDuration::from_millis(5),
        )])),
    );
    let en = k.run_until_exit(n, horizon()).unwrap().as_secs_f64();
    let ew = k.run_until_exit(w, horizon()).unwrap().as_secs_f64();
    // Noise runs 2..7 ms uninterrupted.
    assert!((0.00695..0.00715).contains(&en), "en={en}");
    // Workload: 10 ms of work + 5 ms stolen = ~15 ms.
    assert!((0.0149..0.0152).contains(&ew), "ew={ew}");
}

#[test]
fn higher_fifo_prio_preempts_lower() {
    let mut k = kernel(1, 1);
    let low = k.spawn(
        ThreadSpec::new("low", ThreadKind::Noise).policy(Policy::Fifo { prio: 10 }),
        Box::new(ScriptBehavior::new(vec![Action::Burn(
            SimDuration::from_millis(10),
        )])),
    );
    let high = k.spawn(
        ThreadSpec::new("high", ThreadKind::Noise)
            .policy(Policy::Fifo { prio: 60 })
            .start_at(SimTime::from_secs_f64(0.001)),
        Box::new(ScriptBehavior::new(vec![Action::Burn(
            SimDuration::from_millis(2),
        )])),
    );
    let eh = k.run_until_exit(high, horizon()).unwrap().as_secs_f64();
    let el = k.run_until_exit(low, horizon()).unwrap().as_secs_f64();
    assert!((0.00295..0.00315).contains(&eh), "eh={eh}");
    assert!((0.0119..0.0122).contains(&el), "el={el}");
}

#[test]
fn equal_fifo_prio_does_not_preempt() {
    let mut k = kernel(1, 1);
    let first = k.spawn(
        ThreadSpec::new("first", ThreadKind::Noise).policy(Policy::Fifo { prio: 50 }),
        Box::new(ScriptBehavior::new(vec![Action::Burn(
            SimDuration::from_millis(4),
        )])),
    );
    let second = k.spawn(
        ThreadSpec::new("second", ThreadKind::Noise)
            .policy(Policy::Fifo { prio: 50 })
            .start_at(SimTime::from_secs_f64(0.001)),
        Box::new(ScriptBehavior::new(vec![Action::Burn(
            SimDuration::from_millis(1),
        )])),
    );
    let e1 = k.run_until_exit(first, horizon()).unwrap().as_secs_f64();
    let e2 = k.run_until_exit(second, horizon()).unwrap().as_secs_f64();
    assert!(e1 < e2, "FIFO must not round-robin: e1={e1} e2={e2}");
    assert!((0.00395..0.00415).contains(&e1), "e1={e1}");
}

#[test]
fn smt_siblings_slow_each_other() {
    // 2 cores x 2 SMT. Pin both threads to siblings of core 0.
    let mut k = kernel(2, 2);
    let a = k.spawn(
        ThreadSpec::new("a", ThreadKind::Workload).affinity(CpuSet::single(CpuId(0))),
        Box::new(ScriptBehavior::new(vec![Action::Compute(
            WorkUnit::compute(1_000_000.0),
        )])),
    );
    let b = k.spawn(
        ThreadSpec::new("b", ThreadKind::Workload).affinity(CpuSet::single(CpuId(2))), // sibling of cpu0 (2 cores)
        Box::new(ScriptBehavior::new(vec![Action::Compute(
            WorkUnit::compute(1_000_000.0),
        )])),
    );
    let ea = k.run_until_exit(a, horizon()).unwrap().as_secs_f64();
    let eb = k.run_until_exit(b, horizon()).unwrap().as_secs_f64();
    // smt_factor 0.5: both take ~2 ms instead of 1 ms.
    assert!((0.00195..0.00215).contains(&ea), "ea={ea}");
    assert!((0.00195..0.00215).contains(&eb), "eb={eb}");
}

#[test]
fn bandwidth_contention_scales_memory_bound_threads() {
    // 4 cores, per-core bw 10, socket bw 20. Four pure-stream threads
    // each demanding 10 -> each gets 5 -> run at half speed.
    let mut k = kernel(4, 1);
    let tids: Vec<_> = (0..4)
        .map(|i| {
            k.spawn(
                ThreadSpec::new(format!("s{i}"), ThreadKind::Workload)
                    .affinity(CpuSet::single(CpuId(i))),
                Box::new(ScriptBehavior::new(vec![Action::Compute(
                    WorkUnit::stream(
                        10_000_000.0, // 1 ms solo at 10 B/ns
                    ),
                )])),
            )
        })
        .collect();
    for t in tids {
        let e = k.run_until_exit(t, horizon()).unwrap().as_secs_f64();
        assert!((0.00195..0.00215).contains(&e), "e={e}");
    }
}

#[test]
fn compute_bound_threads_unaffected_by_bandwidth() {
    let mut k = kernel(4, 1);
    let a = spawn_compute(&mut k, "c", 1_000_000.0, Policy::NORMAL);
    let s = k.spawn(
        ThreadSpec::new("s", ThreadKind::Workload),
        Box::new(ScriptBehavior::new(vec![Action::Compute(
            WorkUnit::stream(50_000_000.0),
        )])),
    );
    let ea = k.run_until_exit(a, horizon()).unwrap().as_secs_f64();
    assert!((0.00095..0.00106).contains(&ea), "ea={ea}");
    k.run_until_exit(s, horizon()).unwrap();
}

#[test]
fn barrier_releases_all_parties() {
    let mut k = kernel(4, 1);
    let bar = k.new_barrier(3);
    let mk = |k: &mut Kernel, name: &str, work: f64| {
        k.spawn(
            ThreadSpec::new(name, ThreadKind::Workload),
            Box::new(ScriptBehavior::new(vec![
                Action::Compute(WorkUnit::compute(work)),
                Action::Barrier {
                    id: bar,
                    spin: SimDuration::from_millis(1),
                },
                Action::Compute(WorkUnit::compute(1_000_000.0)),
            ])),
        )
    };
    let a = mk(&mut k, "a", 1_000_000.0); // 1 ms
    let b = mk(&mut k, "b", 2_000_000.0); // 2 ms
    let c = mk(&mut k, "c", 5_000_000.0); // 5 ms: last arrival
    let ea = k.run_until_exit(a, horizon()).unwrap().as_secs_f64();
    let eb = k.run_until_exit(b, horizon()).unwrap().as_secs_f64();
    let ec = k.run_until_exit(c, horizon()).unwrap().as_secs_f64();
    // All finish ~6 ms: barrier at 5 ms + 1 ms tail.
    for (name, e) in [("a", ea), ("b", eb), ("c", ec)] {
        assert!((0.0059..0.0063).contains(&e), "{name}={e}");
    }
}

#[test]
fn barrier_blocked_waiter_wakes_with_latency() {
    // Spin time 0 -> waiters block immediately; machine has zero wake
    // latency so release is still prompt.
    let mut k = kernel(2, 1);
    let bar = k.new_barrier(2);
    let early = k.spawn(
        ThreadSpec::new("early", ThreadKind::Workload),
        Box::new(ScriptBehavior::new(vec![
            Action::Barrier {
                id: bar,
                spin: SimDuration::ZERO,
            },
            Action::Compute(WorkUnit::compute(1_000.0)),
        ])),
    );
    let late = k.spawn(
        ThreadSpec::new("late", ThreadKind::Workload).start_at(SimTime::from_secs_f64(0.003)),
        Box::new(ScriptBehavior::new(vec![Action::Barrier {
            id: bar,
            spin: SimDuration::ZERO,
        }])),
    );
    let ee = k.run_until_exit(early, horizon()).unwrap().as_secs_f64();
    let el = k.run_until_exit(late, horizon()).unwrap().as_secs_f64();
    assert!((0.00295..0.0032).contains(&ee), "ee={ee}");
    assert!((0.00295..0.0032).contains(&el), "el={el}");
}

#[test]
fn waitq_notify_wakes_fifo_order() {
    let mut k = kernel(4, 1);
    let wq = k.new_waitq();
    let w1 = k.spawn(
        ThreadSpec::new("w1", ThreadKind::Workload),
        Box::new(ScriptBehavior::new(vec![Action::WaitOn {
            wq,
            spin: SimDuration::ZERO,
        }])),
    );
    let w2 = k.spawn(
        ThreadSpec::new("w2", ThreadKind::Workload).start_at(SimTime(1000)),
        Box::new(ScriptBehavior::new(vec![Action::WaitOn {
            wq,
            spin: SimDuration::ZERO,
        }])),
    );
    // Notifier wakes exactly one at t=1ms, then the other at t=2ms.
    let _n = k.spawn(
        ThreadSpec::new("n", ThreadKind::Workload).start_at(SimTime::from_secs_f64(0.001)),
        Box::new(ScriptBehavior::new(vec![
            Action::Notify { wq, count: 1 },
            Action::SleepFor(SimDuration::from_millis(1)),
            Action::Notify { wq, count: 1 },
        ])),
    );
    let e1 = k.run_until_exit(w1, horizon()).unwrap().as_secs_f64();
    let e2 = k.run_until_exit(w2, horizon()).unwrap().as_secs_f64();
    assert!(e1 < e2, "FIFO wake order violated: e1={e1} e2={e2}");
    assert!((0.00095..0.0012).contains(&e1), "e1={e1}");
    assert!((0.00195..0.0022).contains(&e2), "e2={e2}");
}

#[test]
fn pinned_thread_never_migrates() {
    let mut k = kernel(2, 1);
    let pinned = k.spawn(
        ThreadSpec::new("pinned", ThreadKind::Workload).affinity(CpuSet::single(CpuId(0))),
        Box::new(ScriptBehavior::new(vec![Action::Compute(
            WorkUnit::compute(10_000_000.0),
        )])),
    );
    // A FIFO hog occupies cpu0 for 5 ms; cpu1 stays idle but the pinned
    // thread cannot move there.
    let _hog = k.spawn(
        ThreadSpec::new("hog", ThreadKind::Noise)
            .policy(Policy::Fifo { prio: 50 })
            .affinity(CpuSet::single(CpuId(0)))
            .start_at(SimTime::from_secs_f64(0.001)),
        Box::new(ScriptBehavior::new(vec![Action::Burn(
            SimDuration::from_millis(5),
        )])),
    );
    let e = k.run_until_exit(pinned, horizon()).unwrap();
    let t = e.as_secs_f64();
    assert!((0.0149..0.0152).contains(&t), "t={t}");
    assert_eq!(k.thread(pinned).stats.migrations, 0);
}

#[test]
fn roaming_thread_escapes_to_idle_cpu() {
    let mut k = kernel(2, 1);
    let roam = k.spawn(
        ThreadSpec::new("roam", ThreadKind::Workload),
        Box::new(ScriptBehavior::new(vec![Action::Compute(
            WorkUnit::compute(10_000_000.0),
        )])),
    );
    let _hog = k.spawn(
        ThreadSpec::new("hog", ThreadKind::Noise)
            .policy(Policy::Fifo { prio: 50 })
            .affinity(CpuSet::single(CpuId(0)))
            .start_at(SimTime::from_secs_f64(0.001)),
        Box::new(ScriptBehavior::new(vec![Action::Burn(
            SimDuration::from_millis(5),
        )])),
    );
    let e = k.run_until_exit(roam, horizon()).unwrap().as_secs_f64();
    // Escapes to cpu1 at the next idle-balance tick (within 4 ms of the
    // preemption), well before the hog's 5 ms burn ends: ~12 ms total vs
    // 15 ms pinned.
    assert!(e < 0.0125, "roaming thread should escape: e={e}");
    assert!(k.thread(roam).stats.migrations >= 1);
}

#[test]
fn set_affinity_forces_migration() {
    let mut k = kernel(2, 1);
    let t = k.spawn(
        ThreadSpec::new("t", ThreadKind::Workload).affinity(CpuSet::single(CpuId(0))),
        Box::new(ScriptBehavior::new(vec![
            Action::Compute(WorkUnit::compute(1_000_000.0)),
            Action::SetAffinity(CpuSet::single(CpuId(1))),
            Action::Compute(WorkUnit::compute(1_000_000.0)),
        ])),
    );
    let e = k.run_until_exit(t, horizon()).unwrap().as_secs_f64();
    assert!((0.00195..0.00225).contains(&e), "e={e}");
    assert!(k.thread(t).stats.migrations >= 1);
}

#[test]
fn set_policy_demotion_yields_to_rt() {
    let mut k = kernel(1, 1);
    // Thread starts FIFO, demotes itself to OTHER; a queued FIFO thread
    // must take over immediately.
    let demoter = k.spawn(
        ThreadSpec::new("demoter", ThreadKind::Noise).policy(Policy::Fifo { prio: 50 }),
        Box::new(ScriptBehavior::new(vec![
            Action::Burn(SimDuration::from_millis(1)),
            Action::SetPolicy(Policy::NORMAL),
            Action::Burn(SimDuration::from_millis(1)),
        ])),
    );
    let rt = k.spawn(
        ThreadSpec::new("rt", ThreadKind::Noise)
            .policy(Policy::Fifo { prio: 10 })
            .start_at(SimTime::from_secs_f64(0.0005)),
        Box::new(ScriptBehavior::new(vec![Action::Burn(
            SimDuration::from_millis(2),
        )])),
    );
    let ert = k.run_until_exit(rt, horizon()).unwrap().as_secs_f64();
    let ed = k.run_until_exit(demoter, horizon()).unwrap().as_secs_f64();
    // rt runs 1..3 ms (after demoter's FIFO burn ends at 1 ms).
    assert!((0.00295..0.0032).contains(&ert), "ert={ert}");
    assert!((0.00395..0.0042).contains(&ed), "ed={ed}");
}

#[test]
fn sleep_wakes_at_requested_time() {
    let mut k = kernel(1, 1);
    let t = k.spawn(
        ThreadSpec::new("sleeper", ThreadKind::Workload),
        Box::new(ScriptBehavior::new(vec![
            Action::SleepUntil(SimTime::from_secs_f64(0.005)),
            Action::Compute(WorkUnit::compute(1_000.0)),
        ])),
    );
    let e = k.run_until_exit(t, horizon()).unwrap().as_secs_f64();
    assert!((0.005..0.0051).contains(&e), "e={e}");
}

#[test]
fn nice_weights_bias_fair_sharing() {
    let mut k = kernel(1, 1);
    let heavy = spawn_compute(&mut k, "heavy", 10_000_000.0, Policy::Other { nice: -10 });
    let light = spawn_compute(&mut k, "light", 10_000_000.0, Policy::Other { nice: 10 });
    let eh = k.run_until_exit(heavy, horizon()).unwrap().as_secs_f64();
    let el = k.run_until_exit(light, horizon()).unwrap().as_secs_f64();
    // The nice -10 thread should finish well before the nice 10 thread.
    // (Slicing granularity is the 4 ms tick, so the bias is coarser than
    // real CFS; the ordering and a sane bound are what matter.)
    assert!(eh < el, "eh={eh} el={el}");
    assert!(eh < 0.0145, "heavy thread starved: eh={eh}");
    assert!((0.0195..0.0215).contains(&el), "el={el}");
}

#[test]
fn determinism_same_seed_same_times() {
    let run = |seed: u64| -> Vec<u64> {
        let mut k = Kernel::new(quiet_machine(4, 2), KernelConfig::default(), seed);
        let bar = k.new_barrier(4);
        let tids: Vec<_> = (0..4)
            .map(|i| {
                k.spawn(
                    ThreadSpec::new(format!("w{i}"), ThreadKind::Workload),
                    Box::new(ScriptBehavior::new(vec![
                        Action::Compute(WorkUnit::new(2_000_000.0, 1_000_000.0)),
                        Action::Barrier {
                            id: bar,
                            spin: SimDuration::from_micros(50),
                        },
                        Action::Compute(WorkUnit::compute(1_000_000.0)),
                    ])),
                )
            })
            .collect();
        tids.iter()
            .map(|&t| {
                let mut kk_end = 0;
                if let Ok(e) = k.run_until_exit(t, SimTime::from_secs_f64(10.0)) {
                    kk_end = e.nanos();
                }
                kk_end
            })
            .collect()
    };
    assert_eq!(run(7), run(7));
    assert_ne!(
        run(7),
        run(8),
        "different seeds should differ via IRQ jitter"
    );
}

#[test]
fn exited_thread_frees_cpu() {
    let mut k = kernel(1, 1);
    let a = spawn_compute(&mut k, "a", 1_000_000.0, Policy::NORMAL);
    let b = k.spawn(
        ThreadSpec::new("b", ThreadKind::Workload).start_at(SimTime::from_secs_f64(0.0005)),
        Box::new(ScriptBehavior::new(vec![Action::Compute(
            WorkUnit::compute(1_000_000.0),
        )])),
    );
    let ea = k.run_until_exit(a, horizon()).unwrap().as_secs_f64();
    let eb = k.run_until_exit(b, horizon()).unwrap().as_secs_f64();
    assert!(ea < eb);
    // b: waits ~until a finishes (sharing), then completes.
    assert!(eb < 0.0023, "eb={eb}");
}

#[test]
fn tracer_records_timer_irqs() {
    let mut k = kernel(2, 1);
    k.attach_tracer(Box::new(noiselab_kernel::VecSink::default()));
    let t = spawn_compute(&mut k, "w", 20_000_000.0, Policy::NORMAL); // 20 ms
    k.run_until_exit(t, horizon()).unwrap();
    let sink = k.detach_tracer().unwrap();
    // Can't downcast Box<dyn TraceSink> without Any; instead re-check via
    // a fresh run below. Here just ensure detach returns the sink.
    drop(sink);

    // Fresh run keeping the concrete type outside.
    let machine = quiet_machine(2, 1);
    let mut cfg = quiet_config();
    cfg.softirq_prob = 0.5;
    let mut k2 = Kernel::new(machine, cfg, 3);
    let sink = noiselab_kernel::VecSink::default();
    k2.attach_tracer(Box::new(sink));
    let t2 = k2.spawn(
        ThreadSpec::new("w", ThreadKind::Workload),
        Box::new(ScriptBehavior::new(vec![Action::Compute(
            WorkUnit::compute(20_000_000.0),
        )])),
    );
    k2.run_until_exit(t2, horizon()).unwrap();
    // 20 ms on 2 cpus at 4 ms ticks -> ~10 tick IRQs total.
    // (VecSink is opaque behind the trait; noise crate adds an
    // introspectable tracer — here we only verify no panic.)
}

#[test]
fn thread_noise_interval_traced() {
    // Use the noise kind + a shared sink via a thin adapter.
    use noiselab_kernel::{NoiseClass, TraceSink};
    use std::cell::RefCell;
    use std::rc::Rc;

    #[derive(Default)]
    struct Shared(Rc<RefCell<Vec<(NoiseClass, String, u64)>>>);
    impl TraceSink for Shared {
        fn record(
            &mut self,
            _cpu: CpuId,
            class: NoiseClass,
            source: &str,
            _tid: Option<noiselab_kernel::ThreadId>,
            _start: SimTime,
            duration: SimDuration,
        ) {
            self.0
                .borrow_mut()
                .push((class, source.to_string(), duration.nanos()));
        }
    }

    let store = Rc::new(RefCell::new(Vec::new()));
    let mut k = kernel(1, 1);
    k.attach_tracer(Box::new(Shared(store.clone())));
    let w = spawn_compute(&mut k, "w", 5_000_000.0, Policy::NORMAL);
    let noise = k.spawn(
        ThreadSpec::new("kworker/0:1", ThreadKind::Noise).start_at(SimTime::from_secs_f64(0.001)),
        Box::new(ScriptBehavior::new(vec![Action::Burn(
            SimDuration::from_micros(500),
        )])),
    );
    k.run_until_exit(w, horizon()).unwrap();
    // The interval is recorded when the kworker deschedules (exits).
    k.run_until_exit(noise, horizon()).unwrap();
    let events = store.borrow();
    let thread_noise: Vec<_> = events
        .iter()
        .filter(|(c, _, _)| *c == NoiseClass::Thread)
        .collect();
    assert!(!thread_noise.is_empty(), "kworker interval not traced");
    let total: u64 = thread_noise.iter().map(|(_, _, d)| d).sum();
    assert!(
        (450_000..700_000).contains(&total),
        "kworker noise total {total} ns, expected ~500us"
    );
    assert!(thread_noise.iter().any(|(_, s, _)| s == "kworker/0:1"));
}

#[test]
fn burnwall_duration_is_wall_time_under_smt() {
    // Two SMT siblings: a Burn stretches by the SMT factor, a BurnWall
    // does not (occupancy is occupancy).
    let mut k = kernel(2, 2);
    let wall = k.spawn(
        ThreadSpec::new("wall", ThreadKind::Injector).affinity(CpuSet::single(CpuId(0))),
        Box::new(ScriptBehavior::new(vec![Action::BurnWall(
            SimDuration::from_millis(4),
        )])),
    );
    let _sibling_load = k.spawn(
        ThreadSpec::new("load", ThreadKind::Workload).affinity(CpuSet::single(CpuId(2))),
        Box::new(ScriptBehavior::new(vec![Action::Compute(
            WorkUnit::compute(20_000_000.0),
        )])),
    );
    let e = k.run_until_exit(wall, horizon()).unwrap().as_secs_f64();
    assert!(
        (0.0039..0.0043).contains(&e),
        "BurnWall stretched under SMT: {e}"
    );

    let mut k2 = kernel(2, 2);
    let burn = k2.spawn(
        ThreadSpec::new("burn", ThreadKind::Injector).affinity(CpuSet::single(CpuId(0))),
        Box::new(ScriptBehavior::new(vec![Action::Burn(
            SimDuration::from_millis(4),
        )])),
    );
    let _sibling_load2 = k2.spawn(
        ThreadSpec::new("load", ThreadKind::Workload).affinity(CpuSet::single(CpuId(2))),
        Box::new(ScriptBehavior::new(vec![Action::Compute(
            WorkUnit::compute(20_000_000.0),
        )])),
    );
    let e2 = k2.run_until_exit(burn, horizon()).unwrap().as_secs_f64();
    // smt_factor 0.5 -> 4 ms of CPU work takes ~8 ms of wall time.
    assert!(
        (0.0078..0.0084).contains(&e2),
        "Burn should stretch under SMT: {e2}"
    );
}

#[test]
fn burnwall_pauses_while_preempted() {
    let mut k = kernel(1, 1);
    let wall = k.spawn(
        ThreadSpec::new("wall", ThreadKind::Injector),
        Box::new(ScriptBehavior::new(vec![Action::BurnWall(
            SimDuration::from_millis(6),
        )])),
    );
    // A FIFO hog takes the CPU from 1 ms to 4 ms.
    let _hog = k.spawn(
        ThreadSpec::new("hog", ThreadKind::Noise)
            .policy(Policy::Fifo { prio: 50 })
            .start_at(SimTime::from_secs_f64(0.001)),
        Box::new(ScriptBehavior::new(vec![Action::Burn(
            SimDuration::from_millis(3),
        )])),
    );
    let e = k.run_until_exit(wall, horizon()).unwrap().as_secs_f64();
    // 6 ms occupancy + 3 ms preempted = ~9 ms.
    assert!((0.0089..0.0093).contains(&e), "e={e}");
}

#[test]
fn device_irq_stalls_running_thread_and_is_traced() {
    use noiselab_kernel::{NoiseClass, TraceSink};
    use std::cell::RefCell;
    use std::rc::Rc;

    #[derive(Default)]
    struct Sink(Rc<RefCell<Vec<(NoiseClass, String, u64)>>>);
    impl TraceSink for Sink {
        fn record(
            &mut self,
            _cpu: CpuId,
            class: NoiseClass,
            source: &str,
            _tid: Option<noiselab_kernel::ThreadId>,
            _start: SimTime,
            duration: SimDuration,
        ) {
            self.0
                .borrow_mut()
                .push((class, source.to_string(), duration.nanos()));
        }
    }

    let store = Rc::new(RefCell::new(Vec::new()));
    let mut k = kernel(1, 1);
    k.attach_tracer(Box::new(Sink(store.clone())));
    let w = spawn_compute(&mut k, "w", 5_000_000.0, Policy::NORMAL);
    // 2 ms of device IRQ at t=1ms.
    k.inject_irq(
        CpuId(0),
        SimTime::from_secs_f64(0.001),
        SimDuration::from_millis(2),
        "nvme0q1:130",
    );
    let e = k.run_until_exit(w, horizon()).unwrap().as_secs_f64();
    assert!((0.0069..0.0073).contains(&e), "e={e}");
    let events = store.borrow();
    assert!(events
        .iter()
        .any(|(c, s, d)| *c == NoiseClass::Irq && s == "nvme0q1:130" && *d == 2_000_000));
}

#[test]
fn wake_placement_prefers_fully_idle_core() {
    // 2 cores x 2 SMT: core 0's primary busy. A woken thread must land
    // on core 1 (fully idle), not on cpu2 (core 0's sibling).
    let mut k = kernel(2, 2);
    let _busy = k.spawn(
        ThreadSpec::new("busy", ThreadKind::Workload).affinity(CpuSet::single(CpuId(0))),
        Box::new(ScriptBehavior::new(vec![Action::Compute(
            WorkUnit::compute(20_000_000.0),
        )])),
    );
    let newcomer = k.spawn(
        ThreadSpec::new("new", ThreadKind::Noise).start_at(SimTime::from_secs_f64(0.001)),
        Box::new(ScriptBehavior::new(vec![Action::Burn(
            SimDuration::from_millis(2),
        )])),
    );
    let e = k.run_until_exit(newcomer, horizon()).unwrap().as_secs_f64();
    // On a fully idle core it runs at full speed: 1 ms + 2 ms = 3 ms.
    // On the busy sibling it would take ~5 ms (smt factor 0.5).
    assert!(
        (0.0029..0.0033).contains(&e),
        "placed on busy sibling? e={e}"
    );
    // And the pinned thread must not have been slowed at all.
}

#[test]
fn rt_throttling_disabled_allows_full_occupancy() {
    // A FIFO thread may occupy the CPU indefinitely (the paper disables
    // the RT fail-safe); a fair workload makes zero progress meanwhile.
    let mut k = kernel(1, 1);
    let w = spawn_compute(&mut k, "w", 1_000_000.0, Policy::NORMAL);
    let _hog = k.spawn(
        ThreadSpec::new("hog", ThreadKind::Noise).policy(Policy::Fifo { prio: 50 }),
        Box::new(ScriptBehavior::new(vec![Action::Burn(
            SimDuration::from_millis(50),
        )])),
    );
    let e = k.run_until_exit(w, horizon()).unwrap().as_secs_f64();
    assert!(
        e > 0.050,
        "fair thread ran before the FIFO hog finished: {e}"
    );
}

#[test]
fn yield_with_competitor_round_robins() {
    let mut k = kernel(1, 1);
    let a = k.spawn(
        ThreadSpec::new("a", ThreadKind::Workload),
        Box::new(ScriptBehavior::new(vec![
            Action::Compute(WorkUnit::compute(1_000_000.0)),
            Action::Yield,
            Action::Compute(WorkUnit::compute(1_000_000.0)),
        ])),
    );
    let b = spawn_compute(&mut k, "b", 1_000_000.0, Policy::NORMAL);
    let ea = k.run_until_exit(a, horizon()).unwrap().as_secs_f64();
    let eb = k.run_until_exit(b, horizon()).unwrap().as_secs_f64();
    // a yields after 1 ms; b (queued) runs to completion; a finishes last.
    assert!(eb < ea, "yield should hand over the cpu: ea={ea} eb={eb}");
    assert!((0.0029..0.0034).contains(&ea), "ea={ea}");
}
