//! Tickless-idle (NO_HZ) behaviour: parked CPUs must change nothing
//! observable — exec times, traces and noise accounting match an eager
//! kernel at the same seed — while the event count drops.

use noiselab_kernel::{Action, Kernel, Policy, ScriptBehavior, ThreadId, ThreadKind, ThreadSpec};
use noiselab_machine::{CpuId, CpuSet, WorkUnit};
use noiselab_sim::{SimDuration, SimTime};
use noiselab_testutil::{
    costed_machine as machine, horizon, recorder, tickless_config as config, TraceTuple,
};
use proptest::prelude::*;

/// A mixed scenario: barriers, sleeps, pinned + roaming threads, FIFO
/// noise and a device IRQ, leaving several CPUs idle for long spans.
fn run_scenario(tickless: bool, seed: u64, traced: bool) -> (Vec<u64>, Vec<TraceTuple>) {
    let mut k = Kernel::new(machine(4, 2), config(tickless), seed);
    let (rec, store) = recorder();
    if traced {
        k.attach_tracer(Box::new(rec));
    }
    let bar = k.new_barrier(2);
    let a = k.spawn(
        ThreadSpec::new("a", ThreadKind::Workload).affinity(CpuSet::single(CpuId(0))),
        Box::new(ScriptBehavior::new(vec![
            Action::Compute(WorkUnit::compute(6_000_000.0)),
            Action::Barrier {
                id: bar,
                spin: SimDuration::from_micros(50),
            },
            Action::Compute(WorkUnit::new(2_000_000.0, 5_000_000.0)),
        ])),
    );
    let b = k.spawn(
        ThreadSpec::new("b", ThreadKind::Workload),
        Box::new(ScriptBehavior::new(vec![
            Action::SleepFor(SimDuration::from_millis(2)),
            Action::Compute(WorkUnit::compute(3_000_000.0)),
            Action::Barrier {
                id: bar,
                spin: SimDuration::from_micros(50),
            },
            Action::Compute(WorkUnit::compute(1_000_000.0)),
        ])),
    );
    let n = k.spawn(
        ThreadSpec::new("noise", ThreadKind::Noise)
            .policy(Policy::Fifo { prio: 50 })
            .affinity(CpuSet::single(CpuId(0)))
            .start_at(SimTime::from_secs_f64(0.003)),
        Box::new(ScriptBehavior::new(vec![Action::Burn(
            SimDuration::from_millis(2),
        )])),
    );
    k.inject_irq(
        CpuId(1),
        SimTime::from_secs_f64(0.001),
        SimDuration::from_micros(800),
        "nic:77",
    );
    let ends: Vec<u64> = [a, b, n]
        .iter()
        .map(|&t| k.run_until_exit(t, horizon()).expect("run failed").nanos())
        .collect();
    let events = store.borrow().clone();
    (ends, events)
}

#[test]
fn tickless_matches_eager_exec_times_and_traces() {
    for seed in [1, 7, 42, 1234] {
        let (eager_ends, eager_tr) = run_scenario(false, seed, true);
        let (tickless_ends, tickless_tr) = run_scenario(true, seed, true);
        assert_eq!(
            eager_ends, tickless_ends,
            "exec times diverged at seed {seed}"
        );
        assert_eq!(eager_tr, tickless_tr, "traces diverged at seed {seed}");
    }
}

#[test]
fn idle_machine_parks_all_ticks() {
    // After the only thread exits, a tickless kernel has nothing left to
    // do: the queue drains and virtual time stops advancing, instead of
    // ticking every CPU forever.
    let mut k = Kernel::new(machine(4, 1), config(true), 9);
    let t = k.spawn(
        ThreadSpec::new("w", ThreadKind::Workload),
        Box::new(ScriptBehavior::new(vec![Action::Compute(
            WorkUnit::compute(1_000_000.0),
        )])),
    );
    k.run_until_exit(t, horizon()).unwrap();
    k.run_until(SimTime::from_secs_f64(50.0)).unwrap();
    assert!(
        k.now() < SimTime::from_secs_f64(1.0),
        "idle kernel kept processing events until {}",
        k.now()
    );
}

#[test]
fn eager_kernel_keeps_ticking_when_idle() {
    // Control for the test above: with tickless off, ticks carry virtual
    // time forward indefinitely.
    let mut k = Kernel::new(machine(4, 1), config(false), 9);
    let t = k.spawn(
        ThreadSpec::new("w", ThreadKind::Workload),
        Box::new(ScriptBehavior::new(vec![Action::Compute(
            WorkUnit::compute(1_000_000.0),
        )])),
    );
    k.run_until_exit(t, horizon()).unwrap();
    k.run_until(SimTime::from_secs_f64(2.0)).unwrap();
    assert!(
        k.now() > SimTime::from_secs_f64(1.9),
        "eager ticks stopped at {}",
        k.now()
    );
}

#[test]
fn parked_cpu_still_pulls_queued_work() {
    // One CPU is hogged by FIFO noise; a fair thread queued behind it
    // must escape to another (parked, tickless) CPU via idle balancing.
    let mut k = Kernel::new(machine(2, 1), config(true), 5);
    let roam = k.spawn(
        ThreadSpec::new("roam", ThreadKind::Workload),
        Box::new(ScriptBehavior::new(vec![Action::Compute(
            WorkUnit::compute(10_000_000.0),
        )])),
    );
    let _hog = k.spawn(
        ThreadSpec::new("hog", ThreadKind::Noise)
            .policy(Policy::Fifo { prio: 50 })
            .affinity(CpuSet::single(CpuId(0)))
            .start_at(SimTime::from_secs_f64(0.001)),
        Box::new(ScriptBehavior::new(vec![Action::Burn(
            SimDuration::from_millis(5),
        )])),
    );
    let e = k.run_until_exit(roam, horizon()).unwrap().as_secs_f64();
    assert!(e < 0.0125, "queued thread starved on a parked CPU: e={e}");
    assert!(k.thread(roam).stats.migrations >= 1);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Random workloads never starve under tickless idle, and finish at
    /// exactly the same virtual times as under eager ticks.
    #[test]
    fn no_runnable_thread_starves_with_parked_ticks(
        seed in 0u64..1_000_000,
        nthreads in 1usize..10,
        shape in 0u8..8,
    ) {
        let build = |tickless: bool| -> Vec<u64> {
            let mut k = Kernel::new(machine(4, 2), config(tickless), seed);
            let tids: Vec<ThreadId> = (0..nthreads)
                .map(|i| {
                    // Derived deterministically from the proptest inputs.
                    let mix = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(i as u64);
                    let flops = 200_000.0 + (mix % 4_000_000) as f64;
                    let start = SimTime((mix >> 8) % 5_000_000);
                    let affinity = if shape & 1 == 0 {
                        CpuSet::EMPTY // all CPUs
                    } else {
                        CpuSet::single(CpuId((mix % 8) as u32))
                    };
                    let policy = if shape & 2 != 0 && i % 3 == 0 {
                        Policy::Fifo { prio: 10 + (mix % 50) as u8 }
                    } else {
                        Policy::NORMAL
                    };
                    let mut actions = vec![Action::Compute(WorkUnit::compute(flops))];
                    if shape & 4 != 0 {
                        actions.push(Action::SleepFor(SimDuration::from_micros(300)));
                        actions.push(Action::Compute(WorkUnit::compute(flops / 2.0)));
                    }
                    k.spawn(
                        ThreadSpec::new(format!("w{i}"), ThreadKind::Workload)
                            .policy(policy)
                            .affinity(affinity)
                            .start_at(start),
                        Box::new(ScriptBehavior::new(actions)),
                    )
                })
                .collect();
            tids.iter()
                .map(|&t| {
                    k.run_until_exit(t, horizon())
                        .expect("thread starved or deadlocked")
                        .nanos()
                })
                .collect()
        };
        let eager = build(false);
        let tickless = build(true);
        prop_assert_eq!(eager, tickless);
    }
}
