//! Telemetry observer hooks.
//!
//! Two thin traits let the telemetry layer watch the kernel without the
//! kernel depending on it (the same cycle-avoiding pattern as
//! [`crate::trace::TraceSink`]):
//!
//! * [`KernelObserver`] receives virtual-time scheduling records —
//!   context switches, migrations, preemptions, enqueues, IRQ/softirq
//!   service windows and policy switches — plus every dispatched event
//!   (the same [`EventRecord`] stream the sanitizer folds). Observers
//!   are pure: no method returns a value the kernel reads, so attaching
//!   one cannot perturb the simulation. The purity property test in
//!   `noiselab-core` proves it by `stream_hash` equality.
//! * [`HostProfiler`] receives host-time phase boundaries (event
//!   dispatch, scheduler, tracer). The kernel never reads a clock — it
//!   only announces phase entry/exit; the boxed implementation in
//!   `noiselab-telemetry` reads the single audited `wall_clock()` site.
//!
//! Every call site is guarded by an `Option` check, so a kernel with no
//! observer attached pays one branch per hook and nothing else.

use crate::sanitize::EventRecord;
use crate::thread::{ThreadKind, ThreadState};
use noiselab_sim::SimTime;

/// One scheduling-layer occurrence, flattened for observation. Borrowed
/// string fields keep the hooks allocation-free.
#[derive(Debug, Clone, Copy)]
pub enum SchedRecord<'a> {
    /// A thread went on-CPU.
    SwitchIn {
        cpu: u32,
        thread: u32,
        /// Thread name, for span labels.
        name: &'a str,
        kind: ThreadKind,
        time: SimTime,
        /// Threads left queued on this CPU after the pick.
        runq_depth: u32,
    },
    /// A thread left its CPU into `state`.
    SwitchOut {
        cpu: u32,
        thread: u32,
        time: SimTime,
        state: ThreadState,
    },
    /// The current thread was involuntarily descheduled (stays ready).
    Preempt {
        cpu: u32,
        thread: u32,
        time: SimTime,
    },
    /// A thread was placed in a runqueue; `depth` counts queued threads
    /// on that CPU after insertion.
    Enqueue {
        cpu: u32,
        thread: u32,
        time: SimTime,
        depth: u32,
    },
    /// A thread is being pulled onto `to_cpu` from another CPU.
    Migrate {
        thread: u32,
        to_cpu: u32,
        time: SimTime,
        cross_numa: bool,
    },
    /// An IRQ or softirq service window occupied `cpu` for
    /// `duration_ns` starting at `time`.
    IrqSpan {
        cpu: u32,
        time: SimTime,
        duration_ns: u64,
        source: &'a str,
        softirq: bool,
    },
    /// A thread changed scheduling class.
    PolicySwitch {
        thread: u32,
        time: SimTime,
        rt: bool,
    },
}

/// A pure observer of kernel activity. Both methods default to no-ops
/// so an implementation can subscribe to only one stream.
pub trait KernelObserver {
    /// Called at the single dispatch point, with the same record the
    /// sanitizer hashes.
    fn event(&mut self, rec: &EventRecord<'_>) {
        let _ = rec;
    }

    /// Called at each scheduling-layer hook.
    fn sched(&mut self, rec: &SchedRecord<'_>) {
        let _ = rec;
    }
}

/// Host-time phases the kernel announces to an attached
/// [`HostProfiler`]. Phases nest (dispatch contains scheduler contains
/// tracer); implementations attribute self-time with a stack.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Phase {
    /// Handling one popped event (the whole of `Kernel::handle`).
    Dispatch,
    /// Picking the next thread in `Kernel::dispatch`.
    Scheduler,
    /// Writing records into the attached trace sink.
    Tracer,
    /// Statistics/summary computation (announced by the harness, not
    /// the kernel).
    Stats,
}

impl Phase {
    pub const ALL: [Phase; 4] = [
        Phase::Dispatch,
        Phase::Scheduler,
        Phase::Tracer,
        Phase::Stats,
    ];

    pub fn name(self) -> &'static str {
        match self {
            Phase::Dispatch => "dispatch",
            Phase::Scheduler => "scheduler",
            Phase::Tracer => "tracer",
            Phase::Stats => "stats",
        }
    }

    /// Dense index for per-phase accumulator arrays.
    pub fn index(self) -> usize {
        match self {
            Phase::Dispatch => 0,
            Phase::Scheduler => 1,
            Phase::Tracer => 2,
            Phase::Stats => 3,
        }
    }
}

/// Receives phase boundaries. The kernel guarantees every `enter` is
/// matched by an `exit` of the same phase in LIFO order.
pub trait HostProfiler {
    fn enter(&mut self, phase: Phase);
    fn exit(&mut self, phase: Phase);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn phase_names_and_indices_are_stable() {
        for (i, p) in Phase::ALL.iter().enumerate() {
            assert_eq!(p.index(), i);
            assert!(!p.name().is_empty());
        }
    }
}
